"""Benchmark configuration.

Each benchmark regenerates one table/figure of the paper via the
drivers in :mod:`repro.analysis.experiments`, times it with
pytest-benchmark, prints the regenerated rows (run with ``-s`` to see
them), and asserts the *shape* the paper reports.  Scales are reduced
relative to the defaults so the whole benchmark suite completes in
minutes; the EXPERIMENTS.md write-up uses the default scales.
"""

from __future__ import annotations


def show(output) -> None:
    """Print a rendered experiment (visible with pytest -s)."""
    print()
    print(output.render())
