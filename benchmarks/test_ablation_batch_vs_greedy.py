"""Ablation — batched threshold removal (Algorithm 1) vs Charikar's
one-node-per-step greedy.

The design choice the paper's whole contribution rests on: batching
relaxes the greedy constraint to cut passes from O(n) to O(log n) at a
bounded quality cost.  This bench quantifies both sides of the trade.
"""

import pytest
from conftest import show

from repro.analysis.tables import render_table
from repro.core.charikar import greedy_densest_subgraph
from repro.core.undirected import densest_subgraph
from repro.datasets import load


def test_ablation_batch_vs_greedy(benchmark):
    graph = load("flickr_sim", scale=0.3)

    def run():
        greedy = greedy_densest_subgraph(graph)
        batched = {
            eps: densest_subgraph(graph, eps) for eps in (0.1, 0.5, 1.0, 2.0)
        }
        return greedy, batched

    greedy, batched = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [["greedy (Charikar)", greedy.density, greedy.passes, 1.0]]
    for eps, result in batched.items():
        rows.append(
            [
                f"Algorithm 1, eps={eps:g}",
                result.density,
                result.passes,
                result.density / greedy.density,
            ]
        )
    print()
    print(
        render_table(
            ["variant", "rho", "passes", "rho / rho_greedy"],
            rows,
            title="[ablation] batched threshold removal vs exact greedy",
        )
    )

    # Greedy needs n passes; the batched variants need O(log n).
    assert greedy.passes == graph.num_nodes
    for eps, result in batched.items():
        assert result.passes <= 12
        # Quality within the paper's observed band.
        assert result.density >= 0.55 * greedy.density, eps
    # Greedy never loses (it optimizes over a superset of prefixes here).
    assert greedy.density >= max(r.density for r in batched.values()) - 1e-9
