"""Ablation — Algorithm 3's side-selection rule.

§4.3 replaces the naive max-degree comparison with the size-ratio rule,
arguing it is simpler, needs only one side's degrees per pass, and is
"also faster ... leading to a significant speedup in practice" with no
quality loss.  This bench compares quality and pass counts of both
rules across ratios.
"""

import time

from conftest import show

from repro.analysis.tables import render_table
from repro.core.directed import densest_subgraph_directed
from repro.datasets import load


def test_ablation_directed_rule(benchmark):
    graph = load("livejournal_sim", scale=0.25)
    ratios = (0.25, 1.0, 4.0)

    def run():
        out = {}
        for rule in ("size_ratio", "max_degree"):
            for c in ratios:
                out[(rule, c)] = densest_subgraph_directed(
                    graph, ratio=c, epsilon=1.0, side_rule=rule
                )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for c in ratios:
        fast = results[("size_ratio", c)]
        naive = results[("max_degree", c)]
        rows.append([c, fast.density, fast.passes, naive.density, naive.passes])
    print()
    print(
        render_table(
            ["c", "rho (size-ratio)", "passes", "rho (max-degree)", "passes "],
            rows,
            title="[ablation] Algorithm 3 side-selection rule",
        )
    )

    for c in ratios:
        fast = results[("size_ratio", c)]
        naive = results[("max_degree", c)]
        # Comparable quality (the paper's claim: the simplification does
        # not cost density).
        assert fast.density >= 0.6 * naive.density, c
        assert fast.passes <= 3 * max(1, naive.passes), c
