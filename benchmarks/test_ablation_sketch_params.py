"""Ablation — Count-Sketch shape (t x b) vs solution quality.

§5.1 fixes t=5 and varies b; this ablation also varies t to show the
median-of-t estimator's contribution, extending Table 4.
"""

from conftest import show

from repro.analysis.tables import render_table
from repro.core.undirected import densest_subgraph
from repro.datasets import load
from repro.streaming.sketch_engine import sketch_densest_subgraph
from repro.streaming.stream import GraphEdgeStream


def test_ablation_sketch_params(benchmark):
    graph = load("flickr_sim", scale=0.2)
    exact = densest_subgraph(graph, 0.5)
    tables_grid = (1, 3, 5)
    buckets_grid = (
        max(8, graph.num_nodes // 50),
        max(8, graph.num_nodes // 10),
        graph.num_nodes,
    )

    def run():
        out = {}
        for t in tables_grid:
            for b in buckets_grid:
                result = sketch_densest_subgraph(
                    GraphEdgeStream(graph), 0.5, buckets=b, tables=t, seed=3
                )
                out[(t, b)] = result.density / exact.density
        return out

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [f"t={t}"] + [ratios[(t, b)] for b in buckets_grid] for t in tables_grid
    ]
    print()
    print(
        render_table(
            ["tables"] + [f"b={b}" for b in buckets_grid],
            rows,
            title="[ablation] sketch shape vs rho_sketch/rho_exact",
        )
    )

    # Big sketches approach exact quality.
    assert ratios[(5, buckets_grid[-1])] >= 0.9
    # Quality ratios stay in a sane band everywhere.
    assert all(0.2 <= v <= 1.3 for v in ratios.values())
