"""Figure 6.1 — effect of eps on approximation and number of passes.

Paper's shape: relative density stays within ~[0.7, 1.2] of eps=0
(non-monotone), while passes drop roughly in half by eps in [0.5, 1].
"""

from conftest import show

from repro.analysis.experiments import fig61

EPSILONS = (0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5)


def test_fig61_eps_tradeoff(benchmark):
    out = benchmark.pedantic(
        lambda: fig61(scale=0.3, epsilons=EPSILONS), rounds=1, iterations=1
    )
    show(out)
    for name in ("flickr_sim", "im_sim"):
        rows = [r for r in out.rows if r[0] == name]
        assert len(rows) == len(EPSILONS)
        rel = [r[3] for r in rows]
        passes = [r[4] for r in rows]
        assert rel[0] == 1.0
        # Quality band of the paper's figure.
        assert all(0.55 <= v <= 1.25 for v in rel), (name, rel)
        # Pass counts never increase much and end clearly below eps=0's.
        assert passes[-1] < passes[0]
        assert min(passes) >= 2
