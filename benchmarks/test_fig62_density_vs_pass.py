"""Figure 6.2 — density (relative to the run's max) vs pass number.

Paper's shape: the density trajectory is non-monotone; flickr rises to
a unimodal peak then collapses; the peak is the returned answer.
"""

from conftest import show

from repro.analysis.experiments import fig62


def test_fig62_density_vs_pass(benchmark):
    out = benchmark.pedantic(
        lambda: fig62(scale=0.3, epsilons=(0.0, 1.0, 2.0)), rounds=1, iterations=1
    )
    show(out)
    for name in ("flickr_sim", "im_sim"):
        for eps in ("0", "1", "2"):
            rel = [r[4] for r in out.rows if r[0] == name and r[1] == eps]
            assert rel, (name, eps)
            assert max(rel) == 1.0
            # Non-monotone: the density *rises* after the first pass as
            # low-degree fringe is stripped away (the peak is never the
            # starting density).
            assert rel.index(1.0) > 0
    # With eps=0 (many fine passes) both graphs show the full
    # rise-then-fall: the peak sits strictly inside the trajectory.
    for name in ("flickr_sim", "im_sim"):
        rel0 = [r[4] for r in out.rows if r[0] == name and r[1] == "0"]
        peak = rel0.index(1.0)
        assert 0 < peak < len(rel0) - 1, (name, rel0)
