"""Figure 6.3 — remaining nodes and edges after each pass.

Paper's shape: the graph shrinks by orders of magnitude within the
first few passes, so the tail of the computation would fit in memory;
the O(log n) worst case is never approached.
"""

from conftest import show

from repro.analysis.experiments import fig63


def test_fig63_shrinkage(benchmark):
    out = benchmark.pedantic(
        lambda: fig63(scale=0.3, epsilons=(0.0, 1.0, 2.0)), rounds=1, iterations=1
    )
    show(out)
    for name in ("flickr_sim", "im_sim"):
        for eps in ("1", "2"):
            rows = [r for r in out.rows if r[0] == name and r[1] == eps]
            nodes = [r[3] for r in rows]
            edges = [r[4] for r in rows]
            assert nodes == sorted(nodes, reverse=True)
            assert edges == sorted(edges, reverse=True)
            # Dramatic early shrinkage: after two passes under a tenth
            # of the nodes survive (heavy-tailed degree distribution).
            if len(nodes) > 2:
                first = rows[0][3] + rows[0][2] * 0  # nodes after pass 1
                assert nodes[1] < (nodes[0] + 1) * 0.6
            # Pass counts far below log2(n) ~ 12-13.
            assert len(rows) <= 8
