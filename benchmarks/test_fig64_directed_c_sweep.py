"""Figure 6.4 — livejournal: density and passes vs c (delta=2).

Paper's shape: a complex density curve peaking at a *non-skewed* c
(best c = 0.436 in the paper), with pass counts varying across c.
"""

from conftest import show

from repro.analysis.experiments import fig64


def test_fig64_directed_c_sweep(benchmark):
    out = benchmark.pedantic(
        lambda: fig64(scale=0.3, epsilons=(0.0, 1.0), delta=2.0),
        rounds=1,
        iterations=1,
    )
    show(out)
    for eps in ("0", "1"):
        rows = [r for r in out.rows if r[0] == eps]
        assert rows
        best = max(rows, key=lambda r: r[2])
        # Best c is not extreme: within [1/16, 16] (paper: 0.436).
        assert 1 / 16 <= best[1] <= 16, best
        assert all(r[3] >= 1 for r in rows)
    # eps=0 attains at least eps=1's density at the best c (finer peel).
    best0 = max(r[2] for r in out.rows if r[0] == "0")
    best1 = max(r[2] for r in out.rows if r[0] == "1")
    assert best0 >= 0.8 * best1
