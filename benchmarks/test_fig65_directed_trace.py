"""Figure 6.5 — livejournal: |S|, |T|, |E(S,T)| per pass at the best c.

Paper's shape: the simplified Algorithm 3 'alternates' between peeling
S and T, and all three series fall dramatically as passes progress.
"""

from conftest import show

from repro.analysis.experiments import fig65


def test_fig65_directed_trace(benchmark):
    out = benchmark.pedantic(
        lambda: fig65(scale=0.3, epsilon=1.0, delta=2.0), rounds=1, iterations=1
    )
    show(out)
    assert out.rows
    s_sizes = [r[2] for r in out.rows]
    t_sizes = [r[3] for r in out.rows]
    edges = [r[4] for r in out.rows]
    assert s_sizes == sorted(s_sizes, reverse=True)
    assert t_sizes == sorted(t_sizes, reverse=True)
    assert edges == sorted(edges, reverse=True)
    # Both sides get peeled at some point (the 'alternate' nature).
    sides = {r[1] for r in out.rows}
    assert sides == {"S", "T"}
