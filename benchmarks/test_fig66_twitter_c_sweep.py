"""Figure 6.6 — twitter: density and passes vs c (eps=1, delta=2).

Paper's shape: unlike livejournal, the best c is far from 1 (celebrity
skew), and the pass count stays within a narrow 4-7 band across c —
so in practice many values of c can be skipped.
"""

from conftest import show

from repro.analysis.experiments import fig66


def test_fig66_twitter_c_sweep(benchmark):
    out = benchmark.pedantic(
        lambda: fig66(scale=0.3, epsilon=1.0, delta=2.0), rounds=1, iterations=1
    )
    show(out)
    best = max(out.rows, key=lambda r: r[1])
    assert best[0] >= 8 or best[0] <= 1 / 8, "best c should be skewed"
    passes = [r[2] for r in out.rows]
    # Narrow pass band (paper: 4-7).
    assert max(passes) - min(passes) <= 6
    assert max(passes) <= 12
