"""Figure 6.7 — im: simulated MapReduce wall-clock per pass.

Paper's shape: per-pass time falls from its first-pass maximum (the
full edge scan) toward a fixed per-round overhead floor as the graph
shrinks; the whole run stays bounded (paper: under 260 minutes).
"""

from conftest import show

from repro.analysis.experiments import fig67


def test_fig67_mapreduce_time(benchmark):
    out = benchmark.pedantic(
        lambda: fig67(scale=0.12, epsilons=(0.0, 1.0, 2.0)), rounds=1, iterations=1
    )
    show(out)
    for eps in ("0", "1", "2"):
        minutes = [r[2] for r in out.rows if r[0] == eps]
        assert len(minutes) >= 2
        # First pass is the most expensive; the tail approaches the
        # overhead floor.
        assert minutes[0] == max(minutes)
        assert minutes[-1] < minutes[0]
        assert all(m > 0 for m in minutes)
    # More aggressive eps -> fewer passes (same per-pass shape).
    p0 = sum(1 for r in out.rows if r[0] == "0")
    p2 = sum(1 for r in out.rows if r[0] == "2")
    assert p2 <= p0
