"""Section 4.1.1 — pass lower bound on the Lemma 5 gadget.

Paper's claim: the layered-regular construction forces
Omega(log n / log log n) passes, in contrast to the ~constant pass
counts on heavy-tailed social graphs.
"""

from conftest import show

from repro.analysis.experiments import lowerbound_passes
from repro.core.undirected import densest_subgraph
from repro.datasets import load


import math


def test_lowerbound_passes(benchmark):
    ks = (2, 3, 4, 5, 6, 7)
    out = benchmark.pedantic(
        lambda: lowerbound_passes(ks=ks, epsilon=0.5),
        rounds=1,
        iterations=1,
    )
    show(out)
    passes = [r[3] for r in out.rows]
    # Pass counts grow with k — the gadget scales as Theta(k / log k)
    # = Theta(log n / log log n), unlike social graphs whose pass
    # counts stay flat as they grow.
    assert passes == sorted(passes)
    assert passes[-1] > passes[0]
    for k, p in zip(ks, passes):
        prediction = k / math.log2(max(k, 2))
        assert prediction / 2 - 1 <= p <= 2 * prediction + 1, (k, p)
    # Contrast: the flickr stand-in (heavy-tailed) finishes in a small
    # constant number of passes even though it is comparably sized to
    # the larger gadgets.
    social = load("flickr_sim", scale=0.3)
    social_passes = densest_subgraph(social, 0.5).passes
    assert social_passes <= 6
