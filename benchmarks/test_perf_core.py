"""Performance microbenchmarks of the core algorithm implementations.

These are conventional pytest-benchmark timings (multiple rounds) of
the hot paths: Algorithm 1 and 3 per pass, the streaming engine, and
the exact baselines, so regressions in the peeling loops show up as
numbers rather than vibes.
"""

import pytest

from repro.core.directed import densest_subgraph_directed
from repro.core.undirected import densest_subgraph
from repro.core.charikar import greedy_densest_subgraph
from repro.datasets import load
from repro.exact.goldberg import goldberg_densest_subgraph
from repro.exact.lp import lp_density
from repro.streaming.engine import stream_densest_subgraph
from repro.streaming.sketch_engine import sketch_densest_subgraph
from repro.streaming.stream import GraphEdgeStream


@pytest.fixture(scope="module")
def flickr_small():
    return load("flickr_sim", scale=0.25)


@pytest.fixture(scope="module")
def lj_small():
    return load("livejournal_sim", scale=0.2)


@pytest.fixture(scope="module")
def grqc_tiny():
    return load("grqc_sim", scale=0.3)


def test_perf_algorithm1(benchmark, flickr_small):
    result = benchmark(lambda: densest_subgraph(flickr_small, 0.5))
    assert result.density > 0


def test_perf_algorithm1_eps2(benchmark, flickr_small):
    result = benchmark(lambda: densest_subgraph(flickr_small, 2.0))
    assert result.density > 0


def test_perf_greedy_charikar(benchmark, flickr_small):
    result = benchmark(lambda: greedy_densest_subgraph(flickr_small))
    assert result.density > 0


def test_perf_algorithm3(benchmark, lj_small):
    result = benchmark(
        lambda: densest_subgraph_directed(lj_small, ratio=1.0, epsilon=1.0)
    )
    assert result.density > 0


def test_perf_streaming_engine(benchmark, flickr_small):
    def run():
        return stream_densest_subgraph(GraphEdgeStream(flickr_small), 0.5)

    result = benchmark(run)
    assert result.density > 0


def test_perf_sketch_engine(benchmark, flickr_small):
    def run():
        return sketch_densest_subgraph(
            GraphEdgeStream(flickr_small),
            0.5,
            buckets=flickr_small.num_nodes // 10,
            tables=5,
        )

    result = benchmark(run)
    assert result.density > 0


def test_perf_goldberg_exact(benchmark, grqc_tiny):
    _, rho = benchmark(lambda: goldberg_densest_subgraph(grqc_tiny))
    assert rho > 0


def test_perf_lp_exact(benchmark, grqc_tiny):
    rho = benchmark(lambda: lp_density(grqc_tiny))
    assert rho > 0
