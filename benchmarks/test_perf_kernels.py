"""Performance microbenchmarks of the vectorized CSR kernel engine.

Mirrors the peeling cases of ``test_perf_core.py`` on the numpy engine
so pytest-benchmark tables show both engines side by side; the CSR
snapshots are module-scoped fixtures, matching the deployment shape
where one resident snapshot serves many solves (``scripts/
bench_report.py`` writes the machine-readable python-vs-numpy
comparison).
"""

import pytest

from repro.core.atleast_k import densest_subgraph_atleast_k
from repro.core.directed import densest_subgraph_directed, ratio_sweep
from repro.core.undirected import densest_subgraph
from repro.datasets import load
from repro.kernels import CSRDigraph, CSRGraph


@pytest.fixture(scope="module")
def flickr_small():
    return load("flickr_sim", scale=0.25)


@pytest.fixture(scope="module")
def flickr_csr(flickr_small):
    return CSRGraph.from_undirected(flickr_small)


@pytest.fixture(scope="module")
def lj_small():
    return load("livejournal_sim", scale=0.2)


@pytest.fixture(scope="module")
def lj_csr(lj_small):
    return CSRDigraph.from_directed(lj_small)


def test_perf_csr_build(benchmark, flickr_small):
    csr = benchmark(lambda: CSRGraph.from_undirected(flickr_small))
    assert csr.num_edges == flickr_small.num_edges


def test_perf_algorithm1_numpy(benchmark, flickr_csr):
    result = benchmark(lambda: densest_subgraph(flickr_csr, 0.5, engine="numpy"))
    assert result.density > 0


def test_perf_algorithm1_eps2_numpy(benchmark, flickr_csr):
    result = benchmark(lambda: densest_subgraph(flickr_csr, 2.0, engine="numpy"))
    assert result.density > 0


def test_perf_atleast_k_numpy(benchmark, flickr_csr):
    k = max(2, flickr_csr.num_nodes // 10)
    result = benchmark(
        lambda: densest_subgraph_atleast_k(flickr_csr, k, 0.5, engine="numpy")
    )
    assert result.density > 0


def test_perf_algorithm3_numpy(benchmark, lj_csr):
    result = benchmark(
        lambda: densest_subgraph_directed(lj_csr, ratio=1.0, epsilon=1.0, engine="numpy")
    )
    assert result.density > 0


def test_perf_ratio_sweep_numpy(benchmark, lj_csr):
    sweep = benchmark(
        lambda: ratio_sweep(
            lj_csr, 1.0, ratios=[0.25, 0.5, 1.0, 2.0, 4.0], engine="numpy"
        )
    )
    assert sweep.best.density > 0


def test_numpy_engine_matches_python_on_fixture(flickr_small, flickr_csr):
    """Cheap guard: the two engines agree on the benchmark fixture."""
    py = densest_subgraph(flickr_small, 0.5, engine="python")
    np_ = densest_subgraph(flickr_csr, 0.5, engine="numpy")
    assert py.nodes == np_.nodes
    assert py.density == pytest.approx(np_.density)
