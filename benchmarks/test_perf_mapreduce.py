"""Performance microbenchmarks of the columnar MapReduce runtime.

Times the §5.2 peeling drivers on both runtime paths (record-at-a-time
Python tuples vs columnar NumPy batches) on the Figure 6.7 fixtures,
so pytest-benchmark tables show the engines side by side;
``scripts/bench_report.py --suite mapreduce`` writes the
machine-readable comparison with the ≥5x gate.

The record-path cases run one pedantic round — per-record execution is
exactly the overhead this layer exists to avoid, and timing it longer
adds nothing.
"""

import pytest

from repro.datasets import load
from repro.kernels import CSRDigraph, CSRGraph
from repro.mapreduce.densest import (
    mr_densest_subgraph,
    mr_densest_subgraph_directed,
)
from repro.mapreduce.runtime import MapReduceRuntime


@pytest.fixture(scope="module")
def im_small():
    return load("im_sim", scale=0.2)


@pytest.fixture(scope="module")
def im_csr(im_small):
    return CSRGraph.from_undirected(im_small)


@pytest.fixture(scope="module")
def tw_small():
    return load("twitter_sim", scale=0.15)


@pytest.fixture(scope="module")
def tw_csr(tw_small):
    return CSRDigraph.from_directed(tw_small)


def _runtime():
    return MapReduceRuntime(num_mappers=8, num_reducers=8, seed=1)


def test_perf_mr_peel_columnar(benchmark, im_csr):
    report = benchmark(
        lambda: mr_densest_subgraph(im_csr, 1.0, runtime=_runtime(), engine="numpy")
    )
    assert report.result.density > 0


def test_perf_mr_peel_eps0_columnar(benchmark, im_csr):
    report = benchmark(
        lambda: mr_densest_subgraph(im_csr, 0.0, runtime=_runtime(), engine="numpy")
    )
    assert report.result.density > 0


def test_perf_mr_peel_record(benchmark, im_small):
    report = benchmark.pedantic(
        lambda: mr_densest_subgraph(
            im_small, 1.0, runtime=_runtime(), engine="python"
        ),
        rounds=1,
        iterations=1,
    )
    assert report.result.density > 0


def test_perf_mr_directed_columnar(benchmark, tw_csr):
    report = benchmark(
        lambda: mr_densest_subgraph_directed(
            tw_csr, ratio=1.0, epsilon=1.0, runtime=_runtime(), engine="numpy"
        )
    )
    assert report.result.density > 0


def test_perf_mr_directed_record(benchmark, tw_small):
    report = benchmark.pedantic(
        lambda: mr_densest_subgraph_directed(
            tw_small, ratio=1.0, epsilon=1.0, runtime=_runtime(), engine="python"
        ),
        rounds=1,
        iterations=1,
    )
    assert report.result.density > 0


def test_columnar_engine_matches_record_on_fixture(im_small, im_csr):
    """Cheap guard: the two runtime paths agree on the benchmark fixture."""
    record = mr_densest_subgraph(
        im_small, 1.0, runtime=_runtime(), engine="python"
    ).result
    columnar = mr_densest_subgraph(
        im_csr, 1.0, runtime=_runtime(), engine="numpy"
    ).result
    assert record.nodes == columnar.nodes
    assert record.density == pytest.approx(columnar.density)
