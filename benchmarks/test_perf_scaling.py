"""Scaling behaviour of Algorithm 1 — the paper's headline property.

Each pass is one linear scan, and on heavy-tailed graphs the pass count
stays essentially flat as n grows, so total work scales near-linearly
in the edge count.  This bench measures runtime and pass counts across
a geometric size ladder and asserts both trends.
"""

import time

from conftest import show

from repro.analysis.tables import render_table
from repro.core.undirected import densest_subgraph
from repro.graph.generators import chung_lu


def test_perf_scaling(benchmark):
    sizes = (2_000, 8_000, 32_000)

    def run():
        rows = []
        for n in sizes:
            graph = chung_lu(n, exponent=2.3, average_degree=8, seed=1)
            t0 = time.perf_counter()
            result = densest_subgraph(graph, 0.5)
            elapsed = time.perf_counter() - t0
            rows.append(
                [n, graph.num_edges, result.passes, elapsed, elapsed / graph.num_edges * 1e6]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["n", "m", "passes", "seconds", "us / edge"],
            rows,
            title="[scaling] Algorithm 1 across a 16x size ladder (eps=0.5)",
        )
    )
    passes = [r[2] for r in rows]
    per_edge = [r[4] for r in rows]
    # Pass counts stay flat (within +/-2) across a 16x size increase.
    assert max(passes) - min(passes) <= 2
    # Per-edge cost does not blow up with n (near-linear total work):
    # allow 3x drift for allocator/cache effects.
    assert per_edge[-1] <= 3 * per_edge[0]
