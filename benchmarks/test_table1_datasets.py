"""Table 1 — parameters of the evaluation graphs."""

from conftest import show

from repro.analysis.experiments import table1


def test_table1_datasets(benchmark):
    out = benchmark.pedantic(lambda: table1(scale=0.3), rounds=1, iterations=1)
    show(out)
    assert len(out.rows) == 4
    kinds = {row[0]: row[1] for row in out.rows}
    assert kinds["flickr_sim"] == "undirected"
    assert kinds["im_sim"] == "undirected"
    assert kinds["livejournal_sim"] == "directed"
    assert kinds["twitter_sim"] == "directed"
    # im is the largest undirected graph, as in the paper.
    sizes = {row[0]: row[2] for row in out.rows}
    assert sizes["im_sim"] > sizes["flickr_sim"]
