"""Table 2 — empirical approximation factor vs the exact LP optimum.

Paper's shape: every ratio rho*/rho~ lies in [1.0, 1.43] — dramatically
better than the 2(1+eps) guarantee — and even eps = 1 barely hurts.
"""

from conftest import show

from repro.analysis.experiments import table2

EPSILONS = (0.001, 0.1, 1.0)


def test_table2_approximation(benchmark):
    out = benchmark.pedantic(
        lambda: table2(scale=0.35, epsilons=EPSILONS), rounds=1, iterations=1
    )
    show(out)
    assert len(out.rows) == 7
    for row in out.rows:
        rho_star = row[3]
        assert rho_star > 0
        for col, eps in enumerate(EPSILONS, start=4):
            ratio = row[col]
            # Sound: never better than optimal, never past the bound.
            assert 1.0 - 1e-9 <= ratio <= 2 * (1 + eps) + 1e-9
            # Paper's shape: far better than the worst case.
            assert ratio <= 1.6, (row[0], eps, ratio)
