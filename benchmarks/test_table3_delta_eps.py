"""Table 3 — livejournal: best directed density per (delta, eps).

Paper's shape: reasonable deltas (2, 10) lose little density; the very
coarse delta=100 grid hurts most at large eps (paper: 294 -> 180 at
eps=2).  Finer delta never loses to coarser delta at the same eps.
"""

from conftest import show

from repro.analysis.experiments import table3

DELTAS = (2.0, 10.0, 100.0)
EPSILONS = (0.0, 1.0, 2.0)


def test_table3_delta_eps(benchmark):
    out = benchmark.pedantic(
        lambda: table3(scale=0.3, deltas=DELTAS, epsilons=EPSILONS),
        rounds=1,
        iterations=1,
    )
    show(out)
    assert len(out.rows) == len(EPSILONS)
    for row in out.rows:
        densities = row[1:]
        assert all(d > 0 for d in densities)
        # delta=2 is a superset grid of delta=100's useful range: it
        # can only do better (up to ties).
        assert densities[0] >= densities[-1] - 1e-9
