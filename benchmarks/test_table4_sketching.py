"""Table 4 — Count-Sketch quality/memory trade-off on flickr.

Paper's shape: with t=5 and b chosen so the sketch uses 16-25% of the
exact counters' memory, small eps keeps rho_sketch/rho_exact near 1
(occasionally above 1, 'when lucky'), larger eps degrades toward ~0.7;
memory ratio grows with b and stays well below 1.
"""

from conftest import show

from repro.analysis.experiments import table4

EPSILONS = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5)


def test_table4_sketching(benchmark):
    out = benchmark.pedantic(
        lambda: table4(scale=0.35, epsilons=EPSILONS, tables=5, seed=0),
        rounds=1,
        iterations=1,
    )
    show(out)
    *quality_rows, memory_row = out.rows
    assert memory_row[0] == "Memory"
    memories = memory_row[1:]
    assert memories == sorted(memories)
    assert all(m < 0.6 for m in memories)
    # Paper's band is [0.71, 1.05]; at our (much smaller) scale the
    # collision noise is proportionally larger, so the band is wider,
    # but the sketch must never collapse or inflate wildly.
    for row in quality_rows:
        for ratio in row[1:]:
            assert 0.35 <= ratio <= 1.3, row
    # The eps=0 row stays strong (paper: ~1.0 at all b).
    assert min(quality_rows[0][1:]) >= 0.6
    # Averaged over eps, more buckets should not hurt (monotone trend).
    col_means = [
        sum(row[i] for row in quality_rows) / len(quality_rows)
        for i in range(1, len(memory_row))
    ]
    assert col_means[-1] >= col_means[0] - 0.05
