#!/usr/bin/env python3
"""Community mining: enumerate node-disjoint dense communities.

Application (1) in the paper's introduction: dense subgraphs identify
communities in social networks.  We plant three communities of
different strength into a power-law background, then use the paper's
enumeration loop (Section 6 remark) to pull them out one at a time,
scoring each against the ground truth.

Run:  python examples/community_mining.py
"""

import random

from repro import enumerate_dense_subgraphs
from repro.graph.generators import chung_lu


def plant_community(graph, members, p, rng) -> None:
    """Wire up a node subset with edge probability p."""
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            if not graph.has_edge(u, v) and rng.random() < p:
                graph.add_edge(u, v)


def jaccard(a, b) -> float:
    """Set overlap score in [0, 1]."""
    a, b = set(a), set(b)
    return len(a & b) / len(a | b)


def main() -> None:
    rng = random.Random(42)
    graph = chung_lu(4000, exponent=2.5, average_degree=4, seed=1)

    # Densities are well separated (rho ~ p*(|C|-1)/2: about 22, 10, 5)
    # so the enumeration peels them off in order.
    planted = {
        "tight-50": (rng.sample(range(0, 1000), 50), 0.9),
        "medium-40": (rng.sample(range(1000, 2000), 40), 0.5),
        "loose-45": (rng.sample(range(2000, 3000), 45), 0.25),
    }
    for name, (members, p) in planted.items():
        plant_community(graph, members, p, rng)
        rho = graph.density(members)
        print(f"planted {name:<10}: |C|={len(members):<3d} rho(C)={rho:.2f}")
    print(f"background density rho(V) = {graph.density():.2f}")
    print()

    print("enumerating node-disjoint dense subgraphs (eps=0.1) ...")
    found = list(
        enumerate_dense_subgraphs(graph, epsilon=0.1, max_subgraphs=5, min_density=2.0)
    )
    for i, result in enumerate(found, 1):
        best_match = max(
            planted.items(), key=lambda kv: jaccard(result.nodes, kv[1][0])
        )
        name, (members, _) = best_match
        score = jaccard(result.nodes, members)
        print(
            f"  community #{i}: |S|={result.size:<4d} rho={result.density:6.2f} "
            f"passes={result.passes}  best match: {name} (jaccard={score:.2f})"
        )

    # The two strong communities should be recovered with high overlap.
    strong = [planted["tight-50"][0], planted["medium-40"][0]]
    recovered = sum(
        1
        for members in strong
        if any(jaccard(r.nodes, members) > 0.6 for r in found)
    )
    print()
    print(f"strong communities recovered with jaccard > 0.6: {recovered}/2")


if __name__ == "__main__":
    main()
