#!/usr/bin/env python3
"""Algorithm 1 as a MapReduce job chain (§5.2), with per-pass timing.

Runs the paper's degree + two-round-removal pipeline on the im stand-in
through the metered MapReduce simulator — once on the record-at-a-time
runtime path and once on the columnar (NumPy batch) path — then prices
each pass with the cluster cost model: the Figure 6.7 experiment end to
end, plus the real wall-clock of the two engines side by side.

The two engines run the same jobs, produce the same result, and meter
the same record counts per round; the columnar path just moves arrays
where the record path moves Python tuples.

Run:  python examples/mapreduce_at_scale.py
"""

import time

from repro import DensestSubgraph, solve
from repro.analysis.tables import render_table
from repro.datasets import load
from repro.mapreduce.cost import CostModel
from repro.mapreduce.runtime import MapReduceRuntime


def run_engine(graph, engine: str):
    """One metered run on the chosen runtime path, with wall-clock."""
    runtime = MapReduceRuntime(num_mappers=8, num_reducers=8, seed=1)
    start = time.perf_counter()
    solution = solve(
        DensestSubgraph(graph, epsilon=1.0),
        backend="mapreduce",
        runtime=runtime,
        engine=engine,
    )
    elapsed = time.perf_counter() - start
    return solution, elapsed


def main() -> None:
    graph = load("im_sim", scale=0.2)
    print(f"im stand-in: |V|={graph.num_nodes}, |E|={graph.num_edges}")
    print("running Algorithm 1 as MapReduce rounds (eps=1) on both engines ...")
    print()

    record_solution, record_seconds = run_engine(graph, "python")
    columnar_solution, columnar_seconds = run_engine(graph, "numpy")
    assert record_solution.nodes == columnar_solution.nodes

    print(
        render_table(
            ["engine", "runtime path", "wall-clock", "speedup"],
            [
                ["python", "record-at-a-time tuples", f"{record_seconds * 1e3:.1f} ms", ""],
                [
                    "numpy",
                    "columnar array batches",
                    f"{columnar_seconds * 1e3:.1f} ms",
                    f"x{record_seconds / columnar_seconds:.1f}",
                ],
            ],
            title="simulator wall-clock per engine (same jobs, same counters)",
        )
    )
    print()

    report = columnar_solution.details  # the backend's native MapReduceRunReport
    result = report.result

    # Price the run as if on the paper's 2000-mapper Hadoop cluster.
    model = CostModel(
        round_overhead_s=100.0,
        map_cost_s=0.5,
        shuffle_cost_s_per_byte=0.02,
        reduce_cost_s=0.5,
        num_mappers=2000,
        num_reducers=2000,
    )
    times = report.pass_times(model)

    rows = []
    for record, rounds, minutes in zip(
        result.trace, report.rounds_per_pass, times
    ):
        shuffle = sum(c.shuffle_records for c in rounds)
        rows.append(
            [
                record.pass_index,
                record.nodes_before,
                int(record.edges_before),
                record.removed,
                shuffle,
                minutes / 60.0,
            ]
        )
    print(
        render_table(
            ["pass", "|S|", "|E(S)|", "removed", "shuffle records", "sim. minutes"],
            rows,
            title="per-pass MapReduce execution (cf. paper Figure 6.7)",
        )
    )
    print()
    print(f"result: rho={result.density:.3f}, |S|={result.size}, "
          f"{result.passes} passes, {report.total_rounds()} MapReduce rounds")
    print(f"simulated total wall-clock: {report.total_time(model) / 60:.1f} minutes "
          f"(paper: under 260 minutes on the real im graph)")


if __name__ == "__main__":
    main()
