#!/usr/bin/env python3
"""Out-of-core pipeline: shard a big edge set, solve it three ways.

The execution substrate end-to-end (DESIGN.md §8–§9):

1. generate a benchmark graph straight into a sharded on-disk store
   (vectorized arrays — no dict graph is ever built);
2. solve on the store with the semi-streaming backend, whose passes
   walk memmap shard chunks while only O(n) counters stay resident —
   the "graph bigger than RAM" mode — first rescanning every shard
   every pass, then with *pass compaction* (survivors are rewritten
   once the working set shrinks, so later passes scan geometrically
   fewer bytes — identical answer, cheaper scan);
3. solve on the store with ``core-csr`` (per-shard bincount CSR build)
   and with the columnar MapReduce backend on a 4-worker process pool,
   and check all of them agree.

Run:  python examples/out_of_core.py
"""

import tempfile
import time
from pathlib import Path

from repro import DensestSubgraph, ExecutionContext, solve
from repro.datasets.synthetic import write_synthetic_store


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        store = write_synthetic_store(
            "im_sim",
            Path(tmp) / "im-store",
            scale=1.0,
            num_shards=8,
            memory_budget=8 * 1024 * 1024,  # spill every 8 MiB
        )
        print(
            f"sharded store: {store.num_edges} edges over {store.num_shards} "
            f"shards ({store.nbytes() / 1e6:.1f} MB on disk, "
            f"built in {time.perf_counter() - t0:.2f}s)"
        )
        problem = DensestSubgraph(store, epsilon=0.5)

        # ---- out-of-core: O(n) state, passes over memmap chunks -------
        t0 = time.perf_counter()
        streamed = solve(problem, backend="streaming")
        print(f"streaming  : rho={streamed.density:.3f} |S|={streamed.size} "
              f"passes={streamed.cost.stream_passes} "
              f"{streamed.cost.bytes_scanned / 1e6:.0f}MB scanned "
              f"({time.perf_counter() - t0:.2f}s)")

        # ---- same engine + pass compaction: identical answer, the ----
        # ---- surviving edges are rewritten as the peel shrinks    ----
        t0 = time.perf_counter()
        compacted = solve(problem, backend="streaming", compaction=True)
        print(f"+compaction: rho={compacted.density:.3f} |S|={compacted.size} "
              f"passes={compacted.cost.stream_passes} "
              f"{compacted.cost.bytes_scanned / 1e6:.0f}MB scanned "
              f"({time.perf_counter() - t0:.2f}s)")
        assert compacted.nodes == streamed.nodes
        assert compacted.cost.bytes_scanned <= streamed.cost.bytes_scanned

        # ---- in-memory CSR built shard-by-shard (no dict graph) -------
        t0 = time.perf_counter()
        csr = solve(problem, backend="core-csr")
        print(f"core-csr   : rho={csr.density:.3f} |S|={csr.size} "
              f"({time.perf_counter() - t0:.2f}s)")

        # ---- columnar MapReduce on a 4-worker process pool ------------
        t0 = time.perf_counter()
        parallel = solve(
            problem,
            backend="mapreduce",
            engine="numpy",
            context=ExecutionContext(workers=4),
        )
        print(f"mapreduce-4: rho={parallel.density:.3f} |S|={parallel.size} "
              f"rounds={parallel.cost.mapreduce_rounds} "
              f"({time.perf_counter() - t0:.2f}s)")

        assert streamed.nodes == csr.nodes == parallel.nodes
        print("\nall three execution models returned the identical node set")

        # A memory budget steers auto-dispatch to the O(n) engine —
        # and, for shard inputs, auto-enables pass compaction.
        budgeted = solve(problem, memory_budget=4 * store.num_nodes)
        print(f"auto under a {4 * store.num_nodes}-word budget -> "
              f"backend={budgeted.backend!r}, "
              f"{budgeted.cost.bytes_scanned / 1e6:.0f}MB scanned")


if __name__ == "__main__":
    main()
