#!/usr/bin/env python3
"""Quickstart: find the densest subgraph of a graph, three ways.

Builds a small graph with an obvious dense core, then runs

1. Algorithm 1 (the paper's few-pass peeling),
2. Charikar's exact greedy baseline,
3. Goldberg's exact max-flow solver,

and compares answers, densities, and pass counts.

Run:  python examples/quickstart.py
"""

from repro import densest_subgraph, greedy_densest_subgraph
from repro.exact.goldberg import goldberg_densest_subgraph
from repro.graph.generators import clique, disjoint_union, gnm_random, star


def main() -> None:
    # A 12-clique hiding in a sparse random background plus a big star.
    background = gnm_random(400, 900, seed=7)
    graph = disjoint_union([background])
    dense_core = clique(12, offset=1000)
    for u, v, w in dense_core.weighted_edges():
        graph.add_edge(u, v, w)
    hub = star(80, offset=2000)
    for u, v, w in hub.weighted_edges():
        graph.add_edge(u, v, w)

    print(f"graph: |V|={graph.num_nodes}, |E|={graph.num_edges}")
    print(f"average density rho(V) = {graph.density():.3f}")
    print()

    # --- Algorithm 1: the paper's contribution -------------------------
    for epsilon in (0.1, 0.5, 1.0):
        result = densest_subgraph(graph, epsilon)
        print(
            f"Algorithm 1 (eps={epsilon:<4g}): rho={result.density:.3f} "
            f"|S|={result.size:<4d} passes={result.passes} "
            f"(guarantee: >= rho*/{2 * (1 + epsilon):.1f})"
        )

    # --- Baselines ------------------------------------------------------
    greedy = greedy_densest_subgraph(graph)
    print(
        f"Charikar greedy      : rho={greedy.density:.3f} "
        f"|S|={greedy.size:<4d} passes={greedy.passes} (one pass per node!)"
    )
    exact_nodes, rho_star = goldberg_densest_subgraph(graph)
    print(f"Goldberg exact       : rho*={rho_star:.3f} |S*|={len(exact_nodes)}")
    print()

    result = densest_subgraph(graph, 0.5)
    found = set(result.nodes)
    planted = set(range(1000, 1012))
    print(f"planted 12-clique recovered: {planted <= found}")
    print(f"empirical approximation factor: {rho_star / result.density:.3f}")


if __name__ == "__main__":
    main()
