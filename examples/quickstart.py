#!/usr/bin/env python3
"""Quickstart: find the densest subgraph of a graph, three ways.

Builds a small graph with an obvious dense core, then solves the same
``DensestSubgraph`` problem on three backends of ``repro.solve``:

1. ``core`` — Algorithm 1 (the paper's few-pass peeling); the
   ``engine=`` option walks the tier ladder — ``python`` (interpreted
   loops), ``numpy`` (vectorized CSR kernels), ``native`` (incremental
   bucket-queue peeler, compiled via numba or a ctypes-loaded C
   library when a toolchain is present, pure-numpy bucket queue
   otherwise) — all bit-identical answers, each tier just faster;
   ``engine="auto"`` picks by input size and ``repro-densest densest
   --engine native`` is the CLI spelling (``repro-densest backends
   --verbose`` shows which compiled backend is live),
2. ``greedy`` — Charikar's one-node-per-step greedy baseline,
3. ``exact-flow`` — Goldberg's exact max-flow solver,

and compares answers, densities, and pass counts.

Robustness (see DESIGN.md §12): long streaming peels survive crashes
— pass ``--checkpoint-dir DIR --checkpoint-every N`` to
``repro-densest densest`` (or set ``checkpoint_dir`` /
``checkpoint_every`` on ``ExecutionContext``) and a re-run resumes
from the last checkpoint with a bit-identical result; ``repro-densest
verify-store PATH [--repair]`` checks a sharded edge store's
per-shard checksums and quarantines damaged shards; ``--deadline S``
bounds a solve (CLI and serve) with a typed timeout instead of a
hang.

Distributed shuffle & fused rounds (see DESIGN.md §13): the mapreduce
backend on a process pool can spill its shuffle to disk — pass
``--workers N --shuffle-dir DIR`` to ``repro-densest densest`` (or
set ``workers`` / ``shuffle_dir`` on ``ExecutionContext``) and map
tasks write hash-partitioned run files that reduce tasks memmap, so
intermediate data never routes through the driver; ``--mr-fused``
(``solve(..., fused=True)``) fuses each peeling pass into a single
broadcast-parameter degree round, shuffling a fraction of the bytes —
both knobs return bit-identical results to the serial run.

Run:  python examples/quickstart.py
"""

from repro import DensestSubgraph, solve
from repro.graph.generators import clique, disjoint_union, gnm_random, star


def main() -> None:
    # A 12-clique hiding in a sparse random background plus a big star.
    background = gnm_random(400, 900, seed=7)
    graph = disjoint_union([background])
    dense_core = clique(12, offset=1000)
    for u, v, w in dense_core.weighted_edges():
        graph.add_edge(u, v, w)
    hub = star(80, offset=2000)
    for u, v, w in hub.weighted_edges():
        graph.add_edge(u, v, w)

    print(f"graph: |V|={graph.num_nodes}, |E|={graph.num_edges}")
    print(f"average density rho(V) = {graph.density():.3f}")
    print()

    # --- Algorithm 1: the paper's contribution -------------------------
    for epsilon in (0.1, 0.5, 1.0):
        result = solve(DensestSubgraph(graph, epsilon=epsilon), backend="core")
        print(
            f"Algorithm 1 (eps={epsilon:<4g}): rho={result.density:.3f} "
            f"|S|={result.size:<4d} passes={result.cost.passes} "
            f"(guarantee: >= rho*/{2 * (1 + epsilon):.1f})"
        )

    # Same peel on every execution engine: identical answer, each tier
    # just runs it faster (see DESIGN.md §6 and §11).  "native" is the
    # incremental bucket-queue peeler; it uses a compiled backend
    # (numba or C) when one is available and falls back to the
    # pure-numpy bucket queue otherwise — the answer never changes.
    py = solve(DensestSubgraph(graph, epsilon=0.5), backend="core", engine="python")
    vec = solve(DensestSubgraph(graph, epsilon=0.5), backend="core", engine="numpy")
    nat = solve(DensestSubgraph(graph, epsilon=0.5), backend="core", engine="native")
    from repro.kernels.native import available_backend

    print(
        f"engine parity        : python == numpy == native is "
        f"{py.nodes == vec.nodes == nat.nodes} (rho={nat.density:.3f}, "
        f"compiled backend: {available_backend() or 'none, bucketq fallback'})"
    )

    # --- Baselines ------------------------------------------------------
    greedy = solve(DensestSubgraph(graph), backend="greedy")
    print(
        f"Charikar greedy      : rho={greedy.density:.3f} "
        f"|S|={greedy.size:<4d} passes={greedy.cost.passes} (one pass per node!)"
    )
    exact = solve(DensestSubgraph(graph), backend="exact-flow")
    print(f"Goldberg exact       : rho*={exact.density:.3f} |S*|={exact.size}")
    print()

    result = solve(DensestSubgraph(graph, epsilon=0.5))  # backend="auto" -> core
    found = set(result.nodes)
    planted = set(range(1000, 1012))
    print(f"planted 12-clique recovered: {planted <= found}")
    print(f"empirical approximation factor: {result.approximation_ratio(exact.density):.3f}")


if __name__ == "__main__":
    main()
