#!/usr/bin/env python3
"""2-hop reachability labeling built on the densest subgraph primitive.

Application (4) in the paper's introduction: 2-hop label construction
(Cohen et al., SODA 2002) repeatedly extracts dense bipartite subgraphs
of the uncovered transitive closure — and its authors specifically
preferred Charikar's practical approximation over exact algorithms,
which is the primitive this library provides.

Builds a 2-hop index for a random DAG, verifies it against BFS, and
compares the index size to materializing the closure.

Run:  python examples/reachability_indexing.py
"""

import random
import time
from collections import deque

from repro.applications import build_two_hop_index, transitive_closure_pairs
from repro.graph.generators import random_dag


def bfs_reaches(graph, u, v) -> bool:
    """Ground truth for the verification step."""
    if u == v:
        return True
    seen = {u}
    queue = deque([u])
    while queue:
        x = queue.popleft()
        for y in graph.successors(x):
            if y == v:
                return True
            if y not in seen:
                seen.add(y)
                queue.append(y)
    return False


def main() -> None:
    dag = random_dag(120, 0.06, seed=11)
    closure = transitive_closure_pairs(dag)
    print(f"DAG: |V|={dag.num_nodes}, |E|={dag.num_edges}")
    print(f"transitive closure: {len(closure)} reachable pairs")
    print()

    t0 = time.time()
    index = build_two_hop_index(dag)
    build_time = time.time() - t0
    print(f"2-hop index built in {build_time:.1f}s, {index.rounds} greedy rounds")
    print(f"  total labels      : {index.label_size()} "
          f"(vs {len(closure)} closure pairs = "
          f"{index.label_size() / len(closure):.2f}x)")
    print(f"  avg labels / node : {index.average_label_size():.2f}")
    print()

    # Exhaustive verification against BFS.
    rng = random.Random(0)
    mismatches = 0
    checked = 0
    nodes = list(dag.nodes())
    for u in nodes:
        for v in nodes:
            checked += 1
            if index.reaches(u, v) != bfs_reaches(dag, u, v):
                mismatches += 1
    print(f"verified {checked} queries against BFS: {mismatches} mismatches")

    # Query timing comparison on a sample.
    sample = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(2000)]
    t0 = time.time()
    for u, v in sample:
        index.reaches(u, v)
    label_time = time.time() - t0
    t0 = time.time()
    for u, v in sample:
        bfs_reaches(dag, u, v)
    bfs_time = time.time() - t0
    print(
        f"2000 queries: 2-hop {label_time * 1e3:.1f} ms vs BFS "
        f"{bfs_time * 1e3:.1f} ms ({bfs_time / max(label_time, 1e-9):.0f}x faster)"
    )


if __name__ == "__main__":
    main()
