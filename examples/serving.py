#!/usr/bin/env python3
"""Densest-subgraph-as-a-service: solve over HTTP, hit the catalog.

Starts the serving stack (DESIGN.md §10) in-process on a free port,
registers a synthetic dataset, solves the same problem twice — the
first request runs the solver, the second is answered from the SQLite
result catalog — and shows the latency gap plus the byte-for-byte
payload guarantee.  The same flow works against a standalone server
started with ``repro-densest serve``.

Also demonstrated: the overload posture (DESIGN.md §14).  A second
server runs with a tight per-client rate limit; the well-behaved
client below honors the 429's ``Retry-After`` header with jittered
backoff instead of hammering the queue.

Run:  python examples/serving.py
"""

import json
import random
import tempfile
import threading
import time
import urllib.error
import urllib.request

from repro.serve import build_server


def request(base, method, path, body=None, headers=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(req, timeout=120) as resp:
        return json.loads(resp.read())


def request_with_backoff(base, method, path, body=None, headers=None,
                         max_tries=6, rng=random.Random(0)):
    """``request``, but honor 429 ``Retry-After`` with jittered backoff.

    The server derives ``Retry-After`` from live queue depth, so
    sleeping it (plus jitter, to decorrelate a retrying herd) is the
    cooperative response to a shed.  Anything else re-raises.
    """
    for attempt in range(max_tries):
        try:
            return request(base, method, path, body, headers)
        except urllib.error.HTTPError as exc:
            if exc.code != 429 or attempt == max_tries - 1:
                raise
            retry_after = float(exc.headers.get("Retry-After", 1))
            sleep = retry_after * (1 + 0.25 * rng.random())
            print(f"    429 shed; honoring Retry-After={retry_after:.0f}s "
                  f"(sleeping {sleep:.2f}s)")
            time.sleep(min(sleep, 5.0))  # cap for demo purposes
    raise RuntimeError("unreachable")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        server = build_server(
            port=0, catalog_path=f"{tmp}/catalog.sqlite", workers=2
        )
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        print(f"serving on {base}\n")

        try:
            # 1. Register a dataset (a synthetic registry graph here;
            #    production inputs register a shard-store directory).
            record = request(base, "POST", "/datasets", {
                "name": "flickr", "dataset": "flickr_sim", "scale": 0.05,
            })["dataset"]
            print(f"registered {record['name']}: "
                  f"{record['num_nodes']} nodes, {record['num_edges']} edges")
            print(f"  fingerprint {record['fingerprint'][:16]}...\n")

            # 2. Cold solve: a catalog miss runs the solver pool.
            body = {
                "dataset": "flickr",
                "problem": {"kind": "densest_subgraph", "epsilon": 0.1},
                "wait": 120,
            }
            t0 = time.perf_counter()
            cold = request(base, "POST", "/solve", body)
            cold_ms = (time.perf_counter() - t0) * 1e3
            print(f"cold solve : {cold_ms:8.1f} ms   cached={cold['cached']}"
                  f"   density={cold['density']:.3f}   |S|={cold['size']}"
                  f"   backend={cold['solved_backend']}")

            # 3. Warm solve: same problem (different spelling, even) is
            #    answered from the catalog with the cold solve's bytes.
            body["problem"] = {"epsilon": 0.1, "kind": "densest_subgraph"}
            t0 = time.perf_counter()
            warm = request(base, "POST", "/solve", body)
            warm_ms = (time.perf_counter() - t0) * 1e3
            identical = json.dumps(cold["solution"], sort_keys=True) == \
                json.dumps(warm["solution"], sort_keys=True)
            print(f"warm solve : {warm_ms:8.1f} ms   cached={warm['cached']}"
                  f"   byte-identical payload={identical}")
            print(f"speedup    : {cold_ms / warm_ms:8.1f}x\n")

            # 4. The catalog keeps score.
            stats = request(base, "GET", "/stats")
            print(f"stats: hits={stats['hits']} misses={stats['misses']} "
                  f"hit_ratio={stats['hit_ratio']:.2f} "
                  f"solves_by_backend={stats['solves_by_backend']}\n")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

        # 5. Overload posture: a rate-limited server sheds the second
        #    cold request from the same client with 429 + Retry-After;
        #    the client backs off and succeeds on retry.
        overloaded = build_server(
            port=0, catalog_path=f"{tmp}/catalog2.sqlite", workers=2,
            client_rate=0.5, client_burst=1, retry_after_base=0.5,
        )
        host, port = overloaded.server_address[:2]
        base = f"http://{host}:{port}"
        thread = threading.Thread(target=overloaded.serve_forever, daemon=True)
        thread.start()
        print(f"overload demo on {base} (client_rate=0.5/s, burst=1)")
        try:
            request(base, "POST", "/datasets", {
                "name": "flickr", "dataset": "flickr_sim", "scale": 0.05,
            })
            ident = {"X-Client-Id": "demo-client"}
            for eps in (0.2, 0.3):
                got = request_with_backoff(base, "POST", "/solve", {
                    "dataset": "flickr",
                    "problem": {"kind": "densest_subgraph", "epsilon": eps},
                    "wait": 120,
                }, headers=ident)
                print(f"  eps={eps}: density={got['density']:.3f} "
                      f"(cached={got['cached']})")
            stats = request(base, "GET", "/stats")
            print(f"  sheds absorbed by backoff: {stats['shed']}")
        finally:
            overloaded.shutdown()
            overloaded.server_close()
            thread.join(timeout=10)


if __name__ == "__main__":
    main()
