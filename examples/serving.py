#!/usr/bin/env python3
"""Densest-subgraph-as-a-service: solve over HTTP, hit the catalog.

Starts the serving stack (DESIGN.md §10) in-process on a free port,
registers a synthetic dataset, solves the same problem twice — the
first request runs the solver, the second is answered from the SQLite
result catalog — and shows the latency gap plus the byte-for-byte
payload guarantee.  The same flow works against a standalone server
started with ``repro-densest serve``.

Run:  python examples/serving.py
"""

import json
import tempfile
import threading
import time
import urllib.request

from repro.serve import build_server


def request(base, method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=120) as resp:
        return json.loads(resp.read())


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        server = build_server(
            port=0, catalog_path=f"{tmp}/catalog.sqlite", workers=2
        )
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        print(f"serving on {base}\n")

        try:
            # 1. Register a dataset (a synthetic registry graph here;
            #    production inputs register a shard-store directory).
            record = request(base, "POST", "/datasets", {
                "name": "flickr", "dataset": "flickr_sim", "scale": 0.05,
            })["dataset"]
            print(f"registered {record['name']}: "
                  f"{record['num_nodes']} nodes, {record['num_edges']} edges")
            print(f"  fingerprint {record['fingerprint'][:16]}...\n")

            # 2. Cold solve: a catalog miss runs the solver pool.
            body = {
                "dataset": "flickr",
                "problem": {"kind": "densest_subgraph", "epsilon": 0.1},
                "wait": 120,
            }
            t0 = time.perf_counter()
            cold = request(base, "POST", "/solve", body)
            cold_ms = (time.perf_counter() - t0) * 1e3
            print(f"cold solve : {cold_ms:8.1f} ms   cached={cold['cached']}"
                  f"   density={cold['density']:.3f}   |S|={cold['size']}"
                  f"   backend={cold['solved_backend']}")

            # 3. Warm solve: same problem (different spelling, even) is
            #    answered from the catalog with the cold solve's bytes.
            body["problem"] = {"epsilon": 0.1, "kind": "densest_subgraph"}
            t0 = time.perf_counter()
            warm = request(base, "POST", "/solve", body)
            warm_ms = (time.perf_counter() - t0) * 1e3
            identical = json.dumps(cold["solution"], sort_keys=True) == \
                json.dumps(warm["solution"], sort_keys=True)
            print(f"warm solve : {warm_ms:8.1f} ms   cached={warm['cached']}"
                  f"   byte-identical payload={identical}")
            print(f"speedup    : {cold_ms / warm_ms:8.1f}x\n")

            # 4. The catalog keeps score.
            stats = request(base, "GET", "/stats")
            print(f"stats: hits={stats['hits']} misses={stats['misses']} "
                  f"hit_ratio={stats['hit_ratio']:.2f} "
                  f"solves_by_backend={stats['solves_by_backend']}")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


if __name__ == "__main__":
    main()
