#!/usr/bin/env python3
"""Link-spam detection on a directed web-style graph.

Application (3) in the paper's introduction (after Gibson et al.):
link farms — sets of pages that all link to a few boosted target pages —
show up as unusually dense directed subgraphs.  We build a web-like
follower graph, inject a link farm, and locate it with Algorithm 3's
ratio sweep.  The best ratio c = |S|/|T| being far from 1 is itself the
spam signature (many shills, few boosted pages).

Run:  python examples/spam_detection.py
"""

import random

from repro import DirectedDensest, solve
from repro.graph.generators import directed_power_law


def main() -> None:
    rng = random.Random(7)
    web = directed_power_law(
        5000, 30_000, in_exponent=2.6, out_exponent=2.7, seed=3
    )

    # Inject the farm: 250 shill pages all linking to 5 boosted targets
    # (plus a little cross-linking among shills for camouflage).  The
    # farm's density 250*5/sqrt(250*5) = sqrt(1250) ~ 35 beats any
    # organic hub's sqrt(in-degree).
    shills = rng.sample(range(5000), 250)
    targets = rng.sample([v for v in range(5000) if v not in set(shills)], 5)
    for u in shills:
        for v in targets:
            if not web.has_edge(u, v):
                web.add_edge(u, v)
    for _ in range(200):
        u, v = rng.sample(shills, 2)
        if not web.has_edge(u, v):
            web.add_edge(u, v)

    print(f"web graph: |V|={web.num_nodes}, |E|={web.num_edges}")
    print(f"injected farm: {len(shills)} shills -> {len(targets)} targets")
    print()

    print("running Algorithm 3 ratio sweep (eps=1, delta=2) ...")
    sweep = solve(DirectedDensest(web, epsilon=1.0, delta=2.0)).details
    best = sweep.best
    print(f"  best c      : {best.ratio:g}   (skewed => farm-like)")
    print(f"  rho(S, T)   : {best.density:.2f}")
    print(f"  |S|, |T|    : {best.s_size}, {best.t_size}")
    print(f"  passes      : {best.passes} (sweep total {sweep.total_passes()})")
    print()

    target_hits = len(set(targets) & set(best.t_nodes))
    shill_hits = len(set(shills) & set(best.s_nodes))
    print(f"boosted targets caught in T: {target_hits}/{len(targets)}")
    print(f"shill pages caught in S    : {shill_hits}/{len(shills)}")

    flagged = best.ratio >= 8 or best.ratio <= 1 / 8
    print(f"spam signature (best c far from 1): {flagged}")


if __name__ == "__main__":
    main()
