#!/usr/bin/env python3
"""True semi-streaming from disk, with pass and memory accounting.

Demonstrates the execution model the paper is designed for: the edge
list lives in a file, the algorithm re-reads it once per pass keeping
only O(n) state, and the Count-Sketch variant (§5.1) shrinks even that.

Run:  python examples/streaming_from_disk.py
"""

import tempfile
from pathlib import Path

from repro import DensestSubgraph, solve
from repro.datasets import load
from repro.graph.io import write_undirected
from repro.streaming.memory import MemoryAccountant
from repro.streaming.stream import FileEdgeStream


def main() -> None:
    graph = load("flickr_sim", scale=0.4)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "flickr_sim.txt"
        write_undirected(graph, path, header="flickr stand-in, see DESIGN.md")
        size_mb = path.stat().st_size / 1e6
        print(f"edge list on disk: {path.name} ({size_mb:.1f} MB, "
              f"{graph.num_edges} edges, {graph.num_nodes} nodes)")
        print()

        # ---- exact degree counters (n words) --------------------------
        exact_acc = MemoryAccountant()
        stream = FileEdgeStream(path, nodes=graph.nodes())
        # A stream input auto-dispatches to the semi-streaming backend.
        result = solve(DensestSubgraph(stream, epsilon=0.5), accountant=exact_acc)
        print(f"exact streaming engine (backend={result.backend!r}):")
        print(f"  rho        : {result.density:.3f}  (|S|={result.size})")
        print(f"  passes     : {result.cost.stream_passes} full scans of the file")
        print(f"  edges read : {result.cost.edges_streamed}")
        print(f"  state      : {exact_acc.summary()}")
        print()

        # ---- Count-Sketch counters (t*b words, §5.1) -------------------
        # t*b = 5*(n/25) = n/5: the paper's ~20%-of-exact-memory regime.
        buckets = graph.num_nodes // 25
        sketch_acc = MemoryAccountant()
        stream = FileEdgeStream(path, nodes=graph.nodes())
        sketched = solve(
            DensestSubgraph(stream, epsilon=0.5),
            backend="sketch",
            buckets=buckets,
            tables=5,
            accountant=sketch_acc,
        )
        print(f"sketched engine (t=5, b={buckets}):")
        print(f"  rho        : {sketched.density:.3f}")
        print(f"  quality    : {sketched.density / result.density:.3f} of exact")
        print(f"  state      : {sketch_acc.summary()}")
        print(
            f"  memory     : {sketch_acc.ratio_to(exact_acc):.2%} of the exact "
            f"engine's footprint (paper's Table 4 regime)"
        )


if __name__ == "__main__":
    main()
