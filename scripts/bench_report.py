#!/usr/bin/env python3
"""Benchmark trajectory harness: python vs numpy execution engines.

Three suites, selected with ``--suite``:

* ``core`` (default) times the same peeling workloads as
  ``benchmarks/test_perf_core.py`` (the flickr_sim / livejournal_sim
  fixtures at their benchmark scales) on both core execution engines
  and writes ``BENCH_core.json``.
* ``mapreduce`` times the §5.2 MapReduce drivers on the Figure 6.7
  peeling fixtures (im_sim undirected, twitter_sim directed) on the
  record-at-a-time vs columnar runtime paths and writes
  ``BENCH_mapreduce.json``.
* ``exec`` times the execution substrate and writes ``BENCH_exec.json``:
  the columnar MapReduce runtime serial vs on a warm 4-worker process
  pool (Fig 6.7-scale im_sim fixture, array-native) with both shuffle
  transports — driver-shuffle (intermediate partitions pickle through
  the driver) and file-shuffle (map tasks spill run files, reducers
  memmap them) — plus the fused peel (``mr_fused_peel``: one
  broadcast-parameter round per pass; the driver asserts it shuffles
  ≤ 0.6x the classic bytes and returns identical results), a
  driver-RSS probe comparing the two shuffle transports in fresh
  child processes, and an out-of-core probe — a subprocess solving a
  sharded store with the semi-streaming backend while its peak RSS is
  compared against the store's edge-array size.  ``--min-speedup``
  gates the ``mr_fused_peel`` file-shuffle row.  The report records
  ``cpu_count``; on a single-core box the process rows measure pure
  executor overhead (no parallel speedup is physically possible
  there).
* ``streaming`` times pass compaction and writes ``BENCH_stream.json``:
  the semi-streaming engine over a large synthetic sharded store (a
  nested-core deep-peel graph, ≈18M edges at full scale), full-rescan
  vs compacted, at eps ∈ {0.1, 0.5}.  Each run executes in a fresh subprocess so its
  peak RSS is its own; rows record wall time, bytes/edges scanned,
  stream passes, and peak RSS vs store size.  Compacted rows carry
  ``speedup`` (wall) and ``bytes_ratio`` (full bytes / compacted
  bytes); ``--min-bytes-ratio`` gates on the latter, ``--min-speedup``
  on the former.  The driver asserts the two runs returned identical
  densities and set sizes — a corrupted rewrite fails the bench, not
  just the gate.  Interpretation caveat: on a machine whose page cache
  holds the whole store (any box with RAM >> store), the full-rescan
  baseline never touches disk after pass 1, so the wall ratio
  understates the out-of-core gap — it converges to the CPU-side scan
  ratio (~1.7x here) while ``bytes_ratio`` (3–5x) is the
  hardware-independent measure and what the wall ratio approaches when
  rescans are genuinely disk-bound.  Gate CI on bytes, not wall.
* ``kernels`` times the kernel tier ladder and writes
  ``BENCH_kernels.json``: numpy vs bucketq vs native (numba/C) peels on
  the BENCH_core fixtures and on the ≈18M-edge nested-core store
  (CSR-loaded; wall-clock, not a bytes proxy), plus one threaded
  shard-scan pass (4 threads vs sequential, bit-exact counters).  The
  driver asserts cross-tier result parity before recording any row;
  ``--min-speedup`` gates the native rows on the core fixtures.
* ``faults`` prices the robustness machinery and writes
  ``BENCH_faults.json``: semi-streaming peels over a nested-core
  sharded store, clean vs checkpointed at ``--checkpoint-every 16``
  (the default interval), plus a crash-at-pass-p + resume run.  The
  driver asserts the checkpointed and resumed runs return results
  *identical* to the clean run (nodes, density, passes) and gates
  in-driver on checkpoint overhead <= 10% wall at interval 16; the
  injected fault plan's log is written to ``BENCH_faults_plan.json``
  for artifact upload.
* ``serve`` load-tests the HTTP serving layer end to end and writes
  ``BENCH_serve.json``: an in-process server over the ≈18M-edge
  nested-core store, cold ``POST /solve`` misses vs concurrent warm
  catalog hits (p50/p99/QPS), asserting every warm payload is
  byte-identical to its cold counterpart.  ``--min-speedup`` gates
  the warm-hit p50 speedup over the cold p50.
* ``chaos`` soaks the serving layer under overload *and* injected
  faults (DESIGN.md §14) and writes ``BENCH_chaos.json`` (fault log:
  ``BENCH_chaos_plan.json``): four concurrent clients — warm hammering
  one key, cold distinct keys (some with unaffordable deadlines),
  oversized requests, and a cancel loop — against a server armed with
  solver delays, a catalog-corruption streak (which must trip the
  circuit breaker), and a SIGKILLed MapReduce worker.  In-driver
  gates: goodput positive, p99 time-to-answer of admitted requests
  bounded, every shed carries ``Retry-After``, every degraded/stale
  answer is labeled, and every *unlabeled* 200 is byte-identical to a
  clean offline solve of the same problem.

Both reports are machine-readable so successive PRs can track the
trajectory of the hot paths instead of eyeballing pytest-benchmark
tables.

Methodology
-----------
* ``engine=python`` rows time the full reference run from the
  dict-of-dict graph — the compact-adjacency build is part of that
  engine and is paid on every solve.
* ``engine=numpy`` rows time the run from a resident
  :class:`~repro.kernels.csr.CSRGraph`/``CSRDigraph`` snapshot — the
  deployment shape of the vectorized engines (the snapshot is built
  once per dataset and reused across solves/sweeps; the CLI's
  ``--edge-list`` path even builds it without a dict detour).  The
  snapshot build itself is reported as separate ``csr_build_*`` rows
  so the amortized cost stays visible.
* ``speedup`` on a numpy row is python-median / numpy-median of the
  same bench.

Run::

    PYTHONPATH=src python scripts/bench_report.py            # full scales
    PYTHONPATH=src python scripts/bench_report.py --quick    # CI smoke
    PYTHONPATH=src python scripts/bench_report.py --min-speedup 5
    PYTHONPATH=src python scripts/bench_report.py --suite mapreduce --min-speedup 5
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path


def _median_seconds(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _bench_pair(records, name, fixture, py_fn, np_fn, repeats):
    py = _median_seconds(py_fn, repeats)
    np_ = _median_seconds(np_fn, repeats)
    records.append(
        {"bench": name, "fixture": fixture, "engine": "python", "median_seconds": py}
    )
    records.append(
        {
            "bench": name,
            "fixture": fixture,
            "engine": "numpy",
            "median_seconds": np_,
            "speedup": py / np_ if np_ > 0 else None,
        }
    )
    print(f"{name:28s} python {py * 1e3:9.3f} ms   numpy {np_ * 1e3:9.3f} ms   "
          f"x{py / np_:6.2f}")


def _bench_single(records, name, fixture, fn, repeats):
    seconds = _median_seconds(fn, repeats)
    records.append(
        {
            "bench": name,
            "fixture": fixture,
            "engine": "numpy",
            "median_seconds": seconds,
        }
    )
    print(f"{name:28s} {'':7s}{'':13s}   numpy {seconds * 1e3:9.3f} ms")


def run_benches(scale_factor: float, repeats: int):
    """Time every bench pair; returns the record list."""
    from repro.core.atleast_k import densest_subgraph_atleast_k
    from repro.core.directed import densest_subgraph_directed, ratio_sweep
    from repro.core.undirected import densest_subgraph
    from repro.datasets import load
    from repro.kernels import CSRDigraph, CSRGraph
    from repro.streaming import engine as streaming_engine
    from repro.streaming.stream import GraphEdgeStream

    records: list = []

    # Same fixtures/scales as benchmarks/test_perf_core.py, optionally
    # reduced for the CI smoke run.
    flickr = load("flickr_sim", scale=0.25 * scale_factor)
    lj = load("livejournal_sim", scale=0.2 * scale_factor)
    flickr_name = f"flickr_sim@{0.25 * scale_factor:g}"
    lj_name = f"livejournal_sim@{0.2 * scale_factor:g}"

    _bench_single(
        records,
        "csr_build_undirected",
        flickr_name,
        lambda: CSRGraph.from_undirected(flickr),
        repeats,
    )
    _bench_single(
        records,
        "csr_build_directed",
        lj_name,
        lambda: CSRDigraph.from_directed(lj),
        repeats,
    )

    flickr_csr = CSRGraph.from_undirected(flickr)
    lj_csr = CSRDigraph.from_directed(lj)

    _bench_pair(
        records,
        "undirected_peel_eps05",
        flickr_name,
        lambda: densest_subgraph(flickr, 0.5, engine="python"),
        lambda: densest_subgraph(flickr_csr, 0.5, engine="numpy"),
        repeats,
    )
    _bench_pair(
        records,
        "undirected_peel_eps2",
        flickr_name,
        lambda: densest_subgraph(flickr, 2.0, engine="python"),
        lambda: densest_subgraph(flickr_csr, 2.0, engine="numpy"),
        repeats,
    )
    k = max(2, flickr.num_nodes // 10)
    _bench_pair(
        records,
        "atleastk_peel",
        flickr_name,
        lambda: densest_subgraph_atleast_k(flickr, k, 0.5, engine="python"),
        lambda: densest_subgraph_atleast_k(flickr_csr, k, 0.5, engine="numpy"),
        repeats,
    )
    _bench_pair(
        records,
        "directed_peel",
        lj_name,
        lambda: densest_subgraph_directed(lj, ratio=1.0, epsilon=1.0, engine="python"),
        lambda: densest_subgraph_directed(
            lj_csr, ratio=1.0, epsilon=1.0, engine="numpy"
        ),
        repeats,
    )
    sweep_ratios = [0.25, 0.5, 1.0, 2.0, 4.0]
    _bench_pair(
        records,
        "directed_c_sweep",
        lj_name,
        lambda: ratio_sweep(lj, 1.0, ratios=sweep_ratios, engine="python"),
        lambda: ratio_sweep(lj_csr, 1.0, ratios=sweep_ratios, engine="numpy"),
        repeats,
    )

    # Streaming engine: same function, scan kernel on vs off (the
    # vectorized chunked-bincount scan engages automatically for
    # int-labeled streams; FORCE_PYTHON_SCAN is the supported toggle).
    def stream_python():
        streaming_engine.FORCE_PYTHON_SCAN = True
        try:
            streaming_engine.stream_densest_subgraph(GraphEdgeStream(flickr), 0.5)
        finally:
            streaming_engine.FORCE_PYTHON_SCAN = False

    _bench_pair(
        records,
        "streaming_pass_scan",
        flickr_name,
        stream_python,
        lambda: streaming_engine.stream_densest_subgraph(GraphEdgeStream(flickr), 0.5),
        repeats,
    )
    return records


def run_mapreduce_benches(scale_factor: float, repeats: int):
    """Time the MapReduce drivers, record vs columnar runtime path."""
    from repro.datasets import load
    from repro.kernels import CSRDigraph, CSRGraph
    from repro.mapreduce.densest import (
        mr_densest_subgraph,
        mr_densest_subgraph_directed,
    )
    from repro.mapreduce.runtime import MapReduceRuntime

    records: list = []

    # The Figure 6.7 fixture (im_sim) plus the directed Figure 6.6
    # fixture (twitter_sim), at reduced scales: the record path pays
    # per-record Python on every round, so full-scale runs would take
    # minutes per repeat.
    im = load("im_sim", scale=0.2 * scale_factor)
    tw = load("twitter_sim", scale=0.15 * scale_factor)
    im_name = f"im_sim@{0.2 * scale_factor:g}"
    tw_name = f"twitter_sim@{0.15 * scale_factor:g}"

    _bench_single(
        records,
        "csr_build_undirected",
        im_name,
        lambda: CSRGraph.from_undirected(im),
        repeats,
    )
    _bench_single(
        records,
        "csr_build_directed",
        tw_name,
        lambda: CSRDigraph.from_directed(tw),
        repeats,
    )

    im_csr = CSRGraph.from_undirected(im)
    tw_csr = CSRDigraph.from_directed(tw)

    def _runtime():
        return MapReduceRuntime(num_mappers=8, num_reducers=8, seed=1)

    for eps, bench in ((0.0, "mr_peel_eps0"), (1.0, "mr_peel_eps1")):
        _bench_pair(
            records,
            bench,
            im_name,
            lambda eps=eps: mr_densest_subgraph(
                im, eps, runtime=_runtime(), engine="python"
            ),
            lambda eps=eps: mr_densest_subgraph(
                im_csr, eps, runtime=_runtime(), engine="numpy"
            ),
            repeats,
        )
    _bench_pair(
        records,
        "mr_directed_peel",
        tw_name,
        lambda: mr_densest_subgraph_directed(
            tw, ratio=1.0, epsilon=1.0, runtime=_runtime(), engine="python"
        ),
        lambda: mr_densest_subgraph_directed(
            tw_csr, ratio=1.0, epsilon=1.0, runtime=_runtime(), engine="numpy"
        ),
        repeats,
    )
    return records


def _vm_peak_bytes() -> int:
    """Peak resident set of this process, in bytes (Linux VmHWM)."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _oocore_child(store_path: str, epsilon: float) -> dict:
    """Out-of-core probe body, run in a fresh worker process.

    Imports numpy/repro (that baseline is part of the honest peak),
    then solves the store with the semi-streaming engine; only the
    O(n) counters plus one memmap shard chunk should ever be resident.
    """
    from repro.streaming.engine import stream_densest_subgraph
    from repro.streaming.stream import ShardEdgeStream

    baseline = _vm_peak_bytes()
    stream = ShardEdgeStream(store_path)
    result = stream_densest_subgraph(stream, epsilon)
    return {
        "baseline_rss_bytes": baseline,
        "peak_rss_bytes": _vm_peak_bytes(),
        "density": result.density,
        "passes": result.passes,
    }


def _exec_driver_rss_child(scale: float, shuffle: bool) -> dict:
    """Driver-RSS probe body, run in a fresh worker process.

    Runs one fused process-pool peel with either shuffle transport and
    reports this (driver) process's peak RSS: with the driver shuffle,
    every round's intermediate partitions pickle through here; with the
    file shuffle only run manifests do, so the driver's high-water mark
    stops tracking the shuffle volume.
    """
    import multiprocessing
    import os
    import tempfile
    from concurrent.futures import ProcessPoolExecutor

    from repro.datasets.synthetic import synthetic_edge_arrays
    from repro.kernels import CSRGraph
    from repro.mapreduce.densest import mr_densest_subgraph
    from repro.mapreduce.runtime import MapReduceRuntime

    src, dst, n, _ = synthetic_edge_arrays("im_sim", scale=scale)
    csr = CSRGraph.from_edge_arrays(src, dst, num_nodes=n)
    del src, dst
    baseline = _vm_peak_bytes()
    with tempfile.TemporaryDirectory() as tmp, ProcessPoolExecutor(
        max_workers=2, mp_context=multiprocessing.get_context("spawn")
    ) as pool:
        runtime = MapReduceRuntime(
            num_mappers=8, num_reducers=8, seed=1,
            executor="process", pool=pool,
            shuffle_dir=tmp if shuffle else None,
        )
        report = mr_densest_subgraph(csr, 0.5, runtime=runtime, engine="numpy")
    return {
        "baseline_rss_bytes": baseline,
        "peak_rss_bytes": _vm_peak_bytes(),
        "shuffle_bytes": sum(
            c.shuffle_bytes for rounds in report.rounds_per_pass for c in rounds
        ),
    }


def run_exec_benches(scale_factor: float, repeats: int):
    """Time the execution substrate: process pool + shuffle + out-of-core."""
    import multiprocessing
    import os
    import tempfile
    from concurrent.futures import ProcessPoolExecutor

    from repro.datasets.synthetic import synthetic_edge_arrays, write_synthetic_store
    from repro.kernels import CSRGraph
    from repro.mapreduce.densest import mr_densest_subgraph
    from repro.mapreduce.runtime import MapReduceRuntime
    from repro.store import ShardedEdgeStore

    records: list = []
    workers = 4

    # Fig 6.7 fixture, array-native, scaled up so each columnar round
    # carries enough work for the pool to amortize its IPC.
    scale = 4.0 * scale_factor
    src, dst, n, _ = synthetic_edge_arrays("im_sim", scale=scale)
    csr = CSRGraph.from_edge_arrays(src, dst, num_nodes=n)
    fixture = f"im_sim_arrays@{scale:g}"
    print(f"fixture {fixture}: n={n}, m={src.size}, cpu_count={os.cpu_count()}")

    def _total_shuffle_bytes(report):
        return sum(
            c.shuffle_bytes for rounds in report.rounds_per_pass for c in rounds
        )

    def _assert_same(ref, got, label):
        assert got.result.nodes == ref.result.nodes, label
        assert got.result.density == ref.result.density, label
        assert got.result.trace == ref.result.trace, label

    with tempfile.TemporaryDirectory() as shuffle_root, ProcessPoolExecutor(
        max_workers=workers, mp_context=multiprocessing.get_context("spawn")
    ) as pool:
        # Warm the pool (spawn + first imports) outside the timings.
        pool.submit(_vm_peak_bytes).result()

        def peel(executor="serial", shuffle=False, fused=False):
            kwargs = {}
            if executor == "process":
                kwargs = {"executor": "process", "pool": pool}
                if shuffle:
                    kwargs["shuffle_dir"] = shuffle_root
            runtime = MapReduceRuntime(
                num_mappers=8, num_reducers=8, seed=1, **kwargs
            )
            return mr_densest_subgraph(
                csr, 0.5, runtime=runtime, engine="numpy", fused=fused
            )

        # Parity gates first: every transport and the fused pipeline
        # must return the serial classic run's exact answer before any
        # timing row is recorded.
        ref = peel()
        _assert_same(ref, peel("process"), "driver-shuffle")
        _assert_same(ref, peel("process", shuffle=True), "file-shuffle")
        fused_ref = peel(fused=True)
        _assert_same(ref, fused_ref, "fused-serial")
        _assert_same(ref, peel("process", shuffle=True, fused=True),
                     "fused-file-shuffle")
        classic_bytes = _total_shuffle_bytes(ref)
        fused_bytes = _total_shuffle_bytes(fused_ref)
        bytes_ratio = fused_bytes / classic_bytes if classic_bytes else None
        assert bytes_ratio is not None and bytes_ratio <= 0.6, (
            f"fused peel shuffled {bytes_ratio:.2f}x the classic bytes "
            f"(must be <= 0.6x)"
        )

        serial_s = _median_seconds(lambda: peel(), repeats)
        process_s = _median_seconds(lambda: peel("process"), repeats)
        file_s = _median_seconds(
            lambda: peel("process", shuffle=True), repeats
        )
        fused_serial_s = _median_seconds(lambda: peel(fused=True), repeats)
        fused_file_s = _median_seconds(
            lambda: peel("process", shuffle=True, fused=True), repeats
        )

    records.append(
        {
            "bench": "mr_columnar_peel",
            "fixture": fixture,
            "engine": "serial",
            "median_seconds": serial_s,
        }
    )
    records.append(
        {
            "bench": "mr_columnar_peel",
            "fixture": fixture,
            "engine": f"process-{workers}w-driver-shuffle",
            "median_seconds": process_s,
            "speedup": serial_s / process_s if process_s > 0 else None,
        }
    )
    records.append(
        {
            "bench": "mr_columnar_peel",
            "fixture": fixture,
            "engine": f"process-{workers}w-file-shuffle",
            "median_seconds": file_s,
            "speedup": serial_s / file_s if file_s > 0 else None,
        }
    )
    records.append(
        {
            "bench": "mr_fused_peel",
            "fixture": fixture,
            "engine": "serial",
            "median_seconds": fused_serial_s,
            "shuffle_bytes": fused_bytes,
            "classic_shuffle_bytes": classic_bytes,
            "bytes_ratio": bytes_ratio,
            "speedup_vs_classic_serial": (
                serial_s / fused_serial_s if fused_serial_s > 0 else None
            ),
        }
    )
    records.append(
        {
            "bench": "mr_fused_peel",
            "fixture": fixture,
            "engine": f"process-{workers}w-file-shuffle",
            "median_seconds": fused_file_s,
            "speedup": fused_serial_s / fused_file_s if fused_file_s > 0 else None,
        }
    )
    print(f"{'mr_columnar_peel':28s} serial {serial_s * 1e3:9.3f} ms   "
          f"driver-shuffle {process_s * 1e3:9.3f} ms (x{serial_s / process_s:5.2f})   "
          f"file-shuffle {file_s * 1e3:9.3f} ms (x{serial_s / file_s:5.2f})")
    print(f"{'mr_fused_peel':28s} serial {fused_serial_s * 1e3:9.3f} ms   "
          f"file-shuffle {fused_file_s * 1e3:9.3f} ms "
          f"(x{fused_serial_s / fused_file_s:5.2f})   "
          f"bytes x{bytes_ratio:.2f} of classic")

    # Driver-RSS probe: the same fused process peel in fresh children,
    # one per shuffle transport — with the file shuffle the driver's
    # high-water mark must stop tracking the shuffle volume (reported,
    # not gated: at quick scales the fixture dominates both peaks).
    for shuffle, engine in ((False, "driver-shuffle"), (True, "file-shuffle")):
        with ProcessPoolExecutor(
            max_workers=1, mp_context=multiprocessing.get_context("spawn")
        ) as probe_pool:
            probe = probe_pool.submit(
                _exec_driver_rss_child, scale, shuffle
            ).result()
        records.append(
            {
                "bench": "mr_driver_rss",
                "fixture": fixture,
                "engine": engine,
                "baseline_rss_bytes": probe["baseline_rss_bytes"],
                "peak_rss_bytes": probe["peak_rss_bytes"],
                "shuffle_bytes": probe["shuffle_bytes"],
            }
        )
        print(f"{'mr_driver_rss':28s} {engine:16s} "
              f"baseline {probe['baseline_rss_bytes'] / 1e6:8.1f} MB   "
              f"peak {probe['peak_rss_bytes'] / 1e6:8.1f} MB   "
              f"shuffled {probe['shuffle_bytes'] / 1e6:8.1f} MB")

    # Out-of-core probe: a store larger than the solving process's peak
    # RSS (at full scale), solved by a fresh child so the measured
    # high-water mark belongs to that one run.
    oo_n = int(1_000_000 * scale_factor)
    oo_deg = 40.0
    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "oocore")
        from repro.datasets.synthetic import chung_lu_edge_arrays

        osrc, odst = chung_lu_edge_arrays(
            oo_n, exponent=2.2, average_degree=oo_deg, seed=42
        )
        store = ShardedEdgeStore.write(
            store_path, (osrc, odst), directed=False,
            num_shards=16, num_nodes=oo_n,
        )
        del osrc, odst
        store_bytes = store.nbytes()
        with ProcessPoolExecutor(
            max_workers=1, mp_context=multiprocessing.get_context("spawn")
        ) as pool:
            t0 = time.perf_counter()
            probe = pool.submit(_oocore_child, store_path, 1.0).result()
            elapsed = time.perf_counter() - t0
    bounded = probe["peak_rss_bytes"] < store_bytes
    records.append(
        {
            "bench": "oocore_stream_peel",
            "fixture": f"chung_lu_arrays@n={oo_n}",
            "engine": "streaming-shards",
            "median_seconds": elapsed,
            "store_bytes": store_bytes,
            "edges": store.num_edges,
            "baseline_rss_bytes": probe["baseline_rss_bytes"],
            "peak_rss_bytes": probe["peak_rss_bytes"],
            "rss_below_store": bounded,
            "passes": probe["passes"],
        }
    )
    print(f"{'oocore_stream_peel':28s} store {store_bytes / 1e6:8.1f} MB   "
          f"peak RSS {probe['peak_rss_bytes'] / 1e6:8.1f} MB   "
          f"bounded={bounded}   {elapsed:6.1f}s  passes={probe['passes']}")
    return records


def _stream_bench_child(store_path: str, epsilon: float, compaction: bool,
                        spill_dir) -> dict:
    """One semi-streaming solve in a fresh process (honest peak RSS)."""
    import time as _time

    from repro.streaming.compaction import CompactionPolicy
    from repro.streaming.engine import stream_densest_subgraph
    from repro.streaming.stream import ShardEdgeStream

    baseline = _vm_peak_bytes()
    stream = ShardEdgeStream(store_path)
    policy = None
    if compaction:
        policy = CompactionPolicy(spill_dir=spill_dir)
    t0 = _time.perf_counter()
    result = stream_densest_subgraph(stream, epsilon, compaction=policy)
    elapsed = _time.perf_counter() - t0
    return {
        "elapsed": elapsed,
        "baseline_rss_bytes": baseline,
        "peak_rss_bytes": _vm_peak_bytes(),
        "bytes_scanned": stream.bytes_scanned,
        "edges_streamed": stream.edges_streamed,
        "stream_passes": stream.passes_made,
        "density": result.density,
        "size": len(result.nodes),
        "passes": result.passes,
    }


def run_streaming_benches(scale_factor: float, repeats: int):
    """Full-rescan vs pass-compacted semi-streaming runs on one store.

    Each configuration runs in a fresh spawn-context process, repeated
    up to 3 times (median wall time; the scan byte/edge accounting is
    deterministic and identical across repeats, so only the clock
    needs the repeats).
    """
    import multiprocessing
    import os
    import tempfile
    from concurrent.futures import ProcessPoolExecutor

    from repro.datasets.synthetic import nested_core_edge_arrays
    from repro.store import ShardedEdgeStore

    records: list = []
    oo_n = int(1_000_000 * scale_factor)
    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "stream-store")
        spill_dir = os.path.join(tmp, "spill")
        os.makedirs(spill_dir)
        # The nested-core onion is the deep-peel regime (≈18M edges at
        # full scale, O(log n) passes): exactly the workload where
        # rescanning every shard per pass is pathological.  Shallow
        # peels (power-law fixtures collapse in ~5 passes) bound the
        # possible saving at the two unavoidable full scans; the bench
        # measures the regime the compaction layer exists for.
        src, dst = nested_core_edge_arrays(oo_n, degree=18.0, shrink=0.5, seed=42)
        store = ShardedEdgeStore.write(
            store_path, (src, dst), directed=False, num_shards=16, num_nodes=oo_n
        )
        del src, dst
        store_bytes = store.nbytes()
        fixture = f"nested_core_arrays@n={oo_n}"
        print(f"fixture {fixture}: m={store.num_edges}, "
              f"store {store_bytes / 1e6:.1f} MB")
        reps = max(1, min(repeats, 3))
        for epsilon in (0.1, 0.5):
            bench = f"stream_peel_eps{epsilon:g}"
            rows = {}
            for compaction in (False, True):
                probes = []
                for _ in range(reps):
                    with ProcessPoolExecutor(
                        max_workers=1,
                        mp_context=multiprocessing.get_context("spawn"),
                    ) as pool:
                        probes.append(
                            pool.submit(
                                _stream_bench_child, store_path, epsilon,
                                compaction, spill_dir,
                            ).result()
                        )
                probe = dict(probes[0])
                probe["elapsed"] = statistics.median(p["elapsed"] for p in probes)
                probe["peak_rss_bytes"] = max(p["peak_rss_bytes"] for p in probes)
                rows[compaction] = probe
            full, comp = rows[False], rows[True]
            # Compaction must be invisible outside the accounting.
            assert comp["density"] == full["density"], (bench, comp, full)
            assert comp["size"] == full["size"], bench
            assert comp["passes"] == full["passes"], bench
            for engine, probe in (("full-rescan", full), ("compacted", comp)):
                record = {
                    "bench": bench,
                    "fixture": fixture,
                    "engine": engine,
                    "median_seconds": probe["elapsed"],
                    "store_bytes": store_bytes,
                    "bytes_scanned": probe["bytes_scanned"],
                    "edges_streamed": probe["edges_streamed"],
                    "stream_passes": probe["stream_passes"],
                    "peak_rss_bytes": probe["peak_rss_bytes"],
                    "rss_below_store": probe["peak_rss_bytes"] < store_bytes,
                    "passes": probe["passes"],
                }
                if engine == "compacted":
                    record["speedup"] = (
                        full["elapsed"] / probe["elapsed"]
                        if probe["elapsed"] > 0
                        else None
                    )
                    record["bytes_ratio"] = (
                        full["bytes_scanned"] / probe["bytes_scanned"]
                        if probe["bytes_scanned"] > 0
                        else None
                    )
                records.append(record)
            print(
                f"{bench:28s} full {full['elapsed']:7.2f}s "
                f"({full['bytes_scanned'] / 1e6:8.1f} MB)   "
                f"compacted {comp['elapsed']:7.2f}s "
                f"({comp['bytes_scanned'] / 1e6:8.1f} MB)   "
                f"x{full['elapsed'] / comp['elapsed']:5.2f} wall  "
                f"x{full['bytes_scanned'] / comp['bytes_scanned']:5.2f} bytes  "
                f"RSS {comp['peak_rss_bytes'] / 1e6:.0f} MB"
            )
    return records


def _faults_bench_child(store_path: str, k: int, epsilon: float, ckpt_dir,
                        every: int, fault_pass, plan_log) -> dict:
    """One semi-streaming solve in a fresh process, optionally
    checkpointed and optionally crashed at ``fault_pass``."""
    import time as _time

    from repro.errors import InjectedFaultError
    from repro.faults import FaultPlan, RunControl
    from repro.streaming.checkpoint import CheckpointConfig
    from repro.streaming.engine import stream_densest_subgraph_atleast_k
    from repro.streaming.stream import ShardEdgeStream

    stream = ShardEdgeStream(store_path)
    checkpoint = CheckpointConfig(ckpt_dir, every=every) if ckpt_dir else None
    control = None
    plan = None
    if fault_pass is not None:
        plan = FaultPlan.raise_at_pass(fault_pass)
        control = RunControl(fault_plan=plan)
    t0 = _time.perf_counter()
    try:
        result = stream_densest_subgraph_atleast_k(
            stream, k, epsilon, checkpoint=checkpoint, control=control
        )
    except InjectedFaultError:
        if plan is not None and plan_log:
            plan.save_log(plan_log)
        return {
            "elapsed": _time.perf_counter() - t0,
            "crashed": True,
            "fault_pass": fault_pass,
        }
    return {
        "elapsed": _time.perf_counter() - t0,
        "crashed": False,
        "density": result.density,
        "size": len(result.nodes),
        "passes": result.passes,
    }


def run_faults_benches(scale_factor: float, repeats: int):
    """Price of robustness: clean vs checkpointed vs crash+resume peels.

    All three configurations solve the same nested-core sharded store
    with the semi-streaming at-least-k engine (the slow-shrink deep
    peel: a hundred-plus passes, so the interval-16 checkpoint cadence
    actually fires many times) in fresh spawn-context processes.  The
    checkpointed run uses the default interval (16 passes); the
    crash run is killed by an injected fault two thirds of the way
    through the peel and then resumed from its checkpoint.  The driver
    asserts both robust configurations return results identical to the
    clean run, and gates in-driver on checkpointed wall-clock overhead
    <= 10% (+0.25 s absolute slack for quick-scale fixtures, where the
    whole run is fractions of a second and the ratio is noise).
    """
    import multiprocessing
    import os
    import shutil
    import tempfile
    from concurrent.futures import ProcessPoolExecutor

    from repro.datasets.synthetic import nested_core_edge_arrays
    from repro.store import ShardedEdgeStore

    epsilon = 0.05
    every = 16
    records: list = []
    oo_n = int(400_000 * scale_factor)
    k = max(oo_n // 400, 25)
    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "faults-store")
        src, dst = nested_core_edge_arrays(oo_n, degree=18.0, shrink=0.5, seed=42)
        store = ShardedEdgeStore.write(
            store_path, (src, dst), directed=False, num_shards=16, num_nodes=oo_n
        )
        del src, dst
        fixture = f"nested_core_arrays@n={oo_n}"
        print(f"fixture {fixture}: m={store.num_edges}, "
              f"store {store.nbytes() / 1e6:.1f} MB")

        def run_one(ckpt_dir, fault_pass=None, plan_log=None, cold=False):
            if cold and ckpt_dir and os.path.isdir(ckpt_dir):
                shutil.rmtree(ckpt_dir)  # overhead probes start cold
            with ProcessPoolExecutor(
                max_workers=1,
                mp_context=multiprocessing.get_context("spawn"),
            ) as pool:
                return pool.submit(
                    _faults_bench_child, store_path, k, epsilon,
                    ckpt_dir, every, fault_pass, plan_log,
                ).result()

        def probe(ckpt_dir, fault_pass=None, plan_log=None, reps=1,
                  cold=False):
            runs = [
                run_one(ckpt_dir, fault_pass, plan_log, cold)
                for _ in range(reps)
            ]
            out = dict(runs[0])
            out["elapsed"] = min(r["elapsed"] for r in runs)
            return out

        # Interleave the clean/checkpointed reps and take the best of
        # each: the overhead being priced is ~1% against wall-clock
        # jitter that can exceed 10% between back-to-back runs, so
        # min-of-N on alternating runs (which spreads machine-load
        # drift across both configurations) is the estimator that
        # makes a 10% gate tenable.
        reps = max(1, min(repeats, 3))
        ckpt_dir = os.path.join(tmp, "ck-overhead")
        clean_runs, ckpt_runs = [], []
        for _ in range(reps):
            clean_runs.append(run_one(None))
            ckpt_runs.append(run_one(ckpt_dir, cold=True))
        clean = dict(clean_runs[0])
        clean["elapsed"] = min(r["elapsed"] for r in clean_runs)
        ckpt = dict(ckpt_runs[0])
        ckpt["elapsed"] = min(r["elapsed"] for r in ckpt_runs)
        # The overhead gate is only honest if the interval actually
        # fires: the deep peel must make several checkpoint windows.
        assert clean["passes"] > 3 * every, (
            f"fixture peels in {clean['passes']} passes; too shallow to "
            f"price an every-{every} checkpoint cadence"
        )

        # Robustness must be invisible in the answer.
        for name, robust in (("checkpointed", ckpt),):
            assert robust["density"] == clean["density"], (name, robust, clean)
            assert robust["size"] == clean["size"], name
            assert robust["passes"] == clean["passes"], name
        overhead = ckpt["elapsed"] / clean["elapsed"] - 1.0
        assert ckpt["elapsed"] <= clean["elapsed"] * 1.10 + 0.25, (
            f"checkpoint overhead {overhead:+.1%} at interval {every} "
            f"exceeds the 10% gate ({ckpt['elapsed']:.2f}s vs "
            f"{clean['elapsed']:.2f}s clean)"
        )

        # Crash two thirds of the way through, then resume.
        fault_pass = max((clean["passes"] * 2) // 3, 2)
        resume_dir = os.path.join(tmp, "ck-resume")
        plan_log = os.path.abspath("BENCH_faults_plan.json")
        crashed = probe(resume_dir, fault_pass=fault_pass, plan_log=plan_log)
        assert crashed["crashed"], crashed
        resumed = probe(resume_dir)
        assert not resumed["crashed"]
        assert resumed["density"] == clean["density"], (resumed, clean)
        assert resumed["size"] == clean["size"]
        assert resumed["passes"] == clean["passes"]
        # A resume that redid the whole peel would be a silent restart:
        # it must skip the ~2/3 of passes done before the crash.
        assert resumed["elapsed"] <= clean["elapsed"] * 0.9 + 0.25, (
            f"resume took {resumed['elapsed']:.2f}s vs {clean['elapsed']:.2f}s "
            f"clean -- checkpoint was not actually used"
        )

        base = {
            "fixture": fixture,
            "k": k,
            "epsilon": epsilon,
            "checkpoint_every": every,
            "passes": clean["passes"],
        }
        records.append({
            "bench": f"ckpt_peel_eps{epsilon:g}", "engine": "clean",
            "median_seconds": clean["elapsed"], **base,
        })
        records.append({
            "bench": f"ckpt_peel_eps{epsilon:g}", "engine": "checkpointed",
            "median_seconds": ckpt["elapsed"], "overhead": overhead,
            "identical_to_clean": True, **base,
        })
        records.append({
            "bench": f"crash_resume_eps{epsilon:g}", "engine": "resumed",
            "median_seconds": crashed["elapsed"] + resumed["elapsed"],
            "seconds_to_fault": crashed["elapsed"],
            "seconds_resume": resumed["elapsed"],
            "fault_pass": fault_pass, "identical_to_clean": True,
            "fault_plan_log": plan_log, **base,
        })
        print(
            f"ckpt_peel_eps{epsilon:g}            clean {clean['elapsed']:6.2f}s   "
            f"checkpointed {ckpt['elapsed']:6.2f}s  ({overhead:+.1%})"
        )
        print(
            f"crash_resume_eps{epsilon:g}    fault@pass {fault_pass}: "
            f"{crashed['elapsed']:6.2f}s + resume {resumed['elapsed']:6.2f}s "
            f"-> identical result over {clean['passes']} passes"
        )
    return records


def run_kernels_benches(scale_factor: float, repeats: int):
    """Kernel tier ladder: numpy vs bucketq vs native peels.

    Three regimes, all on the BENCH_core peel fixtures (flickr_sim /
    livejournal_sim CSR snapshots) plus the big shard store:

    * **Shallow peels** (the BENCH_core configs: eps 0.5–2.0, 3–6
      passes): reported for context, not gated.  At a handful of
      passes the numpy engine's per-pass O(m) rescan only runs a few
      times, so the native tier's structural advantage barely shows;
      measured headroom on these fixtures tops out around 4–5x.
    * **Deep peels** (eps 0.02–0.05 at-least-k, 48–160+ passes — the
      paper's high-accuracy regime, where small epsilon buys a tight
      approximation at the cost of many passes): the numpy engine
      rescans all m edges every pass while the bucket queue does O(m)
      total work, so the gap widens with pass count.  These are the
      rows ``--min-speedup`` gates (target ≥5x).
    * The ≈18M-edge nested-core shard store: loaded once through
      ``CSRGraph.from_shards``, then peeled by the numpy and native
      tiers — a wall-clock comparison on a real out-of-core-sized
      input; the driver asserts the native tier wins wall-clock
      (>1x) outright.  Plus one ``stream_scan_threads`` row timing a
      threaded shard-scan pass (4 threads vs sequential) with
      bit-exact degree/weight asserts; its speedup is reported but
      not gated — on a single-core box (see ``cpu_count`` in the
      report) no thread win is physically possible.

    Every tier-bench row (shallow and deep) first asserts identical
    node sets, pass counts, and densities across all importable tiers.
    ``speedup`` (numpy-median / native-median) appears on native rows
    only — that is what ``--min-speedup`` gates — bucketq rows carry
    an informational ``speedup_vs_numpy``.
    """
    import os
    import tempfile

    from repro.core.atleast_k import densest_subgraph_atleast_k
    from repro.core.directed import densest_subgraph_directed
    from repro.core.undirected import densest_subgraph
    from repro.datasets import load
    from repro.datasets.synthetic import nested_core_edge_arrays
    from repro.kernels import CSRDigraph, CSRGraph, native_backend
    from repro.store import ShardedEdgeStore

    records: list = []
    backend = native_backend()
    tiers = ["bucketq"] + (["native"] if backend is not None else [])
    print(f"kernel tiers: numpy, {', '.join(tiers)} "
          f"(native backend: {backend or 'none'})")

    flickr = load("flickr_sim", scale=0.25 * scale_factor)
    lj = load("livejournal_sim", scale=0.2 * scale_factor)
    flickr_csr = CSRGraph.from_undirected(flickr)
    lj_csr = CSRDigraph.from_directed(lj)
    lj_und_csr = CSRGraph.from_undirected(lj.to_undirected())
    flickr_name = f"flickr_sim@{0.25 * scale_factor:g}"
    lj_name = f"livejournal_sim@{0.2 * scale_factor:g}"
    lj_und_name = lj_name + "-und"
    k = max(2, flickr.num_nodes // 10)
    lj_k = max(2, lj_und_csr.num_nodes // 20)

    def assert_same(ref, out, bench):
        if hasattr(ref, "s_nodes"):
            assert ref.s_nodes == out.s_nodes and ref.t_nodes == out.t_nodes, bench
        else:
            assert ref.nodes == out.nodes, bench
        assert ref.passes == out.passes, bench
        assert abs(ref.density - out.density) < 1e-9, bench

    def tier_bench(name, fixture, solve_fn):
        results = {tier: solve_fn(tier) for tier in ["numpy"] + tiers}
        for tier in tiers:
            assert_same(results["numpy"], results[tier], name)
        medians = {
            tier: _median_seconds(lambda t=tier: solve_fn(t), repeats)
            for tier in ["numpy"] + tiers
        }
        records.append(
            {
                "bench": name,
                "fixture": fixture,
                "engine": "numpy",
                "median_seconds": medians["numpy"],
            }
        )
        parts = [f"numpy {medians['numpy'] * 1e3:9.3f} ms"]
        for tier in tiers:
            row = {
                "bench": name,
                "fixture": fixture,
                "engine": tier,
                "median_seconds": medians[tier],
            }
            ratio = (
                medians["numpy"] / medians[tier] if medians[tier] > 0 else None
            )
            if tier == "native":
                row["speedup"] = ratio
            else:
                row["speedup_vs_numpy"] = ratio
            records.append(row)
            parts.append(f"{tier} {medians[tier] * 1e3:9.3f} ms x{ratio:5.2f}")
        print(f"{name:28s} " + "   ".join(parts))

    tier_bench(
        "undirected_peel_eps05",
        flickr_name,
        lambda tier: densest_subgraph(flickr_csr, 0.5, engine=tier),
    )
    tier_bench(
        "undirected_peel_eps2",
        flickr_name,
        lambda tier: densest_subgraph(flickr_csr, 2.0, engine=tier),
    )
    tier_bench(
        "atleastk_peel",
        flickr_name,
        lambda tier: densest_subgraph_atleast_k(flickr_csr, k, 0.5, engine=tier),
    )
    tier_bench(
        "directed_peel",
        lj_name,
        lambda tier: densest_subgraph_directed(
            lj_csr, ratio=1.0, epsilon=1.0, engine=tier
        ),
    )
    # Deep peels: the gated ≥5x rows (many passes; see docstring).
    tier_bench(
        "atleastk_deep_flickr",
        flickr_name,
        lambda tier: densest_subgraph_atleast_k(
            flickr_csr, k, 0.05, engine=tier
        ),
    )
    tier_bench(
        "atleastk_deep_livejournal",
        lj_und_name,
        lambda tier: densest_subgraph_atleast_k(
            lj_und_csr, lj_k, 0.02, engine=tier
        ),
    )

    # Deep-peel regime: the ≈18M-edge nested-core store (same fixture
    # as the streaming/serve suites), CSR-loaded, numpy vs native.
    oo_n = int(1_000_000 * scale_factor)
    reps = max(1, min(repeats, 3))
    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "kernels-store")
        src, dst = nested_core_edge_arrays(oo_n, degree=18.0, shrink=0.5, seed=42)
        store = ShardedEdgeStore.write(
            store_path, (src, dst), directed=False, num_shards=16, num_nodes=oo_n
        )
        del src, dst
        fixture = f"nested_core_store@n={oo_n}"
        print(f"fixture {fixture}: m={store.num_edges}, "
              f"store {store.nbytes() / 1e6:.1f} MB")
        big_csr = CSRGraph.from_shards(store)
        big_engines = ["numpy"] + (["native"] if backend is not None else [])
        big_results = {
            tier: densest_subgraph(big_csr, 0.5, engine=tier)
            for tier in big_engines
        }
        for tier in big_engines[1:]:
            assert_same(big_results["numpy"], big_results[tier], "oocore_csr_peel")
        big_medians = {
            tier: _median_seconds(
                lambda t=tier: densest_subgraph(big_csr, 0.5, engine=t), reps
            )
            for tier in big_engines
        }
        del big_csr
        records.append(
            {
                "bench": "oocore_csr_peel",
                "fixture": fixture,
                "engine": "numpy",
                "median_seconds": big_medians["numpy"],
                "edges": store.num_edges,
                "passes": big_results["numpy"].passes,
            }
        )
        line = f"{'oocore_csr_peel':28s} numpy {big_medians['numpy']:7.2f}s"
        if "native" in big_medians:
            ratio = (
                big_medians["numpy"] / big_medians["native"]
                if big_medians["native"] > 0
                else None
            )
            assert ratio is not None and ratio > 1.0, (
                f"native tier must win wall-clock on the big store "
                f"(got x{ratio})"
            )
            records.append(
                {
                    "bench": "oocore_csr_peel",
                    "fixture": fixture,
                    "engine": "native",
                    "median_seconds": big_medians["native"],
                    "edges": store.num_edges,
                    "passes": big_results["native"].passes,
                    "speedup": ratio,
                }
            )
            line += f"   native {big_medians['native']:7.2f}s   x{ratio:5.2f}"
        print(line)

        # One full shard-scan pass, sequential vs 4 worker threads —
        # the threaded path must produce bit-identical counters.
        import numpy as _np

        from repro.streaming.engine import _IntStreamScanner
        from repro.streaming.stream import ShardEdgeStream

        alive = _np.ones(store.num_nodes, dtype=bool)
        threads = 4

        def scan(thread_count):
            scanner = _IntStreamScanner.build(
                range(store.num_nodes), threads=thread_count
            )
            return scanner.scan_undirected(ShardEdgeStream(store), alive)

        deg_seq, w_seq = scan(1)
        deg_par, w_par = scan(threads)
        assert w_seq == w_par, "threaded scan diverged on total weight"
        assert _np.array_equal(deg_seq, deg_par), "threaded scan diverged"
        seq_s = _median_seconds(lambda: scan(1), reps)
        par_s = _median_seconds(lambda: scan(threads), reps)
        records.append(
            {
                "bench": "stream_scan_threads",
                "fixture": fixture,
                "engine": f"threads-{threads}",
                "median_seconds": par_s,
                "sequential_seconds": seq_s,
                "speedup": seq_s / par_s if par_s > 0 else None,
                "edges": store.num_edges,
            }
        )
        print(f"{'stream_scan_threads':28s} seq {seq_s:7.2f}s   "
              f"threads-{threads} {par_s:7.2f}s   x{seq_s / par_s:5.2f} "
              f"(cpu_count={os.cpu_count()})")
    return records


def run_serve_benches(scale_factor: float, repeats: int):
    """Load-test the HTTP serving layer: cold solves vs warm catalog hits.

    End-to-end over real sockets: build a large sharded store (the
    ≈18M-edge nested-core fixture at full scale), start an in-process
    server on a free port, register the store over HTTP, then time

    * ``serve_cold_solve`` — ``POST /solve`` misses (one per distinct
      epsilon; a key can only be cold once), solver pool end to end;
    * ``serve_warm_hit`` — concurrent clients re-requesting the same
      key, answered from the SQLite catalog.  The row records p50/p99
      latency and throughput, and ``speedup`` = cold p50 / warm p50
      (what ``--min-speedup`` gates on).

    The driver asserts every warm payload is byte-for-byte identical to
    its cold counterpart — a catalog that answers fast but differently
    fails the bench, not just the gate.
    """
    import json as _json
    import os
    import tempfile
    import threading
    import urllib.request
    from concurrent.futures import ThreadPoolExecutor

    from repro.datasets.synthetic import nested_core_edge_arrays
    from repro.serve import build_server
    from repro.store import ShardedEdgeStore

    records: list = []
    oo_n = int(1_000_000 * scale_factor)
    warm_clients = 4
    warm_requests = 200

    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "serve-store")
        src, dst = nested_core_edge_arrays(oo_n, degree=18.0, shrink=0.5, seed=42)
        store = ShardedEdgeStore.write(
            store_path, (src, dst), directed=False, num_shards=16, num_nodes=oo_n
        )
        del src, dst
        fixture = f"nested_core_store@n={oo_n}"
        print(f"fixture {fixture}: m={store.num_edges}, "
              f"store {store.nbytes() / 1e6:.1f} MB")

        server = build_server(
            port=0,
            catalog_path=os.path.join(tmp, "catalog.sqlite"),
            workers=2,
            spill_dir=os.path.join(tmp, "spill"),
        )
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://{host}:{port}"

        def request(method, path, body=None, timeout=600):
            data = _json.dumps(body).encode() if body is not None else None
            req = urllib.request.Request(
                base + path, data=data, method=method,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, _json.loads(resp.read())

        try:
            status, payload = request(
                "POST", "/datasets", {"name": "bench", "store": store_path}
            )
            assert status == 201, payload

            def solve_body(epsilon):
                return {
                    "dataset": "bench",
                    "problem": {"kind": "densest_subgraph", "epsilon": epsilon},
                    "wait": 600,
                }

            # Cold solves: one per distinct epsilon (first touch of each
            # key), timed from the client side.
            epsilons = [0.5, 0.6, 0.7][: max(1, min(repeats, 3))]
            cold_times, cold_payloads = [], {}
            for epsilon in epsilons:
                t0 = time.perf_counter()
                status, payload = request("POST", "/solve", solve_body(epsilon))
                cold_times.append(time.perf_counter() - t0)
                assert status == 200 and payload["cached"] is False, payload
                cold_payloads[epsilon] = payload
            cold_p50 = statistics.median(cold_times)

            # Warm hits: concurrent clients hammer the cached keys.
            def warm_worker(worker_id):
                times = []
                for i in range(warm_requests // warm_clients):
                    epsilon = epsilons[i % len(epsilons)]
                    t0 = time.perf_counter()
                    status, payload = request(
                        "POST", "/solve", solve_body(epsilon)
                    )
                    times.append(time.perf_counter() - t0)
                    assert status == 200 and payload["cached"] is True
                    # Warm answers must ship the cold solve's bytes.
                    cold = cold_payloads[epsilon]
                    assert payload["key"] == cold["key"]
                    assert _json.dumps(
                        payload["solution"], sort_keys=True
                    ) == _json.dumps(cold["solution"], sort_keys=True), (
                        f"warm payload diverged from cold for eps={epsilon}"
                    )
                return times

            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=warm_clients) as pool:
                all_times = [
                    t
                    for times in pool.map(warm_worker, range(warm_clients))
                    for t in times
                ]
            warm_wall = time.perf_counter() - t0
            all_times.sort()
            warm_p50 = statistics.median(all_times)
            warm_p99 = all_times[int(len(all_times) * 0.99)]
            qps = len(all_times) / warm_wall if warm_wall > 0 else None

            status, stats = request("GET", "/stats")
            assert stats["results"] == len(epsilons)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    records.append(
        {
            "bench": "serve_cold_solve",
            "fixture": fixture,
            "engine": "http-miss",
            "median_seconds": cold_p50,
            "samples": len(cold_times),
            "edges": store.num_edges,
        }
    )
    records.append(
        {
            "bench": "serve_warm_hit",
            "fixture": fixture,
            "engine": "http-hit",
            "median_seconds": warm_p50,
            "p99_seconds": warm_p99,
            "qps": qps,
            "samples": len(all_times),
            "clients": warm_clients,
            "hits": stats["hits"],
            "hit_ratio": stats["hit_ratio"],
            "speedup": cold_p50 / warm_p50 if warm_p50 > 0 else None,
        }
    )
    print(f"{'serve_cold_solve':28s} p50 {cold_p50 * 1e3:9.1f} ms   "
          f"({len(cold_times)} misses)")
    print(f"{'serve_warm_hit':28s} p50 {warm_p50 * 1e3:9.3f} ms   "
          f"p99 {warm_p99 * 1e3:9.3f} ms   {qps:7.0f} req/s   "
          f"x{cold_p50 / warm_p50:8.1f}")
    return records


def run_chaos_benches(scale_factor: float, repeats: int):
    """Chaos/soak: mixed traffic + armed faults against one server.

    One in-process server runs with the full overload posture switched
    on (per-request cost cap, admission budget, deadline cost model,
    queue-fraction degradation, catalog circuit breaker) *and* a fault
    plan arming solver delays, a 20-op ``catalog.read`` corruption
    streak, and a ``kill_worker`` on MapReduce map task 0.  Four
    client personas hit it concurrently:

    * **warm** — pre-solves one key, then hammers it.  During
      breaker-open windows hits become deterministic re-solves; either
      way the answer must match the clean reference bytes.
    * **cold** — distinct-ε streaming solves (new keys), plus
      unaffordable-deadline requests that must come back *labeled*
      (``stale`` for a kind with cached history, ``degraded`` for a
      kind without), plus one MapReduce solve that eats the SIGKILL.
    * **oversized** — requests over ``max_cost_edges``; every response
      must be a 429 carrying ``Retry-After``.
    * **cancel** — submit-without-wait then ``DELETE /jobs/<id>``,
      polled to a terminal state.

    In-driver gates (asserted, not just reported): goodput > 0; p99
    time-to-answer over admitted requests bounded; at least one shed,
    one stale, and one degraded response; and every unlabeled 200
    byte-identical to an offline clean solve of the same problem on
    the same deterministic dataset.
    """
    import json as _json
    import os
    import tempfile
    import threading
    import urllib.error
    import urllib.request
    from concurrent.futures import ThreadPoolExecutor

    from repro import solve as _solve
    from repro.api.problems import DensestAtLeastK, DensestSubgraph
    from repro.datasets import registry as dataset_registry
    from repro.faults import FaultPlan, FaultPoint
    from repro.serve import build_server

    seed = 7
    scale_small = round(0.3 * scale_factor, 4)
    scale_big = round(1.5 * scale_factor, 4)
    p99_bound = 60.0  # generous, but *bounded*: the no-hang gate
    cold_requests = max(4, 4 * repeats)
    warm_requests = max(20, 20 * repeats)
    cancel_requests = max(3, 2 * repeats)
    oversized_requests = max(3, 2 * repeats)

    small = dataset_registry.load("grqc_sim", scale=scale_small, seed=seed)
    big = dataset_registry.load("grqc_sim", scale=scale_big, seed=seed)
    assert big.num_edges > small.num_edges
    fixture = f"grqc_sim@scale={scale_small}/{scale_big}"
    print(f"fixture {fixture}: small m={small.num_edges}, big m={big.num_edges}")

    plan = FaultPlan(
        [
            # stragglers: two delayed solve jobs + one slow peel pass
            FaultPoint("serve.solve", 1, "delay", 0.3),
            FaultPoint("serve.solve", 3, "delay", 0.3),
            FaultPoint("streaming.pass", 2, "delay", 0.1),
            # a sick catalog: 10 consecutive read ops fail -> the
            # breaker must open and the service go cache-less
            *[FaultPoint("catalog.read", i, "corrupt") for i in range(20, 30)],
            # a dying worker: MapReduce map task 0 is SIGKILLed once
            FaultPoint("mapreduce.map", 0, "kill_worker"),
        ]
    )

    with tempfile.TemporaryDirectory() as tmp:
        server = build_server(
            port=0,
            catalog_path=os.path.join(tmp, "catalog.sqlite"),
            workers=2,
            spill_dir=os.path.join(tmp, "spill"),
            max_queue=8,
            degrade_at=0.9,
            admit_budget_edges=6 * small.num_edges,
            max_cost_edges=(small.num_edges + big.num_edges) // 2,
            edges_per_second=float(small.num_edges),  # => exact ~1 s estimate
            retry_after_base=0.1,
            breaker_threshold=3,
            breaker_reset_seconds=0.25,
            fault_plan=plan,
        )
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://{host}:{port}"

        def request(method, path, body=None, client="chaos", timeout=600):
            data = _json.dumps(body).encode() if body is not None else None
            req = urllib.request.Request(
                base + path, data=data, method=method,
                headers={"Content-Type": "application/json",
                         "X-Client-Id": client},
            )
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, _json.loads(resp.read()), dict(resp.headers)

        def solve_body(kind, wait=600, backend=None, deadline=None, **params):
            body = {"dataset": "g", "problem": {"kind": kind, **params}}
            if wait is not None:
                body["wait"] = wait
            if backend is not None:
                body["backend"] = backend
            if deadline is not None:
                body["deadline"] = deadline
            return body

        # shared tallies (lists are append-atomic under the GIL)
        admitted_times: list = []  # seconds to a terminal 200/202-resolved
        ok_payloads: list = []     # every 200 payload for the label audit
        shed_count = [0]
        retry_after_missing = [0]
        cancelled = [0]
        errors: list = []

        def timed(client, body):
            t0 = time.perf_counter()
            status, payload, _ = request("POST", "/solve", body, client=client)
            admitted_times.append(time.perf_counter() - t0)
            assert status in (200, 202), (status, payload)
            if status == 200:
                ok_payloads.append(payload)
            return status, payload

        try:
            for name, scale in (
                ("g", scale_small),
                ("big", scale_big),
                # the cancel client solves its own dataset so its
                # (possibly completed-before-cancel) densest_at_least_k
                # rows never satisfy the stale rung for dataset "g" --
                # the post-soak degraded-rung assert depends on that
                ("cds", round(scale_small * 0.9, 4)),
            ):
                status, payload, _ = request(
                    "POST", "/datasets",
                    {"name": name, "dataset": "grqc_sim",
                     "scale": scale, "seed": seed},
                )
                assert status == 201, payload

            def warm_client():
                try:
                    for _ in range(warm_requests):
                        timed("warm", solve_body("densest_subgraph", epsilon=0.5))
                except Exception as exc:  # noqa: BLE001 - recorded for assert
                    errors.append(("warm", exc))

            def cold_client():
                try:
                    # one MapReduce solve eats the SIGKILLed worker and
                    # must still answer exactly (recovery is invisible)
                    timed("cold", solve_body(
                        "densest_subgraph", epsilon=0.55, backend="mapreduce"
                    ))
                    for i in range(cold_requests):
                        timed("cold", solve_body(
                            "densest_subgraph", epsilon=0.6 + 0.01 * i,
                            backend="streaming",
                        ))
                except Exception as exc:  # noqa: BLE001
                    errors.append(("cold", exc))

            def oversized_client():
                try:
                    for i in range(oversized_requests):
                        body = solve_body("densest_subgraph",
                                          epsilon=0.5 + 0.01 * i)
                        body["dataset"] = "big"
                        try:
                            request("POST", "/solve", body, client="oversized")
                        except urllib.error.HTTPError as err:
                            assert err.code == 429, err.code
                            shed_count[0] += 1
                            if "Retry-After" not in err.headers:
                                retry_after_missing[0] += 1
                            else:
                                time.sleep(
                                    min(float(err.headers["Retry-After"]), 0.2)
                                )
                        else:
                            raise AssertionError(
                                "oversized request was not shed"
                            )
                except Exception as exc:  # noqa: BLE001
                    errors.append(("oversized", exc))

            def cancel_client():
                try:
                    for i in range(cancel_requests):
                        body = solve_body(
                            "densest_at_least_k", wait=None,
                            k=40, epsilon=0.001 + 0.001 * i,
                            backend="streaming",
                        )
                        body["dataset"] = "cds"
                        status, payload, _ = request(
                            "POST", "/solve", body, client="cancel"
                        )
                        if status != 202:
                            continue  # ladder/coalescing answered inline
                        job_id = payload["job"]["id"]
                        try:
                            request("DELETE", f"/jobs/{job_id}",
                                    client="cancel")
                        except urllib.error.HTTPError as err:
                            assert err.code == 409, err.code  # already done
                        for _ in range(600):
                            _, job, _ = request(
                                "GET", f"/jobs/{job_id}", client="cancel"
                            )
                            if job["job"]["status"] not in (
                                "PENDING", "RUNNING", "CANCELLING",
                            ):
                                break
                            time.sleep(0.05)
                        else:
                            raise AssertionError(
                                f"job {job_id} never reached a terminal state"
                            )
                        if job["job"]["status"] == "CANCELLED":
                            cancelled[0] += 1
                except Exception as exc:  # noqa: BLE001
                    errors.append(("cancel", exc))

            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=4) as pool:
                for fn in (warm_client, cold_client,
                           oversized_client, cancel_client):
                    pool.submit(fn)
            soak_wall = time.perf_counter() - t0
            assert not errors, errors

            # ---- deterministic ladder phase --------------------------
            # Drain whatever is left of the corruption streak (the
            # breaker freezes the catalog.read op counter while open,
            # so warm requests + short sleeps walk the half-open probes
            # through the remaining corrupt ops), then let one healthy
            # probe close the breaker.
            drain_deadline = time.monotonic() + 120
            while any(p.site == "catalog.read" for p in plan.pending()):
                assert time.monotonic() < drain_deadline, (
                    f"corruption streak never drained: {plan.pending()}"
                )
                timed("warm", solve_body("densest_subgraph", epsilon=0.5))
                time.sleep(0.3)
            time.sleep(0.3)
            timed("warm", solve_body("densest_subgraph", epsilon=0.5))

            # The ladder's stale rung: an unaffordable deadline on a
            # kind WITH cached history on "g" must come back labeled
            # ``stale`` (the nearest prior answer, not a fresh solve).
            for i in range(max(2, repeats)):
                status, payload = timed("cold", solve_body(
                    "densest_subgraph", epsilon=0.31 + 0.01 * i,
                    deadline=0.05,
                ))
                assert status == 200 and payload.get("stale"), payload
            # The degraded rung: same unaffordable deadline on a kind
            # WITHOUT history on "g" (the cancel client solved its k
            # problems on "cds") must come back labeled ``degraded``
            # from the cheap greedy fallback.
            for i in range(max(2, repeats)):
                status, payload = timed("cold", solve_body(
                    "densest_at_least_k", k=20 + i,
                    epsilon=0.5, deadline=0.05,
                ))
                if i == 0:
                    assert status == 200 and payload.get("degraded"), payload
                else:
                    # the first degraded answer is now cached history,
                    # so later unaffordable requests may legitimately
                    # ride the (cheaper) stale rung instead
                    assert status == 200 and (
                        payload.get("degraded") or payload.get("stale")
                    ), payload

            status, stats, _ = request("GET", "/stats")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

        plan_log = os.path.abspath("BENCH_chaos_plan.json")
        plan.save_log(plan_log)

        # ---- gates -------------------------------------------------
        goodput = len(ok_payloads)
        assert goodput > 0, "no request ever succeeded under chaos"
        admitted_times.sort()
        p50 = statistics.median(admitted_times)
        p99 = admitted_times[int(len(admitted_times) * 0.99)]
        assert p99 <= p99_bound, (
            f"p99 time-to-answer {p99:.1f}s blew the {p99_bound:.0f}s bound"
        )
        assert shed_count[0] > 0, "oversized traffic was never shed"
        assert retry_after_missing[0] == 0, (
            f"{retry_after_missing[0]} sheds lacked a Retry-After header"
        )
        assert stats["stale_served"] > 0, stats
        assert stats["degraded"] > 0, stats
        # the corruption streak must actually have exercised the breaker
        read_faults = [
            f for f in plan.fired if f["site"] == "catalog.read"
        ]
        assert len(read_faults) >= 3, (
            f"only {len(read_faults)} catalog.read faults fired; the "
            f"breaker was never really tested"
        )
        kill_fired = any(f["mode"] == "kill_worker" for f in plan.fired)
        assert kill_fired, "the MapReduce kill_worker fault never fired"

        # ---- the no-silent-wrong-answer audit ----------------------
        # Every UNLABELED 200 must be byte-identical to a clean offline
        # solve of the same problem (same deterministic dataset, no
        # faults, no server).  Labeled answers are exempt — that is
        # what the label is for.
        problems = {
            "densest_subgraph": lambda p: DensestSubgraph(
                small, epsilon=p["epsilon"]
            ),
            "densest_at_least_k": lambda p: DensestAtLeastK(
                small, k=p["k"], epsilon=p["epsilon"]
            ),
        }
        references: dict = {}
        labeled = unlabeled = 0
        for payload in ok_payloads:
            if payload.get("stale") or payload.get("degraded"):
                labeled += 1
                continue
            unlabeled += 1
            ref_key = payload["key"]
            if ref_key not in references:
                problem = problems[payload["problem_kind"]](payload["params"])
                clean = _solve(problem, backend=payload["backend"])
                references[ref_key] = _json.loads(clean.to_json())
            assert _json.dumps(payload["solution"], sort_keys=True) == \
                _json.dumps(references[ref_key], sort_keys=True), (
                    f"UNLABELED response for key {ref_key} diverged from "
                    f"the clean solve (kind={payload['problem_kind']}, "
                    f"params={payload['params']})"
                )

    record = {
        "bench": "chaos_soak",
        "fixture": fixture,
        "engine": "http-chaos",
        "median_seconds": p50,
        "p99_seconds": p99,
        "p99_bound_seconds": p99_bound,
        "soak_wall_seconds": soak_wall,
        "goodput": goodput,
        "admitted": len(admitted_times),
        "unlabeled_verified": unlabeled,
        "labeled": labeled,
        "distinct_keys_verified": len(references),
        "shed": stats["shed"],
        "degraded": stats["degraded"],
        "stale_served": stats["stale_served"],
        "cancelled": cancelled[0],
        "coalesced": stats["coalesced"],
        "faults_fired": len(plan.fired),
        "faults_pending": len(plan.pending()),
        "breaker_state": stats["breaker_state"],
        "plan_log": plan_log,
    }
    print(f"{'chaos_soak':28s} goodput {goodput:4d}   "
          f"p50 {p50 * 1e3:8.1f} ms   p99 {p99 * 1e3:8.1f} ms   "
          f"shed {stats['shed']}   degraded {stats['degraded']}   "
          f"stale {stats['stale_served']}   cancelled {cancelled[0]}   "
          f"faults {len(plan.fired)}")
    print(f"{'':28s} verified {unlabeled} unlabeled responses "
          f"({len(references)} distinct keys) byte-identical to clean solves")
    return [record]


#: Per-suite configuration: bench driver, default report path, and the
#: benches the ``--min-speedup`` gate applies to.
SUITES = {
    "core": {
        "run": run_benches,
        "output": "BENCH_core.json",
        "gate": {"undirected_peel_eps05", "undirected_peel_eps2", "directed_peel"},
    },
    "mapreduce": {
        "run": run_mapreduce_benches,
        "output": "BENCH_mapreduce.json",
        "gate": {"mr_peel_eps0", "mr_peel_eps1", "mr_directed_peel"},
    },
    "exec": {
        "run": run_exec_benches,
        "output": "BENCH_exec.json",
        # Gate only on explicit --min-speedup: a 4-worker pool cannot
        # beat serial on fewer than ~2 physical cores.
        "gate": {"mr_fused_peel"},
    },
    "streaming": {
        "run": run_streaming_benches,
        "output": "BENCH_stream.json",
        "gate": {"stream_peel_eps0.1", "stream_peel_eps0.5"},
    },
    "faults": {
        "run": run_faults_benches,
        "output": "BENCH_faults.json",
        # The <=10% checkpoint-overhead gate is asserted in-driver
        # (overhead is a ratio of two same-process runs, so it is
        # stable); --min-speedup has no meaningful row here.
        "gate": set(),
    },
    "serve": {
        "run": run_serve_benches,
        "output": "BENCH_serve.json",
        "gate": {"serve_warm_hit"},
    },
    "chaos": {
        "run": run_chaos_benches,
        "output": "BENCH_chaos.json",
        # Every chaos gate (goodput, bounded p99, labeled degradation,
        # Retry-After on sheds, byte-identity of unlabeled answers) is
        # asserted in-driver; there is no speedup row to gate.
        "gate": set(),
    },
    "kernels": {
        "run": run_kernels_benches,
        "output": "BENCH_kernels.json",
        # Gate the native tier's deep-peel rows (the many-pass regime
        # the bucket queue exists for; shallow 3–6 pass rows are
        # context).  The big-store wall-clock win (>1x) is asserted
        # in-driver; stream_scan_threads is reported ungated (a
        # thread win needs >1 core — check cpu_count in the report).
        "gate": {
            "atleastk_deep_flickr",
            "atleastk_deep_livejournal",
        },
    },
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=sorted(SUITES),
        default="core",
        help="which bench suite to run (core engines or MapReduce drivers)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the report (default: the suite's BENCH_*.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=9, help="timing repeats per bench (median)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: reduced dataset scales and fewer repeats",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless the undirected+directed peel benches reach this speedup",
    )
    parser.add_argument(
        "--min-bytes-ratio",
        type=float,
        default=None,
        help="streaming suite: fail unless compacted runs scan at least "
        "this factor fewer bytes than the full rescan",
    )
    args = parser.parse_args(argv)

    suite = SUITES[args.suite]
    output = args.output if args.output is not None else suite["output"]
    scale_factor = 0.4 if args.quick else 1.0
    repeats = min(args.repeats, 3) if args.quick else args.repeats
    records = suite["run"](scale_factor, repeats)

    import os

    report = {
        "suite": args.suite,
        "scale_factor": scale_factor,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "benches": records,
    }
    Path(output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {output} ({len(records)} records)")

    if args.min_speedup is not None:
        gate = suite["gate"]
        # Gate on every row that carries a speedup (the comparison rows
        # of each suite: engine "numpy" in core/mapreduce, the process
        # row in exec).
        failing = [
            r
            for r in records
            if r["bench"] in gate
            and r.get("speedup") is not None
            and r["speedup"] < args.min_speedup
        ]
        if failing:
            for r in failing:
                print(
                    f"FAIL {r['bench']}: speedup {r.get('speedup'):.2f} "
                    f"< {args.min_speedup}",
                    file=sys.stderr,
                )
            return 1
        print(f"speedup gate >= {args.min_speedup}x: OK")

    if args.min_bytes_ratio is not None:
        gate = suite["gate"]
        failing = [
            r
            for r in records
            if r["bench"] in gate
            and r.get("bytes_ratio") is not None
            and r["bytes_ratio"] < args.min_bytes_ratio
        ]
        ratios = [r for r in records if r.get("bytes_ratio") is not None]
        if not ratios:
            print(
                "FAIL: --min-bytes-ratio given but no bench recorded a "
                "bytes_ratio (wrong suite?)",
                file=sys.stderr,
            )
            return 1
        if failing:
            for r in failing:
                print(
                    f"FAIL {r['bench']}: bytes_ratio {r.get('bytes_ratio'):.2f} "
                    f"< {args.min_bytes_ratio}",
                    file=sys.stderr,
                )
            return 1
        print(f"bytes-ratio gate >= {args.min_bytes_ratio}x: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
