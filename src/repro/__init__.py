"""repro — a reproduction of *Densest Subgraph in Streaming and MapReduce*.

Bahmani, Kumar, Vassilvitskii; PVLDB 5(5):454–465, VLDB 2012
(arXiv:1201.6567).

The package implements the paper's few-pass greedy peeling algorithms
(undirected, size-constrained, and directed), the streaming and
MapReduce execution models they are designed for, the exact baselines
(Charikar's LP, Goldberg's flow algorithm, greedy peeling), the
Count-Sketch memory heuristic, the worst-case gadgets behind the
paper's lower bounds, and an experiment harness regenerating every
table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import densest_subgraph
>>> from repro.graph.generators import clique, star, disjoint_union
>>> g = disjoint_union([clique(6), star(50, offset=100)])
>>> result = densest_subgraph(g, epsilon=0.1)
>>> sorted(result.nodes), result.density
([0, 1, 2, 3, 4, 5], 2.5)

See ``examples/`` for end-to-end scenarios and ``DESIGN.md`` for the
system inventory.
"""

from .core import (
    DensestSubgraphResult,
    DirectedDensestSubgraphResult,
    RatioSweepResult,
    densest_subgraph,
    densest_subgraph_atleast_k,
    densest_subgraph_directed,
    enumerate_dense_subgraphs,
    greedy_densest_subgraph,
    ratio_sweep,
)
from .errors import (
    DatasetError,
    EmptyGraphError,
    GraphError,
    MapReduceError,
    ParameterError,
    ReproError,
    SolverError,
    StreamError,
)
from .graph import DirectedGraph, UndirectedGraph

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graphs
    "UndirectedGraph",
    "DirectedGraph",
    # algorithms
    "densest_subgraph",
    "densest_subgraph_atleast_k",
    "densest_subgraph_directed",
    "ratio_sweep",
    "greedy_densest_subgraph",
    "enumerate_dense_subgraphs",
    # results
    "DensestSubgraphResult",
    "DirectedDensestSubgraphResult",
    "RatioSweepResult",
    # errors
    "ReproError",
    "GraphError",
    "EmptyGraphError",
    "ParameterError",
    "StreamError",
    "MapReduceError",
    "SolverError",
    "DatasetError",
]
