"""repro — a reproduction of *Densest Subgraph in Streaming and MapReduce*.

Bahmani, Kumar, Vassilvitskii; PVLDB 5(5):454–465, VLDB 2012
(arXiv:1201.6567).

The package implements the paper's few-pass greedy peeling algorithms
(undirected, size-constrained, and directed), the streaming and
MapReduce execution models they are designed for, the exact baselines
(Charikar's LP, Goldberg's flow algorithm, greedy peeling), the
Count-Sketch memory heuristic, the worst-case gadgets behind the
paper's lower bounds, and an experiment harness regenerating every
table and figure of the paper's evaluation.

The unified entry point is :func:`solve`: describe the problem as a
value object and let the capability-aware registry pick (or be told)
the execution backend:

>>> from repro import DensestSubgraph, solve
>>> from repro.graph.generators import clique, star, disjoint_union
>>> g = disjoint_union([clique(6), star(50, offset=100)])
>>> solution = solve(DensestSubgraph(g, epsilon=0.1))
>>> solution.backend, sorted(solution.nodes), solution.density
('core', [0, 1, 2, 3, 4, 5], 2.5)

The per-engine functions remain available (``densest_subgraph``,
``stream_densest_subgraph``, ``mr_densest_subgraph``, ...) but new code
should prefer :func:`solve`; see ``examples/`` for end-to-end scenarios
and ``DESIGN.md`` for the system inventory and the api layer's
architecture.
"""

from .api import (
    Capabilities,
    CostReport,
    DensestAtLeastK,
    DensestSubgraph,
    DirectedDensest,
    ExecutionContext,
    Problem,
    Solution,
    Solver,
    available_backends,
    backend_names,
    get_backend,
    register,
    solve,
)
from .core import (
    DensestSubgraphResult,
    DirectedDensestSubgraphResult,
    RatioSweepResult,
    densest_subgraph,
    densest_subgraph_atleast_k,
    densest_subgraph_directed,
    enumerate_dense_subgraphs,
    greedy_densest_subgraph,
    ratio_sweep,
)
from .errors import (
    CheckpointError,
    DatasetError,
    DeadlineExceededError,
    EmptyGraphError,
    GraphError,
    InjectedFaultError,
    JobCancelledError,
    MapReduceError,
    ParameterError,
    ReproError,
    SolverError,
    StoreCorruptionError,
    StreamError,
)
from .faults import FaultPlan, FaultPoint, RunControl
from .graph import DirectedGraph, UndirectedGraph
from .mapreduce import (
    MapReduceRunReport,
    MapReduceRuntime,
    mr_densest_subgraph,
    mr_densest_subgraph_atleast_k,
    mr_densest_subgraph_directed,
)
from .store import ShardedEdgeStore, ShardWriter, StoreVerification
from .streaming import (
    CheckpointConfig,
    EdgeStream,
    FileEdgeStream,
    GraphEdgeStream,
    MemoryEdgeStream,
    ShardEdgeStream,
    sketch_densest_subgraph,
    stream_densest_subgraph,
    stream_densest_subgraph_atleast_k,
    stream_densest_subgraph_directed,
    stream_ratio_sweep,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # unified api
    "solve",
    "Problem",
    "DensestSubgraph",
    "DensestAtLeastK",
    "DirectedDensest",
    "Solution",
    "CostReport",
    "ExecutionContext",
    "Capabilities",
    "Solver",
    "register",
    "available_backends",
    "backend_names",
    "get_backend",
    # graphs
    "UndirectedGraph",
    "DirectedGraph",
    # in-memory algorithms
    "densest_subgraph",
    "densest_subgraph_atleast_k",
    "densest_subgraph_directed",
    "ratio_sweep",
    "greedy_densest_subgraph",
    "enumerate_dense_subgraphs",
    # streaming entry points
    "EdgeStream",
    "MemoryEdgeStream",
    "FileEdgeStream",
    "GraphEdgeStream",
    "ShardEdgeStream",
    "ShardedEdgeStore",
    "ShardWriter",
    "StoreVerification",
    "CheckpointConfig",
    "stream_densest_subgraph",
    "stream_densest_subgraph_atleast_k",
    "stream_densest_subgraph_directed",
    "stream_ratio_sweep",
    "sketch_densest_subgraph",
    # mapreduce entry points
    "MapReduceRuntime",
    "MapReduceRunReport",
    "mr_densest_subgraph",
    "mr_densest_subgraph_atleast_k",
    "mr_densest_subgraph_directed",
    # results
    "DensestSubgraphResult",
    "DirectedDensestSubgraphResult",
    "RatioSweepResult",
    # robustness
    "FaultPlan",
    "FaultPoint",
    "RunControl",
    # errors
    "ReproError",
    "GraphError",
    "EmptyGraphError",
    "ParameterError",
    "StreamError",
    "MapReduceError",
    "SolverError",
    "DatasetError",
    "StoreCorruptionError",
    "CheckpointError",
    "JobCancelledError",
    "DeadlineExceededError",
    "InjectedFaultError",
]
