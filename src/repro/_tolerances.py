"""Shared numeric tolerances.

Every floating-point comparison the library makes on purpose lives
here, under a name that says what it protects, so the values stay in
sync across the execution models (a drifting tolerance would make the
engines disagree on which nodes clear a peeling threshold and break
the cross-backend parity guarantees the test suite enforces).
"""

from __future__ import annotations

#: Slack added to the peeling threshold before the ``degree <= threshold``
#: test in Algorithms 1–3.  Degrees and thresholds are sums/products of
#: the same edge weights computed in different orders per execution
#: model; this absorbs the resulting last-ulp noise so the in-memory,
#: streaming, sketch, and MapReduce engines remove identical node sets.
THRESHOLD_EPS = 1e-12

#: Cutoff below which an LP variable is treated as zero when rounding a
#: fractional LP solution to a node set.
LP_EPS = 1e-12

#: Residual-capacity cutoff in the max-flow substrate: arcs with less
#: remaining capacity are considered saturated.
FLOW_EPS = 1e-12
