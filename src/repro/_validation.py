"""Shared argument-validation helpers.

These helpers centralise the checks performed at every public entry
point so error messages stay consistent across the library.  They raise
:class:`repro.errors.ParameterError` (a ``ValueError`` subclass) on bad
input.
"""

from __future__ import annotations

import math
from typing import Any

from .errors import ParameterError


def check_epsilon(epsilon: float, *, allow_zero: bool = True) -> float:
    """Validate the ε parameter of the peeling algorithms.

    The paper requires ε > 0 for the O(log_{1+ε} n) pass guarantee, but
    ε = 0 is meaningful in practice (it degenerates towards Charikar's
    greedy behaviour), so by default zero is allowed.
    """
    epsilon = float(epsilon)
    if math.isnan(epsilon) or math.isinf(epsilon):
        raise ParameterError(f"epsilon must be finite, got {epsilon!r}")
    if epsilon < 0:
        raise ParameterError(f"epsilon must be >= 0, got {epsilon!r}")
    if not allow_zero and epsilon == 0:
        raise ParameterError("epsilon must be > 0 for this algorithm")
    return epsilon


def check_positive_int(value: Any, name: str) -> int:
    """Validate a strictly positive integer parameter."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ParameterError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ParameterError(f"{name} must be >= 1, got {value}")
    return value


def check_nonnegative_int(value: Any, name: str) -> int:
    """Validate a non-negative integer parameter."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ParameterError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ParameterError(f"{name} must be >= 0, got {value}")
    return value


def check_positive_float(value: Any, name: str) -> float:
    """Validate a strictly positive, finite float parameter."""
    value = float(value)
    if math.isnan(value) or math.isinf(value) or value <= 0:
        raise ParameterError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_probability(value: Any, name: str) -> float:
    """Validate a probability in the closed interval [0, 1]."""
    value = float(value)
    if math.isnan(value) or not 0.0 <= value <= 1.0:
        raise ParameterError(f"{name} must be in [0, 1], got {value!r}")
    return value
