"""Experiment harness: sweeps, table rendering, per-figure drivers.

:mod:`~repro.analysis.experiments` has one driver per table/figure of
the paper's evaluation section; each returns a structured result with a
``render()`` method producing the rows/series the paper reports.  The
benchmarks and the CLI are thin wrappers over these drivers.
"""

from .tables import render_table
from .sweep import (
    EpsilonPoint,
    epsilon_sweep,
    delta_epsilon_grid,
    sketch_quality_sweep,
)
from . import experiments

__all__ = [
    "render_table",
    "EpsilonPoint",
    "epsilon_sweep",
    "delta_epsilon_grid",
    "sketch_quality_sweep",
    "experiments",
]
