"""One driver per table/figure of the paper's evaluation (§6).

Every driver returns an :class:`ExperimentOutput` whose ``rows`` are the
same quantities the paper reports, with a ``paper_claim`` string
recording the *shape* the reproduction is expected to match (absolute
numbers differ: the datasets are synthetic stand-ins and the cluster is
a simulator — see DESIGN.md §3).

Drivers take a ``scale`` so benchmarks can trade fidelity for runtime;
``scale=1.0`` is the default laptop-sized configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..api import DensestSubgraph, DirectedDensest, solve
from ..datasets import load, summary_rows
from ..graph.generators import lemma5_gadget
from ..mapreduce.cost import CostModel
from ..mapreduce.runtime import MapReduceRuntime
from .sweep import delta_epsilon_grid, epsilon_sweep, sketch_quality_sweep
from .tables import render_table


@dataclass
class ExperimentOutput:
    """Structured result of one reproduced table/figure.

    Attributes
    ----------
    experiment_id:
        e.g. ``"table2"`` or ``"fig61"``.
    title:
        Human-readable description.
    paper_claim:
        The shape/result the paper reports for this experiment.
    headers / rows:
        The regenerated data.
    notes:
        Reproduction caveats (scaling, substitutions).
    """

    experiment_id: str
    title: str
    paper_claim: str
    headers: List[str]
    rows: List[List[Any]]
    notes: str = ""

    def render(self, *, float_digits: int = 3) -> str:
        """The table plus claim/notes, ready to print."""
        parts = [
            render_table(
                self.headers,
                self.rows,
                title=f"[{self.experiment_id}] {self.title}",
                float_digits=float_digits,
            ),
            f"paper: {self.paper_claim}",
        ]
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)


# ----------------------------------------------------------------------
# Table 1 — dataset parameters
# ----------------------------------------------------------------------
def table1(*, scale: float = 1.0) -> ExperimentOutput:
    """Table 1: parameters of the evaluation graphs (ours vs paper's)."""
    rows = [list(r) for r in summary_rows(scale=scale, group="evaluation")]
    return ExperimentOutput(
        experiment_id="table1",
        title="Parameters of the graphs used in the experiments",
        paper_claim=(
            "flickr 976K/7.6M undirected, im 645M/6.1B undirected, "
            "livejournal 4.84M/68.9M directed, twitter 50.7M/2.7B directed"
        ),
        headers=["dataset", "type", "|V|", "|E|", "stands in for", "paper |V|", "paper |E|"],
        rows=rows,
        notes="synthetic stand-ins at laptop scale; see DESIGN.md section 4",
    )


# ----------------------------------------------------------------------
# Table 2 — empirical approximation vs the exact LP optimum
# ----------------------------------------------------------------------
def table2(
    *,
    scale: float = 1.0,
    epsilons: Sequence[float] = (0.001, 0.1, 1.0),
) -> ExperimentOutput:
    """Table 2: ρ*(G) and ρ*/ρ̃ for several ε on the seven small graphs."""
    headers = ["graph", "|V|", "|E|", "rho*"] + [f"ratio eps={e:g}" for e in epsilons]
    rows: List[List[Any]] = []
    for name in (
        "as_sim",
        "astroph_sim",
        "condmat_sim",
        "grqc_sim",
        "hepph_sim",
        "hepth_sim",
        "enron_sim",
    ):
        graph = load(name, scale=scale)
        optimum = solve(DensestSubgraph(graph), backend="exact-lp").density
        row: List[Any] = [name, graph.num_nodes, graph.num_edges, optimum]
        for eps in epsilons:
            solution = solve(DensestSubgraph(graph, epsilon=eps), backend="core")
            row.append(solution.approximation_ratio(optimum))
        rows.append(row)
    return ExperimentOutput(
        experiment_id="table2",
        title="Empirical approximation bounds for various eps",
        paper_claim=(
            "all ratios between 1.00 and 1.43 — far better than the 2(1+eps) "
            "worst case; even eps=1 barely hurts quality"
        ),
        headers=headers,
        rows=rows,
        notes="rho* from Charikar's LP (scipy HiGHS = paper's CLP); graphs are scaled stand-ins",
    )


# ----------------------------------------------------------------------
# Table 3 — directed: delta vs eps grid (livejournal)
# ----------------------------------------------------------------------
def table3(
    *,
    scale: float = 1.0,
    deltas: Sequence[float] = (2.0, 10.0, 100.0),
    epsilons: Sequence[float] = (0.0, 1.0, 2.0),
) -> ExperimentOutput:
    """Table 3: best directed density per (δ, ε) on livejournal_sim."""
    graph = load("livejournal_sim", scale=scale)
    grid = delta_epsilon_grid(graph, deltas, epsilons)
    headers = ["eps"] + [f"delta={d:g}" for d in deltas]
    rows = [
        [f"{eps:g}"] + [grid[(float(d), float(eps))] for d in deltas]
        for eps in epsilons
    ]
    return ExperimentOutput(
        experiment_id="table3",
        title="livejournal: rho for different delta and eps",
        paper_claim=(
            "coarser delta loses little until it gets extreme (paper: 325->308 "
            "from delta=2 to 100 at eps=0, bigger drop at eps=2); eps behaves "
            "as in the undirected case for reasonable delta"
        ),
        headers=headers,
        rows=rows,
    )


# ----------------------------------------------------------------------
# Table 4 — Count-Sketch quality/memory trade-off (flickr)
# ----------------------------------------------------------------------
def table4(
    *,
    scale: float = 1.0,
    buckets: Optional[Sequence[int]] = None,
    epsilons: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5),
    tables: int = 5,
    seed: int = 0,
) -> ExperimentOutput:
    """Table 4: ρ_sketch/ρ_exact per (b, ε), plus the memory ratio row.

    The paper uses b ∈ {30000, 40000, 50000} against n = 976K (memory
    ratios 0.16/0.20/0.25 with t = 5); defaults here pick b giving the
    same ratios against the stand-in's n.
    """
    graph = load("flickr_sim", scale=scale)
    n = graph.num_nodes
    if buckets is None:
        # Match the paper's t*b/n fractions: 0.16, 0.20, 0.25.
        buckets = [
            max(8, int(round(0.16 * n / tables))),
            max(8, int(round(0.20 * n / tables))),
            max(8, int(round(0.25 * n / tables))),
        ]
    sweep = sketch_quality_sweep(
        graph, buckets, epsilons, tables=tables, seed=seed
    )
    headers = ["eps"] + [f"b={b}" for b in buckets]
    rows: List[List[Any]] = [
        [f"{eps:g}"] + [sweep.quality[(int(b), float(eps))] for b in buckets]
        for eps in epsilons
    ]
    rows.append(["Memory"] + [sweep.memory_ratio[int(b)] for b in buckets])
    return ExperimentOutput(
        experiment_id="table4",
        title=f"flickr: ratio of rho with and without sketching (t={tables})",
        paper_claim=(
            "small eps keeps the ratio near 1 even at 16% memory; quality "
            "degrades (0.7-0.95) as eps grows; occasionally ratio > 1 "
            "('when lucky')"
        ),
        headers=headers,
        rows=rows,
        notes=f"buckets chosen so t*b/n matches the paper's 0.16/0.20/0.25 (n={n})",
    )


# ----------------------------------------------------------------------
# Figure 6.1 — eps vs approximation and eps vs passes (flickr, im)
# ----------------------------------------------------------------------
def fig61(
    *,
    scale: float = 1.0,
    epsilons: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5),
) -> ExperimentOutput:
    """Figure 6.1: per-ε density (relative to ε=0) and pass counts."""
    rows: List[List[Any]] = []
    for name in ("flickr_sim", "im_sim"):
        graph = load(name, scale=scale)
        points = epsilon_sweep(graph, epsilons)
        base = points[0].density if points[0].epsilon == 0 else None
        for p in points:
            rel = p.density / base if base else math.nan
            rows.append([name, f"{p.epsilon:g}", p.density, rel, p.passes])
    return ExperimentOutput(
        experiment_id="fig61",
        title="Effect of eps on the approximation and the number of passes",
        paper_claim=(
            "density stays within ~0.7-1.15 of the eps=0 value (non-monotone "
            "in eps); passes drop from ~10-11 at eps~0 to ~4-6 at eps>=1; "
            "eps in [0.5,1] halves the passes while losing <=10%"
        ),
        headers=["dataset", "eps", "rho", "rho / rho(eps=0)", "passes"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figures 6.2 and 6.3 — per-pass trajectories (flickr, im)
# ----------------------------------------------------------------------
def _trace_rows(scale: float, epsilons: Sequence[float]) -> Dict[str, Dict[float, Any]]:
    """Algorithm 1 traces per dataset and ε (shared by fig62/fig63)."""
    traces: Dict[str, Dict[float, Any]] = {}
    for name in ("flickr_sim", "im_sim"):
        graph = load(name, scale=scale)
        traces[name] = {}
        for eps in epsilons:
            traces[name][float(eps)] = solve(
                DensestSubgraph(graph, epsilon=eps), backend="core"
            ).details
    return traces


def fig62(
    *,
    scale: float = 1.0,
    epsilons: Sequence[float] = (0.0, 1.0, 2.0),
) -> ExperimentOutput:
    """Figure 6.2: density (relative to the run's max) vs pass number."""
    rows: List[List[Any]] = []
    for name, by_eps in _trace_rows(scale, epsilons).items():
        for eps, result in by_eps.items():
            densities = [r.density_before for r in result.trace]
            peak = max(densities) if densities else 1.0
            for record in result.trace:
                rows.append(
                    [
                        name,
                        f"{eps:g}",
                        record.pass_index,
                        record.density_before,
                        record.density_before / peak if peak > 0 else math.nan,
                    ]
                )
    return ExperimentOutput(
        experiment_id="fig62",
        title="Density as a function of the number of passes",
        paper_claim=(
            "density is non-monotone over passes; flickr shows a unimodal "
            "rise-then-fall, im is flatter; the peak is the returned answer"
        ),
        headers=["dataset", "eps", "pass", "rho", "rho / max"],
        rows=rows,
    )


def fig63(
    *,
    scale: float = 1.0,
    epsilons: Sequence[float] = (0.0, 1.0, 2.0),
) -> ExperimentOutput:
    """Figure 6.3: remaining nodes and edges after each pass."""
    rows: List[List[Any]] = []
    for name, by_eps in _trace_rows(scale, epsilons).items():
        for eps, result in by_eps.items():
            for record in result.trace:
                rows.append(
                    [
                        name,
                        f"{eps:g}",
                        record.pass_index,
                        record.nodes_after,
                        int(record.edges_after),
                    ]
                )
    return ExperimentOutput(
        experiment_id="fig63",
        title="Number of nodes and edges in the graph after each pass",
        paper_claim=(
            "the graph shrinks dramatically in the first passes (orders of "
            "magnitude), so later passes could run in main memory; the "
            "worst-case O(log n) pass bound is never attained"
        ),
        headers=["dataset", "eps", "pass", "nodes remaining", "edges remaining"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figures 6.4 / 6.6 — directed c-sweeps (livejournal, twitter)
# ----------------------------------------------------------------------
def fig64(
    *,
    scale: float = 1.0,
    epsilons: Sequence[float] = (0.0, 1.0),
    delta: float = 2.0,
) -> ExperimentOutput:
    """Figure 6.4: livejournal density and passes vs c at δ=2."""
    graph = load("livejournal_sim", scale=scale)
    rows: List[List[Any]] = []
    for eps in epsilons:
        sweep = solve(
            DirectedDensest(graph, delta=delta, epsilon=eps), backend="core"
        ).details
        for result in sweep.by_ratio:
            rows.append(
                [f"{eps:g}", result.ratio, result.density, result.passes]
            )
    return ExperimentOutput(
        experiment_id="fig64",
        title="livejournal: density and passes vs c (delta=2)",
        paper_claim=(
            "complex density-vs-c curve with the optimum at a non-skewed c "
            "(paper's best c = 0.436, near 1); passes 8-21 depending on c"
        ),
        headers=["eps", "c", "rho", "passes"],
        rows=rows,
    )


def fig66(
    *,
    scale: float = 1.0,
    epsilon: float = 1.0,
    delta: float = 2.0,
) -> ExperimentOutput:
    """Figure 6.6: twitter density and passes vs c at ε=1, δ=2."""
    graph = load("twitter_sim", scale=scale)
    sweep = solve(
        DirectedDensest(graph, delta=delta, epsilon=epsilon), backend="core"
    ).details
    rows = [
        [result.ratio, result.density, result.passes]
        for result in sweep.by_ratio
    ]
    return ExperimentOutput(
        experiment_id="fig66",
        title="twitter: density and passes vs c (eps=1, delta=2)",
        paper_claim=(
            "unlike livejournal the best c is far from 1 (celebrity skew: "
            "~600 users followed by >30M); passes stay in a narrow 4-7 band"
        ),
        headers=["c", "rho", "passes"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 6.5 — directed per-pass trace at the best c (livejournal)
# ----------------------------------------------------------------------
def fig65(
    *,
    scale: float = 1.0,
    epsilon: float = 1.0,
    delta: float = 2.0,
) -> ExperimentOutput:
    """Figure 6.5: |S|, |T|, |E(S,T)| per pass at the sweep's best c."""
    graph = load("livejournal_sim", scale=scale)
    sweep = solve(
        DirectedDensest(graph, delta=delta, epsilon=epsilon), backend="core"
    ).details
    best = sweep.best
    rows: List[List[Any]] = []
    for record in best.trace:
        rows.append(
            [
                record.pass_index,
                record.side,
                record.s_after,
                record.t_after,
                int(record.edges_after),
            ]
        )
    return ExperimentOutput(
        experiment_id="fig65",
        title=f"livejournal: |S|, |T|, |E(S,T)| for the best c={best.ratio:g} (eps={epsilon:g})",
        paper_claim=(
            "the 'alternate' nature of Algorithm 3 is visible (S-passes and "
            "T-passes interleave) and nodes/edges fall dramatically with the "
            "passes"
        ),
        headers=["pass", "side", "|S|", "|T|", "|E(S,T)|"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 6.7 — MapReduce wall-clock per pass (im)
# ----------------------------------------------------------------------
def fig67(
    *,
    scale: float = 0.25,
    epsilons: Sequence[float] = (0.0, 1.0, 2.0),
    cost_model: Optional[CostModel] = None,
) -> ExperimentOutput:
    """Figure 6.7: simulated per-pass MapReduce time on im_sim.

    The default scale is smaller than other experiments because every
    pass executes three metered MapReduce rounds in-process.
    """
    graph = load("im_sim", scale=scale)
    model = cost_model if cost_model is not None else CostModel(
        # Calibrated so the first pass of the im stand-in lands in the
        # tens-of-minutes regime of the paper's Figure 6.7 when scaled
        # by the edge ratio; only the declining shape is the claim.
        round_overhead_s=100.0,
        map_cost_s=0.5,
        shuffle_cost_s_per_byte=0.02,
        reduce_cost_s=0.5,
        num_mappers=2000,
        num_reducers=2000,
    )
    rows: List[List[Any]] = []
    for eps in epsilons:
        runtime = MapReduceRuntime(num_mappers=8, num_reducers=8, seed=1)
        report = solve(
            DensestSubgraph(graph, epsilon=eps),
            backend="mapreduce",
            runtime=runtime,
        ).details
        for pass_idx, seconds in enumerate(report.pass_times(model), start=1):
            rows.append([f"{eps:g}", pass_idx, seconds / 60.0])
    return ExperimentOutput(
        experiment_id="fig67",
        title="im: simulated MapReduce time per pass (minutes)",
        paper_claim=(
            "per-pass time decreases as the graph shrinks, from ~60 min early "
            "to a fixed overhead floor; total under 260 min; smaller eps -> "
            "more passes but similar per-pass shape"
        ),
        headers=["eps", "pass", "minutes (simulated)"],
        rows=rows,
        notes="cost model calibrated for shape only; see repro.mapreduce.cost",
    )


# ----------------------------------------------------------------------
# §4.1.1 — pass lower bound demonstration (Lemma 5 gadget)
# ----------------------------------------------------------------------
def lowerbound_passes(
    *,
    ks: Sequence[int] = (2, 3, 4, 5, 6),
    epsilon: float = 0.5,
    scale: float = 1.0,
) -> ExperimentOutput:
    """Passes of Algorithm 1 on the Lemma 5 layered-regular gadget.

    ``scale`` is accepted for driver-interface uniformity but ignored:
    the gadget's size is fixed by ``ks``.
    """
    rows: List[List[Any]] = []
    for k in ks:
        gadget = lemma5_gadget(k)
        solution = solve(DensestSubgraph(gadget, epsilon=epsilon), backend="core")
        rows.append([k, gadget.num_nodes, gadget.num_edges, solution.cost.passes])
    return ExperimentOutput(
        experiment_id="lowerbound",
        title="Lemma 5 gadget: passes grow with k (n ~ 2^(2k+1))",
        paper_claim=(
            "the gadget forces Omega(log n / log log n) passes — pass count "
            "must grow with k, unlike the ~constant passes on social graphs"
        ),
        headers=["k", "|V|", "|E|", "passes"],
        rows=rows,
    )


ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "fig61": fig61,
    "fig62": fig62,
    "fig63": fig63,
    "fig64": fig64,
    "fig65": fig65,
    "fig66": fig66,
    "fig67": fig67,
    "lowerbound": lowerbound_passes,
}
