"""Terminal plots for the figure experiments.

The paper's figures are line charts; rendering them as ASCII lets the
benchmark output and EXPERIMENTS.md show the *shape* (unimodal density,
collapsing node counts, skewed best-c) without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, log_scale: bool = False) -> str:
    """One-line bar chart of a series.

    Examples
    --------
    >>> sparkline([0, 1, 2, 3])
    ' ▃▅█'
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if log_scale:
        vals = [math.log10(max(v, 1e-12)) for v in vals]
    lo = min(vals)
    hi = max(vals)
    if hi == lo:
        return _BARS[-1] * len(vals)
    span = hi - lo
    chars = []
    for v in vals:
        idx = int(round((v - lo) / span * (len(_BARS) - 1)))
        chars.append(_BARS[idx])
    return "".join(chars)


def line_chart(
    values: Sequence[float],
    *,
    height: int = 8,
    title: Optional[str] = None,
    log_scale: bool = False,
    x_labels: Optional[Sequence] = None,
) -> str:
    """Multi-line ASCII chart of a series (column per point).

    Parameters
    ----------
    values:
        The y series.
    height:
        Chart height in rows.
    title:
        Optional title line.
    log_scale:
        Plot log10(y) instead of y (the paper's Figures 6.3–6.6 are
        log-scale).
    x_labels:
        Optional labels printed below the axis (first and last only, to
        stay narrow).
    """
    vals = [float(v) for v in values]
    if not vals:
        return title or ""
    plot_vals = (
        [math.log10(max(v, 1e-12)) for v in vals] if log_scale else list(vals)
    )
    lo = min(plot_vals)
    hi = max(plot_vals)
    span = hi - lo if hi > lo else 1.0
    rows: List[str] = []
    if title:
        rows.append(title)
    for level in range(height, 0, -1):
        cutoff = lo + span * (level - 0.5) / height
        line = "".join("█" if v >= cutoff else " " for v in plot_vals)
        rows.append(f"{_format_axis(lo + span * level / height, log_scale):>9} |{line}")
    rows.append(" " * 10 + "+" + "-" * len(vals))
    if x_labels is not None and len(x_labels) == len(vals):
        rows.append(
            " " * 11 + f"{x_labels[0]!s:<{max(1, len(vals) - 1)}}{x_labels[-1]!s}"
        )
    return "\n".join(rows)


def _format_axis(value: float, log_scale: bool) -> str:
    """Axis tick label (undo the log for display)."""
    if log_scale:
        return f"{10 ** value:.3g}"
    return f"{value:.3g}"
