"""Parameter sweeps used by the paper's evaluation.

* :func:`epsilon_sweep` — Algorithm 1 across a grid of ε (Figure 6.1).
* :func:`delta_epsilon_grid` — directed density across (δ, ε) pairs
  (Table 3).
* :func:`sketch_quality_sweep` — sketched vs exact density across
  (buckets, ε) (Table 4), including the memory ratio row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.directed import ratio_sweep
from ..core.result import DensestSubgraphResult
from ..core.undirected import densest_subgraph
from ..graph.directed import DirectedGraph
from ..graph.undirected import UndirectedGraph
from ..streaming.engine import stream_densest_subgraph
from ..streaming.memory import MemoryAccountant
from ..streaming.sketch_engine import sketch_densest_subgraph
from ..streaming.stream import GraphEdgeStream


@dataclass(frozen=True)
class EpsilonPoint:
    """One point of an ε sweep."""

    epsilon: float
    density: float
    passes: int
    size: int
    result: DensestSubgraphResult


def epsilon_sweep(
    graph: UndirectedGraph, epsilons: Iterable[float]
) -> List[EpsilonPoint]:
    """Run Algorithm 1 for each ε and collect density/pass statistics."""
    points: List[EpsilonPoint] = []
    for eps in epsilons:
        result = densest_subgraph(graph, eps)
        points.append(
            EpsilonPoint(
                epsilon=float(eps),
                density=result.density,
                passes=result.passes,
                size=result.size,
                result=result,
            )
        )
    return points


def delta_epsilon_grid(
    graph: DirectedGraph,
    deltas: Sequence[float],
    epsilons: Sequence[float],
) -> Dict[Tuple[float, float], float]:
    """Best directed density for every (δ, ε) pair — Table 3's grid.

    Each cell runs a full powers-of-δ ratio sweep of Algorithm 3.
    """
    grid: Dict[Tuple[float, float], float] = {}
    for delta in deltas:
        for eps in epsilons:
            sweep = ratio_sweep(graph, epsilon=eps, delta=delta)
            grid[(float(delta), float(eps))] = sweep.density
    return grid


@dataclass(frozen=True)
class SketchSweepResult:
    """Sketched-vs-exact quality grid plus the memory ratio row.

    ``quality[(buckets, epsilon)]`` is ρ_sketch / ρ_exact (Table 4's
    body); ``memory_ratio[buckets]`` is sketch words / exact words
    (Table 4's bottom row).
    """

    quality: Dict[Tuple[int, float], float]
    memory_ratio: Dict[int, float]
    tables: int


def sketch_quality_sweep(
    graph: UndirectedGraph,
    buckets_list: Sequence[int],
    epsilons: Sequence[float],
    *,
    tables: int = 5,
    seed: int = 0,
) -> SketchSweepResult:
    """Measure the Count-Sketch engine against the exact engine.

    For each ε the exact streaming density is computed once; each
    (buckets, ε) cell then reruns the sketched engine.  Memory ratios
    use the engines' own accountants.
    """
    exact_density: Dict[float, float] = {}
    exact_acc = MemoryAccountant()
    for i, eps in enumerate(epsilons):
        stream = GraphEdgeStream(graph)
        result = stream_densest_subgraph(
            stream, eps, accountant=exact_acc if i == 0 else None
        )
        exact_density[float(eps)] = result.density

    quality: Dict[Tuple[int, float], float] = {}
    memory_ratio: Dict[int, float] = {}
    for buckets in buckets_list:
        sketch_acc = MemoryAccountant()
        for i, eps in enumerate(epsilons):
            stream = GraphEdgeStream(graph)
            result = sketch_densest_subgraph(
                stream,
                eps,
                buckets=buckets,
                tables=tables,
                seed=seed,
                accountant=sketch_acc if i == 0 else None,
            )
            quality[(int(buckets), float(eps))] = (
                result.density / exact_density[float(eps)]
                if exact_density[float(eps)] > 0
                else float("nan")
            )
        memory_ratio[int(buckets)] = sketch_acc.ratio_to(exact_acc)
    return SketchSweepResult(
        quality=quality, memory_ratio=memory_ratio, tables=tables
    )
