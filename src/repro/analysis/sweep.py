"""Parameter sweeps used by the paper's evaluation.

* :func:`epsilon_sweep` — Algorithm 1 across a grid of ε (Figure 6.1).
* :func:`delta_epsilon_grid` — directed density across (δ, ε) pairs
  (Table 3).
* :func:`sketch_quality_sweep` — sketched vs exact density across
  (buckets, ε) (Table 4), including the memory ratio row.

All sweeps go through :func:`repro.solve`, so any registered backend
with the right capabilities can drive them; the defaults match the
engines the paper used for each experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..api import DensestSubgraph, DirectedDensest, solve
from ..core.result import DensestSubgraphResult
from ..graph.directed import DirectedGraph
from ..graph.undirected import UndirectedGraph
from ..streaming.memory import MemoryAccountant


@dataclass(frozen=True)
class EpsilonPoint:
    """One point of an ε sweep."""

    epsilon: float
    density: float
    passes: int
    size: int
    result: DensestSubgraphResult


def epsilon_sweep(
    graph: UndirectedGraph,
    epsilons: Iterable[float],
    *,
    backend: str = "core",
) -> List[EpsilonPoint]:
    """Run Algorithm 1 for each ε and collect density/pass statistics."""
    points: List[EpsilonPoint] = []
    for eps in epsilons:
        solution = solve(DensestSubgraph(graph, epsilon=float(eps)), backend=backend)
        points.append(
            EpsilonPoint(
                epsilon=float(eps),
                density=solution.density,
                passes=solution.cost.passes,
                size=solution.size,
                result=solution.details,
            )
        )
    return points


def delta_epsilon_grid(
    graph: DirectedGraph,
    deltas: Sequence[float],
    epsilons: Sequence[float],
    *,
    backend: str = "core",
) -> Dict[Tuple[float, float], float]:
    """Best directed density for every (δ, ε) pair — Table 3's grid.

    Each cell runs a full powers-of-δ ratio sweep of Algorithm 3.
    """
    grid: Dict[Tuple[float, float], float] = {}
    for delta in deltas:
        for eps in epsilons:
            solution = solve(
                DirectedDensest(graph, delta=float(delta), epsilon=float(eps)),
                backend=backend,
            )
            grid[(float(delta), float(eps))] = solution.density
    return grid


@dataclass(frozen=True)
class SketchSweepResult:
    """Sketched-vs-exact quality grid plus the memory ratio row.

    ``quality[(buckets, epsilon)]`` is ρ_sketch / ρ_exact (Table 4's
    body); ``memory_ratio[buckets]`` is sketch words / exact words
    (Table 4's bottom row).
    """

    quality: Dict[Tuple[int, float], float]
    memory_ratio: Dict[int, float]
    tables: int


def sketch_quality_sweep(
    graph: UndirectedGraph,
    buckets_list: Sequence[int],
    epsilons: Sequence[float],
    *,
    tables: int = 5,
    seed: int = 0,
) -> SketchSweepResult:
    """Measure the Count-Sketch engine against the exact engine.

    For each ε the exact streaming density is computed once; each
    (buckets, ε) cell then reruns the sketched engine.  Memory ratios
    use the engines' own accountants.
    """
    exact_density: Dict[float, float] = {}
    exact_acc = MemoryAccountant()
    for i, eps in enumerate(epsilons):
        solution = solve(
            DensestSubgraph(graph, epsilon=float(eps)),
            backend="streaming",
            accountant=exact_acc if i == 0 else None,
        )
        exact_density[float(eps)] = solution.density

    quality: Dict[Tuple[int, float], float] = {}
    memory_ratio: Dict[int, float] = {}
    for buckets in buckets_list:
        sketch_acc = MemoryAccountant()
        for i, eps in enumerate(epsilons):
            solution = solve(
                DensestSubgraph(graph, epsilon=float(eps)),
                backend="sketch",
                buckets=int(buckets),
                tables=tables,
                seed=seed,
                accountant=sketch_acc if i == 0 else None,
            )
            quality[(int(buckets), float(eps))] = (
                solution.density / exact_density[float(eps)]
                if exact_density[float(eps)] > 0
                else float("nan")
            )
        memory_ratio[int(buckets)] = sketch_acc.ratio_to(exact_acc)
    return SketchSweepResult(
        quality=quality, memory_ratio=memory_ratio, tables=tables
    )
