"""Monospace table rendering for experiment output."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _format_cell(value: Any, float_digits: int) -> str:
    """Render one cell; floats get fixed precision, the rest str().

    Floats whose magnitude would round away (or overflow the column)
    under fixed precision fall back to compact %g notation — the
    directed c-sweeps span 1e-4 .. 1e4.
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        magnitude = abs(value)
        if value != 0.0 and (magnitude < 10 ** (-float_digits) or magnitude >= 1e6):
            return f"{value:.{float_digits}g}"
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: Optional[str] = None,
    float_digits: int = 3,
) -> str:
    """Render an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values (any mix of str/int/float).
    title:
        Optional title line printed above the table.
    float_digits:
        Precision for float cells.

    Examples
    --------
    >>> print(render_table(["x", "y"], [[1, 2.0]], title="t"))
    t
    x | y
    --+------
    1 | 2.000
    """
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        cells.append([_format_cell(v, float_digits) for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(cells[0], widths)).rstrip()
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row_cells in cells[1:]:
        lines.append(
            " | ".join(c.ljust(w) for c, w in zip(row_cells, widths)).rstrip()
        )
    return "\n".join(lines)
