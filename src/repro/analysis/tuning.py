"""Choosing ε for a pass budget.

Lemma 4 gives passes ≈ log_{1+ε} n, so a target pass budget P implies
ε ≈ n^{1/P} - 1.  Real graphs finish far earlier than the bound
(Figure 6.3), so the analytic value is conservative; the empirical
tuner binary-searches the actual run.
"""

from __future__ import annotations

import math
from typing import Optional

from .._validation import check_positive_int
from ..core.undirected import densest_subgraph
from ..errors import ParameterError
from ..graph.undirected import UndirectedGraph


def epsilon_for_pass_budget(num_nodes: int, passes: int) -> float:
    """Analytic ε from Lemma 4's bound: log_{1+ε} n <= passes.

    Returns the smallest ε whose worst-case pass bound fits the budget;
    real graphs will finish in fewer passes.

    Examples
    --------
    >>> eps = epsilon_for_pass_budget(10**6, 10)
    >>> round(eps, 3)
    2.981
    """
    check_positive_int(num_nodes, "num_nodes")
    check_positive_int(passes, "passes")
    if num_nodes == 1:
        return 0.0
    return num_nodes ** (1.0 / passes) - 1.0


def tune_epsilon(
    graph: UndirectedGraph,
    max_passes: int,
    *,
    tolerance: float = 0.01,
    epsilon_hi: Optional[float] = None,
) -> float:
    """Smallest ε (to ``tolerance``) that meets the pass budget *on this
    graph*, found by binary search over actual runs.

    Smaller ε means better density (generally), so the tuner pushes ε
    as low as the budget allows.  Raises if even the analytic worst-case
    ε cannot meet the budget (can only happen for budgets < 2 or so).
    """
    check_positive_int(max_passes, "max_passes")
    if tolerance <= 0:
        raise ParameterError(f"tolerance must be > 0, got {tolerance}")
    if densest_subgraph(graph, 0.0).passes <= max_passes:
        return 0.0
    hi = epsilon_hi if epsilon_hi is not None else epsilon_for_pass_budget(
        max(graph.num_nodes, 2), max_passes
    )
    if densest_subgraph(graph, hi).passes > max_passes:
        raise ParameterError(
            f"even eps={hi:g} needs more than {max_passes} passes on this graph"
        )
    lo = 0.0
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if densest_subgraph(graph, mid).passes <= max_passes:
            hi = mid
        else:
            lo = mid
    return hi
