"""Unified problem/backend API: ``repro.solve(problem, backend="auto")``.

The paper's single algorithmic idea runs under three execution models;
this package is the one front door over all of them.  Describe *what*
to solve as a frozen :class:`Problem` value
(:class:`DensestSubgraph`, :class:`DensestAtLeastK`,
:class:`DirectedDensest`), and either name *how* (a registered backend)
or let the capability-aware registry dispatch on the problem's kind,
input mode, and an optional memory budget:

>>> from repro.graph.generators import clique, star, disjoint_union
>>> from repro.api import DensestSubgraph, available_backends, solve
>>> g = disjoint_union([clique(6), star(50, offset=100)])
>>> solution = solve(DensestSubgraph(g, epsilon=0.1))
>>> solution.backend, sorted(solution.nodes), solution.density
('core', [0, 1, 2, 3, 4, 5], 2.5)
>>> sorted(available_backends(DensestSubgraph(g)))
['core', 'core-csr', 'exact-flow', 'exact-lp', 'greedy', 'mapreduce', 'sketch', 'streaming']

Every backend returns the same :class:`Solution` shape (nodes, density,
certificate trace, cost report), so callers — the CLI, the experiment
harness, the examples — never hard-code an engine.  New execution
engines plug in via :func:`register`; see ``DESIGN.md`` §2.
"""

from .context import ExecutionContext
from .problems import (
    DensestAtLeastK,
    DensestSubgraph,
    DirectedDensest,
    MODE_GRAPH,
    MODE_SHARDS,
    MODE_STREAM,
    PROBLEM_KINDS,
    Problem,
)
from .registry import (
    Capabilities,
    Solver,
    available_backends,
    backend_names,
    get_backend,
    register,
    select_backend,
    solve,
)
from .solution import CostReport, Solution

# Importing the backends module registers every built-in engine.
from . import backends as _backends  # noqa: F401

__all__ = [
    # problems
    "Problem",
    "DensestSubgraph",
    "DensestAtLeastK",
    "DirectedDensest",
    "PROBLEM_KINDS",
    "MODE_GRAPH",
    "MODE_STREAM",
    "MODE_SHARDS",
    "ExecutionContext",
    # registry
    "Capabilities",
    "Solver",
    "register",
    "solve",
    "select_backend",
    "available_backends",
    "backend_names",
    "get_backend",
    # results
    "Solution",
    "CostReport",
]
