"""Registered backends wrapping every execution engine in the package.

Each backend adapts one execution model of the paper to the
:class:`~repro.api.registry.Solver` protocol:

========  ==========================================================
backend   wraps
========  ==========================================================
core      in-memory reference peels (Algorithms 1–3 + ratio sweep);
          engine="python"|"numpy"|"auto" selects the execution engine
core-csr  the vectorized CSR kernels (core pinned to engine="numpy")
streaming semi-streaming engines with O(n) between-pass state
sketch    Algorithm 1 with Count-Sketch degree counters (§5.1);
          engine="python"|"numpy"|"auto" selects the edge-scan path
mapreduce the §5.2 MapReduce drivers on the simulated runtime;
          engine="python"|"numpy"|"auto" selects record vs columnar jobs
exact-lp  Charikar's LP (undirected and directed, scipy/HiGHS)
exact-flow Goldberg's max-flow exact solver
greedy    one-node-per-step greedy baselines (Charikar-style)
exact-bruteforce subset enumeration for the ≥k problem (tiny graphs)
========  ==========================================================

Heavy optional dependencies (scipy for the LPs) are imported inside
``solve`` so that registering the backend never forces the import.
"""

from __future__ import annotations

from typing import Optional

from ..core.result import (
    DensestSubgraphResult,
    DirectedDensestSubgraphResult,
    RatioSweepResult,
    pick_best_run,
)
from ..errors import SolverError

try:  # CSR snapshots are valid graph-mode inputs when numpy is present.
    from ..kernels import CSRDigraph, CSRGraph
except ImportError:  # pragma: no cover - numpy-less installs
    CSRDigraph = CSRGraph = None
try:  # shard stores are the out-of-core input mode (need numpy too).
    from ..store.shards import ShardedEdgeStore
except ImportError:  # pragma: no cover - numpy-less installs
    ShardedEdgeStore = None
from ..graph.directed import DirectedGraph
from ..graph.undirected import UndirectedGraph
from ..streaming.memory import MemoryAccountant
from ..streaming.stream import (
    DirectedGraphEdgeStream,
    EdgeStream,
    GraphEdgeStream,
    ShardEdgeStream,
)
from .context import ExecutionContext
from .problems import (
    DensestAtLeastK,
    DensestSubgraph,
    DirectedDensest,
    MODE_GRAPH,
    MODE_SHARDS,
    MODE_STREAM,
    Problem,
)
from .registry import (
    Capabilities,
    MEM_EDGES,
    MEM_NODES,
    MEM_SKETCH,
    register,
)
from .solution import CostReport, Solution

_ALL_KINDS = frozenset(
    {"densest_subgraph", "densest_at_least_k", "directed_densest"}
)


def _reject_options(backend: str, options: dict, allowed: tuple = ()) -> None:
    """Fail loudly on option typos instead of silently ignoring them."""
    unknown = set(options) - set(allowed)
    if unknown:
        raise SolverError(
            f"backend {backend!r} got unsupported options {sorted(unknown)}; "
            f"supported: {sorted(allowed) if allowed else 'none'}"
        )


def _pop_context(options: dict) -> ExecutionContext:
    """Extract the ExecutionContext option (every backend accepts one).

    Backends honor the fields that apply to their execution model and
    ignore the rest — the context is a resource envelope, not a
    command (see :class:`~repro.api.context.ExecutionContext`).
    """
    context = options.pop("context", None)
    return context if context is not None else ExecutionContext()


def _undirected_solution(
    result: DensestSubgraphResult,
    *,
    backend: str,
    problem: Problem,
    exact: bool = False,
    cost: Optional[CostReport] = None,
    details=None,
) -> Solution:
    return Solution(
        nodes=result.nodes,
        density=result.density,
        backend=backend,
        problem_kind=problem.kind,
        exact=exact,
        certificate=result.trace,
        cost=cost if cost is not None else CostReport(passes=result.passes),
        details=details if details is not None else result,
    )


def _directed_solution(
    result: DirectedDensestSubgraphResult,
    *,
    backend: str,
    problem: Problem,
    exact: bool = False,
    cost: Optional[CostReport] = None,
    details=None,
) -> Solution:
    return Solution(
        nodes=frozenset(result.s_nodes | result.t_nodes),
        density=result.density,
        backend=backend,
        problem_kind=problem.kind,
        exact=exact,
        s_nodes=result.s_nodes,
        t_nodes=result.t_nodes,
        ratio=result.ratio,
        certificate=result.trace,
        cost=cost if cost is not None else CostReport(passes=result.passes),
        details=details if details is not None else result,
    )


def _sweep_solution(
    sweep: RatioSweepResult,
    *,
    backend: str,
    problem: Problem,
    exact: bool = False,
    cost: Optional[CostReport] = None,
    details=None,
) -> Solution:
    best = sweep.best
    return Solution(
        nodes=frozenset(best.s_nodes | best.t_nodes),
        density=best.density,
        backend=backend,
        problem_kind=problem.kind,
        exact=exact,
        s_nodes=best.s_nodes,
        t_nodes=best.t_nodes,
        ratio=best.ratio,
        certificate=best.trace,
        cost=cost if cost is not None else CostReport(passes=sweep.total_passes()),
        details=details if details is not None else sweep,
    )


def _set_solution(
    nodes,
    density: float,
    *,
    backend: str,
    problem: Problem,
    exact: bool,
    s_nodes=None,
    t_nodes=None,
    ratio: Optional[float] = None,
    cost: Optional[CostReport] = None,
    details=None,
) -> Solution:
    return Solution(
        nodes=frozenset(nodes),
        density=density,
        backend=backend,
        problem_kind=problem.kind,
        exact=exact,
        s_nodes=frozenset(s_nodes) if s_nodes is not None else None,
        t_nodes=frozenset(t_nodes) if t_nodes is not None else None,
        ratio=ratio,
        cost=cost if cost is not None else CostReport(),
        details=details,
    )


def _require_graph(
    problem: Problem,
    backend: str,
    *,
    allow_csr: bool = False,
    allow_shards: bool = False,
):
    """The problem's in-memory graph input.

    Backends built on the dict-of-dict graph API get CSR snapshots
    materialized back into graph objects (``allow_csr=False``); the
    engine-aware core backends take snapshots as-is.  Backends
    declaring the shard input mode (``allow_shards=True``) get stores
    loaded into CSR snapshots via the per-shard bincount builders — no
    dict graph is ever materialized on that path.
    """
    if problem.input_mode == MODE_SHARDS:
        if not allow_shards:
            raise SolverError(
                f"backend {backend!r} does not accept shard-store input"
            )
        store = problem.input
        if store.directed:
            return CSRDigraph.from_shards(store)
        return CSRGraph.from_shards(store)
    if problem.input_mode != MODE_GRAPH:
        raise SolverError(f"backend {backend!r} needs an in-memory graph input")
    graph = problem.input
    if not allow_csr:
        if CSRGraph is not None and isinstance(graph, CSRGraph):
            return graph.to_undirected()
        if CSRDigraph is not None and isinstance(graph, CSRDigraph):
            return graph.to_directed()
    return graph


def _directed_grid(problem: DirectedDensest) -> list:
    """The candidate ratios a sweeping backend should try."""
    from ..core.directed import default_ratio_grid

    if problem.ratio_grid is not None:
        return list(problem.ratio_grid)
    return default_ratio_grid(problem.num_nodes, problem.delta)


# ----------------------------------------------------------------------
# core — the in-memory reference engines
# ----------------------------------------------------------------------
class CoreSolver:
    """Algorithms 1–3 on an in-memory graph (the reference peel).

    Accepts an ``engine=`` option (any name in
    :data:`repro.kernels.ENGINES`), forwarded to the core peels;
    ``"auto"`` (the default) lets :func:`repro.kernels.resolve_engine`
    pick per graph.  ``"native"``/``"numba"`` request the compiled
    backend and degrade (with a warning) to the best importable tier.
    """

    name = "core"
    _engine = "auto"
    _accepts_shards = False

    def capabilities(self) -> Capabilities:
        return Capabilities(
            problems=_ALL_KINDS,
            input_modes=frozenset({MODE_GRAPH}),
            exact=False,
            memory_class=MEM_EDGES,
            semantics="batch-peel",
            # Advertise only the engines that can actually run here;
            # "native"/"numba" resolve (possibly with a fallback
            # warning) whenever the numpy tier exists underneath them.
            engines=(
                ("python", "numpy", "bucketq", "native", "numba")
                if CSRGraph is not None
                else ("python",)
            ),
        )

    def estimated_memory_words(self, problem: Problem) -> Optional[int]:
        graph = problem.input
        return 2 * graph.num_edges + 3 * graph.num_nodes

    def _engine_option(self, options: dict) -> str:
        engine = options.pop("engine", self._engine)
        allowed = self.capabilities().engines + ("auto",)
        if engine not in allowed:
            raise SolverError(
                f"backend {self.name!r} supports engine= of {sorted(allowed)}, "
                f"got {engine!r}"
            )
        return engine

    def solve(self, problem: Problem, **options) -> Solution:
        from ..core.atleast_k import densest_subgraph_atleast_k
        from ..core.directed import densest_subgraph_directed, ratio_sweep
        from ..core.undirected import densest_subgraph

        _pop_context(options)
        engine = self._engine_option(options)
        graph = _require_graph(
            problem, self.name, allow_csr=True, allow_shards=self._accepts_shards
        )
        if isinstance(problem, DensestSubgraph):
            _reject_options(self.name, options)
            result = densest_subgraph(
                graph, problem.epsilon, max_passes=problem.max_passes, engine=engine
            )
            return _undirected_solution(result, backend=self.name, problem=problem)
        if isinstance(problem, DensestAtLeastK):
            _reject_options(self.name, options, ("stop_below_k",))
            result = densest_subgraph_atleast_k(
                graph, problem.k, problem.epsilon, engine=engine, **options
            )
            return _undirected_solution(result, backend=self.name, problem=problem)
        if isinstance(problem, DirectedDensest):
            _reject_options(self.name, options, ("side_rule",))
            if problem.is_sweep:
                sweep = ratio_sweep(
                    graph,
                    epsilon=problem.epsilon,
                    delta=problem.delta,
                    ratios=problem.ratio_grid,
                    engine=engine,
                    **options,
                )
                return _sweep_solution(sweep, backend=self.name, problem=problem)
            result = densest_subgraph_directed(
                graph, problem.ratio, problem.epsilon, engine=engine, **options
            )
            return _directed_solution(result, backend=self.name, problem=problem)
        raise SolverError(f"backend {self.name!r} cannot solve {problem.kind!r}")


register(CoreSolver)


# ----------------------------------------------------------------------
# core-csr — the vectorized CSR kernel engine, pinned to numpy
# ----------------------------------------------------------------------
class CoreCSRSolver(CoreSolver):
    """Algorithms 1–3 on the vectorized CSR kernels (numpy, always).

    Functionally identical to ``core`` with ``engine="numpy"`` — same
    node sets, same traces — but pinned to the kernel layer so callers
    (and dispatch tables) can name the vectorized engine explicitly.
    Prefers CSR snapshot inputs, which skip the per-solve conversion
    entirely; plain graphs are snapshotted on entry, and shard stores
    are loaded through ``CSRGraph.from_shards`` (per-shard bincount
    passes, no dict graph).
    """

    name = "core-csr"
    _engine = "numpy"
    _accepts_shards = True

    def capabilities(self) -> Capabilities:
        return Capabilities(
            problems=_ALL_KINDS,
            input_modes=frozenset({MODE_GRAPH, MODE_SHARDS}),
            exact=False,
            memory_class=MEM_EDGES,
            semantics="batch-peel",
            engines=("numpy",),
        )

    def estimated_memory_words(self, problem: Problem) -> Optional[int]:
        graph = problem.input
        # Symmetric CSR: 2m int32 indices + 2m float64 weights (~3m
        # words) + indptr/degrees/masks (~3n words).
        return 3 * graph.num_edges + 3 * graph.num_nodes

    def _engine_option(self, options: dict) -> str:
        engine = options.pop("engine", "numpy")
        if engine not in ("numpy", "auto"):
            raise SolverError(
                f"backend 'core-csr' is pinned to the numpy engine; "
                f"got engine={engine!r} (use backend='core' instead)"
            )
        return "numpy"


if CSRGraph is not None:  # the numpy-pinned backend needs its engine
    register(CoreCSRSolver)


# ----------------------------------------------------------------------
# streaming — the semi-streaming engines (O(n) between-pass state)
# ----------------------------------------------------------------------
def _as_stream(problem: Problem) -> EdgeStream:
    """The problem's input as an EdgeStream (graphs get a zero-copy view).

    CSR snapshots implement the ``nodes()``/``weighted_edges()`` slice
    of the graph protocol, so the stream views wrap them directly;
    shard stores become :class:`ShardEdgeStream` passes (memmap chunks,
    the out-of-core mode).
    """
    if isinstance(problem.input, EdgeStream):
        return problem.input
    if ShardedEdgeStore is not None and isinstance(problem.input, ShardedEdgeStore):
        return ShardEdgeStream(problem.input)
    if isinstance(problem.input, DirectedGraph) or (
        CSRDigraph is not None and isinstance(problem.input, CSRDigraph)
    ):
        return DirectedGraphEdgeStream(problem.input)
    return GraphEdgeStream(problem.input)


class _StreamMeter:
    """Before/after snapshot of a stream's accounting for a CostReport."""

    def __init__(self, stream: EdgeStream) -> None:
        self.stream = stream
        self._passes = stream.passes_made
        self._edges = stream.edges_streamed
        self._bytes = stream.bytes_scanned

    def cost(
        self, passes: int, accountant: Optional[MemoryAccountant]
    ) -> CostReport:
        return CostReport(
            passes=passes,
            stream_passes=self.stream.passes_made - self._passes,
            edges_streamed=self.stream.edges_streamed - self._edges,
            bytes_scanned=self.stream.bytes_scanned - self._bytes,
            memory_words=(
                int(accountant.total_words) if accountant is not None else None
            ),
        )


def _compaction_policy(options: dict, context: ExecutionContext, problem: Problem):
    """Resolve the streaming/sketch backends' ``compaction=`` option.

    Explicit ``compaction=`` wins; otherwise compaction auto-enables
    for shard-store inputs solved under an explicit resource envelope
    (a memory budget, spill directory, or compaction threshold on the
    context) — the out-of-core shape where rescanning every shard per
    pass is the dominant cost.
    """
    from ..streaming.compaction import context_policy

    return context_policy(
        options.pop("compaction", None),
        context,
        shard_input=problem.input_mode == MODE_SHARDS,
    )


@register
class StreamingSolver:
    """Algorithms 1–3 against the multi-pass EdgeStream interface.

    Accepts stream, graph, and shard-store inputs; a graph is adapted
    through a :class:`~repro.streaming.stream.GraphEdgeStream` view
    without copying the edge set, and a shard store through
    :class:`~repro.streaming.stream.ShardEdgeStream` — the out-of-core
    mode, where each pass walks memmap shard chunks and only the O(n)
    counters stay resident.

    A ``compaction=`` option (bool, threshold, or
    :class:`~repro.streaming.compaction.CompactionPolicy`) controls
    pass compaction; left unset, it auto-enables for shard-store
    inputs solved under an explicit resource envelope (memory budget,
    spill dir, or compaction threshold on the
    :class:`~repro.api.context.ExecutionContext`).  Results are
    identical either way; the CostReport's bytes/edges shrink.
    """

    name = "streaming"

    def capabilities(self) -> Capabilities:
        return Capabilities(
            problems=_ALL_KINDS,
            input_modes=frozenset({MODE_GRAPH, MODE_STREAM, MODE_SHARDS}),
            exact=False,
            memory_class=MEM_NODES,
            semantics="batch-peel",
        )

    def estimated_memory_words(self, problem: Problem) -> Optional[int]:
        return 3 * problem.num_nodes + 8

    def solve(self, problem: Problem, **options) -> Solution:
        from ..streaming.engine import (
            stream_densest_subgraph,
            stream_densest_subgraph_atleast_k,
            stream_densest_subgraph_directed,
        )
        from ..streaming.sweep import stream_ratio_sweep

        from ..faults import RunControl
        from ..streaming.checkpoint import CheckpointConfig

        context = _pop_context(options)
        _reject_options(self.name, options, ("accountant", "compaction"))
        compaction = _compaction_policy(options, context, problem)
        accountant = options.get("accountant")
        # context.workers > 1 turns on thread-parallel per-shard degree
        # scans (honored by shard-backed streams; identical results).
        scan_threads = context.workers if context.workers > 1 else None
        # Robustness knobs: checkpoint/resume for the undirected peels,
        # cooperative cancel/deadline/fault checks for every peel.
        control = RunControl.from_context(context)
        checkpoint = (
            CheckpointConfig(
                path=context.checkpoint_dir, every=context.checkpoint_every
            )
            if context.checkpoint_dir
            else None
        )
        stream = _as_stream(problem)
        meter = _StreamMeter(stream)
        if isinstance(problem, DensestSubgraph):
            result = stream_densest_subgraph(
                stream,
                problem.epsilon,
                max_passes=problem.max_passes,
                accountant=accountant,
                compaction=compaction,
                scan_threads=scan_threads,
                checkpoint=checkpoint,
                control=control,
            )
            return _undirected_solution(
                result,
                backend=self.name,
                problem=problem,
                cost=meter.cost(result.passes, accountant),
            )
        if isinstance(problem, DensestAtLeastK):
            result = stream_densest_subgraph_atleast_k(
                stream,
                problem.k,
                problem.epsilon,
                accountant=accountant,
                compaction=compaction,
                scan_threads=scan_threads,
                checkpoint=checkpoint,
                control=control,
            )
            return _undirected_solution(
                result,
                backend=self.name,
                problem=problem,
                cost=meter.cost(result.passes, accountant),
            )
        if isinstance(problem, DirectedDensest):
            if problem.is_sweep:
                sweep = stream_ratio_sweep(
                    stream,
                    problem.epsilon,
                    delta=problem.delta,
                    ratios=problem.ratio_grid,
                    accountant=accountant,
                    compaction=compaction,
                    scan_threads=scan_threads,
                )
                return _sweep_solution(
                    sweep,
                    backend=self.name,
                    problem=problem,
                    cost=meter.cost(sweep.total_passes(), accountant),
                )
            result = stream_densest_subgraph_directed(
                stream,
                problem.ratio,
                problem.epsilon,
                accountant=accountant,
                compaction=compaction,
                scan_threads=scan_threads,
                control=control,
            )
            return _directed_solution(
                result,
                backend=self.name,
                problem=problem,
                cost=meter.cost(result.passes, accountant),
            )
        raise SolverError(f"backend {self.name!r} cannot solve {problem.kind!r}")


# ----------------------------------------------------------------------
# sketch — Algorithm 1 with Count-Sketch degree counters
# ----------------------------------------------------------------------
@register
class SketchSolver:
    """Sublinear-memory Algorithm 1 (§5.1); approximate removals.

    Accepts an ``engine="auto"|"python"|"numpy"`` option selecting the
    per-pass edge-scan implementation (vectorized chunked scan for
    int-labeled streams vs the record loop); the sketch state is
    identical either way.  Shard stores are accepted as the
    out-of-core input mode, and the ``compaction=`` option works as on
    the ``streaming`` backend (auto-enabled under the same
    conditions).
    """

    name = "sketch"

    DEFAULT_BUCKETS = 1024
    DEFAULT_TABLES = 5

    def capabilities(self) -> Capabilities:
        return Capabilities(
            problems=frozenset({"densest_subgraph"}),
            input_modes=frozenset({MODE_GRAPH, MODE_STREAM, MODE_SHARDS}),
            exact=False,
            memory_class=MEM_SKETCH,
            semantics="sketch-peel",
            engines=("python", "numpy") if CSRGraph is not None else ("python",),
        )

    def estimated_memory_words(self, problem: Problem) -> Optional[int]:
        # Assumes the default sketch shape; explicit buckets/tables
        # options change the real footprint but not dispatch.
        return (
            self.DEFAULT_BUCKETS * self.DEFAULT_TABLES
            + problem.num_nodes // 32
            + 8
        )

    def solve(self, problem: Problem, **options) -> Solution:
        from ..streaming.sketch_engine import sketch_densest_subgraph

        if not isinstance(problem, DensestSubgraph):
            raise SolverError(f"backend {self.name!r} cannot solve {problem.kind!r}")
        context = _pop_context(options)
        _reject_options(
            self.name,
            options,
            ("buckets", "tables", "seed", "accountant", "engine", "compaction"),
        )
        compaction = _compaction_policy(options, context, problem)
        accountant = options.get("accountant")
        stream = _as_stream(problem)
        meter = _StreamMeter(stream)
        result = sketch_densest_subgraph(
            stream,
            problem.epsilon,
            buckets=options.get("buckets", self.DEFAULT_BUCKETS),
            tables=options.get("tables", self.DEFAULT_TABLES),
            seed=options.get("seed", 0),
            max_passes=problem.max_passes,
            accountant=accountant,
            engine=options.get("engine", "auto"),
            compaction=compaction,
        )
        return _undirected_solution(
            result,
            backend=self.name,
            problem=problem,
            cost=meter.cost(result.passes, accountant),
        )


# ----------------------------------------------------------------------
# mapreduce — the §5.2 drivers on the simulated runtime
# ----------------------------------------------------------------------
@register
class MapReduceSolver:
    """Algorithms 1–3 as metered MapReduce job chains.

    Accepts an ``engine="auto"|"python"|"numpy"`` option selecting the
    runtime path: record-at-a-time jobs or the columnar batch jobs
    (``"auto"`` goes columnar for int-labeled graphs).  CSR snapshots
    are accepted directly — the columnar engine reads their edge
    arrays without materializing a dict graph — and shard stores are
    loaded through the per-shard CSR builders.  An
    :class:`~repro.api.context.ExecutionContext` with ``workers > 1``
    (and no explicit ``runtime=``) runs the columnar rounds on a
    spawned process pool; the pool lives for this solve and is shut
    down before returning.  ``context.shuffle_dir`` routes the pool's
    intermediate data through the file-backed shuffle, and the
    ``fused=True`` option collapses each peel pass to a single
    broadcast-parameter degree round (DESIGN.md §13) — both are
    bit-exact against the serial driver.
    """

    name = "mapreduce"

    def capabilities(self) -> Capabilities:
        return Capabilities(
            problems=_ALL_KINDS,
            input_modes=frozenset({MODE_GRAPH, MODE_SHARDS}),
            exact=False,
            memory_class=MEM_EDGES,
            semantics="batch-peel",
            engines=("python", "numpy") if CSRGraph is not None else ("python",),
        )

    def estimated_memory_words(self, problem: Problem) -> Optional[int]:
        graph = problem.input
        return 3 * graph.num_edges + 3 * graph.num_nodes

    def solve(self, problem: Problem, **options) -> Solution:
        context = _pop_context(options)
        _reject_options(self.name, options, ("runtime", "engine", "fused"))
        runtime = options.get("runtime")
        fused = bool(options.get("fused", False))
        owned_runtime = None
        if runtime is None and context.workers > 1:
            from ..mapreduce.runtime import MapReduceRuntime

            runtime = owned_runtime = MapReduceRuntime(
                executor="process",
                workers=context.workers,
                fault_plan=context.fault_plan,
                shuffle_dir=context.shuffle_dir,
            )
        try:
            return self._solve(
                problem, runtime, options.get("engine", "auto"), fused
            )
        finally:
            if owned_runtime is not None:
                owned_runtime.close()

    def _solve(
        self, problem: Problem, runtime, engine: str, fused: bool = False
    ) -> Solution:
        from ..mapreduce.densest import (
            mr_densest_subgraph,
            mr_densest_subgraph_atleast_k,
            mr_densest_subgraph_directed,
        )

        graph = _require_graph(problem, self.name, allow_csr=True, allow_shards=True)
        if isinstance(problem, DensestSubgraph):
            report = mr_densest_subgraph(
                graph, problem.epsilon, runtime=runtime, engine=engine, fused=fused
            )
            return _undirected_solution(
                report.result,
                backend=self.name,
                problem=problem,
                cost=CostReport(
                    passes=report.result.passes,
                    mapreduce_rounds=report.total_rounds(),
                ),
                details=report,
            )
        if isinstance(problem, DensestAtLeastK):
            report = mr_densest_subgraph_atleast_k(
                graph,
                problem.k,
                problem.epsilon,
                runtime=runtime,
                engine=engine,
                fused=fused,
            )
            return _undirected_solution(
                report.result,
                backend=self.name,
                problem=problem,
                cost=CostReport(
                    passes=report.result.passes,
                    mapreduce_rounds=report.total_rounds(),
                ),
                details=report,
            )
        if isinstance(problem, DirectedDensest):
            if problem.is_sweep:
                # Resolve the engine once for the whole sweep, and give
                # the columnar drivers a resident CSR snapshot so the
                # per-ratio calls read edge arrays instead of repeating
                # the O(m) weighted_edges() pass and the label scan.
                from ..mapreduce.densest import resolve_mr_engine

                engine = resolve_mr_engine(engine, graph)
                if engine == "numpy" and isinstance(graph, DirectedGraph):
                    graph = CSRDigraph.from_directed(graph)
                reports = [
                    mr_densest_subgraph_directed(
                        graph,
                        ratio,
                        problem.epsilon,
                        runtime=runtime,
                        engine=engine,
                        fused=fused,
                    )
                    for ratio in _directed_grid(problem)
                ]
                by_ratio = tuple(r.result for r in reports)
                best = pick_best_run(by_ratio)
                sweep = RatioSweepResult(
                    best=best,
                    by_ratio=by_ratio,
                    delta=problem.delta if problem.ratio_grid is None else None,
                )
                return _sweep_solution(
                    sweep,
                    backend=self.name,
                    problem=problem,
                    cost=CostReport(
                        passes=sweep.total_passes(),
                        mapreduce_rounds=sum(r.total_rounds() for r in reports),
                    ),
                    details=sweep,
                )
            report = mr_densest_subgraph_directed(
                graph,
                problem.ratio,
                problem.epsilon,
                runtime=runtime,
                engine=engine,
                fused=fused,
            )
            return _directed_solution(
                report.result,
                backend=self.name,
                problem=problem,
                cost=CostReport(
                    passes=report.result.passes,
                    mapreduce_rounds=report.total_rounds(),
                ),
                details=report,
            )
        raise SolverError(f"backend {self.name!r} cannot solve {problem.kind!r}")


# ----------------------------------------------------------------------
# exact-lp — Charikar's LP relaxations (scipy/HiGHS)
# ----------------------------------------------------------------------
@register
class ExactLPSolver:
    """Exact ρ* via Charikar's LP; directed variant sweeps candidate c."""

    name = "exact-lp"

    def capabilities(self) -> Capabilities:
        return Capabilities(
            problems=frozenset({"densest_subgraph", "directed_densest"}),
            input_modes=frozenset({MODE_GRAPH}),
            exact=True,
            memory_class=MEM_EDGES,
            semantics="exact",
        )

    def estimated_memory_words(self, problem: Problem) -> Optional[int]:
        return None  # LP workspace is solver-internal; no honest estimate

    def solve(self, problem: Problem, **options) -> Solution:
        _pop_context(options)
        graph = _require_graph(problem, self.name)
        if isinstance(problem, DensestSubgraph):
            from ..exact.lp import lp_densest_subgraph

            _reject_options(self.name, options)
            nodes, rho = lp_densest_subgraph(graph)
            return _set_solution(
                nodes, rho, backend=self.name, problem=problem, exact=True
            )
        if isinstance(problem, DirectedDensest):
            from ..exact.directed_lp import directed_lp_densest_subgraph

            _reject_options(self.name, options)
            if problem.ratio is not None:
                ratios = [problem.ratio]
            elif problem.ratio_grid is not None:
                ratios = list(problem.ratio_grid)
            else:
                # Full exact candidate set {a/b}: only viable on the
                # tiny graphs the paper's Table 2 regime uses.
                ratios = None
            s_set, t_set, rho = directed_lp_densest_subgraph(graph, ratios=ratios)
            return _set_solution(
                s_set | t_set,
                rho,
                backend=self.name,
                problem=problem,
                exact=True,
                s_nodes=s_set,
                t_nodes=t_set,
            )
        raise SolverError(f"backend {self.name!r} cannot solve {problem.kind!r}")


# ----------------------------------------------------------------------
# exact-flow — Goldberg's binary-search max-flow solver
# ----------------------------------------------------------------------
@register
class ExactFlowSolver:
    """Exact ρ* via Goldberg's parametric max-flow construction."""

    name = "exact-flow"

    def capabilities(self) -> Capabilities:
        return Capabilities(
            problems=frozenset({"densest_subgraph"}),
            input_modes=frozenset({MODE_GRAPH}),
            exact=True,
            memory_class=MEM_EDGES,
            semantics="exact",
        )

    def estimated_memory_words(self, problem: Problem) -> Optional[int]:
        graph = problem.input
        # Flow network: ~2 arcs per edge + 2n source/sink arcs, 3 words each.
        return 6 * graph.num_edges + 6 * graph.num_nodes

    def solve(self, problem: Problem, **options) -> Solution:
        from ..exact.goldberg import goldberg_densest_subgraph

        if not isinstance(problem, DensestSubgraph):
            raise SolverError(f"backend {self.name!r} cannot solve {problem.kind!r}")
        _pop_context(options)
        graph = _require_graph(problem, self.name)
        _reject_options(self.name, options, ("tolerance",))
        nodes, rho = goldberg_densest_subgraph(graph, **options)
        return _set_solution(
            nodes, rho, backend=self.name, problem=problem, exact=True
        )


# ----------------------------------------------------------------------
# greedy — one-node-per-step baselines (Charikar-style)
# ----------------------------------------------------------------------
@register
class GreedySolver:
    """Classical one-node-at-a-time greedy peels (the ε→0 baselines)."""

    name = "greedy"

    def capabilities(self) -> Capabilities:
        return Capabilities(
            problems=_ALL_KINDS,
            input_modes=frozenset({MODE_GRAPH}),
            exact=False,
            memory_class=MEM_EDGES,
            semantics="greedy-peel",
        )

    def estimated_memory_words(self, problem: Problem) -> Optional[int]:
        graph = problem.input
        return 2 * graph.num_edges + 4 * graph.num_nodes

    def solve(self, problem: Problem, **options) -> Solution:
        _pop_context(options)
        graph = _require_graph(problem, self.name)
        if isinstance(problem, DensestSubgraph):
            from ..core.charikar import greedy_densest_subgraph

            _reject_options(self.name, options)
            result = greedy_densest_subgraph(graph)
            return _undirected_solution(result, backend=self.name, problem=problem)
        if isinstance(problem, DensestAtLeastK):
            from ..exact.atleast_k_baselines import greedy_suffix_atleast_k

            _reject_options(self.name, options)
            nodes, rho = greedy_suffix_atleast_k(graph, problem.k)
            return _set_solution(
                nodes, rho, backend=self.name, problem=problem, exact=False
            )
        if isinstance(problem, DirectedDensest):
            from ..exact.peeling import charikar_directed_peeling

            _reject_options(self.name, options)
            if problem.is_sweep:
                best = None
                best_ratio = None
                for ratio in _directed_grid(problem):
                    s_set, t_set, rho = charikar_directed_peeling(graph, ratio)
                    if best is None or rho > best[2]:
                        best = (s_set, t_set, rho)
                        best_ratio = ratio
                s_set, t_set, rho = best
                ratio = best_ratio
            else:
                ratio = problem.ratio
                s_set, t_set, rho = charikar_directed_peeling(graph, ratio)
            return _set_solution(
                s_set | t_set,
                rho,
                backend=self.name,
                problem=problem,
                exact=False,
                s_nodes=s_set,
                t_nodes=t_set,
                ratio=ratio,
            )
        raise SolverError(f"backend {self.name!r} cannot solve {problem.kind!r}")


# ----------------------------------------------------------------------
# exact-bruteforce — subset enumeration for the ≥k problem
# ----------------------------------------------------------------------
@register
class BruteForceSolver:
    """Exact ρ*_{≥k} by enumeration; refuses graphs beyond 16 nodes."""

    name = "exact-bruteforce"

    def capabilities(self) -> Capabilities:
        return Capabilities(
            problems=frozenset({"densest_at_least_k"}),
            input_modes=frozenset({MODE_GRAPH}),
            exact=True,
            memory_class=MEM_EDGES,
            semantics="exact",
        )

    def estimated_memory_words(self, problem: Problem) -> Optional[int]:
        graph = problem.input
        return 2 * graph.num_edges + 2 * graph.num_nodes

    def solve(self, problem: Problem, **options) -> Solution:
        from ..exact.atleast_k_baselines import brute_force_atleast_k

        if not isinstance(problem, DensestAtLeastK):
            raise SolverError(f"backend {self.name!r} cannot solve {problem.kind!r}")
        _pop_context(options)
        graph = _require_graph(problem, self.name)
        _reject_options(self.name, options)
        nodes, rho = brute_force_atleast_k(graph, problem.k)
        return _set_solution(
            nodes, rho, backend=self.name, problem=problem, exact=True
        )
