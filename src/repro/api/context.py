"""Execution context: resource knobs threaded through :func:`repro.solve`.

A :class:`Problem` says *what* to solve and a backend name says *which
execution model*; the :class:`ExecutionContext` says *with which
machine resources*.  It is deliberately declarative — a frozen bag of
knobs every backend may read and is free to ignore when a field does
not apply to its execution model:

========== ==========================================================
field       honored by
========== ==========================================================
workers     ``mapreduce`` — ``workers > 1`` runs the columnar runtime
            on a spawned process pool (``executor="process"``);
            ``streaming`` — ``workers > 1`` turns on thread-parallel
            per-shard degree scans (shard-store inputs; results and
            accounting are identical to the sequential scan)
memory_     ``backend="auto"`` dispatch — same unit (words) and
budget      semantics as ``solve(memory_budget=...)``
spill_dir   callers converting edge sources into shard stores (the
            CLI's ``--spill-dir`` pipeline, ``examples/out_of_core``)
            and the ``streaming``/``sketch`` backends' pass-compaction
            rewrites (spill sinks live under it)
shard_      number of hash partitions for those conversions (and for
count       compaction spill sinks)
shuffle_    ``mapreduce`` — directory for the file-backed distributed
dir         shuffle; with ``workers > 1`` map tasks spill
            hash-partitioned columnar runs under it and reduce tasks
            memmap only their partition's runs, so intermediate data
            never routes through the driver (DESIGN.md §13)
compaction_ ``streaming``/``sketch`` — pass-compaction shrink trigger
threshold   in (0, 1]; setting it (or a memory budget / spill dir) on
            a shard-store input auto-enables compaction
checkpoint_ ``streaming`` — directory for peel checkpoints; long peels
dir         persist their between-pass state every
            ``checkpoint_every`` passes and resume from it (see
            :mod:`repro.streaming.checkpoint`)
checkpoint_ checkpoint interval in passes (default 16; only read when
every       ``checkpoint_dir`` is set)
cancel_     ``streaming`` — a ``threading.Event`` checked between peel
event       passes; setting it unwinds the solve with
            :class:`~repro.errors.JobCancelledError` (the serving
            tier's cooperative DELETE /jobs/<id>)
deadline_   ``streaming`` — wall-clock budget in seconds from solve
seconds     start; overrunning it raises
            :class:`~repro.errors.DeadlineExceededError`.  The serving
            tier also feeds it (min'd with a per-request ``deadline``)
            into the degradation ladder's affordability check
            (DESIGN.md §14)
fault_plan  fault-injection schedule
            (:class:`~repro.faults.FaultPlan`) consulted by the store
            writer, the peel engines, the process executor, and the
            serving tier's ``serve.solve`` / ``catalog.read`` /
            ``catalog.write`` sites; ``None`` (production)
            short-circuits every consultation
========== ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .._validation import check_positive_int
from ..errors import ParameterError


@dataclass(frozen=True)
class ExecutionContext:
    """Resource envelope for one :func:`repro.solve` call.

    Examples
    --------
    >>> ExecutionContext(workers=4).workers
    4
    """

    workers: int = 1
    memory_budget: Optional[int] = None
    spill_dir: Optional[str] = None
    shard_count: int = 8
    shuffle_dir: Optional[str] = None
    compaction_threshold: Optional[float] = None
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 16
    cancel_event: Optional[object] = None
    deadline_seconds: Optional[float] = None
    fault_plan: Optional[object] = None

    def __post_init__(self) -> None:
        check_positive_int(self.workers, "workers")
        check_positive_int(self.shard_count, "shard_count")
        check_positive_int(self.checkpoint_every, "checkpoint_every")
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise ParameterError(
                f"memory_budget must be positive, got {self.memory_budget}"
            )
        if self.compaction_threshold is not None and not (
            0.0 < self.compaction_threshold <= 1.0
        ):
            raise ParameterError(
                f"compaction_threshold must be in (0, 1], got "
                f"{self.compaction_threshold}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ParameterError(
                f"deadline_seconds must be positive, got {self.deadline_seconds}"
            )
