"""Execution context: resource knobs threaded through :func:`repro.solve`.

A :class:`Problem` says *what* to solve and a backend name says *which
execution model*; the :class:`ExecutionContext` says *with which
machine resources*.  It is deliberately declarative — a frozen bag of
knobs every backend may read and is free to ignore when a field does
not apply to its execution model:

========== ==========================================================
field       honored by
========== ==========================================================
workers     ``mapreduce`` — ``workers > 1`` runs the columnar runtime
            on a spawned process pool (``executor="process"``);
            ``streaming`` — ``workers > 1`` turns on thread-parallel
            per-shard degree scans (shard-store inputs; results and
            accounting are identical to the sequential scan)
memory_     ``backend="auto"`` dispatch — same unit (words) and
budget      semantics as ``solve(memory_budget=...)``
spill_dir   callers converting edge sources into shard stores (the
            CLI's ``--spill-dir`` pipeline, ``examples/out_of_core``)
            and the ``streaming``/``sketch`` backends' pass-compaction
            rewrites (spill sinks live under it)
shard_      number of hash partitions for those conversions (and for
count       compaction spill sinks)
compaction_ ``streaming``/``sketch`` — pass-compaction shrink trigger
threshold   in (0, 1]; setting it (or a memory budget / spill dir) on
            a shard-store input auto-enables compaction
========== ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .._validation import check_positive_int
from ..errors import ParameterError


@dataclass(frozen=True)
class ExecutionContext:
    """Resource envelope for one :func:`repro.solve` call.

    Examples
    --------
    >>> ExecutionContext(workers=4).workers
    4
    """

    workers: int = 1
    memory_budget: Optional[int] = None
    spill_dir: Optional[str] = None
    shard_count: int = 8
    compaction_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        check_positive_int(self.workers, "workers")
        check_positive_int(self.shard_count, "shard_count")
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise ParameterError(
                f"memory_budget must be positive, got {self.memory_budget}"
            )
        if self.compaction_threshold is not None and not (
            0.0 < self.compaction_threshold <= 1.0
        ):
            raise ParameterError(
                f"compaction_threshold must be in (0, 1], got "
                f"{self.compaction_threshold}"
            )
