"""Problem descriptions accepted by :func:`repro.solve`.

A *problem* is a frozen value object pairing the paper's optimization
task with its input and algorithm parameters — and nothing about *how*
to solve it.  The execution model (in-memory, semi-streaming, sketch,
MapReduce, exact baseline) is chosen separately, by naming a backend or
letting the registry dispatch on the problem's kind and input mode.

Inputs may be an in-memory :class:`~repro.graph.undirected.UndirectedGraph`
/ :class:`~repro.graph.directed.DirectedGraph`, a multi-pass
:class:`~repro.streaming.stream.EdgeStream`, or an on-disk
:class:`~repro.store.ShardedEdgeStore` (the out-of-core input mode);
:meth:`Problem.input_mode` reports which, and backends declare which
modes they accept.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Dict, Optional, Tuple, Union

from .._validation import check_epsilon, check_positive_float, check_positive_int
from ..errors import ParameterError
from ..graph.directed import DirectedGraph
from ..graph.undirected import UndirectedGraph
from ..streaming.stream import DirectedGraphEdgeStream, EdgeStream, GraphEdgeStream

try:  # CSR snapshots are first-class graph inputs when numpy is present.
    from ..kernels import CSRDigraph, CSRGraph

    _UNDIRECTED_TYPES: tuple = (UndirectedGraph, CSRGraph)
    _DIRECTED_TYPES: tuple = (DirectedGraph, CSRDigraph)
except ImportError:  # pragma: no cover - numpy-less installs
    _UNDIRECTED_TYPES = (UndirectedGraph,)
    _DIRECTED_TYPES = (DirectedGraph,)

try:  # shard stores are first-class out-of-core inputs (need numpy).
    from ..store.shards import ShardedEdgeStore

    _STORE_TYPES: tuple = (ShardedEdgeStore,)
except ImportError:  # pragma: no cover - numpy-less installs
    ShardedEdgeStore = None
    _STORE_TYPES = ()

_INPUT_TYPES = _UNDIRECTED_TYPES + _DIRECTED_TYPES + (EdgeStream,) + _STORE_TYPES

GraphInput = Union[UndirectedGraph, DirectedGraph, EdgeStream]

#: Input modes a backend can declare in its capabilities.
MODE_GRAPH = "graph"
MODE_STREAM = "stream"
MODE_SHARDS = "shards"


def _check_undirected_input(input_obj, problem_name: str) -> None:
    """Reject directed inputs, including graph-backed directed streams.

    Bare streams (file, memory, generator) carry no orientation
    metadata and cannot be validated here; callers streaming directed
    data from such sources must use :class:`DirectedDensest`.  Shard
    stores carry the flag in their manifest and are checked.
    """
    if isinstance(input_obj, _DIRECTED_TYPES + (DirectedGraphEdgeStream,)) or (
        _STORE_TYPES and isinstance(input_obj, _STORE_TYPES) and input_obj.directed
    ):
        raise ParameterError(
            f"{problem_name} takes an undirected input; use DirectedDensest"
        )


@dataclass(frozen=True, eq=False)
class Problem:
    """Base class of all problem descriptions.

    Subclasses set :attr:`kind` (the registry's dispatch key) and add
    their parameters.  Instances are immutable; the held input object
    is shared, not copied.
    """

    kind: ClassVar[str] = ""

    input: GraphInput

    def __post_init__(self) -> None:
        if not isinstance(self.input, _INPUT_TYPES):
            raise ParameterError(
                f"problem input must be an UndirectedGraph, DirectedGraph, "
                f"CSR snapshot, EdgeStream, or ShardedEdgeStore, "
                f"got {type(self.input).__name__}"
            )

    @property
    def input_mode(self) -> str:
        """``"graph"``, ``"stream"``, or ``"shards"`` per the input type."""
        if isinstance(self.input, EdgeStream):
            return MODE_STREAM
        if _STORE_TYPES and isinstance(self.input, _STORE_TYPES):
            return MODE_SHARDS
        return MODE_GRAPH

    @property
    def num_nodes(self) -> int:
        """|V| of the input (one counted discovery pass for bare streams)."""
        return self.input.num_nodes

    def canonical_params(self) -> Dict[str, object]:
        """The problem's parameters in canonical, input-free form.

        Every field except ``input``, with names sorted and values
        normalized to plain python types (numpy scalars unwrapped,
        tuples as lists), so two problem instances describing the same
        task — ``eps=0.1`` vs ``eps=.1``, kwargs in any order, numpy
        vs python numbers — produce the *identical* dict and therefore
        the identical cache key.  The serving layer's result catalog
        keys on exactly this (see :func:`repro.serve.catalog.result_key`).

        Examples
        --------
        >>> from repro.graph.generators import clique
        >>> DensestSubgraph(clique(3), epsilon=.1).canonical_params()
        {'epsilon': 0.1, 'max_passes': None}
        """
        return {
            f.name: _canonical_value(
                getattr(self, f.name), f.name, as_float="float" in str(f.type)
            )
            for f in sorted(fields(self), key=lambda f: f.name)
            if f.name != "input"
        }


def _canonical_value(value, name: str, as_float: bool = False):
    """Normalize one parameter value for canonical hashing.

    ``as_float`` marks float-typed fields so an integer-valued argument
    (``epsilon=1``) hashes identically to its float spelling
    (``epsilon=1.0``).
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return float(value) if as_float else int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, (tuple, list)):
        return [_canonical_value(v, name, as_float) for v in value]
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        return _canonical_value(item(), name, as_float)
    raise ParameterError(
        f"problem parameter {name!r} has non-canonicalizable type "
        f"{type(value).__name__}"
    )


@dataclass(frozen=True, eq=False)
class DensestSubgraph(Problem):
    """Undirected densest subgraph (the paper's Algorithm 1 setting).

    Parameters
    ----------
    input:
        Undirected graph or undirected edge stream.
    epsilon:
        Peeling slack ε ≥ 0; approximation backends guarantee 2(1+ε).
        Exact backends ignore it.
    max_passes:
        Optional safety cap on peeling passes (backends that do not
        peel ignore it).

    Examples
    --------
    >>> from repro.graph.generators import clique
    >>> DensestSubgraph(clique(4), epsilon=0.1).kind
    'densest_subgraph'
    """

    kind: ClassVar[str] = "densest_subgraph"

    epsilon: float = 0.5
    max_passes: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_undirected_input(self.input, "DensestSubgraph")
        check_epsilon(self.epsilon)


@dataclass(frozen=True, eq=False)
class DensestAtLeastK(Problem):
    """Densest subgraph with at least ``k`` nodes (Algorithm 2 setting)."""

    kind: ClassVar[str] = "densest_at_least_k"

    k: int = 1
    epsilon: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_undirected_input(self.input, "DensestAtLeastK")
        check_positive_int(self.k, "k")
        check_epsilon(self.epsilon)


@dataclass(frozen=True, eq=False)
class DirectedDensest(Problem):
    """Directed densest subgraph (Algorithm 3 setting).

    Exactly one search strategy applies:

    * ``ratio`` fixed — a single run at c = ``ratio``;
    * otherwise — a sweep over ``ratio_grid`` when given, else over the
      paper's powers-of-``delta`` grid covering [1/n, n].
    """

    kind: ClassVar[str] = "directed_densest"

    ratio: Optional[float] = None
    ratio_grid: Optional[Tuple[float, ...]] = None
    delta: float = 2.0
    epsilon: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if isinstance(self.input, _UNDIRECTED_TYPES + (GraphEdgeStream,)) or (
            _STORE_TYPES
            and isinstance(self.input, _STORE_TYPES)
            and not self.input.directed
        ):
            raise ParameterError(
                "DirectedDensest takes a directed input; use DensestSubgraph"
            )
        check_epsilon(self.epsilon)
        if self.ratio is not None and self.ratio_grid is not None:
            raise ParameterError("give either ratio or ratio_grid, not both")
        if self.ratio is not None:
            check_positive_float(self.ratio, "ratio")
        if self.ratio_grid is not None:
            if not self.ratio_grid:
                raise ParameterError("ratio_grid must be non-empty")
            # Normalize to a sorted, deduplicated tuple so every backend
            # sweeps the same candidate set (the engines' own sweeps
            # dedupe internally; backends iterating the grid verbatim
            # must see the identical sequence for cross-backend parity).
            object.__setattr__(
                self,
                "ratio_grid",
                tuple(sorted({float(c) for c in self.ratio_grid})),
            )
            for c in self.ratio_grid:
                check_positive_float(c, "ratio_grid entry")
        check_positive_float(self.delta, "delta")

    @property
    def is_sweep(self) -> bool:
        """Whether this problem asks for a ratio search rather than one c."""
        return self.ratio is None


#: All concrete problem kinds, for registry validation.
PROBLEM_KINDS = frozenset(
    cls.kind for cls in (DensestSubgraph, DensestAtLeastK, DirectedDensest)
)
