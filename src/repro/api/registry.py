"""Capability-aware solver registry and the :func:`solve` front door.

Backends are classes implementing the :class:`Solver` protocol and
registered with the :func:`register` decorator.  Each declares a
:class:`Capabilities` record — which problem kinds it solves, which
input modes it accepts, whether it is exact, and its between-pass
memory class — and the registry dispatches on problem kind + input
mode (+ an optional ``memory_budget`` in words) when the caller asks
for ``backend="auto"``.

The registry is the package's stable seam: new execution engines
(sharded, async, cached) plug in by registering a solver; no caller
changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Type, runtime_checkable

from ..errors import SolverError
from .context import ExecutionContext
from .problems import MODE_GRAPH, MODE_SHARDS, MODE_STREAM, PROBLEM_KINDS, Problem
from .solution import Solution

#: Memory classes a backend can declare (between-pass state).
MEM_EDGES = "O(m)"      # holds the edge set (in-memory / MapReduce partitions)
MEM_NODES = "O(n)"      # semi-streaming: per-node counters only
MEM_SKETCH = "O(t*b)"   # sublinear sketch state


@dataclass(frozen=True)
class Capabilities:
    """What a registered solver can do, for dispatch and enumeration.

    Attributes
    ----------
    problems:
        Problem kinds the solver accepts (subset of
        :data:`~repro.api.problems.PROBLEM_KINDS`).
    input_modes:
        Accepted input modes (``"graph"`` and/or ``"stream"``).
    exact:
        Whether the solver returns the true optimum ρ*.
    memory_class:
        Between-pass memory class: ``"O(m)"``, ``"O(n)"``, or
        ``"O(t*b)"``.
    semantics:
        Agreement group.  Solvers sharing a semantics string are
        guaranteed to return *identical* node sets and densities on the
        same problem (the cross-backend parity the paper's §5 claims
        and the test suite enforces); ``"exact"`` solvers agree on
        density only, and ``"heuristic"`` solvers promise neither.
    deterministic:
        Whether repeated runs return identical solutions.
    engines:
        Execution engines the backend can run on (``"python"`` and/or
        ``"numpy"``).  Backends listing both accept an ``engine=``
        solve option; parity between the engines is guaranteed by the
        kernel layer (see ``tests/test_kernels_parity.py``).
    """

    problems: frozenset
    input_modes: frozenset
    exact: bool = False
    memory_class: str = MEM_EDGES
    semantics: str = "heuristic"
    deterministic: bool = True
    engines: tuple = ("python",)

    def __post_init__(self) -> None:
        unknown = set(self.problems) - set(PROBLEM_KINDS)
        if unknown:
            raise SolverError(f"unknown problem kinds in capabilities: {sorted(unknown)}")
        bad_modes = set(self.input_modes) - {MODE_GRAPH, MODE_STREAM, MODE_SHARDS}
        if bad_modes:
            raise SolverError(f"unknown input modes in capabilities: {sorted(bad_modes)}")


@runtime_checkable
class Solver(Protocol):
    """Protocol every registered backend implements."""

    name: str

    def capabilities(self) -> Capabilities:
        """The solver's declared capabilities."""
        ...

    def solve(self, problem: Problem, **options) -> Solution:
        """Solve ``problem``; raise :class:`~repro.errors.SolverError` on misuse."""
        ...

    def estimated_memory_words(self, problem: Problem) -> Optional[int]:
        """Approximate between-pass footprint in words (None = unknown)."""
        ...


_REGISTRY: Dict[str, Solver] = {}

#: ``backend="auto"`` preference order per input mode.  Within a mode the
#: first registered backend that supports the problem kind and fits the
#: memory budget wins; the order encodes "the paper's engine for that
#: input, cheapest faithful model first".
_AUTO_PREFERENCE = {
    MODE_GRAPH: ("core", "streaming", "mapreduce", "sketch"),
    MODE_STREAM: ("streaming", "sketch"),
    # Shard stores: the CSR build is the fastest consumer when its O(m)
    # snapshot fits the budget; the semi-streaming engine is the
    # out-of-core fallback a memory_budget selects (with pass
    # compaction auto-enabled under that budget), and the sketch the
    # sublinear last resort.
    MODE_SHARDS: ("core-csr", "streaming", "mapreduce", "sketch"),
}


def register(cls: Type) -> Type:
    """Class decorator: instantiate ``cls`` and add it to the registry.

    The class must carry a unique ``name`` and implement the
    :class:`Solver` protocol; registration validates its capability
    record eagerly so a malformed backend fails at import time, not at
    first dispatch.
    """
    solver = cls()
    name = getattr(solver, "name", None)
    if not name or not isinstance(name, str):
        raise SolverError(f"solver class {cls.__name__} must define a string `name`")
    if name in _REGISTRY:
        raise SolverError(f"backend {name!r} is already registered")
    if not isinstance(solver, Solver):
        missing = [
            attr
            for attr in ("capabilities", "solve", "estimated_memory_words")
            if not callable(getattr(solver, attr, None))
        ]
        raise SolverError(
            f"backend {name!r} does not implement the Solver protocol "
            f"(missing: {', '.join(missing)})"
        )
    caps = solver.capabilities()
    if not isinstance(caps, Capabilities):
        raise SolverError(f"backend {name!r} returned a non-Capabilities record")
    _REGISTRY[name] = solver
    return cls


def backend_names() -> List[str]:
    """All registered backend names, in registration order."""
    return list(_REGISTRY)


def get_backend(name: str) -> Solver:
    """Look up a backend by name.

    Raises
    ------
    SolverError
        If no backend of that name is registered.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SolverError(
            f"unknown backend {name!r}; registered backends: {', '.join(_REGISTRY)}"
        ) from None


def _supports(solver: Solver, problem: Problem) -> bool:
    caps = solver.capabilities()
    return problem.kind in caps.problems and problem.input_mode in caps.input_modes


def _fits_budget(
    solver: Solver, problem: Problem, memory_budget: Optional[int]
) -> bool:
    if memory_budget is None:
        return True
    estimate = solver.estimated_memory_words(problem)
    return estimate is not None and estimate <= memory_budget


def available_backends(
    problem: Problem, *, memory_budget: Optional[int] = None
) -> List[str]:
    """Names of every registered backend able to solve ``problem``.

    ``memory_budget`` (words) additionally filters on the backends' own
    footprint estimates.
    """
    return [
        name
        for name, solver in _REGISTRY.items()
        if _supports(solver, problem)
        and _fits_budget(solver, problem, memory_budget)
    ]


def select_backend(
    problem: Problem, *, memory_budget: Optional[int] = None
) -> Solver:
    """The ``backend="auto"`` policy.

    Graph inputs prefer the in-memory reference engine, falling back to
    the semi-streaming engine (and, for the undirected problem, the
    sketch) when ``memory_budget`` rules out O(m)/O(n) state; stream
    inputs prefer the semi-streaming engine.  Raises
    :class:`~repro.errors.SolverError` when nothing fits.
    """
    eligible = available_backends(problem, memory_budget=memory_budget)
    if not eligible:
        supported = available_backends(problem)
        if supported:
            raise SolverError(
                f"no backend for {problem.kind!r} fits memory_budget="
                f"{memory_budget} words (capable backends: {', '.join(supported)}; "
                f"try a larger budget or an explicit backend=)"
            )
        raise SolverError(
            f"no registered backend solves {problem.kind!r} with "
            f"{problem.input_mode!r} input"
        )
    for name in _AUTO_PREFERENCE.get(problem.input_mode, ()):
        if name in eligible:
            return _REGISTRY[name]
    return _REGISTRY[eligible[0]]


def solve(
    problem: Problem,
    backend: str = "auto",
    *,
    memory_budget: Optional[int] = None,
    context: Optional[ExecutionContext] = None,
    **options,
) -> Solution:
    """Solve a problem with a registered backend.

    Parameters
    ----------
    problem:
        A :class:`~repro.api.problems.Problem` instance
        (:class:`~repro.api.problems.DensestSubgraph`,
        :class:`~repro.api.problems.DensestAtLeastK`, or
        :class:`~repro.api.problems.DirectedDensest`).
    backend:
        A registered backend name, or ``"auto"`` to dispatch on the
        problem's kind, input mode, and ``memory_budget``.
    memory_budget:
        Optional between-pass memory budget in words; only backends
        whose own footprint estimate fits are eligible under
        ``"auto"``.
    context:
        Optional :class:`~repro.api.context.ExecutionContext` naming
        the execution resources (worker processes, memory budget,
        spill directory/shard count).  Its ``memory_budget`` feeds the
        ``"auto"`` dispatch when the explicit argument is absent; the
        whole context is forwarded to the chosen backend, which honors
        the fields that apply to its execution model and ignores the
        rest.
    **options:
        Backend-specific knobs passed through to the solver (e.g.
        ``runtime=`` for MapReduce, ``buckets=``/``tables=``/``seed=``
        for the sketch, ``accountant=`` for the streaming engines,
        ``side_rule=`` for the directed peel).

    Returns
    -------
    Solution

    Raises
    ------
    SolverError
        Unknown backend name, or a backend that cannot solve this
        problem kind / input mode.

    Examples
    --------
    >>> from repro.graph.generators import clique, star, disjoint_union
    >>> from repro.api import DensestSubgraph, solve
    >>> g = disjoint_union([clique(6), star(50, offset=100)])
    >>> solution = solve(DensestSubgraph(g, epsilon=0.1))
    >>> solution.backend, sorted(solution.nodes), solution.density
    ('core', [0, 1, 2, 3, 4, 5], 2.5)
    """
    if not isinstance(problem, Problem):
        raise SolverError(
            f"solve() takes a Problem instance, got {type(problem).__name__}"
        )
    if context is not None:
        if not isinstance(context, ExecutionContext):
            raise SolverError(
                f"context must be an ExecutionContext, got {type(context).__name__}"
            )
        if memory_budget is None:
            memory_budget = context.memory_budget
        options["context"] = context
    elif memory_budget is not None:
        # A bare memory budget is still a resource envelope: hand it to
        # the chosen backend as a context so budget-aware behaviors
        # (e.g. the streaming backend's pass-compaction auto-enable)
        # see it, not just the dispatch.
        options["context"] = ExecutionContext(memory_budget=memory_budget)
    if backend == "auto":
        solver = select_backend(problem, memory_budget=memory_budget)
    else:
        solver = get_backend(backend)
        caps = solver.capabilities()
        if problem.kind not in caps.problems:
            raise SolverError(
                f"backend {solver.name!r} does not solve {problem.kind!r} "
                f"(it solves: {', '.join(sorted(caps.problems))})"
            )
        if problem.input_mode not in caps.input_modes:
            raise SolverError(
                f"backend {solver.name!r} does not accept {problem.input_mode!r} "
                f"input (it accepts: {', '.join(sorted(caps.input_modes))})"
            )
    return solver.solve(problem, **options)
