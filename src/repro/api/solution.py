"""The unified result type returned by every registered backend."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Hashable, List, Optional, Tuple

Node = Hashable


@dataclass(frozen=True)
class CostReport:
    """What a solve cost, in the currency of its execution model.

    Fields are ``None`` when the backend's model has no such notion
    (e.g. an LP solve has no peeling passes).
    """

    #: Peeling passes over the edge set (Algorithms 1–3 and variants).
    passes: Optional[int] = None
    #: Physical passes the backend made over the input EdgeStream.
    stream_passes: Optional[int] = None
    #: Edge records streamed across all passes.
    edges_streamed: Optional[int] = None
    #: Bytes scanned across all stream passes (geometric under pass
    #: compaction instead of passes × input size).
    bytes_scanned: Optional[int] = None
    #: Total MapReduce rounds executed.
    mapreduce_rounds: Optional[int] = None
    #: Between-pass memory footprint in words, when metered.
    memory_words: Optional[int] = None


@dataclass(frozen=True)
class Solution:
    """Output of :func:`repro.solve`, uniform across backends.

    Attributes
    ----------
    nodes:
        The solution node set.  For directed problems this is S̃ ∪ T̃;
        the sides are in :attr:`s_nodes` / :attr:`t_nodes`.
    density:
        ρ of the returned set (directed: w(E(S,T))/√(|S||T|)).
    backend:
        Name of the registered solver that produced this solution.
    problem_kind:
        The :attr:`~repro.api.problems.Problem.kind` that was solved.
    exact:
        Whether the backend guarantees ρ = ρ* (vs an approximation).
    s_nodes / t_nodes:
        The directed pair, ``None`` for undirected problems.
    ratio:
        For directed problems, the c the returned pair was found at.
    certificate:
        The per-pass trace when the backend peels (a tuple of
        :class:`~repro.core.trace.PassRecord` /
        :class:`~repro.core.trace.DirectedPassRecord`), else ``None``.
        This is the evidence behind the density claim and what the
        paper's per-pass figures plot.
    cost:
        A :class:`CostReport` in the backend's execution model.
    details:
        The backend's native result object (e.g.
        :class:`~repro.core.result.RatioSweepResult` for a ratio sweep,
        :class:`~repro.mapreduce.densest.MapReduceRunReport` for
        MapReduce runs), for callers that need model-specific data.
    """

    nodes: FrozenSet[Node]
    density: float
    backend: str
    problem_kind: str
    exact: bool = False
    s_nodes: Optional[FrozenSet[Node]] = None
    t_nodes: Optional[FrozenSet[Node]] = None
    ratio: Optional[float] = None
    certificate: Optional[Tuple[Any, ...]] = None
    cost: CostReport = field(default_factory=CostReport)
    details: Any = None

    @property
    def size(self) -> int:
        """|S̃| (directed: |S̃ ∪ T̃|)."""
        return len(self.nodes)

    def densities_by_pass(self) -> List[float]:
        """ρ(S) after each pass, when a peeling certificate exists."""
        if self.certificate is None:
            return []
        return [record.density_after for record in self.certificate]

    def approximation_ratio(self, optimum: float) -> float:
        """ρ*/ρ given a known optimum (Table 2's ρ*/ρ̃ column)."""
        if self.density <= 0:
            return float("inf")
        return optimum / self.density
