"""The unified result type returned by every registered backend.

Solutions are also the unit of *storage*: the serving layer's SQLite
result catalog (:mod:`repro.serve.catalog`) and its HTTP endpoints both
persist and ship solutions as JSON via :meth:`Solution.to_json` /
:meth:`Solution.from_json`.  The codec is lossless for every field
except :attr:`Solution.details` (the backend's native result object,
deliberately dropped — it is an open-ended python object, not part of
the portable result), including numpy scalar and array members and the
per-pass certificate records.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Tuple

from ..core.trace import DirectedPassRecord, PassRecord
from ..errors import ParameterError

try:  # numpy members are encoded when numpy is present at all
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less installs
    np = None

Node = Hashable


# ----------------------------------------------------------------------
# JSON codec
# ----------------------------------------------------------------------
# Tagged, recursive value encoding shared by the Solution/CostReport
# round-trip, the result catalog, and the HTTP layer.  Plain JSON types
# pass through; everything else becomes a one-key ``{"__tag__": ...}``
# wrapper so decoding is unambiguous.

_SORT_RANK = {bool: 1, int: 0, float: 0}


def _node_sort_key(value):
    """Deterministic ordering for mixed-type node sets."""
    rank = _SORT_RANK.get(type(value), 2)
    return (rank, value if rank == 0 else repr(value))


def encode_value(value: Any) -> Any:
    """Encode ``value`` into JSON-serializable form (lossless, tagged)."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):  # normalizes int subclasses (IntEnum, ...)
        return int(value)
    if isinstance(value, float):  # np.float64 subclasses float: normalize
        if value == value and value not in (float("inf"), float("-inf")):
            return float(value)
        return {"__float__": repr(float(value))}
    if np is not None and isinstance(value, np.generic):
        return encode_value(value.item())
    if np is not None and isinstance(value, np.ndarray):
        contiguous = np.ascontiguousarray(value)
        return {
            "__ndarray__": {
                "dtype": contiguous.dtype.str,
                "shape": list(contiguous.shape),
                "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
            }
        }
    if isinstance(value, (set, frozenset)):
        return {
            "__set__": [
                encode_value(v) for v in sorted(value, key=_node_sort_key)
            ]
        }
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) and not k.startswith("__") for k in value):
            return {k: encode_value(v) for k, v in value.items()}
        return {
            "__dict__": [[encode_value(k), encode_value(v)] for k, v in value.items()]
        }
    if isinstance(value, PassRecord):
        return {"__pass__": {f.name: encode_value(getattr(value, f.name))
                             for f in fields(value)}}
    if isinstance(value, DirectedPassRecord):
        return {"__dpass__": {f.name: encode_value(getattr(value, f.name))
                              for f in fields(value)}}
    raise ParameterError(
        f"cannot JSON-encode a {type(value).__name__} solution member"
    )


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if not isinstance(value, dict):
        return value
    if "__float__" in value:
        return float(value["__float__"])
    if "__ndarray__" in value:
        spec = value["__ndarray__"]
        arr = np.frombuffer(
            base64.b64decode(spec["data"]), dtype=np.dtype(spec["dtype"])
        )
        return arr.reshape(spec["shape"]).copy()
    if "__set__" in value:
        return frozenset(decode_value(v) for v in value["__set__"])
    if "__tuple__" in value:
        return tuple(decode_value(v) for v in value["__tuple__"])
    if "__dict__" in value:
        return {decode_value(k): decode_value(v) for k, v in value["__dict__"]}
    if "__pass__" in value:
        return PassRecord(**{k: decode_value(v) for k, v in value["__pass__"].items()})
    if "__dpass__" in value:
        return DirectedPassRecord(
            **{k: decode_value(v) for k, v in value["__dpass__"].items()}
        )
    return {k: decode_value(v) for k, v in value.items()}


def canonical_json(payload: Any) -> str:
    """The canonical JSON encoding: sorted keys, no whitespace.

    Byte-identical output for equal payloads — what the result catalog
    stores and the byte-for-byte cache-hit guarantee rests on.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CostReport:
    """What a solve cost, in the currency of its execution model.

    Fields are ``None`` when the backend's model has no such notion
    (e.g. an LP solve has no peeling passes).
    """

    #: Peeling passes over the edge set (Algorithms 1–3 and variants).
    passes: Optional[int] = None
    #: Physical passes the backend made over the input EdgeStream.
    stream_passes: Optional[int] = None
    #: Edge records streamed across all passes.
    edges_streamed: Optional[int] = None
    #: Bytes scanned across all stream passes (geometric under pass
    #: compaction instead of passes × input size).
    bytes_scanned: Optional[int] = None
    #: Total MapReduce rounds executed.
    mapreduce_rounds: Optional[int] = None
    #: Between-pass memory footprint in words, when metered.
    memory_words: Optional[int] = None

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-dict form (lossless; ``None`` fields included)."""
        return {f.name: encode_value(getattr(self, f.name)) for f in fields(self)}

    def to_json(self) -> str:
        """Canonical JSON encoding of this report."""
        return canonical_json(self.to_jsonable())

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "CostReport":
        known = {f.name for f in fields(cls)}
        return cls(**{k: decode_value(v) for k, v in payload.items() if k in known})

    @classmethod
    def from_json(cls, text: str) -> "CostReport":
        """Inverse of :meth:`to_json`."""
        return cls.from_jsonable(json.loads(text))


@dataclass(frozen=True)
class Solution:
    """Output of :func:`repro.solve`, uniform across backends.

    Attributes
    ----------
    nodes:
        The solution node set.  For directed problems this is S̃ ∪ T̃;
        the sides are in :attr:`s_nodes` / :attr:`t_nodes`.
    density:
        ρ of the returned set (directed: w(E(S,T))/√(|S||T|)).
    backend:
        Name of the registered solver that produced this solution.
    problem_kind:
        The :attr:`~repro.api.problems.Problem.kind` that was solved.
    exact:
        Whether the backend guarantees ρ = ρ* (vs an approximation).
    s_nodes / t_nodes:
        The directed pair, ``None`` for undirected problems.
    ratio:
        For directed problems, the c the returned pair was found at.
    certificate:
        The per-pass trace when the backend peels (a tuple of
        :class:`~repro.core.trace.PassRecord` /
        :class:`~repro.core.trace.DirectedPassRecord`), else ``None``.
        This is the evidence behind the density claim and what the
        paper's per-pass figures plot.
    cost:
        A :class:`CostReport` in the backend's execution model.
    details:
        The backend's native result object (e.g.
        :class:`~repro.core.result.RatioSweepResult` for a ratio sweep,
        :class:`~repro.mapreduce.densest.MapReduceRunReport` for
        MapReduce runs), for callers that need model-specific data.
    """

    nodes: FrozenSet[Node]
    density: float
    backend: str
    problem_kind: str
    exact: bool = False
    s_nodes: Optional[FrozenSet[Node]] = None
    t_nodes: Optional[FrozenSet[Node]] = None
    ratio: Optional[float] = None
    certificate: Optional[Tuple[Any, ...]] = None
    cost: CostReport = field(default_factory=CostReport)
    details: Any = None

    @property
    def size(self) -> int:
        """|S̃| (directed: |S̃ ∪ T̃|)."""
        return len(self.nodes)

    def densities_by_pass(self) -> List[float]:
        """ρ(S) after each pass, when a peeling certificate exists."""
        if self.certificate is None:
            return []
        return [record.density_after for record in self.certificate]

    def approximation_ratio(self, optimum: float) -> float:
        """ρ*/ρ given a known optimum (Table 2's ρ*/ρ̃ column)."""
        if self.density <= 0:
            return float("inf")
        return optimum / self.density

    # -- JSON round-trip -----------------------------------------------
    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-dict form of every field except :attr:`details`.

        Node sets serialize as deterministically ordered lists, the
        certificate as tagged pass records, and numpy scalar/array
        members through the tagged codec — the decoded solution equals
        the original on every serialized field.
        """
        payload: Dict[str, Any] = {}
        for f in fields(self):
            if f.name == "details":
                continue  # backend-native object, not portable
            value = getattr(self, f.name)
            if f.name == "cost":
                payload[f.name] = value.to_jsonable()
            else:
                payload[f.name] = encode_value(value)
        return payload

    def to_json(self) -> str:
        """Canonical JSON encoding (sorted keys, no whitespace).

        Equal solutions encode to byte-identical strings — the result
        catalog stores exactly this string, so a cache hit ships the
        same bytes the cold solve produced.
        """
        return canonical_json(self.to_jsonable())

    @classmethod
    def from_jsonable(cls, payload: Dict[str, Any]) -> "Solution":
        known = {f.name for f in fields(cls)}
        decoded = {
            k: decode_value(v)
            for k, v in payload.items()
            if k in known and k not in ("cost", "details")
        }
        decoded["cost"] = CostReport.from_jsonable(payload.get("cost") or {})
        if decoded.get("nodes") is None:
            raise ParameterError("solution payload is missing 'nodes'")
        decoded["nodes"] = frozenset(decoded["nodes"])
        for side in ("s_nodes", "t_nodes"):
            if decoded.get(side) is not None:
                decoded[side] = frozenset(decoded[side])
        return cls(**decoded)

    @classmethod
    def from_json(cls, text: str) -> "Solution":
        """Inverse of :meth:`to_json` (with ``details=None``)."""
        return cls.from_jsonable(json.loads(text))
