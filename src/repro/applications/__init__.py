"""Applications of the densest subgraph primitive.

The paper's introduction motivates the problem with four applications;
this subpackage implements the most algorithmically interesting one as
a complete system:

* :mod:`~repro.applications.twohop` — 2-hop reachability labeling
  (Cohen–Halperin–Kaplan–Zwick), whose index construction repeatedly
  extracts dense bipartite subgraphs of the uncovered transitive
  closure.  The paper's §1 notes that the authors of the 2-hop paper
  specifically preferred Charikar's practical approximation over exact
  algorithms — which is exactly the primitive built here.
"""

from .twohop import TwoHopIndex, build_two_hop_index, transitive_closure_pairs

__all__ = ["TwoHopIndex", "build_two_hop_index", "transitive_closure_pairs"]
