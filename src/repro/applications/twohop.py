"""2-hop reachability labeling built on the densest subgraph primitive.

A *2-hop cover* (Cohen, Halperin, Kaplan, Zwick; SODA 2002) assigns
every node u an out-label L_out(u) and an in-label L_in(v) — sets of
"hop" nodes — such that u reaches v iff some hop w appears in both
L_out(u) and L_in(v) (with u reaching w and w reaching v).  The index
answers reachability queries by intersecting two small sorted sets,
instead of a BFS over the graph.

Construction is a set-cover over the transitive closure: each candidate
"hop rectangle" is a center w together with subsets S of w's ancestors
and T of w's descendants, covering the pairs S×T at label cost
|S| + |T|.  Picking the best rectangle per round is a *densest
bipartite subgraph* problem on the still-uncovered closure pairs
through w — the primitive the paper's introduction highlights (its
application (4)); we solve it with the directed peeling algorithm
(:func:`repro.exact.peeling.charikar_directed_peeling`) over a small
grid of ratios.

The builder is exact-cover greedy and therefore quadratic-ish: meant
for graphs up to a few hundred nodes (reachability indexes at web scale
need the paper's streaming machinery, which is the point).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from .._validation import check_epsilon, check_positive_int
from ..errors import GraphError, ParameterError
from ..exact.peeling import charikar_directed_peeling
from ..graph.directed import DirectedGraph

Node = Hashable
Pair = Tuple[Node, Node]

_MAX_NODES = 600


def _reachable_from(graph: DirectedGraph, start: Node) -> Set[Node]:
    """All nodes reachable from ``start`` (excluding start unless on a cycle)."""
    seen: Set[Node] = set()
    queue = deque([start])
    while queue:
        u = queue.popleft()
        for v in graph.successors(u):
            if v not in seen:
                seen.add(v)
                queue.append(v)
    return seen


def transitive_closure_pairs(graph: DirectedGraph) -> Set[Pair]:
    """All ordered pairs (u, v), u != v, with a directed path u -> v.

    Raises
    ------
    ParameterError
        If the graph exceeds the builder's size guard (the closure is
        quadratic).
    """
    if graph.num_nodes > _MAX_NODES:
        raise ParameterError(
            f"2-hop builder is quadratic; refusing {graph.num_nodes} > "
            f"{_MAX_NODES} nodes"
        )
    pairs: Set[Pair] = set()
    for u in graph.nodes():
        for v in _reachable_from(graph, u):
            if v != u:
                pairs.add((u, v))
    return pairs


@dataclass
class TwoHopIndex:
    """A built 2-hop reachability index.

    Attributes
    ----------
    out_labels / in_labels:
        Hop sets per node; u reaches v iff the sets intersect.
    rounds:
        Number of greedy cover rounds the construction took.
    """

    out_labels: Dict[Node, FrozenSet[Node]]
    in_labels: Dict[Node, FrozenSet[Node]]
    rounds: int

    def reaches(self, u: Node, v: Node) -> bool:
        """True iff u reaches v (u reaches itself by convention)."""
        if u == v:
            if u not in self.out_labels:
                raise GraphError(f"node {u!r} not in index")
            return True
        try:
            out = self.out_labels[u]
            inn = self.in_labels[v]
        except KeyError as exc:
            raise GraphError(f"node {exc.args[0]!r} not in index") from None
        return not out.isdisjoint(inn)

    def label_size(self) -> int:
        """Total index size Σ(|L_out| + |L_in|) — the quantity 2-hop
        construction minimizes."""
        return sum(len(s) for s in self.out_labels.values()) + sum(
            len(s) for s in self.in_labels.values()
        )

    def average_label_size(self) -> float:
        """Mean labels per node (both directions)."""
        n = len(self.out_labels)
        return self.label_size() / n if n else 0.0


def _best_rectangle_through(
    center: Node,
    ancestors: Set[Node],
    descendants: Set[Node],
    uncovered: Set[Pair],
    ratios: List[float],
) -> Tuple[Set[Node], Set[Node], float]:
    """Best (S, T, score) rectangle of uncovered pairs through a center.

    Builds the bipartite digraph of uncovered pairs (u, v) with
    u ∈ ancestors(center), v ∈ descendants(center) and extracts a dense
    S -> T block with directed greedy peeling; the returned score is the
    2-hop objective |covered| / (|S| + |T|).
    """
    bipartite = DirectedGraph()
    edge_count = 0
    for u in ancestors:
        for v in descendants:
            if (u, v) in uncovered:
                # Tag the sides so S/T stay disjoint node sets even when
                # the same node is both an ancestor and a descendant.
                bipartite.add_edge(("s", u), ("t", v))
                edge_count += 1
    if edge_count == 0:
        return set(), set(), 0.0
    best: Tuple[Set[Node], Set[Node], float] = (set(), set(), 0.0)
    for ratio in ratios:
        s_side, t_side, _ = charikar_directed_peeling(bipartite, ratio)
        s_nodes = {u for tag, u in s_side if tag == "s"}
        t_nodes = {v for tag, v in t_side if tag == "t"}
        if not s_nodes or not t_nodes:
            continue
        covered = sum(
            1 for u in s_nodes for v in t_nodes if (u, v) in uncovered
        )
        score = covered / (len(s_nodes) + len(t_nodes))
        if score > best[2]:
            best = (s_nodes, t_nodes, score)
    return best


def build_two_hop_index(
    graph: DirectedGraph,
    *,
    candidates_per_round: int = 8,
    ratios: Optional[List[float]] = None,
) -> TwoHopIndex:
    """Build a 2-hop reachability index via dense-rectangle greedy cover.

    Parameters
    ----------
    graph:
        Directed graph (cycles allowed — reachability is what's indexed).
        Guarded to a few hundred nodes; the closure is materialized.
    candidates_per_round:
        How many centers (ranked by |ancestors|·|descendants| potential)
        are evaluated with the densest-subgraph extraction each round.
    ratios:
        Ratio grid for the directed peeling; defaults to a small
        logarithmic grid.

    Returns
    -------
    TwoHopIndex
        A complete and correct cover: ``reaches`` agrees with BFS
        reachability for every pair (tests verify this exhaustively).
    """
    check_positive_int(candidates_per_round, "candidates_per_round")
    if ratios is None:
        ratios = [0.125, 0.5, 1.0, 2.0, 8.0]
    nodes = list(graph.nodes())
    uncovered = transitive_closure_pairs(graph)
    ancestors: Dict[Node, Set[Node]] = {w: {w} for w in nodes}
    descendants: Dict[Node, Set[Node]] = {w: {w} for w in nodes}
    for u in nodes:
        for v in _reachable_from(graph, u):
            descendants[u].add(v)
            ancestors[v].add(u)

    out_labels: Dict[Node, Set[Node]] = {u: set() for u in nodes}
    in_labels: Dict[Node, Set[Node]] = {u: set() for u in nodes}
    rounds = 0

    while uncovered:
        rounds += 1
        # Rank centers by how many uncovered pairs could go through them
        # (cheap upper bound), evaluate the top few exactly.
        ranked = sorted(
            nodes,
            key=lambda w: len(ancestors[w]) * len(descendants[w]),
            reverse=True,
        )[: max(candidates_per_round, 1)]
        best_center: Optional[Node] = None
        best_rect: Tuple[Set[Node], Set[Node], float] = (set(), set(), 0.0)
        for w in ranked:
            rect = _best_rectangle_through(
                w, ancestors[w], descendants[w], uncovered, ratios
            )
            if rect[2] > best_rect[2]:
                best_rect = rect
                best_center = w
        if best_center is None or not best_rect[0]:
            # Fallback: cover one arbitrary uncovered pair directly
            # (center = source) so the loop always progresses.
            u, v = next(iter(uncovered))
            best_center = u
            best_rect = ({u}, {v}, 1.0)
        s_nodes, t_nodes, _ = best_rect
        for u in s_nodes:
            out_labels[u].add(best_center)
        for v in t_nodes:
            in_labels[v].add(best_center)
        for u in s_nodes:
            for v in t_nodes:
                uncovered.discard((u, v))

    return TwoHopIndex(
        out_labels={u: frozenset(s) for u, s in out_labels.items()},
        in_labels={u: frozenset(s) for u, s in in_labels.items()},
        rounds=rounds,
    )
