"""Command-line interface.

Examples
--------
List datasets::

    repro-densest datasets

Run Algorithm 1 on a dataset or an edge-list file::

    repro-densest run --dataset flickr_sim --epsilon 0.5
    repro-densest run --edge-list graph.txt --epsilon 1 --k 100

Run a directed sweep::

    repro-densest run-directed --dataset twitter_sim --epsilon 1 --delta 2

Regenerate a paper table/figure::

    repro-densest experiment table2 --scale 0.5
    repro-densest experiment all
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .analysis.experiments import ALL_EXPERIMENTS
from .analysis.tables import render_table
from .core.atleast_k import densest_subgraph_atleast_k
from .core.directed import ratio_sweep
from .core.undirected import densest_subgraph
from .datasets import info as dataset_info
from .datasets import load as dataset_load
from .datasets import names as dataset_names
from .errors import ReproError
from .graph.directed import DirectedGraph
from .graph.io import read_directed, read_undirected
from .graph.undirected import UndirectedGraph


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-densest",
        description="Densest subgraph in streaming and MapReduce (VLDB 2012 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_datasets = sub.add_parser("datasets", help="list registered datasets")
    p_datasets.add_argument("--group", choices=["evaluation", "table2"], default=None)

    p_run = sub.add_parser("run", help="run Algorithm 1 (or 2 with --k) on an undirected graph")
    src = p_run.add_mutually_exclusive_group(required=True)
    src.add_argument("--dataset", help="registered dataset name")
    src.add_argument("--edge-list", help="path to a SNAP-style edge list")
    p_run.add_argument("--epsilon", type=float, default=0.5)
    p_run.add_argument("--k", type=int, default=None, help="minimum subgraph size (Algorithm 2)")
    p_run.add_argument("--scale", type=float, default=1.0)
    p_run.add_argument("--seed", type=int, default=None)
    p_run.add_argument("--show-nodes", type=int, default=0, help="print up to N member nodes")

    p_dir = sub.add_parser("run-directed", help="run Algorithm 3 with a ratio sweep")
    src = p_dir.add_mutually_exclusive_group(required=True)
    src.add_argument("--dataset", help="registered dataset name")
    src.add_argument("--edge-list", help="path to a SNAP-style edge list")
    p_dir.add_argument("--epsilon", type=float, default=0.5)
    p_dir.add_argument("--delta", type=float, default=2.0)
    p_dir.add_argument("--scale", type=float, default=1.0)
    p_dir.add_argument("--seed", type=int, default=None)

    p_exact = sub.add_parser("exact", help="exact rho* via LP and Goldberg's flow algorithm")
    src = p_exact.add_mutually_exclusive_group(required=True)
    src.add_argument("--dataset", help="registered dataset name")
    src.add_argument("--edge-list", help="path to a SNAP-style edge list")
    p_exact.add_argument("--scale", type=float, default=1.0)
    p_exact.add_argument("--seed", type=int, default=None)
    p_exact.add_argument(
        "--solver", choices=["lp", "flow", "both"], default="both"
    )

    p_enum = sub.add_parser(
        "enumerate", help="enumerate node-disjoint dense subgraphs (Section 6 remark)"
    )
    src = p_enum.add_mutually_exclusive_group(required=True)
    src.add_argument("--dataset", help="registered dataset name")
    src.add_argument("--edge-list", help="path to a SNAP-style edge list")
    p_enum.add_argument("--epsilon", type=float, default=0.3)
    p_enum.add_argument("--max-subgraphs", type=int, default=5)
    p_enum.add_argument("--min-density", type=float, default=1.0)
    p_enum.add_argument("--scale", type=float, default=1.0)
    p_enum.add_argument("--seed", type=int, default=None)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument(
        "name",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="experiment id (or 'all')",
    )
    p_exp.add_argument("--scale", type=float, default=None, help="override the experiment's default scale")
    return parser


def _load_undirected(args) -> UndirectedGraph:
    if args.dataset:
        graph = dataset_load(args.dataset, scale=args.scale, seed=args.seed)
        if not isinstance(graph, UndirectedGraph):
            raise ReproError(f"dataset {args.dataset!r} is directed; use run-directed")
        return graph
    return read_undirected(args.edge_list)


def _load_directed(args) -> DirectedGraph:
    if args.dataset:
        graph = dataset_load(args.dataset, scale=args.scale, seed=args.seed)
        if not isinstance(graph, DirectedGraph):
            raise ReproError(f"dataset {args.dataset!r} is undirected; use run")
        return graph
    return read_directed(args.edge_list)


def _cmd_datasets(args) -> int:
    rows = []
    for name in dataset_names(args.group):
        meta = dataset_info(name)
        rows.append([name, meta.kind, meta.group, meta.stands_in_for, meta.description])
    print(render_table(["name", "type", "group", "stands in for", "description"], rows))
    return 0


def _cmd_run(args) -> int:
    graph = _load_undirected(args)
    if args.k is not None:
        result = densest_subgraph_atleast_k(graph, args.k, args.epsilon)
        algo = f"Algorithm 2 (k={args.k})"
    else:
        result = densest_subgraph(graph, args.epsilon)
        algo = "Algorithm 1"
    print(f"{algo} on |V|={graph.num_nodes}, |E|={graph.num_edges}, eps={args.epsilon:g}")
    print(f"  density : {result.density:.4f}")
    print(f"  size    : {result.size}")
    print(f"  passes  : {result.passes} (best after pass {result.best_pass})")
    if args.show_nodes:
        sample = sorted(result.nodes, key=repr)[: args.show_nodes]
        print(f"  nodes   : {sample}{' ...' if result.size > args.show_nodes else ''}")
    return 0


def _cmd_run_directed(args) -> int:
    graph = _load_directed(args)
    sweep = ratio_sweep(graph, epsilon=args.epsilon, delta=args.delta)
    best = sweep.best
    print(
        f"Algorithm 3 sweep on |V|={graph.num_nodes}, |E|={graph.num_edges}, "
        f"eps={args.epsilon:g}, delta={args.delta:g} ({len(sweep.by_ratio)} ratios)"
    )
    print(f"  best c   : {best.ratio:g}")
    print(f"  density  : {best.density:.4f}")
    print(f"  |S|, |T| : {best.s_size}, {best.t_size}")
    print(f"  passes   : {best.passes} (total across sweep: {sweep.total_passes()})")
    return 0


def _cmd_exact(args) -> int:
    graph = _load_undirected(args)
    print(f"exact solvers on |V|={graph.num_nodes}, |E|={graph.num_edges}")
    if args.solver in ("lp", "both"):
        from .exact.lp import lp_densest_subgraph

        nodes, rho = lp_densest_subgraph(graph)
        print(f"  LP (HiGHS)     : rho* = {rho:.6f}, |S*| = {len(nodes)}")
    if args.solver in ("flow", "both"):
        from .exact.goldberg import goldberg_densest_subgraph

        nodes, rho = goldberg_densest_subgraph(graph)
        print(f"  Goldberg flow  : rho* = {rho:.6f}, |S*| = {len(nodes)}")
    return 0


def _cmd_enumerate(args) -> int:
    from .core.enumerate_ import enumerate_dense_subgraphs

    graph = _load_undirected(args)
    print(
        f"enumerating dense subgraphs of |V|={graph.num_nodes}, "
        f"|E|={graph.num_edges} (eps={args.epsilon:g})"
    )
    for i, result in enumerate(
        enumerate_dense_subgraphs(
            graph,
            args.epsilon,
            max_subgraphs=args.max_subgraphs,
            min_density=args.min_density,
        ),
        start=1,
    ):
        print(
            f"  #{i}: rho={result.density:.3f} |S|={result.size} "
            f"passes={result.passes}"
        )
    return 0


def _cmd_experiment(args) -> int:
    names = sorted(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        driver = ALL_EXPERIMENTS[name]
        output = driver(scale=args.scale) if args.scale is not None else driver()
        print(output.render())
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "run": _cmd_run,
        "run-directed": _cmd_run_directed,
        "exact": _cmd_exact,
        "enumerate": _cmd_enumerate,
        "experiment": _cmd_experiment,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
