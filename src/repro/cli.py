"""Command-line interface.

Examples
--------
List datasets and backends::

    repro-densest datasets
    repro-densest backends

Solve a densest-subgraph problem on any backend::

    repro-densest densest --dataset flickr_sim --epsilon 0.5
    repro-densest densest --dataset flickr_sim --backend mapreduce
    repro-densest densest --dataset twitter_sim --delta 2 --backend streaming
    repro-densest densest --edge-list graph.txt --k 100 --backend core
    repro-densest densest --dataset flickr_sim --engine numpy
    repro-densest densest --edge-list graph.txt --backend core-csr

Out-of-core pipeline: convert an edge list into a sharded store, then
solve on it (or do both in one command with ``--spill-dir``)::

    repro-densest shard --edge-list big.txt.gz --output /data/big-store --shards 16
    repro-densest densest --shard-store /data/big-store --backend streaming
    repro-densest densest --edge-list big.txt --spill-dir /tmp/st --backend streaming
    repro-densest densest --shard-store /data/big-store --backend mapreduce --workers 4
    repro-densest densest --shard-store /data/big-store --backend mapreduce \
        --workers 4 --shuffle-dir /tmp/shuffle --mr-fused
    repro-densest densest --shard-store /data/big-store --compaction on
    repro-densest densest --shard-store /data/big-store --compaction-threshold 0.75

Robustness: checksum-audit a store, checkpoint a deep peel so an
interrupted run resumes (bit-identically) instead of restarting::

    repro-densest verify-store /data/big-store [--repair]
    repro-densest densest --shard-store /data/big-store --backend streaming \
        --k 500 --checkpoint-dir /data/ckpt --checkpoint-every 16

Legacy commands (thin wrappers over ``densest``)::

    repro-densest run --dataset flickr_sim --epsilon 0.5
    repro-densest run-directed --dataset twitter_sim --epsilon 1 --delta 2
    repro-densest exact --dataset grqc_sim

Serve densest-subgraph queries over HTTP with a SQLite result catalog
(see ``repro.serve`` and DESIGN.md §10)::

    repro-densest serve --port 8080 --catalog /data/catalog.sqlite \
        --workers 4 --spill-dir /data/serve

Regenerate a paper table/figure::

    repro-densest experiment table2 --scale 0.5
    repro-densest experiment all
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Union

from . import __version__
from .analysis.experiments import ALL_EXPERIMENTS
from .analysis.tables import render_table
from .api import (
    DensestAtLeastK,
    DensestSubgraph,
    DirectedDensest,
    Problem,
    Solution,
    backend_names,
    get_backend,
    solve,
)
from .datasets import info as dataset_info
from .datasets import load as dataset_load
from .datasets import names as dataset_names
from .errors import ReproError
from .graph.directed import DirectedGraph
from .graph.io import read_directed, read_undirected
from .graph.undirected import UndirectedGraph


def _add_input_args(
    parser: argparse.ArgumentParser, *, shard_store: bool = False
) -> None:
    src = parser.add_mutually_exclusive_group(required=True)
    src.add_argument("--dataset", help="registered dataset name")
    src.add_argument(
        "--edge-list", help="path to a SNAP-style edge list (.gz transparent)"
    )
    if shard_store:
        src.add_argument(
            "--shard-store", help="path to a sharded edge store directory"
        )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=None)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-densest",
        description="Densest subgraph in streaming and MapReduce (VLDB 2012 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_datasets = sub.add_parser("datasets", help="list registered datasets")
    p_datasets.add_argument("--group", choices=["evaluation", "table2"], default=None)

    p_backends = sub.add_parser("backends", help="list registered solver backends")
    p_backends.add_argument(
        "--verbose",
        action="store_true",
        help="also report the kernel tier ladder: which peel engines "
        "(python/numpy/bucketq/native) are importable here, which "
        "compiled backend (numba or C) serves the native tier, and the "
        "input sizes at which engine=auto switches tiers",
    )

    p_solve = sub.add_parser(
        "densest",
        help="solve a densest-subgraph problem on any registered backend",
    )
    _add_input_args(p_solve, shard_store=True)
    p_solve.add_argument(
        "--backend",
        default="auto",
        help="registered backend name, or 'auto' for capability dispatch "
        "(see `repro-densest backends`)",
    )
    p_solve.add_argument(
        "--engine",
        choices=["auto", "python", "numpy", "bucketq", "native", "numba"],
        default="auto",
        help="execution engine for the core/mapreduce/sketch backends: "
        "'python' (interpreted record loops), 'numpy' (vectorized kernels / "
        "columnar MapReduce batches), 'bucketq' (incremental bucket-queue "
        "peel), 'native'/'numba' (compiled bucket-queue kernels, degrading "
        "to the best importable tier), or 'auto' (pick per graph; see "
        "`repro-densest backends --verbose`)",
    )
    p_solve.add_argument("--epsilon", type=float, default=0.5)
    p_solve.add_argument(
        "--k", type=int, default=None, help="minimum subgraph size (Algorithm 2)"
    )
    p_solve.add_argument(
        "--ratio", type=float, default=None,
        help="directed only: fixed c = |S|/|T| instead of a sweep",
    )
    p_solve.add_argument(
        "--delta", type=float, default=2.0,
        help="directed only: powers-of-delta ratio grid resolution",
    )
    p_solve.add_argument(
        "--directed", action="store_true",
        help="treat an --edge-list input as directed",
    )
    p_solve.add_argument(
        "--memory-budget", type=int, default=None,
        help="between-pass budget in words for backend=auto dispatch",
    )
    p_solve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the mapreduce backend's columnar "
        "rounds (>1 selects the process-pool executor)",
    )
    p_solve.add_argument(
        "--spill-dir", default=None,
        help="convert an --edge-list input into a sharded store in this "
        "directory first, then solve on the store (out-of-core pipeline; "
        "a store already present there is reused)",
    )
    p_solve.add_argument(
        "--shards", type=int, default=8,
        help="shard count for the --spill-dir conversion",
    )
    p_solve.add_argument(
        "--shuffle-dir", default=None,
        help="mapreduce backend with --workers > 1: spill map outputs "
        "as hash-partitioned run files under this directory and let "
        "reduce workers memmap them, instead of routing intermediate "
        "data through the driver (results are identical either way)",
    )
    p_solve.add_argument(
        "--mr-fused", action="store_true",
        help="mapreduce backend: fuse each peel pass into a single "
        "degree round that broadcasts the cumulative kill set, instead "
        "of degree + removal rounds rewriting the edge set (identical "
        "results and trace, ~3x fewer rounds and far less shuffle)",
    )
    p_solve.add_argument(
        "--compaction",
        choices=["auto", "on", "off"],
        default="auto",
        help="pass compaction for the streaming/sketch backends: rewrite "
        "the surviving edges once a pass keeps less than the threshold "
        "fraction, so later passes scan geometrically fewer bytes "
        "('auto' enables it for shard-store inputs solved under a "
        "memory budget or spill dir; results are identical either way)",
    )
    p_solve.add_argument(
        "--compaction-threshold", type=float, default=None,
        help="surviving-edge fraction that triggers a compaction rewrite "
        "(default 0.5; implies the streaming backend when --backend auto)",
    )
    p_solve.add_argument(
        "--checkpoint-dir", default=None,
        help="persist the peel's between-pass state into this directory "
        "and resume from it on a rerun (streaming backend; an "
        "interrupted deep peel restarts from its last checkpoint "
        "instead of pass 0, with bit-identical results)",
    )
    p_solve.add_argument(
        "--checkpoint-every", type=int, default=16,
        help="checkpoint interval in passes (with --checkpoint-dir)",
    )
    p_solve.add_argument(
        "--deadline", type=float, default=None,
        help="wall-clock budget in seconds; an overrunning streaming "
        "solve stops at the next pass boundary with a timeout error",
    )
    p_solve.add_argument("--show-nodes", type=int, default=0, help="print up to N member nodes")

    p_run = sub.add_parser(
        "run", help="[legacy] Algorithm 1 (or 2 with --k) on the core backend"
    )
    _add_input_args(p_run)
    p_run.add_argument("--epsilon", type=float, default=0.5)
    p_run.add_argument("--k", type=int, default=None, help="minimum subgraph size (Algorithm 2)")
    p_run.add_argument("--show-nodes", type=int, default=0, help="print up to N member nodes")

    p_dir = sub.add_parser(
        "run-directed", help="[legacy] Algorithm 3 ratio sweep on the core backend"
    )
    _add_input_args(p_dir)
    p_dir.add_argument("--epsilon", type=float, default=0.5)
    p_dir.add_argument("--delta", type=float, default=2.0)

    p_exact = sub.add_parser(
        "exact", help="[legacy] exact rho* via the exact-lp / exact-flow backends"
    )
    _add_input_args(p_exact)
    p_exact.add_argument(
        "--solver", choices=["lp", "flow", "both"], default="both"
    )

    p_enum = sub.add_parser(
        "enumerate", help="enumerate node-disjoint dense subgraphs (Section 6 remark)"
    )
    _add_input_args(p_enum)
    p_enum.add_argument("--epsilon", type=float, default=0.3)
    p_enum.add_argument("--max-subgraphs", type=int, default=5)
    p_enum.add_argument("--min-density", type=float, default=1.0)

    p_shard = sub.add_parser(
        "shard",
        help="convert an edge list into a sharded out-of-core store",
    )
    p_shard.add_argument(
        "--edge-list", required=True,
        help="path to a SNAP-style edge list (.gz transparent)",
    )
    p_shard.add_argument(
        "--output", required=True, help="target store directory"
    )
    p_shard.add_argument("--shards", type=int, default=8, help="number of shards")
    p_shard.add_argument(
        "--directed", action="store_true", help="treat the edges as directed"
    )
    p_shard.add_argument(
        "--num-nodes", type=int, default=None,
        help="declare the node universe [0, N) explicitly (default: max id + 1)",
    )
    p_shard.add_argument(
        "--memory-budget-mb", type=int, default=64,
        help="writer spill budget in MiB",
    )

    p_verify = sub.add_parser(
        "verify-store",
        help="checksum-verify a sharded edge store (and optionally "
        "quarantine corrupt shards)",
    )
    p_verify.add_argument("store", help="path to a sharded store directory")
    p_verify.add_argument(
        "--repair", action="store_true",
        help="move corrupt shards into <store>/quarantine/ and mark them "
        "in the manifest, so intact shards stay readable and corrupt "
        "ones fail with a typed error instead of bad data",
    )
    p_verify.add_argument(
        "--shallow", action="store_true",
        help="structural checks only (file presence and sizes); skip the "
        "full checksum pass over shard payloads",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the densest-subgraph HTTP service (see repro.serve)",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8080, help="bind port (0 picks a free one)"
    )
    p_serve.add_argument(
        "--catalog", default="catalog.sqlite",
        help="SQLite result-catalog path (created on first run)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, help="solver threads in the job pool"
    )
    p_serve.add_argument(
        "--spill-dir", default=None,
        help="directory for stores built from registered edge lists",
    )
    p_serve.add_argument(
        "--shards", type=int, default=8,
        help="shard count for stores built from registered edge lists",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=64,
        help="waiting-job limit before /solve answers 429",
    )
    p_serve.add_argument(
        "--deadline", type=float, default=None,
        help="per-job wall-clock budget in seconds; an overrunning solve "
        "fails with a timeout instead of holding a worker forever",
    )
    p_serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    overload = p_serve.add_argument_group(
        "overload control",
        "admission + degradation knobs (DESIGN.md §14); all default off",
    )
    overload.add_argument(
        "--client-rate", type=float, default=None,
        help="per-client cold-request rate limit (requests/second)",
    )
    overload.add_argument(
        "--client-burst", type=int, default=10,
        help="token-bucket burst capacity per client",
    )
    overload.add_argument(
        "--max-cost-edges", type=int, default=None,
        help="shed any solve over a dataset with more manifest edges",
    )
    overload.add_argument(
        "--admit-budget-edges", type=int, default=None,
        help="global budget on outstanding admitted solve cost (edges); "
        "past it, requests enter the degradation ladder",
    )
    overload.add_argument(
        "--degrade-at", type=float, default=None,
        help="queue fraction (waiting/capacity) at which the degradation "
        "ladder arms (e.g. 0.5)",
    )
    overload.add_argument(
        "--edges-per-second", type=float, default=None,
        help="cost model for deadline affordability: degrade when "
        "edges/this exceeds the request deadline",
    )
    overload.add_argument(
        "--degrade-epsilon", type=float, default=1.0,
        help="coarsened epsilon a degraded ladder solve runs at",
    )
    overload.add_argument(
        "--no-stale", action="store_true",
        help="never serve stale cached answers from the ladder",
    )
    overload.add_argument(
        "--retry-after-base", type=float, default=1.0,
        help="seconds per queued-or-running job when deriving Retry-After",
    )
    overload.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="consecutive catalog errors that open the circuit breaker "
        "(0 disables the breaker)",
    )
    overload.add_argument(
        "--breaker-reset", type=float, default=30.0,
        help="seconds an open breaker waits before a half-open probe",
    )

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument(
        "name",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="experiment id (or 'all')",
    )
    p_exp.add_argument("--scale", type=float, default=None, help="override the experiment's default scale")
    return parser


def _load_any(args) -> Union[UndirectedGraph, DirectedGraph]:
    """Load the input, undirected/directed/sharded as the source dictates.

    ``--shard-store`` opens an on-disk store as the problem input
    directly.  ``--edge-list`` with ``--spill-dir`` converts the list
    into a store first (one streaming pass under the writer's memory
    budget) and solves on that — the CLI's out-of-core pipeline.  When
    the run is headed for the vectorized engine anyway (``--engine
    numpy`` or ``--backend core-csr``), an ``--edge-list`` input is
    read straight into NumPy arrays and a CSR snapshot — no per-edge
    dict inserts at all (``duplicates="first"`` matches the dedup
    semantics of the SNAP readers).
    """
    directed = getattr(args, "directed", False)
    wants_csr = (
        getattr(args, "engine", "auto") in ("numpy", "bucketq", "native", "numba")
        or getattr(args, "backend", None) == "core-csr"
    )
    if getattr(args, "shard_store", None):
        from .store import ShardedEdgeStore

        return ShardedEdgeStore.open(args.shard_store)
    if args.dataset:
        return dataset_load(args.dataset, scale=args.scale, seed=args.seed)
    if getattr(args, "spill_dir", None):
        from .store import ShardedEdgeStore, write_edge_list_store
        from .store.shards import MANIFEST_NAME
        from pathlib import Path

        # Re-running the same command reuses the converted store.
        if (Path(args.spill_dir) / MANIFEST_NAME).exists():
            return ShardedEdgeStore.open(args.spill_dir)
        return write_edge_list_store(
            args.edge_list,
            args.spill_dir,
            directed=directed,
            num_shards=args.shards,
        )
    if wants_csr:
        try:
            from .graph.io import read_edge_arrays
            from .kernels import CSRDigraph, CSRGraph
        except ImportError:
            pass  # numpy unavailable: fall through to the dict readers
        else:
            src, dst, weights = read_edge_arrays(args.edge_list)
            cls = CSRDigraph if directed else CSRGraph
            return cls.from_edge_arrays(src, dst, weights, duplicates="first")
    if directed:
        return read_directed(args.edge_list)
    return read_undirected(args.edge_list)


def _load_undirected(args) -> UndirectedGraph:
    if args.dataset:
        graph = dataset_load(args.dataset, scale=args.scale, seed=args.seed)
        if not isinstance(graph, UndirectedGraph):
            raise ReproError(f"dataset {args.dataset!r} is directed; use run-directed")
        return graph
    return read_undirected(args.edge_list)


def _load_directed(args) -> DirectedGraph:
    if args.dataset:
        graph = dataset_load(args.dataset, scale=args.scale, seed=args.seed)
        if not isinstance(graph, DirectedGraph):
            raise ReproError(f"dataset {args.dataset!r} is undirected; use run")
        return graph
    return read_directed(args.edge_list)


def _cmd_datasets(args) -> int:
    rows = []
    for name in dataset_names(args.group):
        meta = dataset_info(name)
        rows.append([name, meta.kind, meta.group, meta.stands_in_for, meta.description])
    print(render_table(["name", "type", "group", "stands in for", "description"], rows))
    return 0


def _cmd_backends(args) -> int:
    rows = []
    for name in backend_names():
        caps = get_backend(name).capabilities()
        rows.append(
            [
                name,
                ", ".join(sorted(caps.problems)),
                ", ".join(sorted(caps.input_modes)),
                "exact" if caps.exact else "approx",
                caps.memory_class,
                caps.semantics,
                ", ".join(caps.engines),
            ]
        )
    print(
        render_table(
            [
                "backend",
                "problems",
                "inputs",
                "quality",
                "memory",
                "semantics",
                "engines",
            ],
            rows,
        )
    )
    if getattr(args, "verbose", False):
        from .kernels import tier_report

        report = tier_report()
        print()
        print("kernel tiers (peel engines importable in this environment):")
        for tier in ("python", "numpy", "bucketq", "native"):
            status = "yes" if report[tier] else "no"
            if tier == "native" and report[tier]:
                status = f"yes ({report['native_backend']} backend)"
            print(f"  {tier:<8} {status}")
        ladder = report["auto_ladder"]
        print("engine=auto ladder (CSR/int-labeled graphs, by node count):")
        print(
            f"  n >= {ladder['native_cutoff']}: native"
            "  (when a compiled backend is importable)"
        )
        print(f"  n >= {ladder['bucketq_cutoff']}: bucketq")
        print("  otherwise: numpy")
    return 0


def _is_directed_input(graph) -> bool:
    if isinstance(graph, DirectedGraph):
        return True
    try:
        from .kernels import CSRDigraph
        from .store import ShardedEdgeStore
    except ImportError:
        return False
    if isinstance(graph, ShardedEdgeStore):
        return graph.directed
    return isinstance(graph, CSRDigraph)


def _problem_from_args(args, graph) -> Problem:
    """Build the Problem a `densest` invocation describes."""
    if _is_directed_input(graph):
        if args.k is not None:
            raise ReproError("--k applies to undirected inputs only")
        return DirectedDensest(
            graph, ratio=args.ratio, delta=args.delta, epsilon=args.epsilon
        )
    if args.ratio is not None:
        raise ReproError("--ratio applies to directed inputs only")
    if args.k is not None:
        return DensestAtLeastK(graph, k=args.k, epsilon=args.epsilon)
    return DensestSubgraph(graph, epsilon=args.epsilon)


def _print_solution(solution: Solution, show_nodes: int = 0) -> None:
    print(f"  backend : {solution.backend}{' (exact)' if solution.exact else ''}")
    print(f"  density : {solution.density:.4f}")
    if solution.s_nodes is not None:
        print(f"  |S|, |T|: {len(solution.s_nodes)}, {len(solution.t_nodes)}")
        if solution.ratio is not None:
            print(f"  ratio c : {solution.ratio:g}")
    else:
        print(f"  size    : {solution.size}")
    cost = solution.cost
    if cost.passes is not None:
        print(f"  passes  : {cost.passes}")
    if cost.stream_passes is not None:
        suffix = ""
        if cost.bytes_scanned is not None:
            suffix = f", {cost.bytes_scanned / 1e6:.1f} MB scanned"
        print(
            f"  stream  : {cost.stream_passes} passes, "
            f"{cost.edges_streamed} edges{suffix}"
        )
    if cost.mapreduce_rounds is not None:
        print(f"  rounds  : {cost.mapreduce_rounds} MapReduce rounds")
    if show_nodes:
        sample = sorted(solution.nodes, key=repr)[:show_nodes]
        suffix = " ..." if solution.size > show_nodes else ""
        print(f"  nodes   : {sample}{suffix}")


def _cmd_densest(args) -> int:
    graph = _load_any(args)
    problem = _problem_from_args(args, graph)
    backend = args.backend
    options = {}
    if args.engine != "auto":
        if backend == "auto":
            backend = "core"  # --engine names a core execution engine
        if backend not in ("core", "core-csr", "mapreduce", "sketch"):
            raise ReproError(
                f"--engine applies to the core/core-csr/mapreduce/sketch "
                f"backends, not {backend!r}"
            )
        if backend == "core-csr":
            if args.engine != "numpy":
                raise ReproError("backend 'core-csr' is pinned to the numpy engine")
        else:
            options["engine"] = args.engine
    if args.compaction != "auto" or args.compaction_threshold is not None:
        if backend == "auto":
            backend = "streaming"  # compaction names the streaming engine
        if backend not in ("streaming", "sketch"):
            raise ReproError(
                f"--compaction applies to the streaming/sketch backends, "
                f"not {backend!r}"
            )
        if args.compaction != "auto":
            options["compaction"] = args.compaction == "on"
        else:
            # An explicit threshold is a request to compact — on any
            # input, not just the shard-store auto-enable shape.
            options["compaction"] = True
    if args.shuffle_dir or args.mr_fused:
        if backend == "auto":
            backend = "mapreduce"  # both knobs name the mapreduce backend
        if backend != "mapreduce":
            raise ReproError(
                f"--shuffle-dir/--mr-fused apply to the mapreduce backend, "
                f"not {backend!r}"
            )
        if args.mr_fused:
            options["fused"] = True
    if (
        args.workers > 1
        or args.spill_dir
        or args.shuffle_dir
        or args.compaction_threshold is not None
        or args.checkpoint_dir
        or args.deadline is not None
    ):
        from .api import ExecutionContext

        options["context"] = ExecutionContext(
            workers=args.workers,
            memory_budget=args.memory_budget,
            spill_dir=args.spill_dir,
            shard_count=args.shards,
            shuffle_dir=args.shuffle_dir,
            compaction_threshold=args.compaction_threshold,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            deadline_seconds=args.deadline,
        )
    solution = solve(
        problem, backend=backend, memory_budget=args.memory_budget, **options
    )
    kind = {
        "densest_subgraph": "densest subgraph",
        "densest_at_least_k": f"densest subgraph (k>={getattr(problem, 'k', 0)})",
        "directed_densest": "directed densest subgraph",
    }[problem.kind]
    print(
        f"{kind} on |V|={graph.num_nodes}, |E|={graph.num_edges}, "
        f"eps={args.epsilon:g}"
    )
    _print_solution(solution, args.show_nodes)
    return 0


def _cmd_run(args) -> int:
    graph = _load_undirected(args)
    if args.k is not None:
        solution = solve(
            DensestAtLeastK(graph, k=args.k, epsilon=args.epsilon), backend="core"
        )
        algo = f"Algorithm 2 (k={args.k})"
    else:
        solution = solve(
            DensestSubgraph(graph, epsilon=args.epsilon), backend="core"
        )
        algo = "Algorithm 1"
    result = solution.details
    print(f"{algo} on |V|={graph.num_nodes}, |E|={graph.num_edges}, eps={args.epsilon:g}")
    print(f"  density : {solution.density:.4f}")
    print(f"  size    : {solution.size}")
    print(f"  passes  : {result.passes} (best after pass {result.best_pass})")
    if args.show_nodes:
        sample = sorted(solution.nodes, key=repr)[: args.show_nodes]
        print(f"  nodes   : {sample}{' ...' if solution.size > args.show_nodes else ''}")
    return 0


def _cmd_run_directed(args) -> int:
    graph = _load_directed(args)
    solution = solve(
        DirectedDensest(graph, delta=args.delta, epsilon=args.epsilon),
        backend="core",
    )
    sweep = solution.details
    best = sweep.best
    print(
        f"Algorithm 3 sweep on |V|={graph.num_nodes}, |E|={graph.num_edges}, "
        f"eps={args.epsilon:g}, delta={args.delta:g} ({len(sweep.by_ratio)} ratios)"
    )
    print(f"  best c   : {best.ratio:g}")
    print(f"  density  : {best.density:.4f}")
    print(f"  |S|, |T| : {best.s_size}, {best.t_size}")
    print(f"  passes   : {best.passes} (total across sweep: {sweep.total_passes()})")
    return 0


def _cmd_exact(args) -> int:
    graph = _load_undirected(args)
    print(f"exact solvers on |V|={graph.num_nodes}, |E|={graph.num_edges}")
    problem = DensestSubgraph(graph)
    if args.solver in ("lp", "both"):
        solution = solve(problem, backend="exact-lp")
        print(f"  LP (HiGHS)     : rho* = {solution.density:.6f}, |S*| = {solution.size}")
    if args.solver in ("flow", "both"):
        solution = solve(problem, backend="exact-flow")
        print(f"  Goldberg flow  : rho* = {solution.density:.6f}, |S*| = {solution.size}")
    return 0


def _cmd_enumerate(args) -> int:
    from .core.enumerate_ import enumerate_dense_subgraphs

    graph = _load_undirected(args)
    print(
        f"enumerating dense subgraphs of |V|={graph.num_nodes}, "
        f"|E|={graph.num_edges} (eps={args.epsilon:g})"
    )
    for i, result in enumerate(
        enumerate_dense_subgraphs(
            graph,
            args.epsilon,
            max_subgraphs=args.max_subgraphs,
            min_density=args.min_density,
        ),
        start=1,
    ):
        print(
            f"  #{i}: rho={result.density:.3f} |S|={result.size} "
            f"passes={result.passes}"
        )
    return 0


def _cmd_shard(args) -> int:
    from .store import write_edge_list_store

    store = write_edge_list_store(
        args.edge_list,
        args.output,
        directed=args.directed,
        num_shards=args.shards,
        num_nodes=args.num_nodes,
        memory_budget=args.memory_budget_mb * 1024 * 1024,
    )
    print(f"sharded {args.edge_list} -> {args.output}")
    print(f"  nodes   : {store.num_nodes}")
    print(f"  edges   : {store.num_edges}")
    print(f"  shards  : {store.num_shards}")
    print(f"  payload : {store.nbytes() / 1024 / 1024:.1f} MiB")
    print(f"  kind    : {'directed' if store.directed else 'undirected'}"
          f"{', weighted' if store.weighted else ''}")
    return 0


def _cmd_verify_store(args) -> int:
    from .store import ShardedEdgeStore

    store = ShardedEdgeStore.open(args.store)
    deep = not args.shallow
    report = store.verify(deep=deep)
    mode = "deep (checksums)" if deep else "shallow (structure only)"
    print(f"verify {store.path} [{mode}]")
    print(f"  shards  : {report.shards}")
    if report.ok:
        print("  status  : OK")
        return 0
    for shard, problem in report.problems:
        print(f"  BAD shard {shard}: {problem}")
    if args.repair:
        store.repair(deep=deep)
        bad = [shard for shard, _ in report.problems]
        print(f"  repaired: quarantined shards {bad} -> "
              f"{store.path}/quarantine/")
        return 0
    print("  status  : CORRUPT (rerun with --repair to quarantine)")
    return 1


def _cmd_serve(args) -> int:
    from .serve import run_server

    run_server(
        host=args.host,
        port=args.port,
        catalog_path=args.catalog,
        workers=args.workers,
        spill_dir=args.spill_dir,
        shard_count=args.shards,
        max_queue=args.max_queue,
        deadline_seconds=args.deadline,
        verbose=args.verbose,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
        max_cost_edges=args.max_cost_edges,
        admit_budget_edges=args.admit_budget_edges,
        degrade_at=args.degrade_at,
        edges_per_second=args.edges_per_second,
        degrade_epsilon=args.degrade_epsilon,
        stale_ok=not args.no_stale,
        retry_after_base=args.retry_after_base,
        breaker_threshold=args.breaker_threshold or None,
        breaker_reset_seconds=args.breaker_reset,
    )
    return 0


def _cmd_experiment(args) -> int:
    names = sorted(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        driver = ALL_EXPERIMENTS[name]
        output = driver(scale=args.scale) if args.scale is not None else driver()
        print(output.render())
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "backends": _cmd_backends,
        "densest": _cmd_densest,
        "run": _cmd_run,
        "run-directed": _cmd_run_directed,
        "exact": _cmd_exact,
        "enumerate": _cmd_enumerate,
        "shard": _cmd_shard,
        "verify-store": _cmd_verify_store,
        "serve": _cmd_serve,
        "experiment": _cmd_experiment,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
