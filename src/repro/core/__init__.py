"""The paper's core contribution: few-pass greedy peeling algorithms.

* :func:`~repro.core.undirected.densest_subgraph` — Algorithm 1, the
  (2+2ε)-approximation for undirected graphs.
* :func:`~repro.core.atleast_k.densest_subgraph_atleast_k` —
  Algorithm 2, the (3+3ε)-approximation under a minimum-size constraint.
* :func:`~repro.core.directed.densest_subgraph_directed` — Algorithm 3
  for directed graphs at a fixed ratio c, plus
  :func:`~repro.core.directed.ratio_sweep` implementing the paper's
  powers-of-δ search over c.
* :func:`~repro.core.charikar.greedy_densest_subgraph` — Charikar's
  one-node-per-step greedy baseline.
* :func:`~repro.core.enumerate_.enumerate_dense_subgraphs` — the
  node-disjoint enumeration loop sketched in Section 6.

All algorithms record a per-pass :class:`~repro.core.trace.PassRecord`
trace, which is what the paper's Figures 6.2–6.5 plot.
"""

from .trace import PassRecord, DirectedPassRecord
from .result import DensestSubgraphResult, DirectedDensestSubgraphResult, RatioSweepResult
from .undirected import densest_subgraph
from .atleast_k import densest_subgraph_atleast_k
from .directed import densest_subgraph_directed, ratio_sweep, default_ratio_grid
from .charikar import greedy_densest_subgraph
from .enumerate_ import enumerate_dense_subgraphs

__all__ = [
    "PassRecord",
    "DirectedPassRecord",
    "DensestSubgraphResult",
    "DirectedDensestSubgraphResult",
    "RatioSweepResult",
    "densest_subgraph",
    "densest_subgraph_atleast_k",
    "densest_subgraph_directed",
    "ratio_sweep",
    "default_ratio_grid",
    "greedy_densest_subgraph",
    "enumerate_dense_subgraphs",
]
