"""Internal compact array representations used by the peeling loops.

The public graph classes are dict-of-dict structures convenient for
construction and mutation.  The peeling algorithms instead want flat
index-based adjacency so the per-pass scans are tight loops over lists;
these helpers build that representation once per run.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Tuple

from ..graph.directed import DirectedGraph
from ..graph.undirected import UndirectedGraph

Node = Hashable


def drop_killed(alive_nodes: List[int], to_remove: Sequence[int]) -> List[int]:
    """The maintained alive list minus ``to_remove`` (order preserved).

    Shared by the peeling loops that keep an explicit membership list
    so threshold scans cost O(|S|) rather than O(n).
    """
    if not to_remove:
        return alive_nodes
    if len(to_remove) == len(alive_nodes):
        return []
    removed = set(to_remove)
    return [i for i in alive_nodes if i not in removed]


class CompactUndirected:
    """Index-based adjacency snapshot of an undirected graph.

    Attributes
    ----------
    labels:
        ``labels[i]`` is the original node of index i.
    neighbors:
        ``neighbors[i]`` is a list of neighbor indices.
    weights:
        ``weights[i][k]`` is the weight of the edge to ``neighbors[i][k]``.
    total_weight:
        Sum of all edge weights (each edge once).
    """

    __slots__ = ("labels", "neighbors", "weights", "total_weight")

    def __init__(self, graph: UndirectedGraph) -> None:
        self.labels: List[Node] = list(graph.nodes())
        index = {node: i for i, node in enumerate(self.labels)}
        self.neighbors: List[List[int]] = [[] for _ in self.labels]
        self.weights: List[List[float]] = [[] for _ in self.labels]
        for u, v, w in graph.weighted_edges():
            ui, vi = index[u], index[v]
            self.neighbors[ui].append(vi)
            self.weights[ui].append(w)
            self.neighbors[vi].append(ui)
            self.weights[vi].append(w)
        self.total_weight: float = graph.total_weight

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the snapshot."""
        return len(self.labels)

    def initial_degrees(self) -> List[float]:
        """Weighted degree of every node."""
        return [sum(ws) for ws in self.weights]

    def to_labels(self, indices: Sequence[int]) -> List[Node]:
        """Map indices back to original node labels."""
        return [self.labels[i] for i in indices]


class CompactDirected:
    """Index-based adjacency snapshot of a directed graph."""

    __slots__ = ("labels", "out_neighbors", "out_weights", "in_neighbors", "in_weights", "total_weight")

    def __init__(self, graph: DirectedGraph) -> None:
        self.labels: List[Node] = list(graph.nodes())
        index = {node: i for i, node in enumerate(self.labels)}
        n = len(self.labels)
        self.out_neighbors: List[List[int]] = [[] for _ in range(n)]
        self.out_weights: List[List[float]] = [[] for _ in range(n)]
        self.in_neighbors: List[List[int]] = [[] for _ in range(n)]
        self.in_weights: List[List[float]] = [[] for _ in range(n)]
        for u, v, w in graph.weighted_edges():
            ui, vi = index[u], index[v]
            self.out_neighbors[ui].append(vi)
            self.out_weights[ui].append(w)
            self.in_neighbors[vi].append(ui)
            self.in_weights[vi].append(w)
        self.total_weight: float = graph.total_weight

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the snapshot."""
        return len(self.labels)

    def to_labels(self, indices: Sequence[int]) -> List[Node]:
        """Map indices back to original node labels."""
        return [self.labels[i] for i in indices]
