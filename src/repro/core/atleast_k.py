"""Algorithm 2 — (3+3ε)-approximation for subgraphs of size at least k.

The size-constrained problem (find the densest subgraph with at least k
nodes) is NP-hard; Algorithm 2 modifies Algorithm 1 to remove only the
ε/(1+ε)·|S| *lowest-degree* members of the threshold set Ã(S) each
pass, which guarantees that some intermediate set lands within a
(1+ε) factor of size k.  Theorem 9 proves the (3+3ε) factor, and
Lemma 10 shows the bound improves to (2+2ε) whenever the optimum
itself has more than k nodes.  By Lemma 11 the pass count is
O(log_{1+ε} n/k) since peeling can stop once |S| < k.

Like Algorithm 1, the loop runs on either the interpreted Python
engine or the vectorized CSR kernel
(:func:`repro.kernels.peel.peel_atleast_k`); see the ``engine``
parameter.
"""

from __future__ import annotations

import math
from typing import Hashable, List, Optional

from .._tolerances import THRESHOLD_EPS
from .._validation import check_epsilon, check_positive_int
from ..errors import EmptyGraphError, ParameterError
from ..graph.undirected import UndirectedGraph
from ..kernels import resolve_engine
from ._compact import CompactUndirected, drop_killed
from .result import DensestSubgraphResult
from .trace import PassRecord
from .undirected import _as_csr, _as_dict_graph

Node = Hashable


def densest_subgraph_atleast_k(
    graph: UndirectedGraph,
    k: int,
    epsilon: float = 0.5,
    *,
    stop_below_k: bool = True,
    engine: str = "auto",
) -> DensestSubgraphResult:
    """Run Algorithm 2 on ``graph`` with size lower bound ``k``.

    Parameters
    ----------
    graph:
        Undirected (optionally weighted) graph, or a
        :class:`~repro.kernels.csr.CSRGraph` snapshot.
    k:
        Minimum size of the returned subgraph; must satisfy
        ``1 <= k <= graph.num_nodes``.
    epsilon:
        Slack parameter ε > 0 controlling the removal batch size
        ε/(1+ε)·|S| (rounded down, but at least one node per pass so the
        loop always progresses).  ε = 0 degenerates to removing one node
        per pass (exact greedy peeling restricted to Ã(S)).
    stop_below_k:
        If True (default), stop peeling once |S| < k — no later set can
        qualify, which is what gives the O(log_{1+ε} n/k) pass bound of
        Lemma 11.  Set False to observe the full trajectory.
    engine:
        ``"auto"`` (default), ``"python"``, or ``"numpy"``; both
        engines return identical results.

    Returns
    -------
    DensestSubgraphResult
        The densest intermediate set with |S| ≥ k.  Note: ``nodes`` is
        the *initial* node set V if no smaller qualifying set improved
        on it (V always satisfies the size constraint).

    Raises
    ------
    ParameterError
        If ``k`` exceeds the number of nodes (no feasible answer).
    """
    epsilon = check_epsilon(epsilon)
    check_positive_int(k, "k")
    if graph.num_nodes == 0:
        raise EmptyGraphError("graph has no nodes")
    if k > graph.num_nodes:
        raise ParameterError(
            f"k={k} exceeds the graph's {graph.num_nodes} nodes; no feasible set"
        )

    resolved = resolve_engine(engine, graph)
    if resolved != "python":
        from ..kernels import peel_functions

        csr = _as_csr(graph)
        out = peel_functions(resolved).peel_atleast_k(
            csr, k, epsilon, stop_below_k=stop_below_k
        )
        return DensestSubgraphResult(
            nodes=frozenset(csr.to_labels(out.best_indices)),
            density=out.best_density,
            passes=out.passes,
            epsilon=epsilon,
            best_pass=out.best_pass,
            trace=out.trace,
        )

    compact = CompactUndirected(_as_dict_graph(graph))
    n = compact.num_nodes
    alive = [True] * n
    alive_nodes = list(range(n))
    degrees = compact.initial_degrees()
    remaining_nodes = n
    remaining_weight = compact.total_weight

    best_nodes = list(range(n))
    best_density = remaining_weight / remaining_nodes
    best_pass = 0

    trace: List[PassRecord] = []
    pass_index = 0
    factor = 2.0 * (1.0 + epsilon)
    batch_fraction = epsilon / (1.0 + epsilon)

    while remaining_nodes > 0:
        if stop_below_k and remaining_nodes < k:
            break
        pass_index += 1
        density = remaining_weight / remaining_nodes
        threshold = factor * density
        # Ã(S) ← {i ∈ S : deg_S(i) ≤ 2(1+ε)·ρ(S)} — scan the alive list,
        # not range(n), so late passes cost O(|S|).
        cutoff = threshold + THRESHOLD_EPS
        candidates = [i for i in alive_nodes if degrees[i] <= cutoff]
        # A(S) ⊆ Ã(S) with |A(S)| = ε/(1+ε)·|S|: keep the lowest-degree
        # candidates.  Rounding: at most floor(ε/(1+ε)·|S|) per Theorem 9's
        # size argument, but at least 1 so the loop always progresses.
        batch_size = max(1, math.floor(batch_fraction * remaining_nodes))
        batch_size = min(batch_size, len(candidates))
        candidates.sort(key=lambda i: degrees[i])
        to_remove = candidates[:batch_size]
        alive_nodes = drop_killed(alive_nodes, to_remove)

        nodes_before = remaining_nodes
        weight_before = remaining_weight
        for i in to_remove:
            alive[i] = False
            remaining_nodes -= 1
            nbrs = compact.neighbors[i]
            wts = compact.weights[i]
            for idx in range(len(nbrs)):
                j = nbrs[idx]
                if alive[j]:
                    degrees[j] -= wts[idx]
                    remaining_weight -= wts[idx]

        density_after = (
            remaining_weight / remaining_nodes if remaining_nodes > 0 else 0.0
        )
        trace.append(
            PassRecord(
                pass_index=pass_index,
                nodes_before=nodes_before,
                edges_before=weight_before,
                density_before=density,
                threshold=threshold,
                removed=len(to_remove),
                nodes_after=remaining_nodes,
                edges_after=remaining_weight,
                density_after=density_after,
            )
        )
        # if |S| ≥ k and ρ(S) > ρ(S̃): S̃ ← S (paper lines 6-7).
        if remaining_nodes >= k and density_after > best_density:
            best_density = density_after
            best_nodes = list(alive_nodes)
            best_pass = pass_index

    return DensestSubgraphResult(
        nodes=frozenset(compact.to_labels(best_nodes)),
        density=best_density,
        passes=pass_index,
        epsilon=epsilon,
        best_pass=best_pass,
        trace=tuple(trace),
    )
