"""Charikar's greedy baseline, wrapped in the core result type.

Charikar (2000) removes the single minimum-degree node per step and
returns the densest intermediate subgraph — a 2-approximation.  The
paper's Algorithm 1 is the batched relaxation of exactly this greedy;
having both behind the same result type makes the quality-vs-passes
ablation (`benchmarks/test_ablation_batch_vs_greedy.py`) a one-liner.

Note on "passes": the greedy needs one pass over the edges per removal
when run in a streaming fashion, so its pass count equals the number of
nodes — the O(n) cost the paper is designed to avoid.  The trace here
records one :class:`PassRecord` per removal step.
"""

from __future__ import annotations

from typing import Hashable, List

from ..errors import EmptyGraphError
from ..exact.peeling import charikar_peeling
from ..graph.cores import peeling_order
from ..graph.undirected import UndirectedGraph
from .result import DensestSubgraphResult
from .trace import PassRecord

Node = Hashable


def greedy_densest_subgraph(
    graph: UndirectedGraph, *, record_trace: bool = False
) -> DensestSubgraphResult:
    """Charikar's exact greedy peeling as a :class:`DensestSubgraphResult`.

    Parameters
    ----------
    graph:
        Undirected (optionally weighted) graph with at least one node.
    record_trace:
        When True, record a :class:`PassRecord` per removal step (O(n)
        records); default False keeps the result light.

    Examples
    --------
    >>> from repro.graph.generators import clique, star, disjoint_union
    >>> g = disjoint_union([clique(6), star(50, offset=100)])
    >>> result = greedy_densest_subgraph(g)
    >>> result.density
    2.5
    """
    if graph.num_nodes == 0:
        raise EmptyGraphError("graph has no nodes")
    if graph.num_edges == 0:
        return DensestSubgraphResult(
            nodes=frozenset(graph.nodes()),
            density=0.0,
            passes=0,
            epsilon=0.0,
            best_pass=0,
            trace=(),
        )
    nodes, density = charikar_peeling(graph)
    n = graph.num_nodes
    trace: tuple = ()
    best_pass = n - len(nodes)
    if record_trace:
        trace = tuple(_greedy_trace(graph))
    return DensestSubgraphResult(
        nodes=frozenset(nodes),
        density=density,
        passes=n,
        epsilon=0.0,
        best_pass=best_pass,
        trace=trace,
    )


def _greedy_trace(graph: UndirectedGraph) -> List[PassRecord]:
    """Per-removal trace of the (unweighted) greedy peel."""
    order = peeling_order(graph)
    # Replay the removals, tracking degree/weight incrementally.
    alive = {u: True for u in graph.nodes()}
    weight = graph.total_weight
    count = graph.num_nodes
    records: List[PassRecord] = []
    for step, node in enumerate(order, start=1):
        weight_before = weight
        count_before = count
        density_before = weight / count if count else 0.0
        removed_weight = sum(
            graph.edge_weight(node, v) for v in graph.neighbors(node) if alive[v]
        )
        alive[node] = False
        weight -= removed_weight
        count -= 1
        records.append(
            PassRecord(
                pass_index=step,
                nodes_before=count_before,
                edges_before=weight_before,
                density_before=density_before,
                threshold=removed_weight,
                removed=1,
                nodes_after=count,
                edges_after=weight,
                density_after=weight / count if count else 0.0,
            )
        )
    return records
