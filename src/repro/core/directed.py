"""Algorithm 3 — (2+2ε)-approximate densest subgraph, directed.

For directed density ρ(S, T) = w(E(S, T)) / sqrt(|S||T|) and a known
ratio c = |S*|/|T*|, Algorithm 3 starts from S = T = V and in each pass
peels whichever side is over-represented relative to c:

* if |S|/|T| ≥ c, remove A(S) = {i ∈ S : w(E(i,T)) ≤ (1+ε)·w(E(S,T))/|S|};
* otherwise remove B(T) = {j ∈ T : w(E(S,j)) ≤ (1+ε)·w(E(S,T))/|T|}.

The size-ratio-driven choice of side is the paper's simplification over
the naive max-degree comparison; the naive rule is also implemented
(``side_rule="max_degree"``) as an ablation target.  In practice c is
unknown, so :func:`ratio_sweep` tries powers of δ, which worsens the
guarantee by at most a factor δ (§4.3, Figure 6.4/6.6).

Both the single run and the sweep accept ``engine="numpy"`` to route
through the vectorized CSR kernels; the sweep then builds the
:class:`~repro.kernels.csr.CSRDigraph` once and reuses it across every
candidate c, so the per-ratio cost is pure peeling.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from .._tolerances import THRESHOLD_EPS
from .._validation import check_epsilon, check_positive_float
from ..errors import EmptyGraphError, ParameterError
from ..graph.directed import DirectedGraph
from ..kernels import resolve_engine
from ._compact import CompactDirected
from .result import DirectedDensestSubgraphResult, RatioSweepResult, pick_best_run
from .trace import DirectedPassRecord

Node = Hashable

_SIDE_RULES = ("size_ratio", "max_degree")


def _as_csr_digraph(graph):
    """The input as a :class:`~repro.kernels.csr.CSRDigraph` snapshot."""
    from ..kernels import CSRDigraph

    if isinstance(graph, CSRDigraph):
        return graph
    return CSRDigraph.from_directed(graph)


def _as_dict_digraph(graph) -> DirectedGraph:
    """The input as a :class:`DirectedGraph` (for the Python engine)."""
    if isinstance(graph, DirectedGraph):
        return graph
    return graph.to_directed()


def _check_directed_args(epsilon: float, ratio: float, side_rule: str) -> float:
    epsilon = check_epsilon(epsilon)
    check_positive_float(ratio, "ratio")
    if side_rule not in _SIDE_RULES:
        raise ParameterError(f"side_rule must be one of {_SIDE_RULES}, got {side_rule!r}")
    return epsilon


def _directed_result_from_outcome(
    csr, outcome, ratio: float, epsilon: float
) -> DirectedDensestSubgraphResult:
    return DirectedDensestSubgraphResult(
        s_nodes=frozenset(csr.to_labels(outcome.best_s)),
        t_nodes=frozenset(csr.to_labels(outcome.best_t)),
        density=outcome.best_density,
        ratio=ratio,
        passes=outcome.passes,
        epsilon=epsilon,
        best_pass=outcome.best_pass,
        trace=outcome.trace,
    )


def densest_subgraph_directed(
    graph: DirectedGraph,
    ratio: float = 1.0,
    epsilon: float = 0.5,
    *,
    side_rule: str = "size_ratio",
    engine: str = "auto",
) -> DirectedDensestSubgraphResult:
    """Run Algorithm 3 on ``graph`` for a fixed ratio ``c``.

    Parameters
    ----------
    graph:
        Directed (optionally weighted) graph with at least one node, or
        a :class:`~repro.kernels.csr.CSRDigraph` snapshot.
    ratio:
        The assumed c = |S|/|T| of the optimal pair.
    epsilon:
        Slack parameter ε ≥ 0.
    side_rule:
        ``"size_ratio"`` (the paper's simplified rule, default) chooses
        the side to peel from |S|/|T| vs c; ``"max_degree"`` uses the
        naive rule comparing max in/out degrees (slower, kept as an
        ablation of the design choice discussed in §4.3).
    engine:
        ``"auto"`` (default), ``"python"``, or ``"numpy"``; both
        engines return identical results.

    Returns
    -------
    DirectedDensestSubgraphResult
        Best (S̃, T̃) pair, its density, and the per-pass trace.

    Examples
    --------
    >>> g = DirectedGraph([(i, j) for i in range(4) for j in range(4) if i != j])
    >>> result = densest_subgraph_directed(g, ratio=1.0, epsilon=0.5)
    >>> result.s_size, result.t_size, result.density
    (4, 4, 3.0)
    """
    epsilon = _check_directed_args(epsilon, ratio, side_rule)
    if graph.num_nodes == 0:
        raise EmptyGraphError("graph has no nodes")

    resolved = resolve_engine(engine, graph)
    if resolved != "python":
        from ..kernels import peel_functions

        csr = _as_csr_digraph(graph)
        outcome = peel_functions(resolved).peel_directed(
            csr, ratio, epsilon, side_rule=side_rule
        )
        return _directed_result_from_outcome(csr, outcome, ratio, epsilon)

    compact = CompactDirected(_as_dict_digraph(graph))
    n = compact.num_nodes
    in_s = [True] * n
    in_t = [True] * n
    s_nodes = list(range(n))
    t_nodes = list(range(n))
    s_size = n
    t_size = n
    # out_to_t[i] = w(E(i, T)); in_from_s[j] = w(E(S, j)).
    out_to_t = [sum(ws) for ws in compact.out_weights]
    in_from_s = [sum(ws) for ws in compact.in_weights]
    edge_weight = compact.total_weight

    best_s = list(range(n))
    best_t = list(range(n))
    best_density = edge_weight / math.sqrt(n * n)
    best_pass = 0

    trace: List[DirectedPassRecord] = []
    pass_index = 0
    one_plus_eps = 1.0 + epsilon

    while s_size > 0 and t_size > 0:
        pass_index += 1
        density = edge_weight / math.sqrt(s_size * t_size)
        if side_rule == "size_ratio":
            peel_s = s_size / t_size >= ratio
        else:
            peel_s = _max_degree_rule(out_to_t, in_from_s, s_nodes, t_nodes, ratio)

        s_before, t_before = s_size, t_size
        weight_before = edge_weight
        # The threshold scans walk the maintained membership lists so a
        # pass costs O(|side|), not O(n), even deep into the peel.
        if peel_s:
            cutoff = one_plus_eps * edge_weight / s_size + THRESHOLD_EPS
            threshold = one_plus_eps * edge_weight / s_size
            to_remove = []
            survivors = []
            for i in s_nodes:
                if out_to_t[i] <= cutoff:
                    to_remove.append(i)
                else:
                    survivors.append(i)
            s_nodes = survivors
            for i in to_remove:
                in_s[i] = False
                s_size -= 1
                nbrs = compact.out_neighbors[i]
                wts = compact.out_weights[i]
                for k in range(len(nbrs)):
                    j = nbrs[k]
                    if in_t[j]:
                        in_from_s[j] -= wts[k]
                        edge_weight -= wts[k]
            side = "S"
        else:
            cutoff = one_plus_eps * edge_weight / t_size + THRESHOLD_EPS
            threshold = one_plus_eps * edge_weight / t_size
            to_remove = []
            survivors = []
            for j in t_nodes:
                if in_from_s[j] <= cutoff:
                    to_remove.append(j)
                else:
                    survivors.append(j)
            t_nodes = survivors
            for j in to_remove:
                in_t[j] = False
                t_size -= 1
                nbrs = compact.in_neighbors[j]
                wts = compact.in_weights[j]
                for k in range(len(nbrs)):
                    i = nbrs[k]
                    if in_s[i]:
                        out_to_t[i] -= wts[k]
                        edge_weight -= wts[k]
            side = "T"

        if s_size > 0 and t_size > 0:
            density_after = edge_weight / math.sqrt(s_size * t_size)
        else:
            density_after = 0.0
        trace.append(
            DirectedPassRecord(
                pass_index=pass_index,
                side=side,
                s_before=s_before,
                t_before=t_before,
                edges_before=weight_before,
                density_before=density,
                threshold=threshold,
                removed=len(to_remove),
                s_after=s_size,
                t_after=t_size,
                edges_after=edge_weight,
                density_after=density_after,
            )
        )
        if density_after > best_density:
            best_density = density_after
            best_s = list(s_nodes)
            best_t = list(t_nodes)
            best_pass = pass_index

    return DirectedDensestSubgraphResult(
        s_nodes=frozenset(compact.to_labels(best_s)),
        t_nodes=frozenset(compact.to_labels(best_t)),
        density=best_density,
        ratio=ratio,
        passes=pass_index,
        epsilon=epsilon,
        best_pass=best_pass,
        trace=tuple(trace),
    )


def _max_degree_rule(
    out_to_t: Sequence[float],
    in_from_s: Sequence[float],
    s_nodes: Sequence[int],
    t_nodes: Sequence[int],
    ratio: float,
) -> bool:
    """The naive side-choice rule from §4.3.

    Compare the maximum out-degree E(i*, T) over S with the maximum
    in-degree E(S, j*) over T: remove A(S) iff E(S, j*)/E(i*, T) ≥ c.
    Requires scanning both sides every pass — the reason the paper
    prefers the size-ratio rule.
    """
    max_out = max((out_to_t[i] for i in s_nodes), default=0.0)
    max_in = max((in_from_s[j] for j in t_nodes), default=0.0)
    if max_out <= 0.0:
        return True
    return max_in / max_out >= ratio


def default_ratio_grid(
    num_nodes: int, delta: float = 2.0
) -> List[float]:
    """The paper's powers-of-δ grid of candidate ratios.

    Covers [1/n, n] with c = δ^j; trying only these grid points worsens
    the approximation by at most a factor δ (§4.3).
    """
    check_positive_float(delta, "delta")
    if delta <= 1.0:
        raise ParameterError(f"delta must be > 1, got {delta}")
    if num_nodes < 1:
        raise ParameterError(f"num_nodes must be >= 1, got {num_nodes}")
    if num_nodes == 1:
        return [1.0]
    j_max = math.ceil(math.log(num_nodes) / math.log(delta))
    return [delta**j for j in range(-j_max, j_max + 1)]


def ratio_sweep(
    graph: DirectedGraph,
    epsilon: float = 0.5,
    *,
    delta: float = 2.0,
    ratios: Optional[Iterable[float]] = None,
    side_rule: str = "size_ratio",
    engine: str = "auto",
) -> RatioSweepResult:
    """Search over c and return the best Algorithm 3 run (§4.3).

    Parameters
    ----------
    graph:
        Directed input graph (or a CSR snapshot).
    epsilon:
        ε passed to each per-ratio run.
    delta:
        Grid resolution; candidate ratios are powers of δ spanning
        [1/n, n].  Ignored when ``ratios`` is given.
    ratios:
        Explicit candidate ratios (overrides ``delta``).
    side_rule:
        Passed through to :func:`densest_subgraph_directed`.
    engine:
        ``"auto"``, ``"python"``, or ``"numpy"``.  On the numpy engine
        the CSR digraph is built *once* and shared by every per-ratio
        run, so sweeping the whole grid costs one snapshot build.

    Returns
    -------
    RatioSweepResult
        Best run plus the full per-ratio series (Figures 6.4 and 6.6).
    """
    if ratios is None:
        grid = default_ratio_grid(graph.num_nodes, delta)
        grid_delta: Optional[float] = delta
    else:
        grid = sorted(set(float(c) for c in ratios))
        grid_delta = None
        if not grid:
            raise ParameterError("ratios must be non-empty")
    resolved = resolve_engine(engine, graph) if graph.num_nodes > 0 else "python"
    if resolved != "python":
        epsilon = check_epsilon(epsilon)
        if side_rule not in _SIDE_RULES:
            raise ParameterError(
                f"side_rule must be one of {_SIDE_RULES}, got {side_rule!r}"
            )
        for c in grid:
            check_positive_float(c, "ratio")
        from ..kernels import peel_functions

        csr = _as_csr_digraph(graph)
        outcomes = peel_functions(resolved).peel_directed_sweep(
            csr, grid, epsilon, side_rule=side_rule
        )
        results = [
            _directed_result_from_outcome(csr, outcome, c, epsilon)
            for c, outcome in zip(grid, outcomes)
        ]
    else:
        results = [
            densest_subgraph_directed(
                graph, ratio=c, epsilon=epsilon, side_rule=side_rule, engine="python"
            )
            for c in grid
        ]
    best = pick_best_run(results)
    return RatioSweepResult(best=best, by_ratio=tuple(results), delta=grid_delta)
