"""Node-disjoint enumeration of dense subgraphs (Section 6 remark).

The paper notes that the algorithm "can easily be adapted to iteratively
enumerate node-disjoint (approximately) densest subgraphs ... with the
guarantee that at each step of the enumeration, the algorithm will
produce an approximate solution on the residual graph."  This module
implements that loop: run Algorithm 1, pull out the returned nodes,
repeat on the residual graph.
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Optional

from .._validation import check_epsilon, check_positive_int
from ..graph.undirected import UndirectedGraph
from .result import DensestSubgraphResult
from .undirected import densest_subgraph

Node = Hashable


def enumerate_dense_subgraphs(
    graph: UndirectedGraph,
    epsilon: float = 0.5,
    *,
    max_subgraphs: Optional[int] = None,
    min_density: float = 0.0,
    min_size: int = 1,
) -> Iterator[DensestSubgraphResult]:
    """Yield node-disjoint approximately-densest subgraphs.

    Each iteration runs Algorithm 1 on the residual graph and removes
    the returned node set; each yielded result is a (2+2ε)-approximation
    *for its residual graph* (the paper's guarantee).

    Parameters
    ----------
    graph:
        Input graph; not mutated (the loop works on a copy).
    epsilon:
        ε for each Algorithm 1 run.
    max_subgraphs:
        Stop after this many subgraphs (``None`` = until exhaustion).
    min_density:
        Stop when the best residual density falls to or below this.
    min_size:
        Stop when the returned subgraph is smaller than this (defaults
        to 1, i.e. only stop on empty).

    Yields
    ------
    DensestSubgraphResult
        One result per extracted subgraph, in extraction order.

    Examples
    --------
    >>> from repro.graph.generators import clique, disjoint_union
    >>> g = disjoint_union([clique(6), clique(5, offset=10), clique(4, offset=20)])
    >>> sizes = [r.size for r in enumerate_dense_subgraphs(g, epsilon=0.1)]
    >>> sizes
    [6, 5, 4]
    """
    check_epsilon(epsilon)
    check_positive_int(min_size, "min_size")
    if max_subgraphs is not None:
        check_positive_int(max_subgraphs, "max_subgraphs")
    residual = graph.copy()
    produced = 0
    while residual.num_nodes > 0 and residual.num_edges > 0:
        if max_subgraphs is not None and produced >= max_subgraphs:
            return
        result = densest_subgraph(residual, epsilon)
        if result.density <= min_density or result.size < min_size:
            return
        yield result
        residual.remove_nodes_from(result.nodes)
        produced += 1
