"""Result containers returned by the core algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from .trace import DirectedPassRecord, PassRecord

Node = Hashable


@dataclass(frozen=True)
class DensestSubgraphResult:
    """Output of the undirected algorithms (Algorithms 1 and 2).

    Attributes
    ----------
    nodes:
        The best node set S̃ found.
    density:
        ρ(S̃).
    passes:
        Number of passes the algorithm made over the edge set.
    epsilon:
        The ε the run used.
    best_pass:
        The pass index after which the returned set was current
        (0 means the initial full node set was never improved upon).
    trace:
        One :class:`PassRecord` per pass.
    """

    nodes: FrozenSet[Node]
    density: float
    passes: int
    epsilon: float
    best_pass: int
    trace: Tuple[PassRecord, ...]

    @property
    def size(self) -> int:
        """|S̃|."""
        return len(self.nodes)

    def densities_by_pass(self) -> List[float]:
        """ρ(S) after each pass — the series of Figure 6.2."""
        return [record.density_after for record in self.trace]

    def nodes_by_pass(self) -> List[int]:
        """Remaining node count after each pass — Figure 6.3 (top)."""
        return [record.nodes_after for record in self.trace]

    def edges_by_pass(self) -> List[float]:
        """Remaining edge weight after each pass — Figure 6.3 (bottom)."""
        return [record.edges_after for record in self.trace]

    def approximation_ratio(self, optimum: float) -> float:
        """ρ*/ρ(S̃) given a known optimum (Table 2's ρ*/ρ̃ column)."""
        if self.density <= 0:
            return float("inf")
        return optimum / self.density


@dataclass(frozen=True)
class DirectedDensestSubgraphResult:
    """Output of Algorithm 3 for a single ratio c.

    Attributes
    ----------
    s_nodes / t_nodes:
        The best (S̃, T̃) pair found.
    density:
        ρ(S̃, T̃).
    ratio:
        The ratio c = |S|/|T| this run assumed.
    passes:
        Number of passes over the edge set.
    epsilon:
        The ε the run used.
    best_pass:
        Pass index after which the returned pair was current.
    trace:
        One :class:`DirectedPassRecord` per pass.
    """

    s_nodes: FrozenSet[Node]
    t_nodes: FrozenSet[Node]
    density: float
    ratio: float
    passes: int
    epsilon: float
    best_pass: int
    trace: Tuple[DirectedPassRecord, ...]

    @property
    def s_size(self) -> int:
        """|S̃|."""
        return len(self.s_nodes)

    @property
    def t_size(self) -> int:
        """|T̃|."""
        return len(self.t_nodes)

    def sizes_by_pass(self) -> List[Tuple[int, int, float]]:
        """(|S|, |T|, w(E(S,T))) after each pass — Figure 6.5's series."""
        return [(r.s_after, r.t_after, r.edges_after) for r in self.trace]

    def approximation_ratio(self, optimum: float) -> float:
        """ρ*/ρ(S̃, T̃) given a known optimum."""
        if self.density <= 0:
            return float("inf")
        return optimum / self.density


def pick_best_run(results):
    """The winning per-ratio run: first (in grid order) within
    :data:`~repro._tolerances.THRESHOLD_EPS` of the maximum density.

    A plain ``max()`` can flip between near-exactly-tied ratios when the
    per-run densities carry engine-dependent last-ulp noise (the python
    and numpy engines sum the same edge weights in different orders);
    the tolerance makes the chosen ratio identical across engines and
    execution models.
    """
    from .._tolerances import THRESHOLD_EPS

    best_density = max(r.density for r in results)
    cutoff = best_density - THRESHOLD_EPS * max(1.0, abs(best_density))
    return next(r for r in results if r.density >= cutoff)


@dataclass(frozen=True)
class RatioSweepResult:
    """Output of the powers-of-δ search over c (Section 4.3 / Figure 6.4).

    Attributes
    ----------
    best:
        The single best :class:`DirectedDensestSubgraphResult`.
    by_ratio:
        All per-ratio results in ratio order — the Figure 6.4/6.6 series.
    delta:
        The grid resolution δ used to build the ratio grid (None when an
        explicit grid was supplied).
    """

    best: DirectedDensestSubgraphResult
    by_ratio: Tuple[DirectedDensestSubgraphResult, ...]
    delta: Optional[float]

    @property
    def density(self) -> float:
        """Best density over the sweep."""
        return self.best.density

    @property
    def best_ratio(self) -> float:
        """The c achieving the best density."""
        return self.best.ratio

    def densities(self) -> List[Tuple[float, float]]:
        """(c, ρ) pairs — Figure 6.4/6.6's density series."""
        return [(r.ratio, r.density) for r in self.by_ratio]

    def passes(self) -> List[Tuple[float, int]]:
        """(c, passes) pairs — Figure 6.4/6.6's pass-count series."""
        return [(r.ratio, r.passes) for r in self.by_ratio]

    def total_passes(self) -> int:
        """Total passes across the whole sweep."""
        return sum(r.passes for r in self.by_ratio)
