"""Per-pass execution traces.

The paper's evaluation plots the *trajectory* of the peeling process:
density vs. pass (Figure 6.2), remaining nodes/edges vs. pass
(Figure 6.3), and |S|, |T|, |E(S,T)| vs. pass for directed graphs
(Figure 6.5).  Every algorithm in :mod:`repro.core` therefore records
one immutable record per pass.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PassRecord:
    """State of one pass of the undirected peeling (Algorithms 1 and 2).

    Attributes
    ----------
    pass_index:
        1-based pass number.
    nodes_before / edges_before:
        Node count and total edge weight of S at the start of the pass.
    density_before:
        ρ(S) at the start of the pass (what the threshold is based on).
    threshold:
        The removal threshold 2(1+ε)·ρ(S) used this pass.
    removed:
        Number of nodes removed in this pass.
    nodes_after / edges_after:
        Remaining node count / edge weight after removal.
    density_after:
        ρ(S) after removal (0 if S became empty).
    """

    pass_index: int
    nodes_before: int
    edges_before: float
    density_before: float
    threshold: float
    removed: int
    nodes_after: int
    edges_after: float
    density_after: float

    @property
    def removal_fraction(self) -> float:
        """Fraction of the pass's nodes removed (Lemma 4 lower-bounds this)."""
        if self.nodes_before == 0:
            return 0.0
        return self.removed / self.nodes_before


@dataclass(frozen=True)
class DirectedPassRecord:
    """State of one pass of the directed peeling (Algorithm 3).

    Attributes
    ----------
    pass_index:
        1-based pass number.
    side:
        Which side was peeled this pass: ``"S"`` or ``"T"``.
    s_before / t_before:
        |S| and |T| at the start of the pass.
    edges_before:
        w(E(S, T)) at the start of the pass.
    density_before:
        ρ(S, T) at the start of the pass.
    threshold:
        The removal threshold (1+ε)·w(E(S,T))/|side| used this pass.
    removed:
        Number of nodes removed from the peeled side.
    s_after / t_after / edges_after / density_after:
        State after the removal.
    """

    pass_index: int
    side: str
    s_before: int
    t_before: int
    edges_before: float
    density_before: float
    threshold: float
    removed: int
    s_after: int
    t_after: int
    edges_after: float
    density_after: float
