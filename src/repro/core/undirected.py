"""Algorithm 1 — (2+2ε)-approximate densest subgraph, undirected.

Starting from S = V, every pass computes ρ(S) and removes *all* nodes
whose induced degree is at most 2(1+ε)·ρ(S); the best intermediate S is
returned.  Lemma 3 shows the result is a (2+2ε)-approximation and
Lemma 4 shows the loop makes O(log_{1+ε} n) passes.

This module is the in-memory reference implementation; the streaming
engine (:mod:`repro.streaming.engine`) and MapReduce driver
(:mod:`repro.mapreduce.densest`) recompute the same per-pass quantities
under their respective execution models and are tested to match it
pass-for-pass.

Two interchangeable execution engines implement the loop:

* ``engine="python"`` — the original interpreted loop over compact
  adjacency lists;
* ``engine="numpy"`` — the vectorized CSR kernel
  (:func:`repro.kernels.peel.peel_undirected`), same node sets and
  traces, several times faster at evaluation scales;
* ``engine="auto"`` (default) — :func:`repro.kernels.resolve_engine`
  picks numpy for int-labeled or large graphs and falls back to the
  Python loop when numpy is unavailable.

Weighted graphs are handled transparently by using weighted degrees and
edge weights throughout, which is the generalization Lemma 6 relies on.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from .._tolerances import THRESHOLD_EPS
from .._validation import check_epsilon
from ..errors import EmptyGraphError
from ..graph.undirected import UndirectedGraph
from ..kernels import resolve_engine
from ._compact import CompactUndirected
from .result import DensestSubgraphResult
from .trace import PassRecord

Node = Hashable


def _as_csr(graph):
    """The input as a :class:`~repro.kernels.csr.CSRGraph` snapshot."""
    from ..kernels import CSRGraph

    if isinstance(graph, CSRGraph):
        return graph
    return CSRGraph.from_undirected(graph)


def _as_dict_graph(graph) -> UndirectedGraph:
    """The input as an :class:`UndirectedGraph` (for the Python engine)."""
    if isinstance(graph, UndirectedGraph):
        return graph
    return graph.to_undirected()


def densest_subgraph(
    graph: UndirectedGraph,
    epsilon: float = 0.5,
    *,
    max_passes: Optional[int] = None,
    engine: str = "auto",
) -> DensestSubgraphResult:
    """Run Algorithm 1 on ``graph``.

    Parameters
    ----------
    graph:
        Undirected (optionally weighted) graph with at least one node;
        a :class:`~repro.kernels.csr.CSRGraph` snapshot is also
        accepted and skips the CSR build.
    epsilon:
        Slack parameter ε ≥ 0.  Larger ε removes more nodes per pass:
        fewer passes, weaker (2+2ε) guarantee.  ε = 0 matches
        Charikar's threshold (average degree) and still makes progress
        every pass, but without the O(log_{1+ε} n) pass bound.
    max_passes:
        Optional safety cap on the number of passes (mainly for ε = 0
        on adversarial inputs); ``None`` means run to completion.
    engine:
        ``"auto"`` (default), ``"python"``, or ``"numpy"``.  Both
        engines return identical node sets and pass traces (within
        :data:`~repro._tolerances.THRESHOLD_EPS` on the float fields).

    Returns
    -------
    DensestSubgraphResult
        Best intermediate subgraph, its density, and the full trace.

    Examples
    --------
    >>> from repro.graph.generators import clique, star, disjoint_union
    >>> g = disjoint_union([clique(6), star(50, offset=100)])
    >>> result = densest_subgraph(g, epsilon=0.1)
    >>> sorted(result.nodes)
    [0, 1, 2, 3, 4, 5]
    >>> result.density
    2.5
    """
    epsilon = check_epsilon(epsilon)
    if graph.num_nodes == 0:
        raise EmptyGraphError("graph has no nodes")

    resolved = resolve_engine(engine, graph)
    if resolved != "python":
        from ..kernels import peel_functions

        csr = _as_csr(graph)
        out = peel_functions(resolved).peel_undirected(
            csr, epsilon, max_passes=max_passes
        )
        return DensestSubgraphResult(
            nodes=frozenset(csr.to_labels(out.best_indices)),
            density=out.best_density,
            passes=out.passes,
            epsilon=epsilon,
            best_pass=out.best_pass,
            trace=out.trace,
        )

    compact = CompactUndirected(_as_dict_graph(graph))
    n = compact.num_nodes
    alive = [True] * n
    alive_nodes = list(range(n))
    degrees = compact.initial_degrees()
    remaining_nodes = n
    remaining_weight = compact.total_weight

    # S̃ ← V (paper line 1).
    best_nodes = list(range(n))
    best_density = remaining_weight / remaining_nodes
    best_pass = 0

    trace: List[PassRecord] = []
    pass_index = 0
    factor = 2.0 * (1.0 + epsilon)

    while remaining_nodes > 0:
        if max_passes is not None and pass_index >= max_passes:
            break
        pass_index += 1
        density = remaining_weight / remaining_nodes
        threshold = factor * density
        # A(S) ← {i ∈ S : deg_S(i) ≤ 2(1+ε)·ρ(S)}.  Scanning the
        # maintained alive list (not range(n)) keeps late passes
        # proportional to |S|, not the original node count.
        cutoff = threshold + THRESHOLD_EPS
        to_remove = []
        survivors = []
        for i in alive_nodes:
            if degrees[i] <= cutoff:
                to_remove.append(i)
            else:
                survivors.append(i)
        alive_nodes = survivors
        nodes_before = remaining_nodes
        weight_before = remaining_weight
        # S ← S \ A(S): kill nodes one at a time.  When the first endpoint
        # of an edge internal to A(S) is processed, the second endpoint is
        # still alive, so the edge is subtracted exactly once; once both
        # are dead the edge is skipped.
        for i in to_remove:
            alive[i] = False
            remaining_nodes -= 1
            nbrs = compact.neighbors[i]
            wts = compact.weights[i]
            for k in range(len(nbrs)):
                j = nbrs[k]
                if alive[j]:
                    degrees[j] -= wts[k]
                    remaining_weight -= wts[k]

        density_after = (
            remaining_weight / remaining_nodes if remaining_nodes > 0 else 0.0
        )
        trace.append(
            PassRecord(
                pass_index=pass_index,
                nodes_before=nodes_before,
                edges_before=weight_before,
                density_before=density,
                threshold=threshold,
                removed=len(to_remove),
                nodes_after=remaining_nodes,
                edges_after=remaining_weight,
                density_after=density_after,
            )
        )
        # if ρ(S) > ρ(S̃): S̃ ← S (paper lines 5-6).
        if density_after > best_density:
            best_density = density_after
            best_nodes = list(alive_nodes)
            best_pass = pass_index

    return DensestSubgraphResult(
        nodes=frozenset(compact.to_labels(best_nodes)),
        density=best_density,
        passes=pass_index,
        epsilon=epsilon,
        best_pass=best_pass,
        trace=tuple(trace),
    )
