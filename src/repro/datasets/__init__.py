"""Synthetic stand-ins for the paper's datasets.

No network access is available (and the paper's im/twitter graphs were
never public), so every graph in the evaluation is replaced by a
deterministic synthetic analog of the same *type* and *shape* —
heavy-tailed degrees, embedded dense communities, directed skew — at
laptop scale.  See DESIGN.md §3–4 for the substitution rationale.

Use :func:`~repro.datasets.registry.load` to build a dataset by name and
:func:`~repro.datasets.registry.names` to enumerate them.
"""

from .registry import (
    DatasetInfo,
    ServedDataset,
    info,
    load,
    names,
    summary_rows,
    synthetic_descriptor,
    synthetic_fingerprint,
)

__all__ = [
    "DatasetInfo",
    "ServedDataset",
    "load",
    "info",
    "names",
    "summary_rows",
    "synthetic_descriptor",
    "synthetic_fingerprint",
]
