"""Named dataset registry.

Maps dataset names to builders plus the metadata of the real graph each
one stands in for (the paper's Tables 1 and 2).  Everything is built on
demand and deterministic for a given ``(scale, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..errors import DatasetError
from ..graph.directed import DirectedGraph
from ..graph.undirected import UndirectedGraph
from . import synthetic

Graph = Union[UndirectedGraph, DirectedGraph]
Builder = Callable[[float, int], Graph]


@dataclass(frozen=True)
class DatasetInfo:
    """Metadata of a registered dataset.

    Attributes
    ----------
    name:
        Registry key (e.g. ``"flickr_sim"``).
    kind:
        ``"undirected"`` or ``"directed"``.
    stands_in_for:
        The paper's dataset this replaces.
    paper_nodes / paper_edges:
        Size of the original (from Table 1 / Table 2 of the paper).
    description:
        One-line description of the construction.
    default_seed:
        Seed used when none is supplied.
    builder:
        ``builder(scale, seed) -> graph``.
    group:
        ``"evaluation"`` (Table 1 graphs) or ``"table2"`` (the seven
        SNAP graphs used for the approximation-quality study).
    """

    name: str
    kind: str
    stands_in_for: str
    paper_nodes: int
    paper_edges: int
    description: str
    default_seed: int
    builder: Builder
    group: str


_REGISTRY: Dict[str, DatasetInfo] = {}


def _register(info: DatasetInfo) -> None:
    if info.name in _REGISTRY:
        raise DatasetError(f"duplicate dataset name {info.name!r}")
    _REGISTRY[info.name] = info


_register(
    DatasetInfo(
        name="flickr_sim",
        kind="undirected",
        stands_in_for="flickr",
        paper_nodes=976_000,
        paper_edges=7_600_000,
        description="power-law friendships + one planted near-clique community",
        default_seed=0,
        builder=synthetic.flickr_sim,
        group="evaluation",
    )
)
_register(
    DatasetInfo(
        name="im_sim",
        kind="undirected",
        stands_in_for="im (Yahoo! Messenger)",
        paper_nodes=645_000_000,
        paper_edges=6_100_000_000,
        description="flatter power-law contacts + weak planted community",
        default_seed=1,
        builder=synthetic.im_sim,
        group="evaluation",
    )
)
_register(
    DatasetInfo(
        name="livejournal_sim",
        kind="directed",
        stands_in_for="livejournal",
        paper_nodes=4_840_000,
        paper_edges=68_900_000,
        description="reciprocal directed power-law + symmetric dense block (best c near 1)",
        default_seed=2,
        builder=synthetic.livejournal_sim,
        group="evaluation",
    )
)
_register(
    DatasetInfo(
        name="twitter_sim",
        kind="directed",
        stands_in_for="twitter",
        paper_nodes=50_700_000,
        paper_edges=2_700_000_000,
        description="celebrity-skewed follower graph + fan->celebrity block (best c far from 1)",
        default_seed=3,
        builder=synthetic.twitter_sim,
        group="evaluation",
    )
)
for _name, _stands, _pn, _pe, _desc, _seed, _builder in [
    ("as_sim", "as20000102", 6_474, 13_233, "sparse AS-style topology", 10, synthetic.as_sim),
    ("astroph_sim", "ca-AstroPh", 18_772, 396_160, "dense collaboration cliques", 11, synthetic.astroph_sim),
    ("condmat_sim", "ca-CondMat", 23_133, 186_936, "medium collaboration cliques", 12, synthetic.condmat_sim),
    ("grqc_sim", "ca-GrQc", 5_242, 28_980, "small community, tight clique core", 13, synthetic.grqc_sim),
    ("hepph_sim", "ca-HepPh", 12_008, 237_010, "collaboration + one huge author-list clique", 14, synthetic.hepph_sim),
    ("hepth_sim", "ca-HepTh", 9_877, 51_971, "sparse theory collaborations", 15, synthetic.hepth_sim),
    ("enron_sim", "email-Enron", 36_692, 367_662, "email graph with dense executive core", 16, synthetic.enron_sim),
]:
    _register(
        DatasetInfo(
            name=_name,
            kind="undirected",
            stands_in_for=_stands,
            paper_nodes=_pn,
            paper_edges=_pe,
            description=_desc,
            default_seed=_seed,
            builder=_builder,
            group="table2",
        )
    )


def names(group: Optional[str] = None) -> List[str]:
    """Registered dataset names, optionally filtered by group."""
    if group is None:
        return sorted(_REGISTRY)
    return sorted(n for n, i in _REGISTRY.items() if i.group == group)


def info(name: str) -> DatasetInfo:
    """Metadata for a dataset name.

    Raises
    ------
    DatasetError
        For unknown names (with the list of valid ones).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def load(name: str, *, scale: float = 1.0, seed: Optional[int] = None) -> Graph:
    """Build a dataset by name.

    Parameters
    ----------
    name:
        A registered dataset name (see :func:`names`).
    scale:
        Node-count multiplier (1.0 = default laptop-sized instance).
    seed:
        Overrides the dataset's default seed.
    """
    meta = info(name)
    use_seed = meta.default_seed if seed is None else seed
    return meta.builder(scale, use_seed)


# ----------------------------------------------------------------------
# Served dataset records
# ----------------------------------------------------------------------
# The serving subsystem (:mod:`repro.serve`) registers inputs under
# stable names and caches solutions keyed by a *content fingerprint* so
# repeat queries become catalog hits.  Shard stores carry their own
# content hash (:meth:`repro.store.ShardedEdgeStore.fingerprint`);
# registry datasets are deterministic functions of ``(name, scale,
# seed)``, so their fingerprint hashes that descriptor instead of the
# materialized edges.


@dataclass(frozen=True)
class ServedDataset:
    """One dataset registered with the serving layer.

    Attributes
    ----------
    name:
        The caller-chosen registration name (unique per server).
    fingerprint:
        Content hash the result catalog keys on.
    source:
        Where the edges come from: a store/edge-list path, or
        ``"synthetic:<registry name>"``.
    input_kind:
        ``"store"``, ``"edge_list"``, or ``"synthetic"``.
    directed:
        Whether the input is a directed graph.
    num_nodes / num_edges:
        Size facts recorded at registration.
    scale / seed:
        Synthetic-builder parameters (``None`` for on-disk inputs).
    registered_at:
        UTC ISO-8601 registration timestamp.
    """

    name: str
    fingerprint: str
    source: str
    input_kind: str
    directed: bool
    num_nodes: int
    num_edges: int
    scale: Optional[float] = None
    seed: Optional[int] = None
    registered_at: str = ""

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "source": self.source,
            "input_kind": self.input_kind,
            "directed": self.directed,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "scale": self.scale,
            "seed": self.seed,
            "registered_at": self.registered_at,
        }


def synthetic_descriptor(
    name: str, *, scale: float = 1.0, seed: Optional[int] = None
) -> Dict[str, object]:
    """The canonical build recipe of a registry dataset instance.

    Resolves the default seed so ``seed=None`` and an explicit default
    seed describe — and fingerprint as — the same graph.
    """
    meta = info(name)
    return {
        "synthetic": name,
        "scale": float(scale),
        "seed": int(meta.default_seed if seed is None else seed),
    }


def synthetic_fingerprint(
    name: str, *, scale: float = 1.0, seed: Optional[int] = None
) -> str:
    """Deterministic content fingerprint of a registry dataset instance."""
    import hashlib
    import json

    payload = json.dumps(
        synthetic_descriptor(name, scale=scale, seed=seed),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(f"repro-synthetic:{payload}".encode()).hexdigest()


def summary_rows(*, scale: float = 1.0, group: Optional[str] = None) -> List[Tuple]:
    """(name, type, |V|, |E|, stands-in-for, paper |V|, paper |E|) rows.

    Builds every requested dataset at ``scale`` — this is the data
    behind the reproduction of Table 1.
    """
    rows = []
    for name in names(group):
        meta = info(name)
        graph = load(name, scale=scale)
        rows.append(
            (
                name,
                meta.kind,
                graph.num_nodes,
                graph.num_edges,
                meta.stands_in_for,
                meta.paper_nodes,
                meta.paper_edges,
            )
        )
    return rows
