"""Builders for the synthetic dataset stand-ins.

Each builder is deterministic given ``(scale, seed)`` and documents
which real graph it stands in for and which structural property of that
graph the experiments depend on.  ``scale`` multiplies node counts
(``scale=1.0`` is the default laptop-sized instance; tests use smaller
scales).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from .._validation import check_positive_float
from ..errors import ParameterError
from ..graph.directed import DirectedGraph
from ..graph.generators import (
    chung_lu,
    directed_power_law,
    erdos_renyi,
)
from ..graph.undirected import UndirectedGraph


def _scaled(base: int, scale: float, minimum: int = 20) -> int:
    """Scale a node count, keeping it usable."""
    check_positive_float(scale, "scale")
    return max(minimum, int(round(base * scale)))


def _plant_clique(graph: UndirectedGraph, members: List[int], rng: random.Random, p: float) -> None:
    """Densify a node subset to an Erdős–Rényi block of probability p."""
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            if not graph.has_edge(u, v) and rng.random() < p:
                graph.add_edge(u, v)


def _plant_directed_block(
    graph: DirectedGraph,
    sources: List[int],
    targets: List[int],
    rng: random.Random,
    p: float,
) -> None:
    """Densify a bipartite-style S -> T block with edge probability p."""
    for u in sources:
        for v in targets:
            if u != v and not graph.has_edge(u, v) and rng.random() < p:
                graph.add_edge(u, v)


# ----------------------------------------------------------------------
# The four large evaluation graphs (§6.1, Table 1)
# ----------------------------------------------------------------------
def flickr_sim(scale: float = 1.0, seed: int = 0) -> UndirectedGraph:
    """Stand-in for flickr (976K nodes / 7.6M edges, undirected).

    Heavy-tailed photo-sharing friendship graph with a pronounced dense
    community (the paper measures ρ ≈ 558 at ε = 0, far above the
    average degree — i.e. a strong dense core).  We build a Chung–Lu
    power-law background plus one planted near-clique community.
    """
    n = _scaled(20_000, scale)
    graph = chung_lu(n, exponent=2.1, average_degree=10.0, seed=seed)
    rng = random.Random(seed + 1)
    # The real flickr's densest subgraph (rho ~ 558 vs average degree
    # ~15) towers over the background; mirror that with a ~1% community
    # whose induced degrees dwarf both the background and the
    # Count-Sketch collision noise of the Table 4 experiment.
    community_size = max(16, int(round(n * 0.01)))
    members = rng.sample(range(n), community_size)
    _plant_clique(graph, members, rng, p=0.85)
    return graph


def im_sim(scale: float = 1.0, seed: int = 1) -> UndirectedGraph:
    """Stand-in for im (645M nodes / 6.1B edges, undirected).

    Sparser messenger-contact graph (average degree ~19 in the paper vs
    flickr's ~15, but much weaker top community relative to size).  We
    use a flatter power law and a smaller planted community.
    """
    n = _scaled(30_000, scale)
    graph = chung_lu(n, exponent=2.45, average_degree=8.0, seed=seed)
    rng = random.Random(seed + 1)
    community_size = max(10, int(round(n * 0.002)))
    members = rng.sample(range(n), community_size)
    _plant_clique(graph, members, rng, p=0.7)
    return graph


def livejournal_sim(scale: float = 1.0, seed: int = 2) -> DirectedGraph:
    """Stand-in for livejournal (4.84M nodes / 68.9M edges, directed).

    Friendship-style directed graph with high reciprocity, whose best
    ratio c is near 1 (Figure 6.4: the optimum occurs when |S| and |T|
    are not skewed).  We plant a reciprocal dense community on top of a
    moderately skewed background.
    """
    n = _scaled(12_000, scale)
    m = int(n * 7)
    # Friendship graphs are far less skewed than follower graphs; mild
    # exponents keep any single hub's star (rho = sqrt(degree)) well
    # below the planted community, as in the real livejournal where the
    # best pair is balanced.
    graph = directed_power_law(
        n, m, in_exponent=3.0, out_exponent=3.0, reciprocity=0.5, seed=seed
    )
    rng = random.Random(seed + 1)
    # The planted symmetric community must dominate any single hub's
    # star (a hub of in-degree d yields rho = sqrt(d)), which is what
    # keeps the best c near 1 as in the paper's Figure 6.4.
    community_size = max(32, int(round(n * 0.006)))
    members = rng.sample(range(n), community_size)
    _plant_directed_block(graph, members, members, rng, p=0.8)
    return graph


def twitter_sim(scale: float = 1.0, seed: int = 3) -> DirectedGraph:
    """Stand-in for twitter (50.7M nodes / 2.7B edges, directed).

    Follower graph with extreme in-degree skew — the paper notes ~600
    users followed by tens of millions, and finds the best c far from 1
    (Figure 6.6).  We plant a fan→celebrity block: many sources, few
    targets, so the optimal |S|/|T| is large.
    """
    n = _scaled(12_000, scale)
    m = int(n * 8)
    graph = directed_power_law(
        n, m, in_exponent=1.9, out_exponent=2.6, reciprocity=0.02, seed=seed
    )
    rng = random.Random(seed + 1)
    celebrities = rng.sample(range(n), max(4, int(round(n * 0.0008))))
    fans = rng.sample(
        [u for u in range(n) if u not in set(celebrities)],
        max(40, int(round(n * 0.02))),
    )
    _plant_directed_block(graph, fans, celebrities, rng, p=0.75)
    return graph


# ----------------------------------------------------------------------
# The seven SNAP graphs of Table 2 (small enough for the exact LP)
# ----------------------------------------------------------------------
def _collaboration_graph(
    n_authors: int,
    n_papers: int,
    seed: int,
    *,
    max_paper_size: int = 8,
    committee: int = 0,
) -> UndirectedGraph:
    """Affiliation-model collaboration graph.

    Papers are cliques over authors sampled with power-law activity
    (prolific authors co-author more), reproducing the high clustering
    and clique-heavy dense cores of the SNAP ca-* graphs.  ``committee``
    optionally plants one large clique — the analog of ca-HepPh's
    dense collaboration (its ρ* = 119 comes from a ~239-author paper).
    """
    rng = random.Random(seed)
    graph = UndirectedGraph()
    graph.add_nodes_from(range(n_authors))
    # Power-law author activity weights.
    weights = [(i + 1) ** -0.7 for i in range(n_authors)]
    total = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc / total)
    import bisect

    def sample_author() -> int:
        return bisect.bisect_right(cumulative, rng.random())

    for _ in range(n_papers):
        size = rng.randint(2, max_paper_size)
        authors = {sample_author() for _ in range(size)}
        authors = list(authors)
        for i, u in enumerate(authors):
            for v in authors[i + 1 :]:
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)
    if committee > 1:
        members = rng.sample(range(n_authors), committee)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)
    return graph


def as_sim(scale: float = 1.0, seed: int = 10) -> UndirectedGraph:
    """Stand-in for as20000102 (6.5K nodes / 13K edges): sparse
    internet-AS-style graph, low ρ* (~9 in the paper)."""
    n = _scaled(1_300, scale)
    graph = chung_lu(n, exponent=2.1, average_degree=4.0, seed=seed)
    rng = random.Random(seed + 1)
    members = rng.sample(range(n), max(8, n // 80))
    _plant_clique(graph, members, rng, p=0.55)
    return graph


def astroph_sim(scale: float = 1.0, seed: int = 11) -> UndirectedGraph:
    """Stand-in for ca-AstroPh (19K nodes / 396K edges): dense
    collaboration graph, ρ* ≈ 32."""
    n = _scaled(1_500, scale)
    return _collaboration_graph(n, n_papers=4 * n, seed=seed, max_paper_size=10, committee=max(6, n // 40))


def condmat_sim(scale: float = 1.0, seed: int = 12) -> UndirectedGraph:
    """Stand-in for ca-CondMat (23K nodes / 187K edges): medium-density
    collaboration graph, ρ* ≈ 13."""
    n = _scaled(1_500, scale)
    return _collaboration_graph(n, n_papers=2 * n, seed=seed, max_paper_size=6, committee=max(5, n // 70))


def grqc_sim(scale: float = 1.0, seed: int = 13) -> UndirectedGraph:
    """Stand-in for ca-GrQc (5.2K nodes / 29K edges): small community
    with a tight clique core, ρ* ≈ 22."""
    n = _scaled(800, scale)
    return _collaboration_graph(n, n_papers=n, seed=seed, max_paper_size=6, committee=max(10, n // 25))


def hepph_sim(scale: float = 1.0, seed: int = 14) -> UndirectedGraph:
    """Stand-in for ca-HepPh (12K nodes / 237K edges): its ρ* = 119 is a
    single huge author-list clique; we plant a proportionally large one
    (large enough that its density dominates the background's average
    density at every scale, as in the original)."""
    n = _scaled(1_200, scale)
    return _collaboration_graph(
        n, n_papers=2 * n, seed=seed, max_paper_size=5, committee=max(40, n // 12)
    )


def hepth_sim(scale: float = 1.0, seed: int = 15) -> UndirectedGraph:
    """Stand-in for ca-HepTh (9.9K nodes / 52K edges): sparse theory
    collaboration graph, ρ* ≈ 15.5."""
    n = _scaled(1_000, scale)
    return _collaboration_graph(n, n_papers=n, seed=seed, max_paper_size=5, committee=max(8, n // 40))


def enron_sim(scale: float = 1.0, seed: int = 16) -> UndirectedGraph:
    """Stand-in for email-Enron (37K nodes / 368K edges): email graph
    with a dense executive core, ρ* ≈ 37."""
    n = _scaled(1_500, scale)
    graph = chung_lu(n, exponent=2.0, average_degree=9.0, seed=seed)
    rng = random.Random(seed + 1)
    members = rng.sample(range(n), max(15, n // 30))
    _plant_clique(graph, members, rng, p=0.75)
    return graph
