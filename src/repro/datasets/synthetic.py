"""Builders for the synthetic dataset stand-ins.

Each builder is deterministic given ``(scale, seed)`` and documents
which real graph it stands in for and which structural property of that
graph the experiments depend on.  ``scale`` multiplies node counts
(``scale=1.0`` is the default laptop-sized instance; tests use smaller
scales).

Two families live here: the original dict-graph builders (the paper's
experiment fixtures) and, below them, array-native twins
(:func:`synthetic_edge_arrays`, :func:`write_synthetic_store`) that
emit int64 edge arrays or spill directly into a sharded edge store —
the fast path for generating benchmark inputs far past dict-graph
scales.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from .._validation import check_positive_float, check_probability
from ..errors import ParameterError
from ..graph.directed import DirectedGraph
from ..graph.generators import (
    chung_lu,
    directed_power_law,
    erdos_renyi,
    power_law_degree_weights,
)
from ..graph.undirected import UndirectedGraph


def _scaled(base: int, scale: float, minimum: int = 20) -> int:
    """Scale a node count, keeping it usable."""
    check_positive_float(scale, "scale")
    return max(minimum, int(round(base * scale)))


def _plant_clique(graph: UndirectedGraph, members: List[int], rng: random.Random, p: float) -> None:
    """Densify a node subset to an Erdős–Rényi block of probability p."""
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            if not graph.has_edge(u, v) and rng.random() < p:
                graph.add_edge(u, v)


def _plant_directed_block(
    graph: DirectedGraph,
    sources: List[int],
    targets: List[int],
    rng: random.Random,
    p: float,
) -> None:
    """Densify a bipartite-style S -> T block with edge probability p."""
    for u in sources:
        for v in targets:
            if u != v and not graph.has_edge(u, v) and rng.random() < p:
                graph.add_edge(u, v)


# ----------------------------------------------------------------------
# The four large evaluation graphs (§6.1, Table 1)
# ----------------------------------------------------------------------
def flickr_sim(scale: float = 1.0, seed: int = 0) -> UndirectedGraph:
    """Stand-in for flickr (976K nodes / 7.6M edges, undirected).

    Heavy-tailed photo-sharing friendship graph with a pronounced dense
    community (the paper measures ρ ≈ 558 at ε = 0, far above the
    average degree — i.e. a strong dense core).  We build a Chung–Lu
    power-law background plus one planted near-clique community.
    """
    n = _scaled(20_000, scale)
    graph = chung_lu(n, exponent=2.1, average_degree=10.0, seed=seed)
    rng = random.Random(seed + 1)
    # The real flickr's densest subgraph (rho ~ 558 vs average degree
    # ~15) towers over the background; mirror that with a ~1% community
    # whose induced degrees dwarf both the background and the
    # Count-Sketch collision noise of the Table 4 experiment.
    community_size = max(16, int(round(n * 0.01)))
    members = rng.sample(range(n), community_size)
    _plant_clique(graph, members, rng, p=0.85)
    return graph


def im_sim(scale: float = 1.0, seed: int = 1) -> UndirectedGraph:
    """Stand-in for im (645M nodes / 6.1B edges, undirected).

    Sparser messenger-contact graph (average degree ~19 in the paper vs
    flickr's ~15, but much weaker top community relative to size).  We
    use a flatter power law and a smaller planted community.
    """
    n = _scaled(30_000, scale)
    graph = chung_lu(n, exponent=2.45, average_degree=8.0, seed=seed)
    rng = random.Random(seed + 1)
    community_size = max(10, int(round(n * 0.002)))
    members = rng.sample(range(n), community_size)
    _plant_clique(graph, members, rng, p=0.7)
    return graph


def livejournal_sim(scale: float = 1.0, seed: int = 2) -> DirectedGraph:
    """Stand-in for livejournal (4.84M nodes / 68.9M edges, directed).

    Friendship-style directed graph with high reciprocity, whose best
    ratio c is near 1 (Figure 6.4: the optimum occurs when |S| and |T|
    are not skewed).  We plant a reciprocal dense community on top of a
    moderately skewed background.
    """
    n = _scaled(12_000, scale)
    m = int(n * 7)
    # Friendship graphs are far less skewed than follower graphs; mild
    # exponents keep any single hub's star (rho = sqrt(degree)) well
    # below the planted community, as in the real livejournal where the
    # best pair is balanced.
    graph = directed_power_law(
        n, m, in_exponent=3.0, out_exponent=3.0, reciprocity=0.5, seed=seed
    )
    rng = random.Random(seed + 1)
    # The planted symmetric community must dominate any single hub's
    # star (a hub of in-degree d yields rho = sqrt(d)), which is what
    # keeps the best c near 1 as in the paper's Figure 6.4.
    community_size = max(32, int(round(n * 0.006)))
    members = rng.sample(range(n), community_size)
    _plant_directed_block(graph, members, members, rng, p=0.8)
    return graph


def twitter_sim(scale: float = 1.0, seed: int = 3) -> DirectedGraph:
    """Stand-in for twitter (50.7M nodes / 2.7B edges, directed).

    Follower graph with extreme in-degree skew — the paper notes ~600
    users followed by tens of millions, and finds the best c far from 1
    (Figure 6.6).  We plant a fan→celebrity block: many sources, few
    targets, so the optimal |S|/|T| is large.
    """
    n = _scaled(12_000, scale)
    m = int(n * 8)
    graph = directed_power_law(
        n, m, in_exponent=1.9, out_exponent=2.6, reciprocity=0.02, seed=seed
    )
    rng = random.Random(seed + 1)
    celebrities = rng.sample(range(n), max(4, int(round(n * 0.0008))))
    fans = rng.sample(
        [u for u in range(n) if u not in set(celebrities)],
        max(40, int(round(n * 0.02))),
    )
    _plant_directed_block(graph, fans, celebrities, rng, p=0.75)
    return graph


# ----------------------------------------------------------------------
# The seven SNAP graphs of Table 2 (small enough for the exact LP)
# ----------------------------------------------------------------------
def _collaboration_graph(
    n_authors: int,
    n_papers: int,
    seed: int,
    *,
    max_paper_size: int = 8,
    committee: int = 0,
) -> UndirectedGraph:
    """Affiliation-model collaboration graph.

    Papers are cliques over authors sampled with power-law activity
    (prolific authors co-author more), reproducing the high clustering
    and clique-heavy dense cores of the SNAP ca-* graphs.  ``committee``
    optionally plants one large clique — the analog of ca-HepPh's
    dense collaboration (its ρ* = 119 comes from a ~239-author paper).
    """
    rng = random.Random(seed)
    graph = UndirectedGraph()
    graph.add_nodes_from(range(n_authors))
    # Power-law author activity weights.
    weights = [(i + 1) ** -0.7 for i in range(n_authors)]
    total = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc / total)
    import bisect

    def sample_author() -> int:
        return bisect.bisect_right(cumulative, rng.random())

    for _ in range(n_papers):
        size = rng.randint(2, max_paper_size)
        authors = {sample_author() for _ in range(size)}
        authors = list(authors)
        for i, u in enumerate(authors):
            for v in authors[i + 1 :]:
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)
    if committee > 1:
        members = rng.sample(range(n_authors), committee)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)
    return graph


def as_sim(scale: float = 1.0, seed: int = 10) -> UndirectedGraph:
    """Stand-in for as20000102 (6.5K nodes / 13K edges): sparse
    internet-AS-style graph, low ρ* (~9 in the paper)."""
    n = _scaled(1_300, scale)
    graph = chung_lu(n, exponent=2.1, average_degree=4.0, seed=seed)
    rng = random.Random(seed + 1)
    members = rng.sample(range(n), max(8, n // 80))
    _plant_clique(graph, members, rng, p=0.55)
    return graph


def astroph_sim(scale: float = 1.0, seed: int = 11) -> UndirectedGraph:
    """Stand-in for ca-AstroPh (19K nodes / 396K edges): dense
    collaboration graph, ρ* ≈ 32."""
    n = _scaled(1_500, scale)
    return _collaboration_graph(n, n_papers=4 * n, seed=seed, max_paper_size=10, committee=max(6, n // 40))


def condmat_sim(scale: float = 1.0, seed: int = 12) -> UndirectedGraph:
    """Stand-in for ca-CondMat (23K nodes / 187K edges): medium-density
    collaboration graph, ρ* ≈ 13."""
    n = _scaled(1_500, scale)
    return _collaboration_graph(n, n_papers=2 * n, seed=seed, max_paper_size=6, committee=max(5, n // 70))


def grqc_sim(scale: float = 1.0, seed: int = 13) -> UndirectedGraph:
    """Stand-in for ca-GrQc (5.2K nodes / 29K edges): small community
    with a tight clique core, ρ* ≈ 22."""
    n = _scaled(800, scale)
    return _collaboration_graph(n, n_papers=n, seed=seed, max_paper_size=6, committee=max(10, n // 25))


def hepph_sim(scale: float = 1.0, seed: int = 14) -> UndirectedGraph:
    """Stand-in for ca-HepPh (12K nodes / 237K edges): its ρ* = 119 is a
    single huge author-list clique; we plant a proportionally large one
    (large enough that its density dominates the background's average
    density at every scale, as in the original)."""
    n = _scaled(1_200, scale)
    return _collaboration_graph(
        n, n_papers=2 * n, seed=seed, max_paper_size=5, committee=max(40, n // 12)
    )


def hepth_sim(scale: float = 1.0, seed: int = 15) -> UndirectedGraph:
    """Stand-in for ca-HepTh (9.9K nodes / 52K edges): sparse theory
    collaboration graph, ρ* ≈ 15.5."""
    n = _scaled(1_000, scale)
    return _collaboration_graph(n, n_papers=n, seed=seed, max_paper_size=5, committee=max(8, n // 40))


def enron_sim(scale: float = 1.0, seed: int = 16) -> UndirectedGraph:
    """Stand-in for email-Enron (37K nodes / 368K edges): email graph
    with a dense executive core, ρ* ≈ 37."""
    n = _scaled(1_500, scale)
    graph = chung_lu(n, exponent=2.0, average_degree=9.0, seed=seed)
    rng = random.Random(seed + 1)
    members = rng.sample(range(n), max(15, n // 30))
    _plant_clique(graph, members, rng, p=0.75)
    return graph


# ----------------------------------------------------------------------
# Array-native generators (no dict graphs)
# ----------------------------------------------------------------------
# The dict generators above pay a Python-level hash-map insert per edge
# — fine at laptop scales, the bottleneck when generating benchmark
# inputs with tens of millions of edges.  The builders below share the
# structural recipes (power-law background + planted dense block) but
# produce int64 edge arrays with vectorized NumPy sampling, and can
# spill straight into a :class:`~repro.store.ShardedEdgeStore` without
# ever materializing a graph object.  They are deterministic per
# (scale, seed) but *not* edge-identical to their dict counterparts
# (different RNG streams); use them for scale benchmarks and
# out-of-core fixtures, the dict stand-ins for the paper tables.

def _power_law_probs(n: int, exponent: float):
    import numpy as np

    weights = np.asarray(power_law_degree_weights(n, exponent))
    return weights / weights.sum()


def chung_lu_edge_arrays(
    n: int,
    *,
    exponent: float = 2.5,
    average_degree: float = 10.0,
    seed: int = 0,
):
    """Chung–Lu-style undirected edge arrays, fully vectorized.

    Samples ``average_degree * n / 2`` endpoint pairs proportionally to
    power-law weights, canonicalizes to ``(lo, hi)``, and drops loops
    and duplicates — the standard "fast Chung–Lu" approximation, whose
    realized average degree lands slightly under the nominal one.
    Returns ``(src, dst)`` int64 arrays over the universe ``[0, n)``.
    """
    import numpy as np

    check_positive_float(average_degree, "average_degree")
    probs = _power_law_probs(n, exponent)
    m_target = int(round(average_degree * n / 2))
    rng = np.random.default_rng(seed)
    src = rng.choice(n, size=m_target, p=probs)
    dst = rng.choice(n, size=m_target, p=probs)
    lo = np.minimum(src, dst).astype(np.int64)
    hi = np.maximum(src, dst).astype(np.int64)
    keep = lo != hi
    key = np.unique(lo[keep] * np.int64(n) + hi[keep])
    return key // n, key % n


def nested_core_edge_arrays(
    n: int,
    *,
    degree: float = 18.0,
    shrink: float = 0.5,
    seed: int = 0,
):
    """Nested-core "onion" edge arrays: a deep-peel stress graph.

    The union of Erdős–Rényi-style layers on geometrically nested
    vertex prefixes ``[0, n·shrink^i)``, each with average degree
    ``degree`` over its prefix: nodes near id 0 sit in every layer, so
    weighted degree grows toward the center and the peel removes the
    onion shell by shell — ~O(log n) passes where power-law graphs
    collapse in a handful.  This is the adversarial regime for
    multi-pass scan work (total O(m · passes) without pass compaction)
    and the showcase regime for it: each shell carries a constant
    fraction of the edges, so the surviving edge set decays
    geometrically from the very first pass.

    Total edges ≈ ``n · degree / (2(1 - shrink))``; parallel pairs are
    kept (every consumer reads edges additively).  Returns ``(src,
    dst)`` int64 arrays over ``[0, n)`` (loops dropped).
    """
    import numpy as np

    check_positive_float(degree, "degree")
    if not (0.0 < shrink < 1.0):
        raise ParameterError(f"shrink must be in (0, 1), got {shrink}")
    rng = np.random.default_rng(seed)
    us, vs = [], []
    size = n
    while size >= 2:
        m_layer = int(size * degree / 2)
        if m_layer < 1:
            break
        us.append(rng.integers(0, size, m_layer, dtype=np.int64))
        vs.append(rng.integers(0, size, m_layer, dtype=np.int64))
        size = int(size * shrink)
    if not us:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    src = np.concatenate(us)
    dst = np.concatenate(vs)
    keep = src != dst
    return src[keep], dst[keep]


def planted_block_edge_arrays(
    members,
    *,
    p: float,
    seed: int = 0,
    targets=None,
):
    """Edge arrays of one planted dense block, vectorized.

    With only ``members``: undirected Erdős–Rényi block over the member
    pairs (canonical ``lo < hi`` orientation).  With ``targets``:
    directed ``members × targets`` block (loop pairs skipped).
    """
    import numpy as np

    check_probability(p, "p")
    members = np.asarray(members, dtype=np.int64)
    rng = np.random.default_rng(seed)
    if targets is None:
        iu, ju = np.triu_indices(members.size, k=1)
        src, dst = members[iu], members[ju]
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        keep = rng.random(lo.size) < p
        return lo[keep], hi[keep]
    targets = np.asarray(targets, dtype=np.int64)
    src = np.repeat(members, targets.size)
    dst = np.tile(targets, members.size)
    keep = (src != dst) & (rng.random(src.size) < p)
    return src[keep], dst[keep]


def directed_power_law_edge_arrays(
    n: int,
    m: int,
    *,
    in_exponent: float = 2.2,
    out_exponent: float = 2.8,
    reciprocity: float = 0.0,
    seed: int = 0,
):
    """Directed power-law edge arrays (follower-graph shape), vectorized.

    Same model as :func:`~repro.graph.generators.directed_power_law`:
    sources drawn from a shuffled out-weight distribution, targets from
    the in-weight distribution, optional mirrored edges.  Loops and
    duplicates are dropped, so the realized count lands slightly under
    ``m`` (plus the reciprocal extras).
    """
    import numpy as np

    check_probability(reciprocity, "reciprocity")
    rng = np.random.default_rng(seed)
    out_perm = rng.permutation(n)
    src = out_perm[rng.choice(n, size=m, p=_power_law_probs(n, out_exponent))]
    dst = rng.choice(n, size=m, p=_power_law_probs(n, in_exponent))
    src = src.astype(np.int64)
    dst = dst.astype(np.int64)
    if reciprocity > 0:
        mirror = rng.random(m) < reciprocity
        rsrc, rdst = dst[mirror], src[mirror]
        src = np.concatenate([src, rsrc])
        dst = np.concatenate([dst, rdst])
    keep = src != dst
    key = np.unique(src[keep] * np.int64(n) + dst[keep])
    return key // n, key % n


def _members(rng, n: int, count: int):
    import numpy as np

    return np.sort(rng.choice(n, size=max(1, count), replace=False))


def _flickr_edge_arrays(scale: float, seed: int):
    import numpy as np

    n = _scaled(20_000, scale)
    src, dst = chung_lu_edge_arrays(
        n, exponent=2.1, average_degree=10.0, seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    members = _members(rng, n, max(16, int(round(n * 0.01))))
    ps, pd = planted_block_edge_arrays(members, p=0.85, seed=seed + 2)
    key = np.unique(
        np.concatenate([src, ps]) * np.int64(n) + np.concatenate([dst, pd])
    )
    return key // n, key % n, n, False


def _im_edge_arrays(scale: float, seed: int):
    import numpy as np

    n = _scaled(30_000, scale)
    src, dst = chung_lu_edge_arrays(
        n, exponent=2.45, average_degree=8.0, seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    members = _members(rng, n, max(10, int(round(n * 0.002))))
    ps, pd = planted_block_edge_arrays(members, p=0.7, seed=seed + 2)
    key = np.unique(
        np.concatenate([src, ps]) * np.int64(n) + np.concatenate([dst, pd])
    )
    return key // n, key % n, n, False


def _livejournal_edge_arrays(scale: float, seed: int):
    import numpy as np

    n = _scaled(12_000, scale)
    src, dst = directed_power_law_edge_arrays(
        n, int(n * 7), in_exponent=3.0, out_exponent=3.0,
        reciprocity=0.5, seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    members = _members(rng, n, max(32, int(round(n * 0.006))))
    ps, pd = planted_block_edge_arrays(
        members, p=0.8, seed=seed + 2, targets=members
    )
    key = np.unique(
        np.concatenate([src, ps]) * np.int64(n) + np.concatenate([dst, pd])
    )
    return key // n, key % n, n, True


def _twitter_edge_arrays(scale: float, seed: int):
    import numpy as np

    n = _scaled(12_000, scale)
    src, dst = directed_power_law_edge_arrays(
        n, int(n * 8), in_exponent=1.9, out_exponent=2.6,
        reciprocity=0.02, seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    celebrities = _members(rng, n, max(4, int(round(n * 0.0008))))
    pool = np.setdiff1d(np.arange(n, dtype=np.int64), celebrities)
    fans = np.sort(rng.choice(pool, size=max(40, int(round(n * 0.02))), replace=False))
    ps, pd = planted_block_edge_arrays(
        fans, p=0.75, seed=seed + 2, targets=celebrities
    )
    key = np.unique(
        np.concatenate([src, ps]) * np.int64(n) + np.concatenate([dst, pd])
    )
    return key // n, key % n, n, True


#: Array-native stand-in builders: name -> (builder, default seed).
ARRAY_GENERATORS = {
    "flickr_sim": (_flickr_edge_arrays, 0),
    "im_sim": (_im_edge_arrays, 1),
    "livejournal_sim": (_livejournal_edge_arrays, 2),
    "twitter_sim": (_twitter_edge_arrays, 3),
}


def synthetic_edge_arrays(name: str, scale: float = 1.0, seed=None):
    """Array-native edges of one of the four large evaluation stand-ins.

    Returns ``(src, dst, num_nodes, directed)``; ``src``/``dst`` are
    deduplicated int64 arrays over the dense universe
    ``[0, num_nodes)``.  Deterministic per (scale, seed); *not*
    edge-identical to the dict stand-in of the same name.
    """
    try:
        builder, default_seed = ARRAY_GENERATORS[name]
    except KeyError:
        raise ParameterError(
            f"no array generator for {name!r}; "
            f"available: {sorted(ARRAY_GENERATORS)}"
        ) from None
    return builder(scale, default_seed if seed is None else seed)


def write_synthetic_store(
    name: str,
    path,
    *,
    scale: float = 1.0,
    seed=None,
    num_shards: int = 8,
    memory_budget=None,
):
    """Generate a stand-in straight into a sharded edge store.

    The arrays never become a graph object: generation is vectorized
    and the writer spills them into hash-partitioned shards under its
    memory budget — the intended way to produce out-of-core benchmark
    inputs.  Returns the opened
    :class:`~repro.store.ShardedEdgeStore`.
    """
    from ..store import DEFAULT_MEMORY_BUDGET, ShardedEdgeStore

    src, dst, n, directed = synthetic_edge_arrays(name, scale=scale, seed=seed)
    return ShardedEdgeStore.write(
        path,
        (src, dst),
        directed=directed,
        num_shards=num_shards,
        num_nodes=n,
        memory_budget=(
            DEFAULT_MEMORY_BUDGET if memory_budget is None else memory_budget
        ),
    )
