"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError` so that callers can catch library failures with a
single ``except`` clause while letting genuine bugs (e.g. ``TypeError``
from misuse of internals) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structural graph problems (unknown node, bad edge, ...)."""


class EmptyGraphError(GraphError):
    """Raised when an algorithm needs at least one edge/node but got none."""


class ParameterError(ReproError, ValueError):
    """Raised when an algorithm parameter is out of its valid range."""


class StreamError(ReproError):
    """Raised for edge-stream protocol violations (e.g. exhausted stream)."""


class MapReduceError(ReproError):
    """Raised for MapReduce job specification or runtime errors."""


class SolverError(ReproError):
    """Raised when an exact solver (LP / max-flow) fails to converge."""


class DatasetError(ReproError):
    """Raised for unknown dataset names or invalid dataset parameters."""


class StoreError(ReproError):
    """Raised for sharded edge-store format or protocol violations."""


class StoreCorruptionError(StoreError):
    """Raised when a shard store's on-disk bytes fail integrity checks.

    Distinguishes "this store is damaged" (truncated shard, checksum
    mismatch, quarantined data) from the plain :class:`StoreError`
    protocol violations — readers raise it instead of ever returning a
    silently-wrong edge set.
    """


class CheckpointError(ReproError):
    """Raised when a peel checkpoint cannot be written, read, or safely
    applied (e.g. it was taken under different algorithm parameters)."""


class JobCancelledError(ReproError):
    """Raised inside a solve when its cooperative cancel event fires."""


class DeadlineExceededError(ReproError):
    """Raised inside a solve when its wall-clock deadline elapses."""


class InjectedFaultError(ReproError):
    """Raised by the fault-injection harness (:mod:`repro.faults`).

    Never raised in production configurations — only when a
    :class:`~repro.faults.FaultPlan` is armed, so tests can assert a
    failure path fired exactly where the plan said it would.
    """
