"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError` so that callers can catch library failures with a
single ``except`` clause while letting genuine bugs (e.g. ``TypeError``
from misuse of internals) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structural graph problems (unknown node, bad edge, ...)."""


class EmptyGraphError(GraphError):
    """Raised when an algorithm needs at least one edge/node but got none."""


class ParameterError(ReproError, ValueError):
    """Raised when an algorithm parameter is out of its valid range."""


class StreamError(ReproError):
    """Raised for edge-stream protocol violations (e.g. exhausted stream)."""


class MapReduceError(ReproError):
    """Raised for MapReduce job specification or runtime errors."""


class SolverError(ReproError):
    """Raised when an exact solver (LP / max-flow) fails to converge."""


class DatasetError(ReproError):
    """Raised for unknown dataset names or invalid dataset parameters."""


class StoreError(ReproError):
    """Raised for sharded edge-store format or protocol violations."""
