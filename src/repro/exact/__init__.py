"""Exact solvers and classical baselines for the densest subgraph problem.

The paper compares its streaming algorithms against the optimal density
ρ*(G) computed by a linear program (Section 6.2) and mentions the
flow-based exact algorithm of Goldberg.  This subpackage implements all
of them from scratch:

* :mod:`~repro.exact.maxflow` — Dinic's max-flow (the substrate).
* :mod:`~repro.exact.goldberg` — Goldberg's binary-search exact solver.
* :mod:`~repro.exact.lp` — Charikar's LP for undirected graphs
  (solved with scipy's HiGHS backend).
* :mod:`~repro.exact.directed_lp` — Charikar's LP for directed graphs
  at a fixed ratio c, and the exact sweep over candidate ratios.
* :mod:`~repro.exact.peeling` — Charikar's greedy 2-approximation
  (exact min-degree peeling), the paper's ε→0 reference point.
"""

from .maxflow import FlowNetwork, max_flow, min_cut
from .goldberg import goldberg_densest_subgraph
from .lp import lp_densest_subgraph, lp_density
from .directed_lp import directed_lp_density_at_ratio, directed_lp_densest_subgraph
from .peeling import charikar_peeling, charikar_directed_peeling
from .atleast_k_baselines import brute_force_atleast_k, greedy_suffix_atleast_k

__all__ = [
    "brute_force_atleast_k",
    "greedy_suffix_atleast_k",
    "FlowNetwork",
    "max_flow",
    "min_cut",
    "goldberg_densest_subgraph",
    "lp_densest_subgraph",
    "lp_density",
    "directed_lp_density_at_ratio",
    "directed_lp_densest_subgraph",
    "charikar_peeling",
    "charikar_directed_peeling",
]
