"""Baselines for the at-least-k densest subgraph problem.

The paper's Algorithm 2 is compared conceptually against the earlier
sequential algorithms it cites: Andersen–Chellapilla [3] and
Khuller–Saha [26], both built on greedy peeling.  We implement the
peel-suffix baseline those algorithms share:

* :func:`greedy_suffix_atleast_k` — run the exact min-degree peel and
  return the densest *suffix* of the removal order with at least k
  nodes.  This is the Andersen–Chellapilla "densest-core style" greedy;
  it achieves a 3-approximation for ρ*_{≥k} (their Theorem 1 bound) and
  requires O(n) peeling steps — i.e. O(n) streaming passes, which is
  exactly the cost the paper's Algorithm 2 removes.
* :func:`brute_force_atleast_k` — exact ρ*_{≥k} by enumerating node
  subsets; exponential, only for cross-checking on tiny graphs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Set, Tuple

from .._validation import check_positive_int
from ..errors import ParameterError
from ..graph.cores import peeling_order
from ..graph.undirected import UndirectedGraph
from .peeling import _weighted_peeling_order

Node = Hashable


def greedy_suffix_atleast_k(
    graph: UndirectedGraph, k: int
) -> Tuple[Set[Node], float]:
    """Densest suffix of the greedy peel with at least k nodes.

    The classical sequential baseline for the size-constrained problem
    (Andersen–Chellapilla style): peel min-degree nodes one at a time
    and keep the best suffix among those of size >= k.

    Raises
    ------
    ParameterError
        If k exceeds the number of nodes.
    """
    check_positive_int(k, "k")
    if k > graph.num_nodes:
        raise ParameterError(
            f"k={k} exceeds the graph's {graph.num_nodes} nodes; no feasible set"
        )
    graph.require_nonempty()
    if graph.is_weighted():
        order = _weighted_peeling_order(graph)
    else:
        order = peeling_order(graph)

    best_density = -1.0
    best_start = 0
    weight_inside = 0.0
    present: Set[Node] = set()
    n = len(order)
    for i in range(n - 1, -1, -1):
        node = order[i]
        for nbr in graph.neighbors(node):
            if nbr in present:
                weight_inside += graph.edge_weight(node, nbr)
        present.add(node)
        if len(present) < k:
            continue
        density = weight_inside / len(present)
        if density > best_density:
            best_density = density
            best_start = i
    return set(order[best_start:]), best_density


def brute_force_atleast_k(
    graph: UndirectedGraph, k: int
) -> Tuple[Set[Node], float]:
    """Exact ρ*_{≥k} by subset enumeration (exponential; tiny graphs only).

    Enumerates subsets of size exactly k and above.  Because adding a
    node can only help when its induced degree exceeds the current
    density, the optimum over sizes >= k is attained at some size in
    [k, n]; we enumerate them all.

    Raises
    ------
    ParameterError
        If the graph has more than 16 nodes (guard against accidental
        exponential blowups) or k is infeasible.
    """
    check_positive_int(k, "k")
    n = graph.num_nodes
    if k > n:
        raise ParameterError(f"k={k} exceeds the graph's {n} nodes")
    if n > 16:
        raise ParameterError(
            f"brute force is exponential; refusing n={n} > 16 nodes"
        )
    nodes = list(graph.nodes())
    best: Tuple[Set[Node], float] = (set(), -1.0)
    for size in range(k, n + 1):
        for subset in combinations(nodes, size):
            density = graph.density(subset)
            if density > best[1]:
                best = (set(subset), density)
    return best
