"""Charikar's LP for the directed densest subgraph at a fixed ratio.

For directed density ρ(S, T) = |E(S, T)| / sqrt(|S||T|), Charikar
showed that for a fixed ratio guess c = |S|/|T| the LP::

    max  Σ_{(i,j) ∈ E} w_ij · x_ij
    s.t. x_ij ≤ s_i,  x_ij ≤ t_j      for every edge (i, j)
         Σ_i s_i ≤ sqrt(c)
         Σ_j t_j ≤ 1 / sqrt(c)
         x, s, t ≥ 0

has value  max_{S,T: |S|/|T| = c} ρ(S, T), and maximizing over the
O(n²) candidate ratios {a/b} gives the exact ρ*(G).  The paper (§6.4)
instead sweeps c over powers of δ, losing at most a factor δ.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, List, Optional, Set, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from .._validation import check_positive_float
from .._tolerances import LP_EPS
from ..errors import SolverError
from ..graph.directed import DirectedGraph

Node = Hashable


def _solve_directed_lp(
    graph: DirectedGraph, ratio: float
) -> Tuple[float, List[Node], np.ndarray, np.ndarray]:
    """Solve the fixed-ratio LP; returns (value, nodes, s-vector, t-vector)."""
    graph.require_nonempty()
    check_positive_float(ratio, "ratio")
    nodes = list(graph.nodes())
    node_pos = {node: i for i, node in enumerate(nodes)}
    edges = list(graph.weighted_edges())
    n, m = len(nodes), len(edges)
    sqrt_c = math.sqrt(ratio)

    # Variables: x_0..x_{m-1}, s_0..s_{n-1}, t_0..t_{n-1}.
    costs = np.zeros(m + 2 * n)
    costs[:m] = [-w for _, _, w in edges]

    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    for e, (u, v, _) in enumerate(edges):
        rows.extend((2 * e, 2 * e))
        cols.extend((e, m + node_pos[u]))
        data.extend((1.0, -1.0))
        rows.extend((2 * e + 1, 2 * e + 1))
        cols.extend((e, m + n + node_pos[v]))
        data.extend((1.0, -1.0))
    s_budget_row = 2 * m
    t_budget_row = 2 * m + 1
    for i in range(n):
        rows.append(s_budget_row)
        cols.append(m + i)
        data.append(1.0)
        rows.append(t_budget_row)
        cols.append(m + n + i)
        data.append(1.0)
    a_ub = csr_matrix((data, (rows, cols)), shape=(2 * m + 2, m + 2 * n))
    b_ub = np.zeros(2 * m + 2)
    b_ub[s_budget_row] = sqrt_c
    b_ub[t_budget_row] = 1.0 / sqrt_c

    result = linprog(costs, A_ub=a_ub, b_ub=b_ub, bounds=(0, None), method="highs")
    if not result.success:
        raise SolverError(f"directed LP failed at c={ratio}: {result.message}")
    s_vec = result.x[m : m + n]
    t_vec = result.x[m + n :]
    return -result.fun, nodes, s_vec, t_vec


def directed_lp_density_at_ratio(graph: DirectedGraph, ratio: float) -> float:
    """LP optimum = max ρ(S, T) over sets with |S|/|T| = ratio."""
    value, _, _, _ = _solve_directed_lp(graph, ratio)
    return value


def _round_directed(
    graph: DirectedGraph,
    nodes: List[Node],
    s_vec: np.ndarray,
    t_vec: np.ndarray,
) -> Tuple[Set[Node], Set[Node], float]:
    """Threshold rounding for the directed LP.

    Scans the joint level sets S(r) = {i : s_i >= r}, T(r) = {j : t_j >= r}
    over all distinct values appearing in either vector.
    """
    thresholds = sorted(
        {v for v in np.concatenate([s_vec, t_vec]) if v > LP_EPS}, reverse=True
    )
    best: Tuple[Set[Node], Set[Node], float] = (set(), set(), 0.0)
    for r in thresholds:
        s_set = {nodes[i] for i in range(len(nodes)) if s_vec[i] >= r - 1e-15}
        t_set = {nodes[i] for i in range(len(nodes)) if t_vec[i] >= r - 1e-15}
        if not s_set or not t_set:
            continue
        rho = graph.edge_weight_between(s_set, t_set) / math.sqrt(
            len(s_set) * len(t_set)
        )
        if rho > best[2]:
            best = (s_set, t_set, rho)
    return best


def candidate_ratios(graph: DirectedGraph, *, max_nodes: Optional[int] = None) -> List[float]:
    """All O(n²) candidate ratios a/b with 1 <= a, b <= n.

    ``max_nodes`` caps n to keep the candidate set manageable; the exact
    answer only needs ratios up to the true |S*|, |T*|.
    """
    n = graph.num_nodes if max_nodes is None else min(graph.num_nodes, max_nodes)
    ratios = {a / b for a in range(1, n + 1) for b in range(1, n + 1)}
    return sorted(ratios)


def directed_lp_densest_subgraph(
    graph: DirectedGraph,
    *,
    ratios: Optional[Iterable[float]] = None,
) -> Tuple[Set[Node], Set[Node], float]:
    """Exact (or grid-restricted) directed densest subgraph via the LP.

    Parameters
    ----------
    graph:
        Directed input graph with at least one edge.
    ratios:
        Candidate values of c = |S|/|T| to try.  ``None`` means the full
        exact candidate set {a/b : 1 <= a, b <= n} — only use that for
        small graphs (the LP is solved once per ratio).

    Returns
    -------
    (S, T, density):
        The best pair of sets found and their directed density.
    """
    graph.require_nonempty()
    if ratios is None:
        ratios = candidate_ratios(graph)
    best: Tuple[Set[Node], Set[Node], float] = (set(), set(), 0.0)
    best_lp = 0.0
    for ratio in ratios:
        value, nodes, s_vec, t_vec = _solve_directed_lp(graph, ratio)
        if value <= best_lp:
            continue
        best_lp = value
        s_set, t_set, rho = _round_directed(graph, nodes, s_vec, t_vec)
        if rho > best[2]:
            best = (s_set, t_set, rho)
    if not best[0]:
        raise SolverError("directed LP rounding produced no candidate sets")
    return best
