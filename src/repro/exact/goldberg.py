"""Goldberg's exact max-flow-based densest subgraph algorithm.

Goldberg (1984) reduces "is there a subgraph of density > g?" to a
single s-t min-cut on a network with node capacities derived from g,
and binary-searches over g.  For a guess g the network is::

    s -> v        capacity m              (every node v)
    v -> t        capacity m + 2g - deg(v)
    u <-> v       capacity w(u, v)        (every edge, both directions)

For a node set S (taking the source side of a cut to be {s} ∪ S) the
cut value is ``m·n - 2·|S|·(ρ(S) - g)``, so the min cut drops below
``m·n`` exactly when some subgraph has density above g.

For unweighted (or integer-weighted) graphs the density is a rational
with denominator at most n, so two distinct densities differ by at
least 1/(n(n-1)); binary searching to that tolerance yields the *exact*
optimum.  For arbitrary weights the solver converges to a configurable
tolerance.
"""

from __future__ import annotations

from typing import Hashable, Set, Tuple

from .._validation import check_positive_float
from ..errors import EmptyGraphError
from ..graph.undirected import UndirectedGraph
from .maxflow import FlowNetwork

Node = Hashable

_SOURCE = ("__goldberg_source__",)
_SINK = ("__goldberg_sink__",)


def _cut_for_guess(graph: UndirectedGraph, guess: float) -> Tuple[float, Set[Node]]:
    """Min-cut value and candidate node set for a density guess."""
    total_w = graph.total_weight
    network = FlowNetwork()
    for v in graph.nodes():
        network.add_edge(_SOURCE, v, total_w)
        network.add_edge(v, _SINK, total_w + 2.0 * guess - graph.weighted_degree(v))
    for u, v, w in graph.weighted_edges():
        network.add_edge(u, v, w)
        network.add_edge(v, u, w)
    cut_value = network.solve(_SOURCE, _SINK)
    source_side = network.source_side_min_cut(_SOURCE)
    source_side.discard(_SOURCE)
    return cut_value, source_side


def goldberg_densest_subgraph(
    graph: UndirectedGraph,
    *,
    tolerance: float | None = None,
) -> Tuple[Set[Node], float]:
    """Exact densest subgraph via Goldberg's binary search.

    Parameters
    ----------
    graph:
        The input graph; must contain at least one edge.
    tolerance:
        Convergence tolerance for the binary search.  Defaults to
        ``1 / (n * (n + 1))`` which makes the answer *exact* for
        unweighted and integer-weighted graphs.

    Returns
    -------
    (nodes, density):
        The optimal node set and its density ρ*.

    Examples
    --------
    >>> from repro.graph.generators import clique
    >>> g = clique(4)
    >>> nodes, rho = goldberg_densest_subgraph(g)
    >>> (len(nodes), rho)
    (4, 1.5)
    """
    graph.require_nonempty()
    n = graph.num_nodes
    if tolerance is None:
        tolerance = 1.0 / (n * (n + 1.0))
    else:
        check_positive_float(tolerance, "tolerance")

    # Initial bracket: the whole graph is a feasible answer; no subgraph
    # beats half the maximum weighted degree.
    best_set: Set[Node] = set(graph.nodes())
    best_density = graph.density()
    lo = best_density
    hi = max(graph.weighted_degree(v) for v in graph.nodes()) / 2.0 + tolerance
    if hi <= lo:
        hi = lo + tolerance

    mn = graph.total_weight * n
    while hi - lo > tolerance:
        guess = (lo + hi) / 2.0
        cut_value, candidate = _cut_for_guess(graph, guess)
        # Cut strictly below m*n means a set denser than `guess` exists.
        if candidate and cut_value < mn - 1e-9:
            density = graph.density(candidate)
            if density > best_density:
                best_density = density
                best_set = candidate
            # Density of the candidate certifies a new lower bound.
            lo = max(guess, density)
        else:
            hi = guess
    return best_set, best_density


def exact_density(graph: UndirectedGraph) -> float:
    """Convenience wrapper returning only ρ*(G).

    Raises
    ------
    EmptyGraphError
        If the graph has no edges (ρ* of an edgeless graph is 0 by
        convention, but asking an exact solver for it is usually a bug).
    """
    if graph.num_edges == 0:
        raise EmptyGraphError("graph has no edges; rho* is trivially 0")
    return goldberg_densest_subgraph(graph)[1]
