"""Charikar's LP relaxation for the undirected densest subgraph.

Section 6.2 of the paper computes ρ*(G) with the LP::

    max  Σ_{(i,j) ∈ E} w_ij · x_ij
    s.t. x_ij ≤ y_i          for every edge (i, j)
         x_ij ≤ y_j          for every edge (i, j)
         Σ_i y_i ≤ 1
         x, y ≥ 0

whose optimum value equals ρ*(G) (Charikar 2000).  The paper used
COIN-OR CLP; we use scipy's HiGHS, the same LP.

An optimal *set* is recovered by threshold rounding: for any r > 0 the
level set ``S(r) = {i : y_i ≥ r}`` satisfies ρ(S(r*)) = ρ* for some
r*, so scanning the distinct y-values finds an optimal set.
"""

from __future__ import annotations

from typing import Hashable, List, Set, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from .._tolerances import LP_EPS
from ..errors import SolverError
from ..graph.undirected import UndirectedGraph

Node = Hashable


def _solve_charikar_lp(graph: UndirectedGraph) -> Tuple[float, List[Node], np.ndarray]:
    """Solve the LP; returns (optimum, node order, y vector)."""
    graph.require_nonempty()
    nodes = list(graph.nodes())
    node_pos = {node: i for i, node in enumerate(nodes)}
    edges = list(graph.weighted_edges())
    n, m = len(nodes), len(edges)

    # Variable layout: x_0..x_{m-1}, then y_0..y_{n-1}.
    costs = np.zeros(m + n)
    costs[:m] = [-w for _, _, w in edges]  # linprog minimizes

    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    for e, (u, v, _) in enumerate(edges):
        # x_e - y_u <= 0
        rows.extend((2 * e, 2 * e))
        cols.extend((e, m + node_pos[u]))
        data.extend((1.0, -1.0))
        # x_e - y_v <= 0
        rows.extend((2 * e + 1, 2 * e + 1))
        cols.extend((e, m + node_pos[v]))
        data.extend((1.0, -1.0))
    # sum(y) <= 1
    budget_row = 2 * m
    for i in range(n):
        rows.append(budget_row)
        cols.append(m + i)
        data.append(1.0)
    a_ub = csr_matrix((data, (rows, cols)), shape=(2 * m + 1, m + n))
    b_ub = np.zeros(2 * m + 1)
    b_ub[budget_row] = 1.0

    result = linprog(costs, A_ub=a_ub, b_ub=b_ub, bounds=(0, None), method="highs")
    if not result.success:
        raise SolverError(f"LP solver failed: {result.message}")
    return -result.fun, nodes, result.x[m:]


def lp_density(graph: UndirectedGraph) -> float:
    """The exact maximum density ρ*(G) as the LP optimum value."""
    value, _, _ = _solve_charikar_lp(graph)
    return value


def lp_densest_subgraph(graph: UndirectedGraph) -> Tuple[Set[Node], float]:
    """Exact densest subgraph via LP + threshold rounding.

    Returns ``(nodes, density)``; the reported density is the density of
    the rounded set (equal to the LP optimum up to solver tolerance).
    """
    value, nodes, y = _solve_charikar_lp(graph)
    # Threshold rounding: scan prefixes of the descending-y order.  Every
    # level set S(r) is such a prefix, and Charikar's proof guarantees
    # some level set attains the LP optimum; extra (partial-level)
    # prefixes can only improve the max.  Edge weight is maintained
    # incrementally so the scan is O(n + m).
    order = np.argsort(-y)
    best_set: Set[Node] = set()
    best_density = 0.0
    best_len = 0
    current: Set[Node] = set()
    weight_inside = 0.0
    for idx in order:
        if y[idx] <= LP_EPS and current:
            break
        node = nodes[idx]
        for nbr in graph.neighbors(node):
            if nbr in current:
                weight_inside += graph.edge_weight(node, nbr)
        current.add(node)
        density = weight_inside / len(current)
        if density > best_density:
            best_density = density
            best_len = len(current)
    if best_len == 0:
        raise SolverError("LP rounding produced no candidate set")
    best_set = {nodes[idx] for idx in order[:best_len]}
    # Guard against pathological solver output: the rounded density can
    # lag the LP value only by numerical error.
    if best_density < value - 1e-6 * max(1.0, value):
        raise SolverError(
            f"LP rounding density {best_density} far below LP value {value}"
        )
    return best_set, best_density
