"""Dinic's maximum-flow algorithm.

A from-scratch max-flow implementation used by the Goldberg exact
densest-subgraph solver.  Dinic's algorithm runs in O(V^2 E) in general
and much faster on the shallow networks produced by the densest-
subgraph reduction (three BFS levels).

The network is stored as a flat edge array with twinned residual arcs
(edge ``i`` and ``i ^ 1`` are a forward/backward pair), the standard
competitive-programming layout, which keeps the inner loops allocation
free.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Set, Tuple

from .._tolerances import FLOW_EPS
from ..errors import SolverError

INF = float("inf")


class FlowNetwork:
    """A capacitated directed network over arbitrary hashable node labels.

    Examples
    --------
    >>> net = FlowNetwork()
    >>> net.add_edge('s', 'a', 3.0)
    >>> net.add_edge('a', 't', 2.0)
    >>> max_flow(net, 's', 't')
    2.0
    """

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self._labels: List[Hashable] = []
        # head[e]: target node of edge e; cap[e]: residual capacity.
        self._head: List[int] = []
        self._cap: List[float] = []
        # adjacency: node -> list of edge ids
        self._adj: List[List[int]] = []

    def _node_id(self, label: Hashable) -> int:
        """Intern a node label, creating it on first use."""
        node = self._index.get(label)
        if node is None:
            node = len(self._labels)
            self._index[label] = node
            self._labels.append(label)
            self._adj.append([])
        return node

    def add_edge(self, u: Hashable, v: Hashable, capacity: float) -> None:
        """Add a directed edge u -> v with the given capacity.

        A zero-capacity reverse arc is added automatically.
        """
        if capacity < 0:
            raise SolverError(f"capacity must be >= 0, got {capacity}")
        ui = self._node_id(u)
        vi = self._node_id(v)
        self._adj[ui].append(len(self._head))
        self._head.append(vi)
        self._cap.append(float(capacity))
        self._adj[vi].append(len(self._head))
        self._head.append(ui)
        self._cap.append(0.0)

    @property
    def num_nodes(self) -> int:
        """Number of nodes seen so far."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of forward edges added."""
        return len(self._head) // 2

    def has_node(self, label: Hashable) -> bool:
        """True if the label has been interned."""
        return label in self._index

    # ------------------------------------------------------------------
    # Dinic
    # ------------------------------------------------------------------
    def _bfs_levels(self, source: int, sink: int) -> List[int]:
        """Level graph BFS on residual capacities; level -1 = unreachable."""
        levels = [-1] * len(self._labels)
        levels[source] = 0
        queue = deque([source])
        head, cap = self._head, self._cap
        while queue:
            u = queue.popleft()
            for e in self._adj[u]:
                v = head[e]
                if cap[e] > FLOW_EPS and levels[v] < 0:
                    levels[v] = levels[u] + 1
                    queue.append(v)
        return levels

    def _dfs_augment(
        self,
        u: int,
        sink: int,
        pushed: float,
        levels: List[int],
        iters: List[int],
    ) -> float:
        """Blocking-flow DFS with iteration pointers."""
        if u == sink:
            return pushed
        head, cap, adj = self._head, self._cap, self._adj
        while iters[u] < len(adj[u]):
            e = adj[u][iters[u]]
            v = head[e]
            if cap[e] > FLOW_EPS and levels[v] == levels[u] + 1:
                flow = self._dfs_augment(v, sink, min(pushed, cap[e]), levels, iters)
                if flow > FLOW_EPS:
                    cap[e] -= flow
                    cap[e ^ 1] += flow
                    return flow
            iters[u] += 1
        return 0.0

    def solve(self, source: Hashable, sink: Hashable) -> float:
        """Compute the maximum s-t flow value (mutates residual capacities)."""
        if source not in self._index or sink not in self._index:
            raise SolverError("source/sink not present in network")
        s = self._index[source]
        t = self._index[sink]
        if s == t:
            raise SolverError("source and sink must differ")
        total = 0.0
        while True:
            levels = self._bfs_levels(s, t)
            if levels[t] < 0:
                return total
            iters = [0] * len(self._labels)
            while True:
                flow = self._dfs_augment(s, t, INF, levels, iters)
                if flow <= FLOW_EPS:
                    break
                total += flow

    def source_side_min_cut(self, source: Hashable) -> Set[Hashable]:
        """Nodes reachable from the source in the residual graph.

        Valid after :meth:`solve`; this is the source side of a minimum
        cut by max-flow/min-cut duality.
        """
        if source not in self._index:
            raise SolverError("source not present in network")
        s = self._index[source]
        seen = [False] * len(self._labels)
        seen[s] = True
        queue = deque([s])
        head, cap = self._head, self._cap
        while queue:
            u = queue.popleft()
            for e in self._adj[u]:
                v = head[e]
                if cap[e] > FLOW_EPS and not seen[v]:
                    seen[v] = True
                    queue.append(v)
        return {self._labels[i] for i, flag in enumerate(seen) if flag}


def max_flow(network: FlowNetwork, source: Hashable, sink: Hashable) -> float:
    """Maximum flow value from ``source`` to ``sink``."""
    return network.solve(source, sink)


def min_cut(
    network: FlowNetwork, source: Hashable, sink: Hashable
) -> Tuple[float, Set[Hashable]]:
    """Max-flow value and the source side of a minimum cut."""
    value = network.solve(source, sink)
    return value, network.source_side_min_cut(source)
