"""Charikar's greedy peeling — the classical 2-approximation baselines.

These are the algorithms the paper starts from: remove the single worst
node per step (instead of a whole batch per pass), keeping the best
intermediate subgraph.

* :func:`charikar_peeling` — undirected, exact min-degree peeling.
  Guaranteed ρ(S̃) ≥ ρ*/2; O((n + m) log n) with a lazy heap, or
  O(n + m) for unweighted graphs via bucket peeling.
* :func:`charikar_directed_peeling` — the directed analog at a fixed
  ratio c (2-approximation over sets with that ratio).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Hashable, List, Set, Tuple

from .._validation import check_positive_float
from ..graph.cores import peeling_order
from ..graph.directed import DirectedGraph
from ..graph.undirected import UndirectedGraph

Node = Hashable


def charikar_peeling(graph: UndirectedGraph) -> Tuple[Set[Node], float]:
    """Charikar's greedy 2-approximation for undirected graphs.

    Repeatedly removes a minimum-(weighted-)degree node; returns the
    densest suffix of the removal order.

    Examples
    --------
    >>> from repro.graph.generators import clique, star, disjoint_union
    >>> g = disjoint_union([clique(4), star(20, offset=100)])
    >>> nodes, rho = charikar_peeling(g)
    >>> sorted(nodes), rho
    ([0, 1, 2, 3], 1.5)
    """
    graph.require_nonempty()
    if graph.is_weighted():
        order = _weighted_peeling_order(graph)
    else:
        order = peeling_order(graph)
    return _best_suffix(graph, order)


def _weighted_peeling_order(graph: UndirectedGraph) -> List[Node]:
    """Min-weighted-degree removal order via a lazy-deletion heap."""
    wdeg: Dict[Node, float] = {u: graph.weighted_degree(u) for u in graph.nodes()}
    heap: List[Tuple[float, int, Node]] = []
    counter = 0
    for node, d in wdeg.items():
        heap.append((d, counter, node))
        counter += 1
    heapq.heapify(heap)
    removed: Set[Node] = set()
    order: List[Node] = []
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in removed or wdeg[node] != d:
            continue  # stale entry
        removed.add(node)
        order.append(node)
        for nbr in graph.neighbors(node):
            if nbr in removed:
                continue
            wdeg[nbr] -= graph.edge_weight(node, nbr)
            counter += 1
            heapq.heappush(heap, (wdeg[nbr], counter, nbr))
    return order


def _best_suffix(graph: UndirectedGraph, order: List[Node]) -> Tuple[Set[Node], float]:
    """Densest suffix of a removal order, computed back-to-front in O(n + m)."""
    best_density = 0.0
    best_start = len(order)
    weight_inside = 0.0
    present: Set[Node] = set()
    for i in range(len(order) - 1, -1, -1):
        node = order[i]
        for nbr in graph.neighbors(node):
            if nbr in present:
                weight_inside += graph.edge_weight(node, nbr)
        present.add(node)
        density = weight_inside / len(present)
        if density > best_density:
            best_density = density
            best_start = i
    return set(order[best_start:]), best_density


def charikar_directed_peeling(
    graph: DirectedGraph, ratio: float
) -> Tuple[Set[Node], Set[Node], float]:
    """Greedy one-node-at-a-time peeling for directed graphs at ratio c.

    Maintains S and T (both starting at V); each step removes the
    minimum-outdegree node from S when |S|/|T| >= c, else the minimum-
    indegree node from T, tracking the best ρ(S, T) pair seen.  This is
    the ε→0 single-node variant of the paper's Algorithm 3.
    """
    graph.require_nonempty()
    check_positive_float(ratio, "ratio")
    s_set: Set[Node] = set(graph.nodes())
    t_set: Set[Node] = set(graph.nodes())
    # out_to_t[i] = |E(i, T)|, in_from_s[j] = |E(S, j)| maintained incrementally.
    out_to_t: Dict[Node, float] = {
        u: graph.weighted_out_degree(u) for u in graph.nodes()
    }
    in_from_s: Dict[Node, float] = {
        u: graph.weighted_in_degree(u) for u in graph.nodes()
    }
    edge_total = graph.total_weight

    best_s: Set[Node] = set(s_set)
    best_t: Set[Node] = set(t_set)
    best_rho = edge_total / math.sqrt(len(s_set) * len(t_set))

    while s_set and t_set:
        if len(s_set) / len(t_set) >= ratio:
            node = min(s_set, key=lambda u: (out_to_t[u], _sort_key(u)))
            s_set.discard(node)
            for v, w in _out_items(graph, node):
                if v in t_set:
                    in_from_s[v] -= w
                    edge_total -= w
        else:
            node = min(t_set, key=lambda u: (in_from_s[u], _sort_key(u)))
            t_set.discard(node)
            for u, w in _in_items(graph, node):
                if u in s_set:
                    out_to_t[u] -= w
                    edge_total -= w
        if s_set and t_set:
            rho = edge_total / math.sqrt(len(s_set) * len(t_set))
            if rho > best_rho:
                best_rho = rho
                best_s = set(s_set)
                best_t = set(t_set)
    return best_s, best_t, best_rho


def _sort_key(node: Node) -> str:
    """Deterministic tie-break independent of hash order."""
    return repr(node)


def _out_items(graph: DirectedGraph, node: Node):
    """(successor, weight) pairs of a node."""
    return ((v, graph.edge_weight(node, v)) for v in graph.successors(node))


def _in_items(graph: DirectedGraph, node: Node):
    """(predecessor, weight) pairs of a node."""
    return ((u, graph.edge_weight(u, node)) for u in graph.predecessors(node))
