"""Deterministic fault injection for the execution and serving tiers.

The robustness guarantees this library makes — crash-safe stores,
checkpoint/resume peels, worker-loss recovery, cooperative cancellation
— are only worth stating if tests exercise the *real* failure paths.
This module is the harness that arms them:

* A :class:`FaultPlan` is a seeded, declarative list of
  :class:`FaultPoint` entries ("kill the worker running map task 1",
  "crash the shard writer on shard 2", "raise at peel pass 10").  Code
  under test consults the plan at named *sites*; every consultation is
  one-shot, so a recovered retry does not re-trip the same fault and
  recovery is deterministic.
* :class:`RunControl` bundles the cooperative run controls (cancel
  event, wall-clock deadline, armed fault plan) that engines check
  between peel passes.  It is built from
  :class:`~repro.api.context.ExecutionContext` fields, which is how the
  serving tier threads a per-job cancel event and deadline into a
  running solve.
* :func:`corrupt_shard` flips one deterministic payload byte of an
  on-disk shard — the "corrupt-byte-at-offset" plan used to prove the
  store's checksum verification turns bit rot into a typed
  :class:`~repro.errors.StoreCorruptionError` rather than a wrong
  answer.

Fault sites
-----------
========================  ==================================================
site                      consulted by
========================  ==================================================
``store.shard_write``     :class:`~repro.store.shards.ShardWriter` once per
                          shard while spilling (index = shard id)
``streaming.pass``        the streaming peel engines at the top of every
                          pass (index = 1-based pass number)
``mapreduce.map``         the process-pool driver before *first* submission
``mapreduce.reduce``      of a task (index = task id); ``kill_worker``
                          points ship a marker the worker turns into
                          ``SIGKILL`` on itself
``mapreduce.shuffle``     the process-pool driver on file-shuffle map
                          tasks (index = task id); ``raise`` /
                          ``kill_worker`` fire between a spilled run's
                          tmp write and its atomic rename (leaving
                          realistic ``*.tmp`` debris), ``corrupt``
                          flips a payload byte of a committed run while
                          reporting the pristine checksum, so the
                          reduce-side CRC check must catch it
``serve.solve``           the serving tier once per submitted solve job
                          (index = submission number); ``delay`` models
                          a straggler solver, ``raise`` a solve that
                          dies before producing an answer
``catalog.read``          the result catalog once per guarded read /
``catalog.write``         write (index = per-site op number); ``raise``
                          and ``corrupt`` surface as
                          ``sqlite3.DatabaseError`` — the signal the
                          catalog circuit breaker trips on — and
                          ``delay`` models a slow page read
========================  ==================================================

Nothing here runs unless a plan is explicitly armed: production
configurations carry ``fault_plan=None`` and every consultation
short-circuits.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional

from .errors import (
    DeadlineExceededError,
    InjectedFaultError,
    JobCancelledError,
    StoreError,
)

#: Fault modes a :class:`FaultPoint` may request.
FAULT_MODES = ("raise", "kill_worker", "corrupt", "delay")

#: Seconds a ``delay`` point sleeps when its payload gives no duration.
DEFAULT_DELAY_SECONDS = 0.05


@dataclass(frozen=True)
class FaultPoint:
    """One armed fault: fire ``mode`` when ``site`` reaches ``index``.

    ``mode="raise"`` raises :class:`InjectedFaultError` at the site;
    ``mode="kill_worker"`` asks the executor to SIGKILL the worker
    process running the task; ``mode="corrupt"`` is consumed by
    :func:`corrupt_shard`-style helpers (``payload`` carries the byte
    offset); ``mode="delay"`` sleeps ``payload`` seconds at the site —
    straggler injection, the one mode that perturbs *latency* while
    leaving results untouched.
    """

    site: str
    index: int
    mode: str = "raise"
    payload: Any = None

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise ValueError(
                f"fault mode must be one of {FAULT_MODES}, got {self.mode!r}"
            )


@dataclass
class FaultPlan:
    """A deterministic, one-shot-per-point fault schedule.

    Sites call :meth:`take` (returns the matching point, if any, exactly
    once) or :meth:`fire` (raises :class:`InjectedFaultError` for
    ``"raise"``-mode points).  Every consultation that trips a point is
    appended to :attr:`fired` so tests — and the CI fault-smoke job's
    artifact log — can assert exactly which faults fired and in what
    order.
    """

    points: List[FaultPoint] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._armed = list(self.points)
        self.fired: List[dict] = []

    # -- convenience constructors -------------------------------------
    @classmethod
    def kill_worker_at(cls, stage: str, task: int, **kw) -> "FaultPlan":
        """Plan: SIGKILL the worker running ``stage`` task ``task``."""
        return cls([FaultPoint(f"mapreduce.{stage}", task, "kill_worker")], **kw)

    @classmethod
    def crash_writer_at(cls, shard: int, **kw) -> "FaultPlan":
        """Plan: crash the shard writer while spilling ``shard``."""
        return cls([FaultPoint("store.shard_write", shard, "raise")], **kw)

    @classmethod
    def corrupt_run_at(cls, task: int, **kw) -> "FaultPlan":
        """Plan: flip a payload byte of map task ``task``'s first
        spilled shuffle run (the manifest still reports the pristine
        checksum, so the reduce-side CRC check must catch it)."""
        return cls([FaultPoint("mapreduce.shuffle", task, "corrupt")], **kw)

    @classmethod
    def raise_at_pass(cls, pass_index: int, **kw) -> "FaultPlan":
        """Plan: raise at the top of peel pass ``pass_index``."""
        return cls([FaultPoint("streaming.pass", pass_index, "raise")], **kw)

    @classmethod
    def delay_at(
        cls,
        site: str,
        index: int,
        seconds: float = DEFAULT_DELAY_SECONDS,
        **kw,
    ) -> "FaultPlan":
        """Plan: sleep ``seconds`` when ``site`` reaches ``index``
        (deterministic straggler injection; one-shot like every point)."""
        return cls([FaultPoint(site, index, "delay", float(seconds))], **kw)

    # -- consultation --------------------------------------------------
    def take(self, site: str, index: int) -> Optional[FaultPoint]:
        """Return the armed point matching ``(site, index)``, at most once.

        One-shot semantics are the recovery invariant: a retried task or
        resumed peel consulting the same site again gets ``None``, so a
        single armed fault produces exactly one failure plus one clean
        recovery.
        """
        with self._lock:
            for i, point in enumerate(self._armed):
                if point.site == site and point.index == index:
                    del self._armed[i]
                    record = {"site": site, "index": index, "mode": point.mode}
                    if point.payload is not None:
                        record["payload"] = point.payload
                    self.fired.append(record)
                    return point
        return None

    def fire(self, site: str, index: int) -> None:
        """Fire the matching point in-line: ``"raise"`` raises
        :class:`InjectedFaultError`, ``"delay"`` sleeps the point's
        payload seconds (straggler) and returns normally."""
        point = self.take(site, index)
        if point is None:
            return
        if point.mode == "raise":
            raise InjectedFaultError(f"injected fault at {site}[{index}]")
        if point.mode == "delay":
            time.sleep(delay_seconds(point))

    # -- reporting -----------------------------------------------------
    def pending(self) -> List[FaultPoint]:
        """Points still armed (not yet consumed)."""
        with self._lock:
            return list(self._armed)

    def save_log(self, path) -> None:
        """Write the fired/pending record as JSON (the CI artifact)."""
        with self._lock:
            payload = {
                "seed": self.seed,
                "planned": [vars(p) | {} for p in self.points],
                "fired": list(self.fired),
                "pending": [vars(p) | {} for p in self._armed],
            }
        serializable = json.loads(json.dumps(payload, default=str))
        with open(path, "w") as handle:
            json.dump(serializable, handle, indent=2)
            handle.write("\n")


def delay_seconds(point: FaultPoint) -> float:
    """The sleep duration a ``delay``-mode point requests."""
    return (
        float(point.payload)
        if point.payload is not None
        else DEFAULT_DELAY_SECONDS
    )


class RunControl:
    """Cooperative run controls checked between peel passes.

    Bundles the cancel event, wall-clock deadline, and armed fault plan
    for one solve.  The deadline clock starts when the control is
    constructed (i.e. at solve start, not at job submission).
    """

    __slots__ = ("cancel_event", "deadline_at", "fault_plan")

    def __init__(
        self,
        cancel_event: Optional[threading.Event] = None,
        deadline_seconds: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.cancel_event = cancel_event
        self.deadline_at = (
            time.monotonic() + float(deadline_seconds)
            if deadline_seconds is not None
            else None
        )
        self.fault_plan = fault_plan

    @classmethod
    def from_context(cls, context) -> Optional["RunControl"]:
        """Build a control from an ``ExecutionContext``, or ``None``
        when the context carries no control fields at all."""
        if context is None:
            return None
        cancel = getattr(context, "cancel_event", None)
        deadline = getattr(context, "deadline_seconds", None)
        plan = getattr(context, "fault_plan", None)
        if cancel is None and deadline is None and plan is None:
            return None
        return cls(cancel, deadline, plan)

    def check_pass(self, pass_index: int) -> None:
        """Raise the applicable control exception at a pass boundary."""
        if self.cancel_event is not None and self.cancel_event.is_set():
            raise JobCancelledError(
                f"solve cancelled before pass {pass_index}"
            )
        if self.deadline_at is not None and time.monotonic() > self.deadline_at:
            raise DeadlineExceededError(
                f"solve deadline exceeded before pass {pass_index}"
            )
        if self.fault_plan is not None:
            self.fault_plan.fire("streaming.pass", pass_index)


def corrupt_shard(
    store_path, shard: int = 0, *, offset: Optional[int] = None, seed: int = 0
) -> int:
    """Flip one payload byte of an on-disk shard file, deterministically.

    ``offset`` is relative to the start of the record payload (the fixed
    preamble is never touched — header corruption is a different, easier
    failure).  When omitted, a byte is picked by ``seed`` so repeated
    runs corrupt the same bit.  Returns the absolute file offset flipped.
    """
    import random
    from pathlib import Path

    from .store.shards import _PREAMBLE_BYTES, _shard_name

    path = Path(store_path)
    if path.is_dir():
        path = path / _shard_name(shard)
    size = path.stat().st_size
    payload = size - _PREAMBLE_BYTES
    if payload <= 0:
        raise StoreError(f"{path} has no payload bytes to corrupt")
    if offset is None:
        offset = random.Random(seed).randrange(payload)
    if not 0 <= offset < payload:
        raise StoreError(f"offset {offset} outside payload [0, {payload})")
    absolute = _PREAMBLE_BYTES + offset
    with open(path, "r+b") as handle:
        handle.seek(absolute)
        byte = handle.read(1)
        handle.seek(absolute)
        handle.write(bytes((byte[0] ^ 0xFF,)))
    return absolute
