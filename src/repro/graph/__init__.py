"""Graph substrate: in-memory graphs, views, cores, I/O and generators.

This subpackage implements everything the paper's algorithms need from a
graph library, built from scratch on plain dictionaries:

* :class:`~repro.graph.undirected.UndirectedGraph` — weighted undirected
  multigraph-free graph with O(1) degree queries.
* :class:`~repro.graph.directed.DirectedGraph` — weighted directed graph
  with separate in/out adjacency.
* :mod:`~repro.graph.cores` — d-cores (Definition 8 of the paper) and the
  full core decomposition.
* :mod:`~repro.graph.io` — SNAP-style edge-list readers/writers.
* :mod:`~repro.graph.generators` — seeded synthetic graph generators,
  including the paper's lower-bound gadgets (Lemmas 5–7).
"""

from .undirected import UndirectedGraph
from .directed import DirectedGraph
from .views import InducedSubgraphView
from .cores import core_decomposition, d_core, degeneracy, densest_core
from . import generators, io

__all__ = [
    "UndirectedGraph",
    "DirectedGraph",
    "InducedSubgraphView",
    "core_decomposition",
    "d_core",
    "degeneracy",
    "densest_core",
    "generators",
    "io",
]
