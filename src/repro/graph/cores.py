"""d-cores and core decomposition (Definition 8 of the paper).

The *d-core* ``C_d(G)`` is the largest induced subgraph all of whose
(induced) degrees are at least ``d``.  The classical Matula–Beck bucket
algorithm computes the full *core decomposition* — the core number of
every node — in O(n + m) time; every d-core is then a suffix of the
peeling order.

Theorem 9's proof uses the d-core containment argument, and the core
decomposition itself is a strong densest-subgraph baseline: the densest
suffix of the degeneracy order is always a 2-approximation.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from .._validation import check_nonnegative_int
from .undirected import UndirectedGraph

Node = Hashable


def core_decomposition(graph: UndirectedGraph) -> Dict[Node, int]:
    """Core number of every node via Matula–Beck bucket peeling.

    Returns a dict mapping each node to its core number (the largest d
    such that the node belongs to the d-core).  Runs in O(n + m).
    """
    degrees: Dict[Node, int] = {u: graph.degree(u) for u in graph.nodes()}
    if not degrees:
        return {}
    max_degree = max(degrees.values())
    buckets: List[List[Node]] = [[] for _ in range(max_degree + 1)]
    for node, deg in degrees.items():
        buckets[deg].append(node)

    core: Dict[Node, int] = {}
    removed: Set[Node] = set()
    current = 0
    processed = 0
    total = len(degrees)
    while processed < total:
        # Advance to the first non-empty bucket at or below the current level;
        # buckets can repopulate below `current` when degrees drop.
        while current <= max_degree and not buckets[current]:
            current += 1
        node = buckets[current].pop()
        if node in removed or degrees[node] != current:
            # Stale bucket entry: the node moved to a lower bucket already.
            continue
        core[node] = current
        removed.add(node)
        processed += 1
        for nbr in graph.neighbors(node):
            if nbr in removed:
                continue
            d = degrees[nbr]
            if d > current:
                degrees[nbr] = d - 1
                buckets[d - 1].append(nbr)
                if d - 1 < current:
                    current = d - 1
        # Degrees only decrease, so entries for other nodes in higher buckets
        # may now be stale; the staleness check above skips them.
    return core


def degeneracy(graph: UndirectedGraph) -> int:
    """The degeneracy of the graph (maximum core number); 0 if empty."""
    cores = core_decomposition(graph)
    return max(cores.values()) if cores else 0


def d_core(graph: UndirectedGraph, d: int) -> Set[Node]:
    """The node set of the d-core ``C_d(G)`` (may be empty).

    Definition 8: the largest induced subgraph with all degrees >= d.
    """
    check_nonnegative_int(d, "d")
    cores = core_decomposition(graph)
    return {node for node, c in cores.items() if c >= d}


def peeling_order(graph: UndirectedGraph) -> List[Node]:
    """Nodes in the order the Matula–Beck peel removes them.

    Suffixes of this order are the candidate sets for the greedy
    2-approximation (Charikar's algorithm visits exactly these sets).
    """
    degrees: Dict[Node, int] = {u: graph.degree(u) for u in graph.nodes()}
    order: List[Node] = []
    if not degrees:
        return order
    max_degree = max(degrees.values())
    buckets: List[List[Node]] = [[] for _ in range(max_degree + 1)]
    for node, deg in degrees.items():
        buckets[deg].append(node)
    removed: Set[Node] = set()
    current = 0
    while len(order) < len(degrees):
        while current <= max_degree and not buckets[current]:
            current += 1
        node = buckets[current].pop()
        if node in removed or degrees[node] != current:
            continue
        order.append(node)
        removed.add(node)
        for nbr in graph.neighbors(node):
            if nbr in removed:
                continue
            d = degrees[nbr]
            if d > 0:
                degrees[nbr] = d - 1
                buckets[d - 1].append(nbr)
                if d - 1 < current:
                    current = d - 1
    return order


def densest_core(graph: UndirectedGraph) -> Tuple[Set[Node], float]:
    """The densest d-core over all d, with its density.

    This is the "max-core" baseline: since the optimal set is contained
    in its own ``ceil(rho*)``-core, the densest core is always within a
    factor 2 of optimal.  Returns ``(set(), 0.0)`` for edgeless graphs.
    """
    if graph.num_edges == 0:
        return set(), 0.0
    cores = core_decomposition(graph)
    max_core = max(cores.values())
    best_nodes: Set[Node] = set()
    best_density = 0.0
    # Cores are nested, so scan from the innermost outwards, reusing sets.
    by_core: Dict[int, List[Node]] = {}
    for node, c in cores.items():
        by_core.setdefault(c, []).append(node)
    current: Set[Node] = set()
    for d in range(max_core, -1, -1):
        current.update(by_core.get(d, ()))
        if not current:
            continue
        rho = graph.induced_edge_weight(current) / len(current)
        if rho > best_density:
            best_density = rho
            best_nodes = set(current)
    return best_nodes, best_density
