"""Weighted directed graphs.

Stores separate out- and in-adjacency maps so both out-degree and
in-degree queries are O(1) in the number of neighbors — Algorithm 3 of
the paper needs fast access to both sides.

Density follows Definition 2 (Kannan–Vinay): for node sets S and T (not
necessarily disjoint), ``rho(S, T) = w(E(S, T)) / sqrt(|S| * |T|)``
where ``E(S, T)`` is the set of edges going from S to T.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, Optional, Set, Tuple

from ..errors import EmptyGraphError, GraphError

Node = Hashable
Edge = Tuple[Node, Node]
WeightedEdge = Tuple[Node, Node, float]


class DirectedGraph:
    """A weighted, simple, directed graph.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` or ``(u, v, weight)`` tuples;
        ``(u, v)`` means an edge *from* ``u`` *to* ``v``.

    Examples
    --------
    >>> g = DirectedGraph([(0, 1), (1, 0), (0, 2)])
    >>> g.out_degree(0), g.in_degree(0)
    (2, 1)
    """

    __slots__ = ("_out", "_in", "_num_edges", "_total_weight", "_mutations")

    def __init__(self, edges: Optional[Iterable] = None) -> None:
        self._out: Dict[Node, Dict[Node, float]] = {}
        self._in: Dict[Node, Dict[Node, float]] = {}
        self._num_edges: int = 0
        self._total_weight: float = 0.0
        # Monotone edit counter; snapshot caches key on it (see
        # UndirectedGraph).
        self._mutations: int = 0
        if edges is not None:
            self.add_edges_from(edges)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add an isolated node (no-op if present)."""
        if node not in self._out:
            self._out[node] = {}
            self._in[node] = {}

    def add_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Add many nodes at once."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add the directed edge ``u -> v``; repeated adds accumulate weight.

        Self-loops are allowed in directed graphs (a node may follow
        itself in principle) but are rejected here for parity with the
        paper's simple-graph setting.
        """
        if u == v:
            raise GraphError(f"self-loops are not allowed (node {u!r})")
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight!r}")
        self.add_node(u)
        self.add_node(v)
        if v in self._out[u]:
            self._out[u][v] += weight
            self._in[v][u] += weight
        else:
            self._out[u][v] = weight
            self._in[v][u] = weight
            self._num_edges += 1
        self._total_weight += weight
        self._mutations += 1

    def add_edges_from(self, edges: Iterable) -> None:
        """Add ``(u, v)`` or ``(u, v, weight)`` tuples."""
        for edge in edges:
            if len(edge) == 2:
                self.add_edge(edge[0], edge[1])
            elif len(edge) == 3:
                self.add_edge(edge[0], edge[1], edge[2])
            else:
                raise GraphError(f"edges must be 2- or 3-tuples, got {edge!r}")

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident (in and out) edges."""
        if node not in self._out:
            raise GraphError(f"node {node!r} not in graph")
        for v, w in self._out.pop(node).items():
            del self._in[v][node]
            self._num_edges -= 1
            self._total_weight -= w
        for u, w in self._in.pop(node).items():
            del self._out[u][node]
            self._num_edges -= 1
            self._total_weight -= w
        self._mutations += 1

    def remove_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Remove many nodes (all must exist)."""
        for node in list(nodes):
            self.remove_node(node)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Number of distinct directed edges."""
        return self._num_edges

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return self._total_weight

    def __len__(self) -> int:
        return len(self._out)

    def __contains__(self, node: Node) -> bool:
        return node in self._out

    def __iter__(self) -> Iterator[Node]:
        return iter(self._out)

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes."""
        return iter(self._out)

    def has_edge(self, u: Node, v: Node) -> bool:
        """True if the directed edge ``u -> v`` exists."""
        return u in self._out and v in self._out[u]

    def edges(self) -> Iterator[Edge]:
        """Iterate over directed edges ``(u, v)``."""
        for u, nbrs in self._out.items():
            for v in nbrs:
                yield (u, v)

    def weighted_edges(self) -> Iterator[WeightedEdge]:
        """Iterate over ``(u, v, weight)`` triples."""
        for u, nbrs in self._out.items():
            for v, w in nbrs.items():
                yield (u, v, w)

    def successors(self, node: Node) -> Iterator[Node]:
        """Iterate over out-neighbors of ``node``."""
        try:
            return iter(self._out[node])
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def predecessors(self, node: Node) -> Iterator[Node]:
        """Iterate over in-neighbors of ``node``."""
        try:
            return iter(self._in[node])
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def out_degree(self, node: Node) -> int:
        """Number of out-neighbors."""
        try:
            return len(self._out[node])
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def in_degree(self, node: Node) -> int:
        """Number of in-neighbors."""
        try:
            return len(self._in[node])
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def weighted_out_degree(self, node: Node) -> float:
        """Total weight of out-edges."""
        try:
            return sum(self._out[node].values())
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def weighted_in_degree(self, node: Node) -> float:
        """Total weight of in-edges."""
        try:
            return sum(self._in[node].values())
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def edge_weight(self, u: Node, v: Node) -> float:
        """Weight of directed edge ``u -> v`` (raises if absent)."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r} -> {v!r}) not in graph")
        return self._out[u][v]

    # ------------------------------------------------------------------
    # Density / induced structures
    # ------------------------------------------------------------------
    def edge_weight_between(self, sources: Iterable[Node], targets: Iterable[Node]) -> float:
        """Total weight of edges from ``sources`` to ``targets`` (w(E(S,T)))."""
        s_set = set(sources)
        t_set = set(targets)
        total = 0.0
        for u in s_set:
            nbrs = self._out.get(u)
            if nbrs is None:
                raise GraphError(f"node {u!r} not in graph")
            for v, w in nbrs.items():
                if v in t_set:
                    total += w
        return total

    def edge_count_between(self, sources: Iterable[Node], targets: Iterable[Node]) -> int:
        """Number of edges from ``sources`` to ``targets`` (|E(S,T)|)."""
        s_set = set(sources)
        t_set = set(targets)
        count = 0
        for u in s_set:
            nbrs = self._out.get(u)
            if nbrs is None:
                raise GraphError(f"node {u!r} not in graph")
            for v in nbrs:
                if v in t_set:
                    count += 1
        return count

    def density(
        self,
        sources: Optional[Iterable[Node]] = None,
        targets: Optional[Iterable[Node]] = None,
    ) -> float:
        """Directed density ``rho(S, T)`` (Definition 2).

        With both arguments omitted, uses S = T = V.  The density of an
        empty S or T is defined to be 0.
        """
        s_set = set(self._out) if sources is None else set(sources)
        t_set = set(self._out) if targets is None else set(targets)
        if not s_set or not t_set:
            return 0.0
        return self.edge_weight_between(s_set, t_set) / math.sqrt(len(s_set) * len(t_set))

    def subgraph(self, nodes: Iterable[Node]) -> "DirectedGraph":
        """Materialize the induced subgraph on ``nodes``."""
        node_set = set(nodes)
        sub = DirectedGraph()
        for node in node_set:
            if node not in self._out:
                raise GraphError(f"node {node!r} not in graph")
            sub.add_node(node)
        for u in node_set:
            for v, w in self._out[u].items():
                if v in node_set:
                    sub.add_edge(u, v, w)
        return sub

    def copy(self) -> "DirectedGraph":
        """Deep copy of the graph."""
        clone = DirectedGraph()
        clone._out = {u: dict(nbrs) for u, nbrs in self._out.items()}
        clone._in = {u: dict(nbrs) for u, nbrs in self._in.items()}
        clone._num_edges = self._num_edges
        clone._total_weight = self._total_weight
        clone._mutations = 0
        return clone

    def to_undirected(self) -> "UndirectedGraph":
        """Collapse edge directions (weights of antiparallel edges add)."""
        from .undirected import UndirectedGraph

        g = UndirectedGraph()
        g.add_nodes_from(self.nodes())
        for u, v, w in self.weighted_edges():
            g.add_edge(u, v, w)
        return g

    def reverse(self) -> "DirectedGraph":
        """Graph with every edge direction flipped."""
        clone = DirectedGraph()
        clone._out = {u: dict(nbrs) for u, nbrs in self._in.items()}
        clone._in = {u: dict(nbrs) for u, nbrs in self._out.items()}
        clone._num_edges = self._num_edges
        clone._total_weight = self._total_weight
        clone._mutations = 0
        return clone

    def require_nonempty(self) -> None:
        """Raise :class:`EmptyGraphError` unless the graph has an edge."""
        if self._num_edges == 0:
            raise EmptyGraphError("graph has no edges")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DirectedGraph(num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges}, total_weight={self.total_weight:g})"
        )


# Imported late to avoid a cycle at module import time.
from .undirected import UndirectedGraph  # noqa: E402
