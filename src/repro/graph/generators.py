"""Seeded synthetic graph generators.

Everything the experiments need that the paper got from real data or
from theoretical constructions:

* standard random models (Erdős–Rényi, Barabási–Albert, Chung–Lu
  power-law) used to build the dataset stand-ins;
* planted dense subgraphs (for ground-truth community/spam scenarios);
* the paper's worst-case gadgets — the Lemma 5 layered-regular graph,
  the Lemma 6 weighted preferential-attachment graph, and the Lemma 7
  set-disjointness graph.

All generators take an explicit ``seed`` and are deterministic for a
given seed, so tests, examples, and benchmarks are reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple, Union

from .._validation import (
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
)
from ..errors import ParameterError
from .directed import DirectedGraph
from .undirected import UndirectedGraph


# ----------------------------------------------------------------------
# Classic random models
# ----------------------------------------------------------------------
def erdos_renyi(n: int, p: float, *, seed: int = 0) -> UndirectedGraph:
    """G(n, p): each of the C(n,2) edges present independently with prob p.

    Uses the geometric skipping trick so the cost is O(n + m) rather
    than O(n^2) for sparse graphs.
    """
    check_positive_int(n, "n")
    check_probability(p, "p")
    rng = random.Random(seed)
    graph = UndirectedGraph()
    graph.add_nodes_from(range(n))
    if p == 0.0:
        return graph
    if p == 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v)
        return graph
    # Geometric skipping over the implicit edge enumeration (u < v).
    import math

    log_q = math.log(1.0 - p)
    v = 1
    u = -1
    while v < n:
        r = rng.random()
        skip = int(math.log(max(r, 1e-300)) / log_q)
        u += skip + 1
        while u >= v and v < n:
            u -= v
            v += 1
        if v < n:
            graph.add_edge(u, v)
    return graph


def gnm_random(n: int, m: int, *, seed: int = 0) -> UndirectedGraph:
    """G(n, m): exactly m distinct uniform random edges."""
    check_positive_int(n, "n")
    check_nonnegative_int(m, "m")
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ParameterError(f"m={m} exceeds max possible edges {max_edges}")
    rng = random.Random(seed)
    graph = UndirectedGraph()
    graph.add_nodes_from(range(n))
    added = 0
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        added += 1
    return graph


def barabasi_albert(n: int, m: int, *, seed: int = 0) -> UndirectedGraph:
    """Preferential attachment: each new node attaches to m existing nodes.

    Produces the heavy-tailed degree distributions typical of the social
    networks the paper evaluates on.
    """
    check_positive_int(n, "n")
    check_positive_int(m, "m")
    if n <= m:
        raise ParameterError(f"need n > m, got n={n}, m={m}")
    rng = random.Random(seed)
    graph = UndirectedGraph()
    graph.add_nodes_from(range(n))
    # Attachment pool: node ids repeated once per incident edge endpoint.
    pool: List[int] = []
    # Seed the process with a star on the first m+1 nodes.
    for v in range(1, m + 1):
        graph.add_edge(0, v)
        pool.extend((0, v))
    for new in range(m + 1, n):
        targets = set()
        while len(targets) < m:
            targets.add(pool[rng.randrange(len(pool))])
        for t in targets:
            graph.add_edge(new, t)
            pool.extend((new, t))
    return graph


def power_law_degree_weights(n: int, exponent: float) -> List[float]:
    """Expected-degree weights ``w_i ∝ (i+1)^(-1/(exponent-1))``.

    ``exponent`` is the exponent of the resulting degree distribution
    tail (classic Chung–Lu parameterization); values in (2, 3) give the
    heavy tails seen in social graphs.
    """
    check_positive_int(n, "n")
    check_positive_float(exponent, "exponent")
    if exponent <= 1.0:
        raise ParameterError(f"exponent must be > 1, got {exponent}")
    gamma = 1.0 / (exponent - 1.0)
    return [(i + 1.0) ** (-gamma) for i in range(n)]


def chung_lu(
    n: int,
    *,
    exponent: float = 2.5,
    average_degree: float = 10.0,
    seed: int = 0,
) -> UndirectedGraph:
    """Chung–Lu power-law random graph with the given average degree.

    Edge (i, j) appears with probability ``min(1, w_i w_j / W)`` where
    the weights follow a power law with the given tail exponent, scaled
    so that the expected average degree matches ``average_degree``.
    Implemented with the efficient Miller–Hagberg style per-row skipping
    (cost roughly O(n + m)).
    """
    import math

    check_positive_float(average_degree, "average_degree")
    weights = power_law_degree_weights(n, exponent)
    scale = average_degree * n / sum(weights)
    weights = [w * scale for w in weights]
    total = sum(weights)
    rng = random.Random(seed)
    graph = UndirectedGraph()
    graph.add_nodes_from(range(n))
    # Weights are sorted descending by construction; per-row skipping.
    for i in range(n - 1):
        wi = weights[i]
        if wi <= 0:
            break
        j = i + 1
        p = min(1.0, wi * weights[j] / total)
        while j < n and p > 0:
            if p != 1.0:
                r = rng.random()
                j += int(math.log(max(r, 1e-300)) / math.log(1.0 - p))
            if j < n:
                q = min(1.0, wi * weights[j] / total)
                if rng.random() < q / p:
                    graph.add_edge(i, j)
                p = q
                j += 1
    return graph


# ----------------------------------------------------------------------
# Planted structures
# ----------------------------------------------------------------------
def planted_dense_subgraph(
    n: int,
    k: int,
    *,
    p_in: float = 0.5,
    p_out: float = 0.01,
    seed: int = 0,
) -> Tuple[UndirectedGraph, List[int]]:
    """A sparse G(n, p_out) background with a planted G(k, p_in) block.

    Returns ``(graph, planted_nodes)`` where the planted nodes are
    ``[0, k)``.  With ``p_in >> p_out`` the planted block is the densest
    subgraph with high probability — a ground-truth instance for the
    community-mining and spam-detection examples.
    """
    check_positive_int(k, "k")
    if k > n:
        raise ParameterError(f"need k <= n, got k={k}, n={n}")
    graph = erdos_renyi(n, p_out, seed=seed)
    rng = random.Random(seed + 1)
    for u in range(k):
        for v in range(u + 1, k):
            if not graph.has_edge(u, v) and rng.random() < p_in:
                graph.add_edge(u, v)
    return graph, list(range(k))


def planted_clique(n: int, k: int, *, p: float = 0.05, seed: int = 0) -> Tuple[UndirectedGraph, List[int]]:
    """G(n, p) with a planted k-clique on nodes ``[0, k)``."""
    check_positive_int(k, "k")
    if k > n:
        raise ParameterError(f"need k <= n, got k={k}, n={n}")
    graph = erdos_renyi(n, p, seed=seed)
    for u in range(k):
        for v in range(u + 1, k):
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
    return graph, list(range(k))


def directed_power_law(
    n: int,
    m: int,
    *,
    in_exponent: float = 2.2,
    out_exponent: float = 2.8,
    reciprocity: float = 0.0,
    seed: int = 0,
) -> DirectedGraph:
    """Directed graph with independently skewed in/out degree weights.

    Mimics follower graphs: small ``in_exponent`` concentrates in-degree
    on a few "celebrities" (twitter-like); ``reciprocity`` is the chance
    each generated edge is mirrored (livejournal-like friendship).
    """
    check_positive_int(n, "n")
    check_nonnegative_int(m, "m")
    check_probability(reciprocity, "reciprocity")
    rng = random.Random(seed)
    out_w = power_law_degree_weights(n, out_exponent)
    in_w = power_law_degree_weights(n, in_exponent)
    # Shuffle the out-weight assignment so in- and out-hubs differ.
    out_perm = list(range(n))
    rng.shuffle(out_perm)
    out_cum = _cumulative(out_w)
    in_cum = _cumulative(in_w)
    graph = DirectedGraph()
    graph.add_nodes_from(range(n))
    added = 0
    attempts = 0
    max_attempts = 50 * m + 1000
    while added < m and attempts < max_attempts:
        attempts += 1
        u = out_perm[_sample_cumulative(out_cum, rng)]
        v = _sample_cumulative(in_cum, rng)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        added += 1
        if reciprocity > 0 and not graph.has_edge(v, u) and rng.random() < reciprocity:
            graph.add_edge(v, u)
    return graph


def _cumulative(weights: Sequence[float]) -> List[float]:
    """Prefix sums of a weight vector (for inverse-CDF sampling)."""
    cum: List[float] = []
    total = 0.0
    for w in weights:
        total += w
        cum.append(total)
    return cum


def _sample_cumulative(cum: Sequence[float], rng: random.Random) -> int:
    """Sample an index proportionally to the weights behind ``cum``."""
    import bisect

    r = rng.random() * cum[-1]
    return bisect.bisect_right(cum, r)


def rmat(
    scale: int,
    edge_factor: int = 8,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    directed: bool = False,
) -> Union["UndirectedGraph", "DirectedGraph"]:
    """R-MAT / Kronecker recursive-matrix graph (Chakrabarti et al.).

    The standard synthetic benchmark for skewed web/social graphs (the
    Graph500 generator): 2^scale nodes, ~edge_factor * 2^scale edges
    placed by recursively descending into quadrants with probabilities
    (a, b, c, d = 1 - a - b - c).  Duplicate edges and self-loops are
    dropped, so the final count is slightly below the nominal one.
    """
    check_positive_int(scale, "scale")
    check_positive_int(edge_factor, "edge_factor")
    if scale > 22:
        raise ParameterError(f"scale={scale} would allocate 2^{scale} nodes")
    for name, val in (("a", a), ("b", b), ("c", c)):
        check_probability(val, name)
    d = 1.0 - a - b - c
    if d < 0:
        raise ParameterError("a + b + c must be <= 1")
    rng = random.Random(seed)
    n = 1 << scale
    target_edges = edge_factor * n
    graph = DirectedGraph() if directed else UndirectedGraph()
    graph.add_nodes_from(range(n))
    attempts = 0
    max_attempts = 20 * target_edges
    while graph.num_edges < target_edges and attempts < max_attempts:
        attempts += 1
        u = v = 0
        for _ in range(scale):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
    return graph


def random_dag(n: int, p: float, *, seed: int = 0) -> DirectedGraph:
    """Random DAG: edge i -> j present with probability p for i < j.

    Used by the 2-hop labeling application (reachability indexing needs
    acyclic-ish inputs to be interesting).
    """
    check_positive_int(n, "n")
    check_probability(p, "p")
    rng = random.Random(seed)
    graph = DirectedGraph()
    graph.add_nodes_from(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                graph.add_edge(i, j)
    return graph


# ----------------------------------------------------------------------
# Regular / structured graphs
# ----------------------------------------------------------------------
def circulant(n: int, d: int, *, offset: int = 0) -> UndirectedGraph:
    """A d-regular circulant graph on n nodes (node ids offset by ``offset``).

    For even d, connects each node to the d/2 nearest on each side; for
    odd d, additionally to the antipodal node (requires even n).
    """
    check_positive_int(n, "n")
    check_nonnegative_int(d, "d")
    if d >= n:
        raise ParameterError(f"need d < n, got d={d}, n={n}")
    if d % 2 == 1 and n % 2 == 1:
        raise ParameterError("odd-degree circulant requires even n")
    graph = UndirectedGraph()
    graph.add_nodes_from(range(offset, offset + n))
    for step in range(1, d // 2 + 1):
        for i in range(n):
            graph.add_edge(offset + i, offset + (i + step) % n)
    if d % 2 == 1:
        for i in range(n // 2):
            graph.add_edge(offset + i, offset + i + n // 2)
    return graph


def clique(n: int, *, offset: int = 0) -> UndirectedGraph:
    """The complete graph K_n."""
    check_positive_int(n, "n")
    graph = UndirectedGraph()
    graph.add_nodes_from(range(offset, offset + n))
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(offset + u, offset + v)
    return graph


def star(n: int, *, offset: int = 0) -> UndirectedGraph:
    """A star with one hub and n-1 leaves."""
    check_positive_int(n, "n")
    graph = UndirectedGraph()
    graph.add_nodes_from(range(offset, offset + n))
    for leaf in range(1, n):
        graph.add_edge(offset, offset + leaf)
    return graph


def disjoint_union(graphs: Sequence[UndirectedGraph]) -> UndirectedGraph:
    """Union of graphs assumed to have disjoint node sets."""
    merged = UndirectedGraph()
    for g in graphs:
        merged.add_nodes_from(g.nodes())
        for u, v, w in g.weighted_edges():
            merged.add_edge(u, v, w)
    return merged


# ----------------------------------------------------------------------
# The paper's lower-bound gadgets (Section 4.1.1)
# ----------------------------------------------------------------------
def lemma5_gadget(k: int) -> UndirectedGraph:
    """The Lemma 5 pass-lower-bound graph.

    k disjoint subgraphs G_1..G_k where G_i is 2^(i-1)-regular on
    2^(2k+1-i) nodes, so every G_i has exactly 2^(2k-1) edges.  On this
    family Algorithm 1 needs Omega(log n / log log n) passes.

    The graph has 2^(2k) + ... + 2^(k+1) ≈ 2^(2k+1) nodes, so keep
    k <= 8 or so for in-memory experiments.
    """
    check_positive_int(k, "k")
    if k > 10:
        raise ParameterError(f"k={k} would build a graph with ~2^{2 * k + 1} nodes")
    blocks: List[UndirectedGraph] = []
    offset = 0
    for i in range(1, k + 1):
        n_i = 2 ** (2 * k + 1 - i)
        d_i = 2 ** (i - 1)
        blocks.append(circulant(n_i, d_i, offset=offset))
        offset += n_i
    return disjoint_union(blocks)


def lemma6_gadget(n: int) -> UndirectedGraph:
    """The Lemma 6 weighted pass-lower-bound graph.

    Deterministic preferential attachment: node u (arriving in order
    1..n-1) connects to every existing node v with an edge of weight
    proportional to v's current weighted degree.  The weighted degree
    sequence follows a power law, forcing Omega(log n) passes of the
    weighted variant of Algorithm 1.
    """
    check_positive_int(n, "n")
    if n < 2:
        raise ParameterError("need n >= 2")
    graph = UndirectedGraph()
    graph.add_nodes_from(range(n))
    wdeg = [0.0] * n
    # First edge bootstraps degrees.
    graph.add_edge(0, 1, 1.0)
    wdeg[0] = wdeg[1] = 1.0
    for u in range(2, n):
        total = sum(wdeg[:u])
        for v in range(u):
            weight = wdeg[v] / total
            graph.add_edge(u, v, weight)
        # Update after adding all of u's edges (u contributes weight 1 total).
        for v in range(u):
            wdeg[v] += graph.edge_weight(u, v)
        wdeg[u] = 1.0
    return graph


def disjointness_gadget(
    n_blocks: int,
    q: int,
    *,
    yes_instance: bool,
    yes_block: int = 0,
) -> UndirectedGraph:
    """The Lemma 7 space-lower-bound graph.

    ``n_blocks`` disjoint blocks of ``q`` nodes each.  In a NO instance
    every block is a star (density (q-1)/q < 1); in a YES instance the
    block ``yes_block`` is a complete K_q (density (q-1)/2) and the rest
    are stars.  Any streaming algorithm distinguishing the two with an
    alpha < q approximation solves q-party set disjointness.
    """
    check_positive_int(n_blocks, "n_blocks")
    check_positive_int(q, "q")
    if q < 2:
        raise ParameterError("need q >= 2")
    if not 0 <= yes_block < n_blocks:
        raise ParameterError(f"yes_block must be in [0, {n_blocks}), got {yes_block}")
    blocks: List[UndirectedGraph] = []
    for b in range(n_blocks):
        offset = b * q
        if yes_instance and b == yes_block:
            blocks.append(clique(q, offset=offset))
        else:
            blocks.append(star(q, offset=offset))
    return disjoint_union(blocks)
