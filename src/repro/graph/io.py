"""SNAP-style edge-list I/O.

The paper's public datasets ship as whitespace-separated edge lists with
``#`` comment lines (the SNAP format).  These helpers read and write
that format for both graph types, with transparent gzip compression and
optional weights as a third column.

Gzip handling is transparent on *every* read path
(:func:`iter_edge_list`, :func:`read_edge_arrays`,
:func:`read_undirected`, :func:`read_directed`): compressed files are
recognized by their magic bytes, not just a ``.gz`` suffix, so the
public SNAP dumps load without manual decompression whatever they are
named.  Writers compress when the target path ends in ``.gz``.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterator, Tuple, Union

from ..errors import GraphError
from .directed import DirectedGraph
from .undirected import UndirectedGraph

PathLike = Union[str, Path]


#: The two magic bytes opening every gzip member (RFC 1952).
_GZIP_MAGIC = b"\x1f\x8b"


def _open_text(path: PathLike, mode: str):
    """Open a possibly-gzipped text file.

    Reads sniff the gzip magic bytes so misnamed compressed dumps
    still load; writes go by the ``.gz`` suffix (there is nothing to
    sniff yet).
    """
    path = Path(path)
    if "r" in mode:
        with open(path, "rb") as probe:
            if probe.read(2) == _GZIP_MAGIC:
                return gzip.open(path, mode + "t", encoding="utf-8")
        return open(path, mode, encoding="utf-8")
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def iter_edge_list(path: PathLike) -> Iterator[Tuple[str, str, float]]:
    """Yield ``(u, v, weight)`` from a SNAP-style edge list.

    Node identifiers are returned as strings; callers may map them to
    ints.  Lines starting with ``#`` (or ``%``) and blank lines are
    skipped.  A missing third column means weight 1.

    Raises
    ------
    GraphError
        On malformed lines (one token, or a non-numeric weight).
    """
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) == 2:
                yield parts[0], parts[1], 1.0
            elif len(parts) >= 3:
                try:
                    weight = float(parts[2])
                except ValueError:
                    raise GraphError(
                        f"{path}:{lineno}: non-numeric weight {parts[2]!r}"
                    ) from None
                yield parts[0], parts[1], weight
            else:
                raise GraphError(f"{path}:{lineno}: malformed edge line {line!r}")


def read_edge_arrays(path: PathLike, *, int_nodes: bool = True):
    """Read a SNAP-style edge list into parallel NumPy arrays.

    One pass over the file, no per-edge dict inserts (line parsing is
    still Python-level; it is the hash-map construction that is
    skipped): returns ``(src, dst, weights)`` where ``src``/``dst``
    are int64 arrays (``int_nodes=True``) or string arrays, and
    ``weights`` is float64 (1.0 where the line had no third column).

    Self-loop and duplicate lines are returned verbatim — the CSR
    builders apply their own policy (``CSRGraph.from_edge_arrays``
    drops loops and collapses duplicates; pass ``duplicates="first"``
    there to match :func:`read_undirected`/:func:`read_directed`).

    Raises
    ------
    GraphError
        On malformed lines, or non-integer ids with ``int_nodes=True``.
    """
    import numpy as np

    us: list = []
    vs: list = []
    ws: list = []
    for u, v, w in iter_edge_list(path):
        us.append(u)
        vs.append(v)
        ws.append(w)
    weights = np.asarray(ws, dtype=np.float64)
    if int_nodes:
        try:
            src = np.asarray(us, dtype=np.int64)
            dst = np.asarray(vs, dtype=np.int64)
        except ValueError:
            raise GraphError(
                f"{path}: non-integer node ids; pass int_nodes=False"
            ) from None
    else:
        src = np.asarray(us)
        dst = np.asarray(vs)
    return src, dst, weights


def read_undirected(path: PathLike, *, int_nodes: bool = True) -> UndirectedGraph:
    """Read an undirected graph from a SNAP-style edge list.

    Self-loop lines are skipped (SNAP dumps contain a few); duplicate
    edges collapse with accumulated weight.
    """
    graph = UndirectedGraph()
    for u, v, w in iter_edge_list(path):
        if int_nodes:
            u, v = int(u), int(v)
        if u == v:
            continue
        if graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, w)
    return graph


def read_directed(path: PathLike, *, int_nodes: bool = True) -> DirectedGraph:
    """Read a directed graph from a SNAP-style edge list."""
    graph = DirectedGraph()
    for u, v, w in iter_edge_list(path):
        if int_nodes:
            u, v = int(u), int(v)
        if u == v:
            continue
        if graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, w)
    return graph


def write_undirected(graph: UndirectedGraph, path: PathLike, *, header: str = "") -> None:
    """Write an undirected graph as an edge list (weights written when != 1)."""
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for u, v, w in graph.weighted_edges():
            if w == 1.0:
                handle.write(f"{u}\t{v}\n")
            else:
                handle.write(f"{u}\t{v}\t{w:g}\n")


def write_directed(graph: DirectedGraph, path: PathLike, *, header: str = "") -> None:
    """Write a directed graph as an edge list (weights written when != 1)."""
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for u, v, w in graph.weighted_edges():
            if w == 1.0:
                handle.write(f"{u}\t{v}\n")
            else:
                handle.write(f"{u}\t{v}\t{w:g}\n")
