"""Weighted undirected graphs.

The graph stores an adjacency map ``{node: {neighbor: weight}}``.  Nodes
can be any hashable objects.  Self-loops are rejected (the paper's
density definition counts edges between *pairs* of nodes) and parallel
edges collapse onto a single weighted edge.

Density follows Definition 1 of the paper: for a node set S,
``rho(S) = w(E(S)) / |S|`` where ``w(E(S))`` is the total weight of
edges with both endpoints in S (each undirected edge counted once).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional, Set, Tuple

from ..errors import EmptyGraphError, GraphError

Node = Hashable
Edge = Tuple[Node, Node]
WeightedEdge = Tuple[Node, Node, float]


class UndirectedGraph:
    """A weighted, simple, undirected graph.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` or ``(u, v, weight)`` tuples used
        to populate the graph.

    Examples
    --------
    >>> g = UndirectedGraph([(0, 1), (1, 2), (0, 2)])
    >>> g.num_nodes, g.num_edges
    (3, 3)
    >>> g.density()
    1.0
    """

    __slots__ = ("_adj", "_num_edges", "_total_weight", "_mutations")

    def __init__(self, edges: Optional[Iterable] = None) -> None:
        self._adj: Dict[Node, Dict[Node, float]] = {}
        self._num_edges: int = 0
        self._total_weight: float = 0.0
        # Monotone edit counter; snapshot caches (e.g. the stream
        # views' vectorized pass arrays) key on it for invalidation.
        self._mutations: int = 0
        if edges is not None:
            self.add_edges_from(edges)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add an isolated node (no-op if it already exists)."""
        if node not in self._adj:
            self._adj[node] = {}

    def add_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Add many nodes at once."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add the edge ``(u, v)``, creating endpoints as needed.

        Adding an edge that already exists *accumulates* its weight; this
        makes streaming a multigraph edge list equivalent to streaming
        the collapsed weighted graph.

        Raises
        ------
        GraphError
            If ``u == v`` (self-loop) or ``weight`` is not positive.
        """
        if u == v:
            raise GraphError(f"self-loops are not allowed (node {u!r})")
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight!r}")
        self.add_node(u)
        self.add_node(v)
        if v in self._adj[u]:
            self._adj[u][v] += weight
            self._adj[v][u] += weight
        else:
            self._adj[u][v] = weight
            self._adj[v][u] = weight
            self._num_edges += 1
        self._total_weight += weight
        self._mutations += 1

    def add_edges_from(self, edges: Iterable) -> None:
        """Add ``(u, v)`` or ``(u, v, weight)`` tuples."""
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                self.add_edge(u, v)
            elif len(edge) == 3:
                u, v, w = edge
                self.add_edge(u, v, w)
            else:
                raise GraphError(f"edges must be 2- or 3-tuples, got {edge!r}")

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges.

        Raises
        ------
        GraphError
            If the node is not present.
        """
        try:
            neighbors = self._adj.pop(node)
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None
        for neighbor, weight in neighbors.items():
            del self._adj[neighbor][node]
            self._num_edges -= 1
            self._total_weight -= weight
        self._mutations += 1

    def remove_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Remove many nodes (all must exist)."""
        for node in list(nodes):
            self.remove_node(node)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of distinct edges (parallel edges collapsed)."""
        return self._num_edges

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights (each edge counted once)."""
        return self._total_weight

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes."""
        return iter(self._adj)

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return True if the edge ``(u, v)`` exists."""
        return u in self._adj and v in self._adj[u]

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges, each reported once with ``u <= v`` ordering
        by first-seen insertion (exact tie order unspecified)."""
        seen: Set[Node] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def weighted_edges(self) -> Iterator[WeightedEdge]:
        """Iterate over ``(u, v, weight)`` triples, each edge once."""
        seen: Set[Node] = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if v not in seen:
                    yield (u, v, w)
            seen.add(u)

    def neighbors(self, node: Node) -> Iterator[Node]:
        """Iterate over the neighbors of ``node``."""
        try:
            return iter(self._adj[node])
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def degree(self, node: Node) -> int:
        """Number of distinct neighbors of ``node``."""
        try:
            return len(self._adj[node])
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def weighted_degree(self, node: Node) -> float:
        """Total weight of edges incident to ``node``."""
        try:
            return sum(self._adj[node].values())
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def edge_weight(self, u: Node, v: Node) -> float:
        """Weight of edge ``(u, v)``.

        Raises
        ------
        GraphError
            If the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
        return self._adj[u][v]

    def is_weighted(self) -> bool:
        """True if any edge weight differs from 1."""
        return any(w != 1.0 for _, _, w in self.weighted_edges())

    # ------------------------------------------------------------------
    # Density / induced subgraphs
    # ------------------------------------------------------------------
    def induced_edge_weight(self, nodes: Iterable[Node]) -> float:
        """Total weight of edges with both endpoints in ``nodes``."""
        node_set = set(nodes)
        total = 0.0
        # Iterate over the smaller side for speed.
        for u in node_set:
            nbrs = self._adj.get(u)
            if nbrs is None:
                raise GraphError(f"node {u!r} not in graph")
            for v, w in nbrs.items():
                if v in node_set:
                    total += w
        return total / 2.0

    def induced_edge_count(self, nodes: Iterable[Node]) -> int:
        """Number of edges with both endpoints in ``nodes``."""
        node_set = set(nodes)
        count = 0
        for u in node_set:
            nbrs = self._adj.get(u)
            if nbrs is None:
                raise GraphError(f"node {u!r} not in graph")
            for v in nbrs:
                if v in node_set:
                    count += 1
        return count // 2

    def density(self, nodes: Optional[Iterable[Node]] = None) -> float:
        """Density ``rho(S) = w(E(S)) / |S|`` (Definition 1).

        With ``nodes=None``, computes the density of the whole graph.
        The density of the empty set is defined to be 0.
        """
        if nodes is None:
            if not self._adj:
                return 0.0
            return self._total_weight / len(self._adj)
        node_set = set(nodes)
        if not node_set:
            return 0.0
        return self.induced_edge_weight(node_set) / len(node_set)

    def subgraph(self, nodes: Iterable[Node]) -> "UndirectedGraph":
        """Materialize the induced subgraph on ``nodes``."""
        node_set = set(nodes)
        sub = UndirectedGraph()
        for node in node_set:
            if node not in self._adj:
                raise GraphError(f"node {node!r} not in graph")
            sub.add_node(node)
        seen: Set[Node] = set()
        for u in node_set:
            for v, w in self._adj[u].items():
                if v in node_set and v not in seen:
                    sub.add_edge(u, v, w)
            seen.add(u)
        return sub

    def copy(self) -> "UndirectedGraph":
        """Deep copy of the graph."""
        clone = UndirectedGraph()
        clone._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        clone._total_weight = self._total_weight
        clone._mutations = 0
        return clone

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def degree_sequence(self) -> list:
        """Degrees in non-increasing order."""
        return sorted((len(nbrs) for nbrs in self._adj.values()), reverse=True)

    def average_degree(self) -> float:
        """Average (unweighted) degree; 0 for the empty graph."""
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    def require_nonempty(self) -> None:
        """Raise :class:`EmptyGraphError` unless the graph has an edge."""
        if self._num_edges == 0:
            raise EmptyGraphError("graph has no edges")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UndirectedGraph(num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges}, total_weight={self.total_weight:g})"
        )
