"""Read-only induced-subgraph views.

A view exposes the subgraph induced by a node subset without copying the
underlying adjacency structure.  The peeling algorithms conceptually
operate on a shrinking sequence of induced subgraphs; views let tests
and examples express that directly while the optimized implementations
keep their own degree arrays.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Set

from ..errors import GraphError
from .undirected import UndirectedGraph

Node = Hashable


class InducedSubgraphView:
    """Read-only view of ``graph`` restricted to ``nodes``.

    The view reflects later mutations of the *base graph* (it holds a
    reference, not a copy), but its node set is fixed at construction.

    Examples
    --------
    >>> g = UndirectedGraph([(0, 1), (1, 2), (2, 3)])
    >>> view = InducedSubgraphView(g, [0, 1, 2])
    >>> view.num_edges
    2
    """

    __slots__ = ("_graph", "_nodes")

    def __init__(self, graph: UndirectedGraph, nodes: Iterable[Node]) -> None:
        self._graph = graph
        self._nodes: Set[Node] = set(nodes)
        for node in self._nodes:
            if node not in graph:
                raise GraphError(f"node {node!r} not in base graph")

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the view."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of base-graph edges with both endpoints in the view."""
        return self._graph.induced_edge_count(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[Node]:
        """Iterate over view nodes."""
        return iter(self._nodes)

    def node_set(self) -> Set[Node]:
        """A copy of the view's node set."""
        return set(self._nodes)

    def degree(self, node: Node) -> int:
        """Degree of ``node`` inside the view (induced degree)."""
        if node not in self._nodes:
            raise GraphError(f"node {node!r} not in view")
        return sum(1 for v in self._graph.neighbors(node) if v in self._nodes)

    def weighted_degree(self, node: Node) -> float:
        """Weighted induced degree of ``node``."""
        if node not in self._nodes:
            raise GraphError(f"node {node!r} not in view")
        graph = self._graph
        return sum(
            graph.edge_weight(node, v)
            for v in graph.neighbors(node)
            if v in self._nodes
        )

    def edges(self):
        """Iterate over induced edges (each once)."""
        seen: Set[Node] = set()
        for u in self._nodes:
            for v in self._graph.neighbors(u):
                if v in self._nodes and v not in seen:
                    yield (u, v)
            seen.add(u)

    def density(self) -> float:
        """Density of the induced subgraph (Definition 1)."""
        if not self._nodes:
            return 0.0
        return self._graph.induced_edge_weight(self._nodes) / len(self._nodes)

    def restrict(self, nodes: Iterable[Node]) -> "InducedSubgraphView":
        """A further-restricted view (intersection of node sets)."""
        return InducedSubgraphView(self._graph, self._nodes & set(nodes))

    def materialize(self) -> UndirectedGraph:
        """Copy the view into a standalone :class:`UndirectedGraph`."""
        return self._graph.subgraph(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InducedSubgraphView(num_nodes={self.num_nodes})"
