"""Vectorized CSR kernel layer.

This package holds the execution engines behind the peeling
algorithms, arranged as a tier ladder:

``python``
    The interpreted reference loops in :mod:`repro.core` (not in this
    package; selecting it simply skips the kernels).
``numpy``
    Per-pass vectorized kernels (:mod:`repro.kernels.peel`) over CSR
    snapshots (:mod:`repro.kernels.csr`).
``bucketq``
    Incremental bucket-queue peeler (:mod:`repro.kernels.bucketq`):
    O(m + n) total work with no per-pass rescans, pure numpy.
``native``
    The bucket-queue algorithm compiled — numba ``@njit`` kernels when
    numba is importable, else a ctypes-loaded C library built with the
    system toolchain (:mod:`repro.kernels.native`).  ``numba`` is
    accepted as an engine alias that *requests* the numba backend
    specifically and warns when it degrades.

All tiers return identical node sets, traces, and pass counts;
``engine="auto"`` walks the ladder by input size (compiled > bucketq >
numpy > python).  NumPy is a hard dependency of the package, but every
import of this layer from the algorithm modules is guarded so a
stripped environment degrades to the pure-Python engine instead of
failing at import time.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional

from ..errors import ParameterError

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

if HAVE_NUMPY:
    from .csr import CSRDigraph, CSRGraph
    from .peel import (
        DirectedPeelOutcome,
        PeelOutcome,
        peel_atleast_k,
        peel_directed,
        peel_directed_sweep,
        peel_undirected,
    )

#: Engine names accepted by the ``engine=`` parameter of the core peels.
#: ``numba`` is an alias for ``native`` that insists on the numba
#: backend (falling back with a warning when it is not importable).
ENGINES = ("auto", "python", "numpy", "bucketq", "native", "numba")

#: The tiers an ``engine=`` argument can resolve to.
RESOLVED_TIERS = ("python", "numpy", "bucketq", "native")

#: ``engine="auto"`` switches to the vectorized kernels at this node
#: count even for graphs with non-integer labels (the O(n) label
#: factorization is then negligible next to the per-pass savings).
AUTO_SIZE_CUTOFF = 256

#: ``engine="auto"`` prefers the compiled tier from this node count
#: (below it, the per-call scratch setup outweighs the loop savings).
NATIVE_SIZE_CUTOFF = 2048

#: Without a compiled backend, ``auto`` switches from the numpy tier to
#: the pure-numpy bucket queue here — deep peels on graphs this big are
#: where the per-pass O(n) mask rescans start to dominate.
BUCKETQ_SIZE_CUTOFF = 32768


def _is_int_labeled(graph) -> bool:
    """True when every node label is a plain int64-range int (cheap CSR
    mapping; larger ints cannot live in the vectorized index arrays)."""
    from .csr import _all_int_labels

    return _all_int_labels(graph.nodes())


def native_backend() -> Optional[str]:
    """Name of the compiled backend (``"numba"``/``"c"``), or None.

    The first call probes (importing numba or compiling the C library);
    the result is memoized by :mod:`repro.kernels.native`.
    """
    if not HAVE_NUMPY:
        return None
    from . import native

    return native.available_backend()


def auto_tier(num_nodes: int) -> str:
    """The tier ``engine="auto"`` picks for an int-labeled input of
    ``num_nodes`` nodes (assuming numpy is importable)."""
    if not HAVE_NUMPY:
        return "python"
    if num_nodes >= NATIVE_SIZE_CUTOFF and native_backend() is not None:
        return "native"
    if num_nodes >= BUCKETQ_SIZE_CUTOFF:
        return "bucketq"
    return "numpy"


def tier_report(num_nodes: Optional[int] = None) -> Dict[str, object]:
    """Which kernel tiers are importable and what ``auto`` would pick.

    Used by ``repro-densest backends --verbose`` and the serve layer's
    ``/stats``.  ``num_nodes`` (optional) adds the ``auto`` resolution
    for that input size.
    """
    backend = native_backend()
    report: Dict[str, object] = {
        "python": True,
        "numpy": HAVE_NUMPY,
        "bucketq": HAVE_NUMPY,
        "native": backend is not None,
        "native_backend": backend,
        "auto_ladder": {
            "native_cutoff": NATIVE_SIZE_CUTOFF,
            "bucketq_cutoff": BUCKETQ_SIZE_CUTOFF,
            "numpy_label_cutoff": AUTO_SIZE_CUTOFF,
        },
    }
    if num_nodes is not None:
        report["auto_pick"] = auto_tier(int(num_nodes))
    return report


def peel_functions(tier: str):
    """The kernel module implementing ``tier`` (numpy/bucketq/native).

    The returned module exposes ``peel_undirected`` / ``peel_atleast_k``
    / ``peel_directed`` / ``peel_directed_sweep`` with identical
    signatures, so core dispatch is one attribute lookup away from any
    tier.
    """
    if tier == "numpy":
        from . import peel as mod
    elif tier == "bucketq":
        from . import bucketq as mod
    elif tier == "native":
        from . import native as mod
    else:
        raise ParameterError(f"no kernel module for tier {tier!r}")
    return mod


def resolve_engine(engine: str, graph=None) -> str:
    """Resolve an ``engine=`` argument to one of :data:`RESOLVED_TIERS`.

    ``"auto"`` picks a vectorized tier when numpy is importable and the
    graph is int-labeled, already a CSR snapshot, or at least
    :data:`AUTO_SIZE_CUTOFF` nodes — then walks the ladder by size
    (compiled ≥ :data:`NATIVE_SIZE_CUTOFF`, bucket queue ≥
    :data:`BUCKETQ_SIZE_CUTOFF`, numpy otherwise).  Small exotic-label
    graphs stay on the Python loops, where the per-pass constant is
    lower.

    ``"native"`` / ``"numba"`` degrade gracefully: when the compiled
    backend (or numba specifically) is unavailable they fall back to
    the bucket-queue tier with a :class:`RuntimeWarning` instead of
    raising — the answer is identical, only the speed differs.

    Raises
    ------
    ParameterError
        On an unknown engine name, or ``engine="numpy"``/``"bucketq"``
        without numpy.
    """
    if engine not in ENGINES:
        raise ParameterError(f"engine must be one of {ENGINES}, got {engine!r}")
    if engine == "python":
        return "python"
    if engine in ("numpy", "bucketq"):
        if not HAVE_NUMPY:
            raise ParameterError(
                f"engine={engine!r} requires numpy, which is not importable; "
                "use engine='python'"
            )
        return engine
    if engine in ("native", "numba"):
        if not HAVE_NUMPY:
            warnings.warn(
                f"engine={engine!r} requires numpy, which is not importable; "
                "falling back to the python engine",
                RuntimeWarning,
                stacklevel=2,
            )
            return "python"
        backend = native_backend()
        if backend is None:
            warnings.warn(
                f"engine={engine!r} requested but no compiled backend is "
                "available (numba not importable, no C toolchain); falling "
                "back to the bucketq tier",
                RuntimeWarning,
                stacklevel=2,
            )
            return "bucketq"
        if engine == "numba" and backend != "numba":
            warnings.warn(
                "engine='numba' requested but numba is not importable; "
                "using the compiled C backend instead",
                RuntimeWarning,
                stacklevel=2,
            )
        return "native"
    # engine == "auto"
    if not HAVE_NUMPY:
        return "python"
    if graph is None:
        return "numpy"
    if isinstance(graph, (CSRGraph, CSRDigraph)):
        return auto_tier(graph.num_nodes)
    if graph.num_nodes >= AUTO_SIZE_CUTOFF or _is_int_labeled(graph):
        return auto_tier(graph.num_nodes)
    return "python"


__all__ = [
    "AUTO_SIZE_CUTOFF",
    "BUCKETQ_SIZE_CUTOFF",
    "ENGINES",
    "HAVE_NUMPY",
    "NATIVE_SIZE_CUTOFF",
    "RESOLVED_TIERS",
    "auto_tier",
    "native_backend",
    "peel_functions",
    "resolve_engine",
    "tier_report",
]
if HAVE_NUMPY:
    __all__ += [
        "CSRDigraph",
        "CSRGraph",
        "DirectedPeelOutcome",
        "PeelOutcome",
        "peel_atleast_k",
        "peel_directed",
        "peel_directed_sweep",
        "peel_undirected",
    ]
