"""Vectorized CSR kernel layer.

This package holds the NumPy execution engine behind the peeling
algorithms: CSR graph snapshots (:mod:`repro.kernels.csr`) and the
per-pass vectorized kernels (:mod:`repro.kernels.peel`).  The engines
in :mod:`repro.core` route through here when ``engine="numpy"`` is
selected (or ``engine="auto"`` resolves to it); results are identical
to the pure-Python loops pass-for-pass.

NumPy is a hard dependency of the package, but every import of this
layer from the algorithm modules is guarded so a stripped environment
degrades to the pure-Python engine instead of failing at import time.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ParameterError

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

if HAVE_NUMPY:
    from .csr import CSRDigraph, CSRGraph
    from .peel import (
        DirectedPeelOutcome,
        PeelOutcome,
        peel_atleast_k,
        peel_directed,
        peel_directed_sweep,
        peel_undirected,
    )

#: Engine names accepted by the ``engine=`` parameter of the core peels.
ENGINES = ("auto", "python", "numpy")

#: ``engine="auto"`` switches to the vectorized kernels at this node
#: count even for graphs with non-integer labels (the O(n) label
#: factorization is then negligible next to the per-pass savings).
AUTO_SIZE_CUTOFF = 256


def _is_int_labeled(graph) -> bool:
    """True when every node label is a plain int64-range int (cheap CSR
    mapping; larger ints cannot live in the vectorized index arrays)."""
    from .csr import _all_int_labels

    return _all_int_labels(graph.nodes())


def resolve_engine(engine: str, graph=None) -> str:
    """Resolve an ``engine=`` argument to ``"python"`` or ``"numpy"``.

    ``"auto"`` picks the numpy engine when it is importable and the
    graph is int-labeled, already a CSR snapshot, or at least
    :data:`AUTO_SIZE_CUTOFF` nodes; small exotic-label graphs stay on
    the Python loops, where the per-pass constant is lower.

    Raises
    ------
    ParameterError
        On an unknown engine name, or ``engine="numpy"`` without numpy.
    """
    if engine not in ENGINES:
        raise ParameterError(f"engine must be one of {ENGINES}, got {engine!r}")
    if engine == "numpy":
        if not HAVE_NUMPY:
            raise ParameterError(
                "engine='numpy' requires numpy, which is not importable; "
                "use engine='python'"
            )
        return "numpy"
    if engine == "python":
        return "python"
    if not HAVE_NUMPY:
        return "python"
    if graph is None:
        return "numpy"
    if HAVE_NUMPY and isinstance(graph, (CSRGraph, CSRDigraph)):
        return "numpy"
    if graph.num_nodes >= AUTO_SIZE_CUTOFF:
        return "numpy"
    if _is_int_labeled(graph):
        return "numpy"
    return "python"


__all__ = [
    "AUTO_SIZE_CUTOFF",
    "ENGINES",
    "HAVE_NUMPY",
    "resolve_engine",
]
if HAVE_NUMPY:
    __all__ += [
        "CSRDigraph",
        "CSRGraph",
        "DirectedPeelOutcome",
        "PeelOutcome",
        "peel_atleast_k",
        "peel_directed",
        "peel_directed_sweep",
        "peel_undirected",
    ]
