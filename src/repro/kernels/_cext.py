"""Build-and-load glue for the C peeling kernels.

The compiled tier has two interchangeable backends; this module is the
one that needs nothing but a system C toolchain.  ``load()`` compiles
``peel_kernels.c`` with ``$CC``/``cc``/``gcc``/``clang`` into a
per-user cache directory (keyed by a hash of the source, so edits
invalidate stale builds) and returns a :class:`ctypes.CDLL` with the
three kernel entry points declared.  Any failure — no compiler, a
compile error, a load error — raises; :mod:`repro.kernels.native`
catches it and falls back to the pure-numpy bucket queue.

Environment knobs:

``REPRO_NATIVE_CACHE``
    Directory for the compiled shared library (default: a per-user
    directory under the system temp dir).
``CC``
    Compiler to use (default: first of ``cc``, ``gcc``, ``clang`` on
    PATH).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Optional

_SOURCE = Path(__file__).with_name("peel_kernels.c")

_CFLAGS = ["-O3", "-shared", "-fPIC", "-fwrapv"]

# The library is compiled into a per-user cache on the machine that
# runs it, so host-specific codegen is safe; some toolchains (older
# clang on arm, odd cross setups) reject the flag, in which case the
# build retries without it.
_ARCH_FLAGS = ["-march=native"]


class NativeBuildError(RuntimeError):
    """The C backend could not be built or loaded."""


def find_compiler() -> Optional[str]:
    """Path of a usable C compiler, or None."""
    cc = os.environ.get("CC")
    if cc:
        found = shutil.which(cc)
        if found:
            return found
    for candidate in ("cc", "gcc", "clang"):
        found = shutil.which(candidate)
        if found:
            return found
    return None


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_NATIVE_CACHE")
    if root:
        return Path(root)
    uid = os.getuid() if hasattr(os, "getuid") else "u"
    return Path(tempfile.gettempdir()) / f"repro-native-{uid}"


def _lib_suffix() -> str:
    if sys.platform == "darwin":
        return ".dylib"
    if sys.platform.startswith("win"):
        return ".dll"
    return ".so"


def build_library(cache_dir: Optional[Path] = None) -> Path:
    """Compile (or reuse) the shared library; returns its path."""
    if not _SOURCE.exists():  # pragma: no cover - broken install
        raise NativeBuildError(f"kernel source missing: {_SOURCE}")
    source = _SOURCE.read_bytes()
    digest = hashlib.sha256(source).hexdigest()[:16]
    cache = Path(cache_dir) if cache_dir is not None else _cache_dir()
    lib_path = cache / f"peel_kernels-{digest}{_lib_suffix()}"
    if lib_path.exists():
        return lib_path
    compiler = find_compiler()
    if compiler is None:
        raise NativeBuildError("no C compiler found (tried $CC, cc, gcc, clang)")
    cache.mkdir(parents=True, exist_ok=True)
    # Build to a unique temp name and rename atomically: concurrent
    # processes may race the first build, and a half-written .so must
    # never be dlopen()ed.
    fd, tmp_name = tempfile.mkstemp(
        dir=str(cache), prefix="build-", suffix=_lib_suffix()
    )
    os.close(fd)
    try:
        proc = None
        for extra in (_ARCH_FLAGS, []):
            cmd = [compiler, *_CFLAGS, *extra, "-o", tmp_name, str(_SOURCE), "-lm"]
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120, check=False
            )
            if proc.returncode == 0:
                break
        if proc is None or proc.returncode != 0:
            raise NativeBuildError(
                f"C kernel build failed ({' '.join(cmd)}):\n{proc.stderr}"
            )
        os.replace(tmp_name, lib_path)
    except NativeBuildError:
        raise
    except Exception as exc:  # pragma: no cover - toolchain breakage
        raise NativeBuildError(f"C kernel build failed: {exc}") from exc
    finally:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
    return lib_path


_P = ctypes.c_void_p
_I64 = ctypes.c_int64
_I32 = ctypes.c_int32
_F64 = ctypes.c_double
_PI64 = ctypes.POINTER(ctypes.c_int64)
_PF64 = ctypes.POINTER(ctypes.c_double)


def _declare(lib: ctypes.CDLL) -> None:
    lib.repro_peel_undirected.restype = ctypes.c_int
    lib.repro_peel_undirected.argtypes = [
        _P, _P, _P,                    # indptr, indices, weights
        _I64, _F64, _F64, _F64,        # n, total_weight, factor, eps_slack
        _I64, _I64,                    # max_passes, nb
        _P, _P, _P,                    # deg, alive, best_alive
        _P, _P, _P, _P, _P,            # bucket_of, nxt, prv, head, frontier
        _P, _I64,                      # trace, trace_cap
        _PF64, _PI64, _PI64,           # best_density, best_pass, passes
    ]
    lib.repro_peel_atleast_k.restype = ctypes.c_int
    lib.repro_peel_atleast_k.argtypes = [
        _P, _P, _P,                    # indptr, indices, weights
        _I64, _F64, _F64, _F64, _F64,  # n, total_weight, factor, frac, slack
        _I64, _I32, _I64,              # k, stop_below_k, nb
        _P, _P, _P,                    # deg, alive, best_alive
        _P, _P, _P, _P, _P,            # bucket_of, nxt, prv, head, frontier
        _P, _I64,                      # trace, trace_cap
        _PF64, _PI64, _PI64,
    ]
    lib.repro_peel_directed.restype = ctypes.c_int
    lib.repro_peel_directed.argtypes = [
        _P, _P, _P, _P, _P, _P,        # out/in CSR triples
        _I64, _F64, _F64, _F64, _F64,  # n, W, ratio, 1+eps, slack
        _I32, _I64,                    # use_max_degree_rule, nb
        _P, _P,                        # out_to_t, in_from_s
        _P, _P, _P, _P,                # in_s, in_t, best_s, best_t
        _P, _P, _P, _P,                # S bucket_of, nxt, prv, head
        _P, _P, _P, _P,                # T bucket_of, nxt, prv, head
        _P, _P, _I64,                  # frontier, trace, trace_cap
        _PF64, _PI64, _PI64,
    ]


def load(cache_dir: Optional[Path] = None) -> ctypes.CDLL:
    """Compile if needed, load, and declare the kernel library."""
    lib_path = build_library(cache_dir)
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError as exc:  # pragma: no cover - corrupt cache
        raise NativeBuildError(f"cannot load {lib_path}: {exc}") from exc
    _declare(lib)
    return lib
