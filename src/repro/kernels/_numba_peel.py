"""Numba ``@njit`` mirrors of the C kernels in ``peel_kernels.c``.

Importing this module requires numba; :mod:`repro.kernels.native`
guards the import and falls back to the C backend (or the pure-numpy
bucket queue) when it is missing.  The three kernels take the exact
argument tuple the C entry points take — caller-allocated degree /
alive / bucket-link / frontier / trace arrays — and return
``(status, best_density, best_pass, passes)`` with ``status == 1``
meaning the trace buffer overflowed (caller grows it and reruns).

The loop structure is a line-for-line port of the C: frontier from
pass-start degrees, ascending-id sequential kills, lazy downward
bucket moves.  Keeping both backends shape-identical means the parity
tests exercise one algorithm, not two.
"""

from __future__ import annotations

import numpy as np
from numba import njit  # raises ImportError when numba is absent

TRACE_OVERFLOW = 1


@njit(cache=True, inline="always")
def _bucket_index(value, width, nb):
    b = np.int64(value / width)  # truncation, like the C cast
    if b < 0:
        b = 0
    elif b > nb - 1:
        b = nb - 1
    return b


@njit(cache=True, inline="always")
def _list_unlink(i, b, head, nxt, prv):
    p = prv[i]
    x = nxt[i]
    if p >= 0:
        nxt[p] = x
    else:
        head[b] = x
    if x >= 0:
        prv[x] = p


@njit(cache=True, inline="always")
def _list_push(i, b, head, nxt, prv, bucket_of):
    prv[i] = -1
    nxt[i] = head[b]
    if head[b] >= 0:
        prv[head[b]] = i
    head[b] = i
    bucket_of[i] = b


@njit(cache=True)
def _build_buckets(deg, n, nb, head, nxt, prv, bucket_of):
    vmax = 0.0
    for i in range(n):
        if deg[i] > vmax:
            vmax = deg[i]
    width = vmax / nb if vmax > 0.0 else 1.0
    for b in range(nb):
        head[b] = -1
    for i in range(n - 1, -1, -1):
        _list_push(
            np.int32(i), np.int32(_bucket_index(deg[i], width, nb)),
            head, nxt, prv, bucket_of,
        )
    return width


@njit(cache=True)
def peel_undirected(
    indptr, indices, weights, n, total_weight, factor, eps_slack,
    max_passes, nb, deg, alive, best_alive, bucket_of, nxt, prv, head,
    frontier, trace,
):
    trace_cap = trace.shape[0]
    width = _build_buckets(deg, n, nb, head, nxt, prv, bucket_of)
    remaining = n
    W = total_weight
    best_density = W / n if n > 0 else 0.0
    best_pass = np.int64(0)
    passes = np.int64(0)

    while remaining > 0:
        if max_passes >= 0 and passes >= max_passes:
            break
        if passes >= trace_cap:
            return TRACE_OVERFLOW, best_density, best_pass, passes
        passes += 1
        density = W / remaining
        threshold = factor * density
        cutoff = threshold + eps_slack
        bstar = _bucket_index(cutoff, width, nb)
        nodes_before = remaining
        weight_before = W

        r = 0
        for b in range(bstar + 1):
            i = head[b]
            while i >= 0:
                nxt_i = nxt[i]
                if deg[i] <= cutoff:
                    _list_unlink(i, np.int32(b), head, nxt, prv)
                    bucket_of[i] = -1
                    frontier[r] = i
                    r += 1
                i = nxt_i
        front = frontier[:r]
        front.sort()  # ascending: the python kill order

        for t in range(r):
            i = front[t]
            alive[i] = 0
            for p in range(indptr[i], indptr[i + 1]):
                j = indices[p]
                if alive[j]:
                    w = weights[p]
                    W -= w
                    deg[j] -= w
                    bj = bucket_of[j]
                    if bj >= 0:
                        tb = _bucket_index(deg[j], width, nb)
                        if tb < bj:
                            _list_unlink(j, bj, head, nxt, prv)
                            _list_push(j, np.int32(tb), head, nxt, prv, bucket_of)
        remaining -= r
        density_after = W / remaining if remaining > 0 else 0.0
        row = passes - 1
        trace[row, 0] = nodes_before
        trace[row, 1] = weight_before
        trace[row, 2] = density
        trace[row, 3] = threshold
        trace[row, 4] = r
        trace[row, 5] = remaining
        trace[row, 6] = W
        trace[row, 7] = density_after
        if density_after > best_density:
            best_density = density_after
            best_pass = passes
            best_alive[:] = alive
    return 0, best_density, best_pass, passes


@njit(cache=True)
def peel_atleast_k(
    indptr, indices, weights, n, total_weight, factor, batch_fraction,
    eps_slack, k, stop_below_k, nb, deg, alive, best_alive, bucket_of,
    nxt, prv, head, frontier, trace,
):
    trace_cap = trace.shape[0]
    width = _build_buckets(deg, n, nb, head, nxt, prv, bucket_of)
    remaining = n
    W = total_weight
    best_density = W / n if n > 0 else 0.0
    best_pass = np.int64(0)
    passes = np.int64(0)

    while remaining > 0:
        if stop_below_k and remaining < k:
            break
        if passes >= trace_cap:
            return TRACE_OVERFLOW, best_density, best_pass, passes
        passes += 1
        density = W / remaining
        threshold = factor * density
        cutoff = threshold + eps_slack
        bstar = _bucket_index(cutoff, width, nb)
        nodes_before = remaining
        weight_before = W

        c = 0
        for b in range(bstar + 1):
            i = head[b]
            while i >= 0:
                if deg[i] <= cutoff:
                    frontier[c] = i
                    c += 1
                i = nxt[i]
        cand = frontier[:c]
        cand.sort()  # ascending ids first ...
        # ... then a stable sort on degree reproduces the reference's
        # (degree, index) tie-break exactly.
        order = np.argsort(deg[cand], kind="mergesort")
        batch = np.int64(np.floor(batch_fraction * remaining))
        if batch < 1:
            batch = 1
        if batch > c:
            batch = c
        picked = cand[order[:batch]].copy()

        for t in range(batch):
            i = picked[t]
            _list_unlink(i, bucket_of[i], head, nxt, prv)
            bucket_of[i] = -1
        for t in range(batch):
            i = picked[t]
            alive[i] = 0
            for p in range(indptr[i], indptr[i + 1]):
                j = indices[p]
                if alive[j]:
                    w = weights[p]
                    W -= w
                    deg[j] -= w
                    bj = bucket_of[j]
                    if bj >= 0:
                        tb = _bucket_index(deg[j], width, nb)
                        if tb < bj:
                            _list_unlink(j, bj, head, nxt, prv)
                            _list_push(j, np.int32(tb), head, nxt, prv, bucket_of)
        remaining -= batch
        density_after = W / remaining if remaining > 0 else 0.0
        row = passes - 1
        trace[row, 0] = nodes_before
        trace[row, 1] = weight_before
        trace[row, 2] = density
        trace[row, 3] = threshold
        trace[row, 4] = batch
        trace[row, 5] = remaining
        trace[row, 6] = W
        trace[row, 7] = density_after
        if remaining >= k and density_after > best_density:
            best_density = density_after
            best_pass = passes
            best_alive[:] = alive
    return 0, best_density, best_pass, passes


@njit(cache=True)
def peel_directed(
    out_indptr, out_indices, out_weights, in_indptr, in_indices, in_weights,
    n, total_weight, ratio, one_plus_eps, eps_slack, use_max_degree_rule, nb,
    out_to_t, in_from_s, in_s, in_t, best_s, best_t,
    s_bucket_of, s_nxt, s_prv, s_head, t_bucket_of, t_nxt, t_prv, t_head,
    frontier, trace,
):
    trace_cap = trace.shape[0]
    s_width = _build_buckets(out_to_t, n, nb, s_head, s_nxt, s_prv, s_bucket_of)
    t_width = _build_buckets(in_from_s, n, nb, t_head, t_nxt, t_prv, t_bucket_of)
    s_size = n
    t_size = n
    W = total_weight
    best_density = W / np.sqrt(np.float64(n) * np.float64(n)) if n > 0 else 0.0
    best_pass = np.int64(0)
    passes = np.int64(0)

    while s_size > 0 and t_size > 0:
        if passes >= trace_cap:
            return TRACE_OVERFLOW, best_density, best_pass, passes
        passes += 1
        density = W / np.sqrt(np.float64(s_size) * np.float64(t_size))
        if use_max_degree_rule:
            max_out = 0.0
            max_in = 0.0
            for i in range(n):
                if in_s[i] and out_to_t[i] > max_out:
                    max_out = out_to_t[i]
                if in_t[i] and in_from_s[i] > max_in:
                    max_in = in_from_s[i]
            peel_s = True if max_out <= 0.0 else (max_in / max_out >= ratio)
        else:
            peel_s = np.float64(s_size) / np.float64(t_size) >= ratio

        s_before = s_size
        t_before = t_size
        weight_before = W
        r = 0
        if peel_s:
            threshold = one_plus_eps * W / s_size
            cutoff = threshold + eps_slack
            bstar = _bucket_index(cutoff, s_width, nb)
            for b in range(bstar + 1):
                i = s_head[b]
                while i >= 0:
                    nxt_i = s_nxt[i]
                    if out_to_t[i] <= cutoff:
                        _list_unlink(i, np.int32(b), s_head, s_nxt, s_prv)
                        s_bucket_of[i] = -1
                        frontier[r] = i
                        r += 1
                    i = nxt_i
            front = frontier[:r]
            front.sort()
            for t in range(r):
                i = front[t]
                in_s[i] = 0
                for p in range(out_indptr[i], out_indptr[i + 1]):
                    j = out_indices[p]
                    if in_t[j]:
                        w = out_weights[p]
                        W -= w
                        in_from_s[j] -= w
                        bj = t_bucket_of[j]
                        if bj >= 0:
                            tb = _bucket_index(in_from_s[j], t_width, nb)
                            if tb < bj:
                                _list_unlink(j, bj, t_head, t_nxt, t_prv)
                                _list_push(
                                    j, np.int32(tb), t_head, t_nxt, t_prv,
                                    t_bucket_of,
                                )
            s_size -= r
        else:
            threshold = one_plus_eps * W / t_size
            cutoff = threshold + eps_slack
            bstar = _bucket_index(cutoff, t_width, nb)
            for b in range(bstar + 1):
                j = t_head[b]
                while j >= 0:
                    nxt_j = t_nxt[j]
                    if in_from_s[j] <= cutoff:
                        _list_unlink(j, np.int32(b), t_head, t_nxt, t_prv)
                        t_bucket_of[j] = -1
                        frontier[r] = j
                        r += 1
                    j = nxt_j
            front = frontier[:r]
            front.sort()
            for t in range(r):
                j = front[t]
                in_t[j] = 0
                for p in range(in_indptr[j], in_indptr[j + 1]):
                    i = in_indices[p]
                    if in_s[i]:
                        w = in_weights[p]
                        W -= w
                        out_to_t[i] -= w
                        bi = s_bucket_of[i]
                        if bi >= 0:
                            tb = _bucket_index(out_to_t[i], s_width, nb)
                            if tb < bi:
                                _list_unlink(i, bi, s_head, s_nxt, s_prv)
                                _list_push(
                                    i, np.int32(tb), s_head, s_nxt, s_prv,
                                    s_bucket_of,
                                )
            t_size -= r

        if s_size > 0 and t_size > 0:
            density_after = W / np.sqrt(np.float64(s_size) * np.float64(t_size))
        else:
            density_after = 0.0
        row = passes - 1
        trace[row, 0] = 0.0 if peel_s else 1.0
        trace[row, 1] = s_before
        trace[row, 2] = t_before
        trace[row, 3] = weight_before
        trace[row, 4] = density
        trace[row, 5] = threshold
        trace[row, 6] = r
        trace[row, 7] = s_size
        trace[row, 8] = t_size
        trace[row, 9] = W
        trace[row, 10] = density_after
        if density_after > best_density:
            best_density = density_after
            best_pass = passes
            best_s[:] = in_s
            best_t[:] = in_t
    return 0, best_density, best_pass, passes
