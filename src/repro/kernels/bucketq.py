"""Incremental bucket-queue peeling kernels (the ``bucketq`` tier).

The numpy kernels in :mod:`repro.kernels.peel` pay a full O(n) mask
scan per pass to find the removal frontier, so a deep peel costs
O(n·passes) on top of the O(m) edge work.  This module replaces the
per-pass rescan with a monotone *bucket queue* over the degree values:

* Degrees are hashed into ``NUM_BUCKETS`` equal-width buckets keyed by
  ``trunc(degree / width)`` (width fixed from the initial maximum
  degree).  Peeling only ever *decreases* degrees, so a node's bucket
  index is non-increasing — moves are appended lazily to the target
  bucket and stale entries left behind in higher buckets are filtered
  by a current-bucket check on drain (classic lazy deletion).
* A pass with cutoff ``c`` drains exactly the buckets ``<=
  trunc(c / width)``: truncation is monotone, so every node with
  ``degree <= c`` provably lives in a drained bucket.  Drained
  survivors (boundary-bucket nodes above the cutoff) are re-appended.
* Total appends are O(n + moves) and each edge moves its endpoint at
  most O(1) amortized times per weight decrement, so the queue work is
  O(m + n) across the whole peel — no per-pass O(n) rescans.

Parity contract (the reason this file re-uses the exact removal
arithmetic of :mod:`repro.kernels.peel`): the removal frontier is
computed from the degrees *at pass start*, the removed index arrays
are produced in the same order as ``np.flatnonzero`` / the reference
stable sort, and the degree decrements go through the same
``np.bincount`` calls — so the bucketq tier's node sets, traces, pass
counts, *and float fields* are bit-identical to the numpy engine, not
merely tolerance-close.  ``tests/test_kernels_parity.py`` and
``tests/test_kernels_tiers.py`` enforce this.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._tolerances import THRESHOLD_EPS
from ..core.trace import DirectedPassRecord, PassRecord
from .csr import CSRDigraph, CSRGraph
from .peel import DirectedPeelOutcome, PeelOutcome, _gather_rows

#: Bucket count of the degree queue.  More buckets mean tighter drains
#: (fewer above-cutoff nodes touched in the boundary bucket) at the
#: cost of a longer per-pass bucket walk; 2048 keeps both negligible.
NUM_BUCKETS = 2048

_EMPTY = np.empty(0, dtype=np.int64)


class BucketQueue:
    """Monotone lazy-deletion bucket queue over float keys.

    Keys may only decrease after insertion (the peeling invariant).
    Entries are id arrays chunked per bucket; a node's authoritative
    bucket is ``bucket_of[node]`` (−1 once removed), and any chunk
    entry whose bucket disagrees is stale and dropped on drain.
    """

    __slots__ = ("width", "num_buckets", "bucket_of", "_chunks")

    def __init__(self, values: np.ndarray, num_buckets: int = NUM_BUCKETS) -> None:
        n = int(values.size)
        vmax = float(values.max()) if n else 0.0
        self.num_buckets = int(num_buckets)
        self.width = vmax / self.num_buckets if vmax > 0.0 else 1.0
        self.bucket_of = self._bucket_index(values)
        self._chunks: List[List[np.ndarray]] = [[] for _ in range(self.num_buckets)]
        if n:
            order = np.argsort(self.bucket_of, kind="stable")
            self._append_grouped(order.astype(np.int64), self.bucket_of[order])

    def _bucket_index(self, values: np.ndarray) -> np.ndarray:
        # Truncation (not floor): degrees are >= 0 up to fp noise, and
        # for tiny negatives truncation rounds *up* to bucket 0, which
        # keeps the drain guarantee (cutoffs are always > 0).
        b = (np.asarray(values, dtype=np.float64) / self.width).astype(np.int64)
        np.clip(b, 0, self.num_buckets - 1, out=b)
        return b

    def _append_grouped(self, ids: np.ndarray, buckets: np.ndarray) -> None:
        """Append ``ids`` to their buckets; ``buckets`` must be sorted."""
        if not ids.size:
            return
        starts = np.flatnonzero(np.r_[True, buckets[1:] != buckets[:-1]])
        bounds = np.append(starts, ids.size)
        for i, start in enumerate(starts.tolist()):
            self._chunks[int(buckets[start])].append(ids[start : bounds[i + 1]])

    def drain_upto(self, cutoff: float) -> np.ndarray:
        """Pop every current entry in buckets ``<= trunc(cutoff/width)``.

        Returns the (unsorted, duplicate-free) ids; every queued node
        with key ``<= cutoff`` is guaranteed to be among them.  The
        caller decides removals and must :meth:`reinsert` survivors.
        """
        if cutoff < 0.0:
            return _EMPTY
        bstar = min(int(cutoff / self.width), self.num_buckets - 1)
        bucket_of = self.bucket_of
        popped: List[np.ndarray] = []
        for b in range(bstar + 1):
            chunks = self._chunks[b]
            if not chunks:
                continue
            self._chunks[b] = []
            for chunk in chunks:
                valid = chunk[bucket_of[chunk] == b]
                if valid.size:
                    popped.append(valid)
        if not popped:
            return _EMPTY
        return popped[0] if len(popped) == 1 else np.concatenate(popped)

    def reinsert(self, ids: np.ndarray) -> None:
        """Put drained-but-kept ids back into their current buckets."""
        if not ids.size:
            return
        buckets = self.bucket_of[ids]
        order = np.argsort(buckets, kind="stable")
        self._append_grouped(ids[order], buckets[order])

    def remove(self, ids: np.ndarray) -> None:
        """Mark ids as gone (their chunk entries become stale)."""
        if ids.size:
            self.bucket_of[ids] = -1

    def decrease(self, ids: np.ndarray, values: np.ndarray) -> None:
        """Note decreased keys for ``ids``; moves lazily to lower buckets.

        Ids already removed from the queue are ignored.
        """
        if not ids.size:
            return
        current = self.bucket_of[ids]
        target = self._bucket_index(values)
        moved = (current >= 0) & (target < current)
        if not moved.any():
            return
        ids = ids[moved]
        target = target[moved]
        self.bucket_of[ids] = target
        order = np.argsort(target, kind="stable")
        self._append_grouped(ids[order], target[order])


def _remove_frontier_undirected(
    csr: CSRGraph,
    removed: np.ndarray,
    remove_mask: np.ndarray,
    alive: np.ndarray,
    degrees: np.ndarray,
) -> Tuple[float, np.ndarray]:
    """Kill ``removed``; return (weight that left S, touched survivors).

    Same gather/bincount arithmetic as
    :func:`repro.kernels.peel._remove_frontier_undirected` — the float
    results are bit-identical — plus the sorted unique external
    neighbors, which is what the bucket queue needs to relocate.
    """
    pos = _gather_rows(csr.indptr, removed)
    nbr = csr.indices[pos]
    wts = csr.weights[pos]
    live = alive[nbr]  # neighbors alive before this pass
    nbr = nbr[live]
    wts = wts[live]
    internal = remove_mask[nbr]
    removed_weight = float(wts.sum()) - 0.5 * float(wts[internal].sum())
    external = ~internal
    touched = _EMPTY
    if external.any():
        ext = nbr[external]
        degrees -= np.bincount(ext, weights=wts[external], minlength=alive.size)
        touched = np.unique(ext)
    alive[removed] = False
    return removed_weight, touched


def peel_undirected(
    csr: CSRGraph,
    epsilon: float,
    *,
    max_passes: Optional[int] = None,
) -> PeelOutcome:
    """Algorithm 1 on the bucket queue (bit-identical to the numpy tier)."""
    n = csr.num_nodes
    alive = np.ones(n, dtype=bool)
    degrees = csr.degrees.astype(np.float64, copy=True)
    remaining_nodes = n
    remaining_weight = csr.total_weight

    best_indices = np.arange(n, dtype=np.int64)
    best_density = remaining_weight / remaining_nodes
    best_pass = 0

    trace: List[PassRecord] = []
    pass_index = 0
    factor = 2.0 * (1.0 + epsilon)
    queue = BucketQueue(degrees)
    remove_mask = np.zeros(n, dtype=bool)

    while remaining_nodes > 0:
        if max_passes is not None and pass_index >= max_passes:
            break
        pass_index += 1
        density = remaining_weight / remaining_nodes
        threshold = factor * density
        cutoff = threshold + THRESHOLD_EPS
        drained = queue.drain_upto(cutoff)
        below = degrees[drained] <= cutoff
        # Ascending order = the numpy engine's np.flatnonzero order, so
        # the shared removal arithmetic sees the same input sequence.
        removed = np.sort(drained[below])
        queue.reinsert(drained[~below])
        nodes_before = remaining_nodes
        weight_before = remaining_weight
        if removed.size:
            queue.remove(removed)
            remove_mask[removed] = True
            removed_weight, touched = _remove_frontier_undirected(
                csr, removed, remove_mask, alive, degrees
            )
            remove_mask[removed] = False
            queue.decrease(touched, degrees[touched])
            remaining_weight -= removed_weight
            remaining_nodes -= int(removed.size)
        density_after = (
            remaining_weight / remaining_nodes if remaining_nodes > 0 else 0.0
        )
        trace.append(
            PassRecord(
                pass_index=pass_index,
                nodes_before=nodes_before,
                edges_before=weight_before,
                density_before=density,
                threshold=threshold,
                removed=int(removed.size),
                nodes_after=remaining_nodes,
                edges_after=remaining_weight,
                density_after=density_after,
            )
        )
        if density_after > best_density:
            best_density = density_after
            best_indices = np.flatnonzero(alive)
            best_pass = pass_index

    return PeelOutcome(
        best_indices=best_indices,
        best_density=best_density,
        passes=pass_index,
        best_pass=best_pass,
        trace=tuple(trace),
    )


def peel_atleast_k(
    csr: CSRGraph,
    k: int,
    epsilon: float,
    *,
    stop_below_k: bool = True,
) -> PeelOutcome:
    """Algorithm 2 on the bucket queue (bit-identical to the numpy tier)."""
    n = csr.num_nodes
    alive = np.ones(n, dtype=bool)
    degrees = csr.degrees.astype(np.float64, copy=True)
    remaining_nodes = n
    remaining_weight = csr.total_weight

    best_indices = np.arange(n, dtype=np.int64)
    best_density = remaining_weight / remaining_nodes
    best_pass = 0

    trace: List[PassRecord] = []
    pass_index = 0
    factor = 2.0 * (1.0 + epsilon)
    batch_fraction = epsilon / (1.0 + epsilon)
    queue = BucketQueue(degrees)
    remove_mask = np.zeros(n, dtype=bool)

    while remaining_nodes > 0:
        if stop_below_k and remaining_nodes < k:
            break
        pass_index += 1
        density = remaining_weight / remaining_nodes
        threshold = factor * density
        cutoff = threshold + THRESHOLD_EPS
        drained = queue.drain_upto(cutoff)
        below = degrees[drained] <= cutoff
        # The reference enumerates candidates in ascending index order
        # and stable-sorts by degree; sorting the drained set first
        # reproduces that tie-break exactly.
        candidates = np.sort(drained[below])
        queue.reinsert(drained[~below])
        batch_size = max(1, math.floor(batch_fraction * remaining_nodes))
        batch_size = min(batch_size, int(candidates.size))
        order = np.argsort(degrees[candidates], kind="stable")
        removed = candidates[order[:batch_size]]
        queue.reinsert(candidates[order[batch_size:]])

        nodes_before = remaining_nodes
        weight_before = remaining_weight
        if removed.size:
            queue.remove(removed)
            remove_mask[removed] = True
            removed_weight, touched = _remove_frontier_undirected(
                csr, removed, remove_mask, alive, degrees
            )
            remove_mask[removed] = False
            queue.decrease(touched, degrees[touched])
            remaining_weight -= removed_weight
            remaining_nodes -= int(removed.size)
        density_after = (
            remaining_weight / remaining_nodes if remaining_nodes > 0 else 0.0
        )
        trace.append(
            PassRecord(
                pass_index=pass_index,
                nodes_before=nodes_before,
                edges_before=weight_before,
                density_before=density,
                threshold=threshold,
                removed=int(removed.size),
                nodes_after=remaining_nodes,
                edges_after=remaining_weight,
                density_after=density_after,
            )
        )
        if remaining_nodes >= k and density_after > best_density:
            best_density = density_after
            best_indices = np.flatnonzero(alive)
            best_pass = pass_index

    return PeelOutcome(
        best_indices=best_indices,
        best_density=best_density,
        passes=pass_index,
        best_pass=best_pass,
        trace=tuple(trace),
    )


def _max_degree_rule_arrays(
    out_to_t: np.ndarray,
    in_from_s: np.ndarray,
    in_s: np.ndarray,
    in_t: np.ndarray,
    ratio: float,
) -> bool:
    """The §4.3 ablation rule (O(n) per pass; same as the numpy tier)."""
    max_out = float(out_to_t[in_s].max()) if in_s.any() else 0.0
    max_in = float(in_from_s[in_t].max()) if in_t.any() else 0.0
    if max_out <= 0.0:
        return True
    return max_in / max_out >= ratio


def peel_directed(
    csr: CSRDigraph,
    ratio: float,
    epsilon: float,
    *,
    side_rule: str = "size_ratio",
) -> DirectedPeelOutcome:
    """Algorithm 3 on two bucket queues (bit-identical to the numpy tier).

    The S side queues w(E(i,T)) and the T side queues w(E(S,j)); a peel
    on one side cascades key decreases into the *other* side's queue.
    """
    n = csr.num_nodes
    in_s = np.ones(n, dtype=bool)
    in_t = np.ones(n, dtype=bool)
    s_size = n
    t_size = n
    out_to_t = csr.out_degrees.astype(np.float64, copy=True)
    in_from_s = csr.in_degrees.astype(np.float64, copy=True)
    edge_weight = csr.total_weight

    best_s = np.arange(n, dtype=np.int64)
    best_t = np.arange(n, dtype=np.int64)
    best_density = edge_weight / math.sqrt(n * n)
    best_pass = 0

    trace: List[DirectedPassRecord] = []
    pass_index = 0
    one_plus_eps = 1.0 + epsilon
    s_queue = BucketQueue(out_to_t)
    t_queue = BucketQueue(in_from_s)

    while s_size > 0 and t_size > 0:
        pass_index += 1
        density = edge_weight / math.sqrt(s_size * t_size)
        if side_rule == "size_ratio":
            peel_s = s_size / t_size >= ratio
        else:
            peel_s = _max_degree_rule_arrays(out_to_t, in_from_s, in_s, in_t, ratio)

        s_before, t_before = s_size, t_size
        weight_before = edge_weight
        if peel_s:
            threshold = one_plus_eps * edge_weight / s_size
            cutoff = threshold + THRESHOLD_EPS
            drained = s_queue.drain_upto(cutoff)
            below = out_to_t[drained] <= cutoff
            removed = np.sort(drained[below])
            s_queue.reinsert(drained[~below])
            s_queue.remove(removed)
            pos = _gather_rows(csr.out_indptr, removed)
            nbr = csr.out_indices[pos]
            wts = csr.out_weights[pos]
            live = in_t[nbr]
            nbr = nbr[live]
            wts = wts[live]
            edge_weight -= float(wts.sum())
            if nbr.size:
                in_from_s -= np.bincount(nbr, weights=wts, minlength=n)
                touched = np.unique(nbr)
                t_queue.decrease(touched, in_from_s[touched])
            in_s[removed] = False
            s_size -= int(removed.size)
            side = "S"
        else:
            threshold = one_plus_eps * edge_weight / t_size
            cutoff = threshold + THRESHOLD_EPS
            drained = t_queue.drain_upto(cutoff)
            below = in_from_s[drained] <= cutoff
            removed = np.sort(drained[below])
            t_queue.reinsert(drained[~below])
            t_queue.remove(removed)
            pos = _gather_rows(csr.in_indptr, removed)
            nbr = csr.in_indices[pos]
            wts = csr.in_weights[pos]
            live = in_s[nbr]
            nbr = nbr[live]
            wts = wts[live]
            edge_weight -= float(wts.sum())
            if nbr.size:
                out_to_t -= np.bincount(nbr, weights=wts, minlength=n)
                touched = np.unique(nbr)
                s_queue.decrease(touched, out_to_t[touched])
            in_t[removed] = False
            t_size -= int(removed.size)
            side = "T"

        if s_size > 0 and t_size > 0:
            density_after = edge_weight / math.sqrt(s_size * t_size)
        else:
            density_after = 0.0
        trace.append(
            DirectedPassRecord(
                pass_index=pass_index,
                side=side,
                s_before=s_before,
                t_before=t_before,
                edges_before=weight_before,
                density_before=density,
                threshold=threshold,
                removed=int(removed.size),
                s_after=s_size,
                t_after=t_size,
                edges_after=edge_weight,
                density_after=density_after,
            )
        )
        if density_after > best_density:
            best_density = density_after
            best_s = np.flatnonzero(in_s)
            best_t = np.flatnonzero(in_t)
            best_pass = pass_index

    return DirectedPeelOutcome(
        best_s=best_s,
        best_t=best_t,
        best_density=best_density,
        passes=pass_index,
        best_pass=best_pass,
        trace=tuple(trace),
    )


def peel_directed_sweep(
    csr: CSRDigraph,
    ratios: Sequence[float],
    epsilon: float,
    *,
    side_rule: str = "size_ratio",
) -> List[DirectedPeelOutcome]:
    """Run :func:`peel_directed` for every c in ``ratios`` (shared CSR)."""
    return [
        peel_directed(csr, ratio, epsilon, side_rule=side_rule) for ratio in ratios
    ]
