"""Compressed-sparse-row graph snapshots for the vectorized kernels.

The public graph classes are dict-of-dict structures convenient for
incremental construction; the NumPy peeling kernels instead want flat
``indptr``/``indices``/``weights`` arrays so a whole pass is a handful
of vector operations.  :class:`CSRGraph` (undirected, symmetric
adjacency) and :class:`CSRDigraph` (separate out- and in-CSR) are
immutable snapshots built once per run:

* ``from_undirected`` / ``from_directed`` — from the dict-of-dict
  classes (the common path inside :mod:`repro.core`);
* ``from_edge_stream`` — one pass over an
  :class:`~repro.streaming.stream.EdgeStream`;
* ``from_edge_arrays`` — directly from NumPy id/weight arrays,
  skipping the dict-of-dict detour entirely (pairs with
  :func:`repro.graph.io.read_edge_arrays`);
* ``from_shards`` — from a :class:`~repro.store.ShardedEdgeStore`,
  per-shard bincount + counting-sort fill passes, so nothing beyond
  the CSR output and one shard is ever resident.

Arrays use int32 ``indptr``/``indices`` and float64 ``weights``; node
labels of any hashable type are factorized to dense indices at build
time and mapped back with :meth:`to_labels`.
"""

from __future__ import annotations

from itertools import chain
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphError

Node = Hashable

#: Policies for repeated ``(u, v)`` pairs in ``from_edge_arrays``.
#: ``"sum"`` accumulates weights (the multigraph-collapse semantics of
#: ``add_edge``); ``"first"`` keeps the first occurrence (the semantics
#: of the SNAP readers in :mod:`repro.graph.io`, whose dumps list many
#: edges in both orientations).
DUPLICATE_POLICIES = ("sum", "first")


def _as_id_arrays(src, dst) -> Tuple[np.ndarray, np.ndarray]:
    src = np.asarray(src)
    dst = np.asarray(dst)
    if src.shape != dst.shape or src.ndim != 1:
        raise GraphError(
            f"src/dst must be 1-D arrays of equal length, got shapes "
            f"{src.shape} and {dst.shape}"
        )
    return src, dst


def _as_weight_array(weights, num_edges: int) -> np.ndarray:
    if weights is None:
        return np.ones(num_edges, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (num_edges,):
        raise GraphError(
            f"weights must match the edge arrays ({num_edges} entries), "
            f"got shape {weights.shape}"
        )
    if num_edges and not (weights > 0).all():
        raise GraphError("edge weights must be positive")
    return weights


def build_label_index(labels_arr: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Precompute the ``(order, sorted_labels)`` pair for vectorized
    label → dense-index translation (used with :func:`lookup_indices`)."""
    order = np.argsort(labels_arr, kind="stable")
    return order, labels_arr[order]


def lookup_indices(
    order: np.ndarray,
    sorted_labels: np.ndarray,
    ids: np.ndarray,
    missing=None,
):
    """Dense indices of ``ids`` under a :func:`build_label_index` pair.

    ``missing`` is a callable mapping the first unknown id to the
    exception to raise; pass None to skip the membership check when the
    ids are known members by construction.
    """
    if sorted_labels.size == 0:
        if ids.size and missing is not None:
            raise missing(ids[0])
        return np.empty(0, dtype=np.int64)
    pos = np.searchsorted(sorted_labels, ids)
    pos = np.clip(pos, 0, sorted_labels.size - 1)
    if missing is not None and ids.size:
        bad = sorted_labels[pos] != ids
        if bad.any():
            raise missing(ids[bad][0])
    return order[pos]


def _factorize(
    src: np.ndarray, dst: np.ndarray, nodes: Optional[Sequence[Node]]
) -> Tuple[List[Node], np.ndarray, np.ndarray]:
    """Map raw node ids to dense indices 0..n-1.

    Without an explicit ``nodes`` sequence the label universe is the
    sorted unique ids appearing in the edge arrays; with one, its order
    defines the index space (and may include isolated nodes).
    """
    if nodes is None:
        labels_arr, flat = np.unique(np.concatenate([src, dst]), return_inverse=True)
        ui = flat[: src.size]
        vi = flat[src.size :]
        return labels_arr.tolist(), ui.astype(np.int64), vi.astype(np.int64)
    labels = list(nodes)
    labels_arr = np.asarray(labels)
    if len(labels) != len(set(labels)):
        raise GraphError("nodes sequence contains duplicates")
    order, sorted_labels = build_label_index(labels_arr)

    def missing(first_bad):
        return GraphError(f"edge endpoint {first_bad!r} not in nodes sequence")

    ui = lookup_indices(order, sorted_labels, src, missing).astype(np.int64)
    vi = lookup_indices(order, sorted_labels, dst, missing).astype(np.int64)
    return labels, ui, vi


def _identity_labels(num_nodes: int) -> List[Node]:
    return list(range(num_nodes))


def _check_index_range(ui: np.ndarray, vi: np.ndarray, num_nodes: int) -> None:
    if ui.size == 0:
        return
    lo = min(int(ui.min()), int(vi.min()))
    hi = max(int(ui.max()), int(vi.max()))
    if lo < 0 or hi >= num_nodes:
        raise GraphError(
            f"edge endpoints must lie in [0, {num_nodes}), got range [{lo}, {hi}]"
        )


def _prepare_edge_arrays(
    src,
    dst,
    weights,
    num_nodes: Optional[int],
    nodes: Optional[Sequence[Node]],
    duplicates: str,
) -> Tuple[int, List[Node], np.ndarray, np.ndarray, np.ndarray]:
    """Shared prologue of the two bulk builders.

    Validates the inputs, drops self-loop entries, and resolves raw ids
    to dense indices (``num_nodes`` declares an identity index space,
    ``nodes`` an explicit label universe, otherwise the sorted unique
    ids).  Returns ``(n, labels, ui, vi, w)``.
    """
    if duplicates not in DUPLICATE_POLICIES:
        raise GraphError(
            f"duplicates must be one of {DUPLICATE_POLICIES}, got {duplicates!r}"
        )
    if num_nodes is not None and nodes is not None:
        raise GraphError("give either num_nodes or nodes, not both")
    src, dst = _as_id_arrays(src, dst)
    w = _as_weight_array(weights, src.size)
    loops = src == dst
    if loops.any():
        keep = ~loops
        src, dst, w = src[keep], dst[keep], w[keep]
    if num_nodes is not None:
        # num_nodes declares a dense index space; the ids must already
        # be integers (casting would silently truncate floats).
        if src.dtype.kind not in "iu" or dst.dtype.kind not in "iu":
            raise GraphError(
                f"num_nodes= requires integer id arrays, got dtypes "
                f"{src.dtype} / {dst.dtype}"
            )
        ui = np.asarray(src, dtype=np.int64)
        vi = np.asarray(dst, dtype=np.int64)
        _check_index_range(ui, vi, num_nodes)
        return num_nodes, _identity_labels(num_nodes), ui, vi, w
    labels, ui, vi = _factorize(src, dst, nodes)
    return len(labels), labels, ui, vi, w


def _collapse(
    key: np.ndarray, weights: np.ndarray, duplicates: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse parallel edges keyed by ``key`` under a duplicate policy."""
    if duplicates == "sum":
        uniq, inverse = np.unique(key, return_inverse=True)
        return uniq, np.bincount(inverse, weights=weights)
    uniq, first = np.unique(key, return_index=True)
    return uniq, weights[first]


def _check_int32_entries(total: int) -> None:
    """Refuse CSR builds whose entry count would wrap int32 indices."""
    if total > np.iinfo(np.int32).max:
        raise GraphError(
            f"graph needs {total} CSR entries, beyond the int32 index "
            f"space ({np.iinfo(np.int32).max}); this build does not "
            f"support graphs that large"
        )


def _csr_from_coo(
    n: int, rows: np.ndarray, cols: np.ndarray, weights: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Build (indptr, indices, weights, weighted row sums) from COO."""
    _check_int32_entries(rows.size)
    order = np.lexsort((cols, rows))
    indices = cols[order].astype(np.int32)
    data = weights[order]
    counts = np.bincount(rows, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int32)
    np.cumsum(counts, out=indptr[1:])
    sums = np.bincount(rows, weights=weights, minlength=n)
    return indptr, indices, data, sums


#: Bounds of the int-label fast paths: labels outside int64 cannot be
#: vectorized and must take the generic (dict-based) route.
INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1


def _all_int_labels(labels: Sequence[Node]) -> bool:
    return all(
        isinstance(node, int)
        and not isinstance(node, bool)
        and INT64_MIN <= node <= INT64_MAX
        for node in labels
    )


def _rows_to_csr(
    n: int, labels: Sequence[Node], adjacency_rows: List[dict]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """CSR arrays from per-node ``{int label: weight}`` adjacency dicts.

    The extraction runs entirely in C — ``np.fromiter`` over
    ``chain.from_iterable(map(dict.keys, rows))`` never creates a
    Python frame per entry — and the label → index translation is one
    vectorized ``searchsorted`` over all entries, so the Python-level
    work is O(n) rather than O(m).
    """
    counts = np.fromiter(map(len, adjacency_rows), dtype=np.int64, count=n)
    total = int(counts.sum())
    _check_int32_entries(total)
    cols_raw = np.fromiter(
        chain.from_iterable(map(dict.keys, adjacency_rows)),
        dtype=np.int64,
        count=total,
    )
    data = np.fromiter(
        chain.from_iterable(map(dict.values, adjacency_rows)),
        dtype=np.float64,
        count=total,
    )
    order, sorted_labels = build_label_index(np.asarray(labels, dtype=np.int64))
    indices = lookup_indices(order, sorted_labels, cols_raw).astype(np.int32)
    indptr = np.zeros(n + 1, dtype=np.int32)
    np.cumsum(counts, out=indptr[1:])
    rows = np.repeat(np.arange(n, dtype=np.int64), counts)
    degrees = np.bincount(rows, weights=data, minlength=n)
    return indptr, indices, data, degrees


def _shard_fill_positions(
    rows: np.ndarray, cursor: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """CSR write positions for one shard chunk of COO rows.

    ``cursor`` holds each row's next free CSR slot.  Returns the sort
    order of the chunk and the target positions of the sorted entries;
    the caller scatters columns/weights and advances the cursor by the
    chunk's per-row counts.
    """
    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    starts = np.flatnonzero(
        np.r_[True, sorted_rows[1:] != sorted_rows[:-1]]
    )
    run_lengths = np.diff(np.append(starts, sorted_rows.size))
    offsets = np.arange(sorted_rows.size, dtype=np.int64) - np.repeat(
        starts, run_lengths
    )
    return order, cursor[sorted_rows] + offsets


def _indptr_from_counts(n: int, counts: np.ndarray) -> np.ndarray:
    indptr = np.zeros(n + 1, dtype=np.int32)
    np.cumsum(counts, out=indptr[1:])
    return indptr


def _sort_rows_by_column(
    n: int, indptr: np.ndarray, indices: np.ndarray, data: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort each CSR row segment by column (stable).

    The shard fill pass appends neighbors in shard order; the bulk
    builders order them by column (``lexsort((cols, rows))``).  Kernel
    reductions sum row segments left to right, so the two orders can
    round differently in the last ULPs — this final sort makes
    shard-built snapshots bit-identical to array-built ones.
    """
    if indices.size == 0:
        return indices, data
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr).astype(np.int64))
    order = np.argsort(rows * np.int64(n) + indices.astype(np.int64), kind="stable")
    return indices[order], data[order]


def _snapshot_stream(cls, stream, duplicates: str):
    """Shared body of the two ``from_edge_stream`` builders.

    One counted pass over the stream, endpoints mapped to dense
    indices via the stream's node universe (which may include isolated
    nodes); the snapshot is built in index space and the stream's
    labels installed afterwards.
    """
    nodes = stream.nodes()
    index = {node: i for i, node in enumerate(nodes)}
    us: List[int] = []
    vs: List[int] = []
    ws: List[float] = []
    for u, v, w in stream.edges():
        us.append(index[u])
        vs.append(index[v])
        ws.append(w)
    csr = cls.from_edge_arrays(
        np.asarray(us, dtype=np.int64),
        np.asarray(vs, dtype=np.int64),
        np.asarray(ws, dtype=np.float64),
        num_nodes=len(nodes),
        duplicates=duplicates,
    )
    csr.labels = nodes
    return csr


class CSRGraph:
    """Immutable CSR snapshot of a weighted undirected graph.

    Attributes
    ----------
    indptr / indices / weights:
        Symmetric CSR adjacency: the neighbors of index ``i`` are
        ``indices[indptr[i]:indptr[i+1]]`` with parallel ``weights``;
        every undirected edge appears in both endpoint rows.
    degrees:
        Weighted degree per index (float64).
    labels:
        ``labels[i]`` is the original node of index ``i``.
    total_weight:
        Sum of all edge weights, each undirected edge counted once.
    """

    # _peel_args caches the contiguity-checked arrays (plus their raw
    # pointers) the native tier passes to the compiled kernels.
    __slots__ = (
        "indptr", "indices", "weights", "degrees", "labels", "total_weight",
        "_peel_args",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        degrees: np.ndarray,
        labels: List[Node],
        total_weight: float,
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.degrees = degrees
        self.labels = labels
        self.total_weight = total_weight

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_arrays(
        cls,
        src,
        dst,
        weights=None,
        *,
        num_nodes: Optional[int] = None,
        nodes: Optional[Sequence[Node]] = None,
        duplicates: str = "sum",
    ) -> "CSRGraph":
        """Bulk-build from parallel id/weight arrays (no dict detour).

        Parameters
        ----------
        src, dst:
            1-D arrays of edge endpoints.  Any ids ``np.unique`` can
            sort (ints, strings); self-loop entries are dropped.
        weights:
            Optional positive edge weights (default all 1).
        num_nodes:
            Declare the index space directly: ids must already be dense
            indices in ``[0, num_nodes)`` and become their own labels.
            Allows trailing isolated nodes.
        nodes:
            Explicit label universe (may include isolated nodes); its
            order defines the dense index space.
        duplicates:
            ``"sum"`` accumulates repeated pairs, ``"first"`` keeps the
            first occurrence (see :data:`DUPLICATE_POLICIES`).
        """
        n, labels, ui, vi, w = _prepare_edge_arrays(
            src, dst, weights, num_nodes, nodes, duplicates
        )
        if n == 0:
            return cls(
                np.zeros(1, np.int32),
                np.empty(0, np.int32),
                np.empty(0, np.float64),
                np.empty(0, np.float64),
                labels,
                0.0,
            )
        # Canonicalize each undirected pair to (lo, hi) and collapse.
        lo = np.minimum(ui, vi)
        hi = np.maximum(ui, vi)
        key, w = _collapse(lo * np.int64(n) + hi, w, duplicates)
        lo = key // n
        hi = key % n
        rows = np.concatenate([lo, hi])
        cols = np.concatenate([hi, lo])
        both = np.concatenate([w, w])
        indptr, indices, data, degrees = _csr_from_coo(n, rows, cols, both)
        return cls(indptr, indices, data, degrees, labels, float(w.sum()))

    @classmethod
    def from_undirected(cls, graph) -> "CSRGraph":
        """Snapshot a :class:`~repro.graph.undirected.UndirectedGraph`."""
        labels = list(graph.nodes())
        n = len(labels)
        if n == 0:
            return cls(
                np.zeros(1, np.int32),
                np.empty(0, np.int32),
                np.empty(0, np.float64),
                np.empty(0, np.float64),
                labels,
                0.0,
            )
        adj = getattr(graph, "_adj", None)
        if adj is not None and _all_int_labels(labels):
            # Fast path: the adjacency map is already symmetric, so its
            # rows *are* the CSR rows — no per-edge Python loop.
            arrays = _rows_to_csr(n, labels, [adj[u] for u in labels])
            return cls(*arrays, labels, float(graph.total_weight))
        index = {node: i for i, node in enumerate(labels)}
        m = graph.num_edges
        ui = np.empty(m, dtype=np.int64)
        vi = np.empty(m, dtype=np.int64)
        w = np.empty(m, dtype=np.float64)
        for e, (u, v, weight) in enumerate(graph.weighted_edges()):
            ui[e] = index[u]
            vi[e] = index[v]
            w[e] = weight
        rows = np.concatenate([ui, vi])
        cols = np.concatenate([vi, ui])
        both = np.concatenate([w, w])
        indptr, indices, data, degrees = _csr_from_coo(n, rows, cols, both)
        return cls(indptr, indices, data, degrees, labels, float(graph.total_weight))

    @classmethod
    def from_edge_stream(cls, stream, *, duplicates: str = "sum") -> "CSRGraph":
        """One counted pass over an edge stream into a CSR snapshot.

        The stream's node universe (which may include isolated nodes)
        defines the label space; repeated edges accumulate by default,
        matching :meth:`~repro.graph.undirected.UndirectedGraph.add_edge`.
        """
        return _snapshot_stream(cls, stream, duplicates)

    @classmethod
    def from_shards(cls, store) -> "CSRGraph":
        """Build a snapshot from a sharded edge store, one shard at a time.

        Two bounded passes over the store's shards — a bincount pass
        for per-node entry counts and weighted degrees, then a
        counting-sort fill pass scattering each shard's entries into
        the preallocated CSR arrays (plus a final within-row column
        sort for bit-parity with :meth:`from_edge_arrays`) — so peak
        memory is the O(m) CSR output plus one shard and a transient
        sort index, never a dict graph.  The store's dense id universe
        becomes the label space (``labels[i] == i``); parallel
        duplicate records are kept as parallel CSR entries, which every
        peel kernel reads additively (equivalent to the summed edge).
        """
        if store.directed:
            raise GraphError(
                "store holds directed edges; use CSRDigraph.from_shards"
            )
        n = store.num_nodes
        labels = _identity_labels(n)
        if n == 0:
            return cls(
                np.zeros(1, np.int32),
                np.empty(0, np.int32),
                np.empty(0, np.float64),
                np.empty(0, np.float64),
                labels,
                0.0,
            )
        counts = np.zeros(n, dtype=np.int64)
        degrees = np.zeros(n, dtype=np.float64)
        total_weight = 0.0
        for u, v, w in store.iter_shard_arrays():
            u = np.asarray(u, dtype=np.int64)
            v = np.asarray(v, dtype=np.int64)
            w = np.asarray(w, dtype=np.float64)
            _check_index_range(u, v, n)
            counts += np.bincount(u, minlength=n)
            counts += np.bincount(v, minlength=n)
            degrees += np.bincount(u, weights=w, minlength=n)
            degrees += np.bincount(v, weights=w, minlength=n)
            total_weight += float(w.sum())
        _check_int32_entries(int(counts.sum()))
        indptr = _indptr_from_counts(n, counts)
        indices = np.empty(int(counts.sum()), dtype=np.int32)
        data = np.empty(indices.size, dtype=np.float64)
        cursor = indptr[:-1].astype(np.int64)
        for u, v, w in store.iter_shard_arrays():
            u = np.asarray(u, dtype=np.int64)
            v = np.asarray(v, dtype=np.int64)
            w = np.asarray(w, dtype=np.float64)
            rows = np.concatenate([u, v])
            cols = np.concatenate([v, u])
            both = np.concatenate([w, w])
            order, pos = _shard_fill_positions(rows, cursor)
            indices[pos] = cols[order].astype(np.int32)
            data[pos] = both[order]
            cursor += np.bincount(rows, minlength=n)
        indices, data = _sort_rows_by_column(n, indptr, indices, data)
        return cls(indptr, indices, data, degrees, labels, total_weight)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the snapshot."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """Number of distinct undirected edges."""
        return int(self.indices.size) // 2

    def nodes(self) -> Iterable[Node]:
        """Iterate over node labels (graph-protocol compatibility)."""
        return iter(self.labels)

    def weighted_edges(self) -> Iterable[Tuple[Node, Node, float]]:
        """Iterate over ``(u, v, weight)`` triples, each edge once."""
        ui, vi, w = self.edge_arrays()
        labels = self.labels
        for i, j, weight in zip(ui.tolist(), vi.tolist(), w.tolist()):
            yield labels[i], labels[j], weight

    def to_labels(self, indexes: Iterable[int]) -> List[Node]:
        """Map dense indices back to original node labels."""
        labels = self.labels
        return [labels[i] for i in indexes]

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The edge set as ``(ui, vi, w)`` index arrays, each edge once."""
        n = self.num_nodes
        rows = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self.indptr).astype(np.int64)
        )
        cols = self.indices.astype(np.int64)
        once = rows < cols
        return rows[once], cols[once], self.weights[once]

    def to_undirected(self):
        """Materialize back into an :class:`UndirectedGraph`."""
        from ..graph.undirected import UndirectedGraph

        graph = UndirectedGraph()
        graph.add_nodes_from(self.labels)
        ui, vi, w = self.edge_arrays()
        labels = self.labels
        for i, j, weight in zip(ui.tolist(), vi.tolist(), w.tolist()):
            graph.add_edge(labels[i], labels[j], weight)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"total_weight={self.total_weight:g})"
        )


class CSRDigraph:
    """Immutable CSR snapshot of a weighted directed graph.

    Keeps both orientations — ``out_*`` rows hold successors, ``in_*``
    rows hold predecessors — because Algorithm 3 peels S using out-rows
    and T using in-rows.
    """

    __slots__ = (
        "out_indptr",
        "out_indices",
        "out_weights",
        "in_indptr",
        "in_indices",
        "in_weights",
        "out_degrees",
        "in_degrees",
        "labels",
        "total_weight",
        "_peel_args",
    )

    def __init__(
        self,
        out_csr: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        in_csr: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        labels: List[Node],
        total_weight: float,
    ) -> None:
        self.out_indptr, self.out_indices, self.out_weights, self.out_degrees = out_csr
        self.in_indptr, self.in_indices, self.in_weights, self.in_degrees = in_csr
        self.labels = labels
        self.total_weight = total_weight

    @classmethod
    def _from_indexed(
        cls, n: int, ui: np.ndarray, vi: np.ndarray, w: np.ndarray, labels: List[Node]
    ) -> "CSRDigraph":
        out_csr = _csr_from_coo(n, ui, vi, w)
        in_csr = _csr_from_coo(n, vi, ui, w)
        return cls(out_csr, in_csr, labels, float(w.sum()))

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_arrays(
        cls,
        src,
        dst,
        weights=None,
        *,
        num_nodes: Optional[int] = None,
        nodes: Optional[Sequence[Node]] = None,
        duplicates: str = "sum",
    ) -> "CSRDigraph":
        """Bulk-build from parallel id/weight arrays (``src -> dst``).

        Same contract as :meth:`CSRGraph.from_edge_arrays`, without the
        orientation canonicalization: ``(u, v)`` and ``(v, u)`` are
        distinct directed edges.
        """
        n, labels, ui, vi, w = _prepare_edge_arrays(
            src, dst, weights, num_nodes, nodes, duplicates
        )
        if n == 0:
            empty = (
                np.zeros(1, np.int32),
                np.empty(0, np.int32),
                np.empty(0, np.float64),
                np.empty(0, np.float64),
            )
            return cls(empty, empty, labels, 0.0)
        key, w = _collapse(ui * np.int64(n) + vi, w, duplicates)
        ui = key // n
        vi = key % n
        return cls._from_indexed(n, ui, vi, w, labels)

    @classmethod
    def from_directed(cls, graph) -> "CSRDigraph":
        """Snapshot a :class:`~repro.graph.directed.DirectedGraph`."""
        labels = list(graph.nodes())
        n = len(labels)
        if n == 0:
            empty = (
                np.zeros(1, np.int32),
                np.empty(0, np.int32),
                np.empty(0, np.float64),
                np.empty(0, np.float64),
            )
            return cls(empty, empty, labels, 0.0)
        out_adj = getattr(graph, "_out", None)
        in_adj = getattr(graph, "_in", None)
        if out_adj is not None and in_adj is not None and _all_int_labels(labels):
            # Fast path: the out- and in-adjacency maps are the two CSR
            # orientations directly — no per-edge Python loop.
            out_csr = _rows_to_csr(n, labels, [out_adj[u] for u in labels])
            in_csr = _rows_to_csr(n, labels, [in_adj[u] for u in labels])
            return cls(out_csr, in_csr, labels, float(graph.total_weight))
        index = {node: i for i, node in enumerate(labels)}
        m = graph.num_edges
        ui = np.empty(m, dtype=np.int64)
        vi = np.empty(m, dtype=np.int64)
        w = np.empty(m, dtype=np.float64)
        for e, (u, v, weight) in enumerate(graph.weighted_edges()):
            ui[e] = index[u]
            vi[e] = index[v]
            w[e] = weight
        return cls._from_indexed(n, ui, vi, w, labels)

    @classmethod
    def from_edge_stream(cls, stream, *, duplicates: str = "sum") -> "CSRDigraph":
        """One counted pass over a directed edge stream (``u -> v``)."""
        return _snapshot_stream(cls, stream, duplicates)

    @classmethod
    def from_shards(cls, store) -> "CSRDigraph":
        """Build a directed snapshot from a sharded edge store.

        Same two-pass bincount/fill structure as
        :meth:`CSRGraph.from_shards`, run once per orientation (out-CSR
        keyed on ``u``, in-CSR keyed on ``v``).
        """
        if not store.directed:
            raise GraphError(
                "store holds undirected edges; use CSRGraph.from_shards"
            )
        n = store.num_nodes
        labels = _identity_labels(n)
        if n == 0:
            empty = (
                np.zeros(1, np.int32),
                np.empty(0, np.int32),
                np.empty(0, np.float64),
                np.empty(0, np.float64),
            )
            return cls(empty, empty, labels, 0.0)
        out_counts = np.zeros(n, dtype=np.int64)
        in_counts = np.zeros(n, dtype=np.int64)
        out_degrees = np.zeros(n, dtype=np.float64)
        in_degrees = np.zeros(n, dtype=np.float64)
        total_weight = 0.0
        for u, v, w in store.iter_shard_arrays():
            u = np.asarray(u, dtype=np.int64)
            v = np.asarray(v, dtype=np.int64)
            w = np.asarray(w, dtype=np.float64)
            _check_index_range(u, v, n)
            out_counts += np.bincount(u, minlength=n)
            in_counts += np.bincount(v, minlength=n)
            out_degrees += np.bincount(u, weights=w, minlength=n)
            in_degrees += np.bincount(v, weights=w, minlength=n)
            total_weight += float(w.sum())
        _check_int32_entries(int(out_counts.sum()))
        out_indptr = _indptr_from_counts(n, out_counts)
        in_indptr = _indptr_from_counts(n, in_counts)
        m = int(out_counts.sum())
        out_indices = np.empty(m, dtype=np.int32)
        out_data = np.empty(m, dtype=np.float64)
        in_indices = np.empty(m, dtype=np.int32)
        in_data = np.empty(m, dtype=np.float64)
        out_cursor = out_indptr[:-1].astype(np.int64)
        in_cursor = in_indptr[:-1].astype(np.int64)
        for u, v, w in store.iter_shard_arrays():
            u = np.asarray(u, dtype=np.int64)
            v = np.asarray(v, dtype=np.int64)
            w = np.asarray(w, dtype=np.float64)
            order, pos = _shard_fill_positions(u, out_cursor)
            out_indices[pos] = v[order].astype(np.int32)
            out_data[pos] = w[order]
            out_cursor += np.bincount(u, minlength=n)
            order, pos = _shard_fill_positions(v, in_cursor)
            in_indices[pos] = u[order].astype(np.int32)
            in_data[pos] = w[order]
            in_cursor += np.bincount(v, minlength=n)
        out_indices, out_data = _sort_rows_by_column(
            n, out_indptr, out_indices, out_data
        )
        in_indices, in_data = _sort_rows_by_column(n, in_indptr, in_indices, in_data)
        return cls(
            (out_indptr, out_indices, out_data, out_degrees),
            (in_indptr, in_indices, in_data, in_degrees),
            labels,
            total_weight,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the snapshot."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """Number of distinct directed edges."""
        return int(self.out_indices.size)

    def nodes(self) -> Iterable[Node]:
        """Iterate over node labels (graph-protocol compatibility)."""
        return iter(self.labels)

    def weighted_edges(self) -> Iterable[Tuple[Node, Node, float]]:
        """Iterate over ``(u, v, weight)`` triples (``u -> v``)."""
        ui, vi, w = self.edge_arrays()
        labels = self.labels
        for i, j, weight in zip(ui.tolist(), vi.tolist(), w.tolist()):
            yield labels[i], labels[j], weight

    def to_labels(self, indexes: Iterable[int]) -> List[Node]:
        """Map dense indices back to original node labels."""
        labels = self.labels
        return [labels[i] for i in indexes]

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The edge set as ``(ui, vi, w)`` index arrays."""
        n = self.num_nodes
        rows = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self.out_indptr).astype(np.int64)
        )
        return rows, self.out_indices.astype(np.int64), self.out_weights

    def to_directed(self):
        """Materialize back into a :class:`DirectedGraph`."""
        from ..graph.directed import DirectedGraph

        graph = DirectedGraph()
        graph.add_nodes_from(self.labels)
        ui, vi, w = self.edge_arrays()
        labels = self.labels
        for i, j, weight in zip(ui.tolist(), vi.tolist(), w.tolist()):
            graph.add_edge(labels[i], labels[j], weight)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRDigraph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"total_weight={self.total_weight:g})"
        )
