"""The compiled peeling tier: numba or C under a common wrapper.

This module exposes the same four entry points as
:mod:`repro.kernels.bucketq` (``peel_undirected`` / ``peel_atleast_k``
/ ``peel_directed`` / ``peel_directed_sweep``) backed by whichever
compiled backend is available:

* **numba** — ``@njit(cache=True)`` kernels in
  :mod:`repro.kernels._numba_peel` (preferred when importable);
* **c** — ``peel_kernels.c`` compiled on first use by
  :mod:`repro.kernels._cext` with the system C toolchain and called
  through ctypes (which releases the GIL for the whole peel).

Both backends run the identical bucket-list algorithm, so which one
serves a request never changes the answer.  When neither is available
the wrappers fall back to :mod:`repro.kernels.bucketq` transparently;
``available_backend()`` reports what a call would actually use.

Environment knobs:

``REPRO_NATIVE``
    ``auto`` (default) — prefer numba, then C; ``numba`` / ``c`` —
    require that backend only; ``off`` — disable the compiled tier
    (wrappers become bucketq pass-throughs).
"""

from __future__ import annotations

import ctypes
import math
import os
import threading
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._tolerances import THRESHOLD_EPS
from ..core.trace import DirectedPassRecord, PassRecord
from . import bucketq
from .bucketq import NUM_BUCKETS
from .csr import CSRDigraph, CSRGraph
from .peel import DirectedPeelOutcome, PeelOutcome


class _NumbaBackend:
    """Adapter over the @njit kernels (array-native call convention)."""

    name = "numba"

    def __init__(self) -> None:
        from . import _numba_peel

        self._mod = _numba_peel

    def peel_undirected(self, *args, ptrs=None):
        return self._mod.peel_undirected(*args)

    def peel_atleast_k(self, *args, ptrs=None):
        return self._mod.peel_atleast_k(*args)

    def peel_directed(self, *args, ptrs=None):
        return self._mod.peel_directed(*args)


class _CBackend:
    """Adapter over the ctypes-loaded shared library."""

    name = "c"

    def __init__(self) -> None:
        from . import _cext

        self._lib = _cext.load()

    def peel_undirected(
        self, indptr, indices, weights, n, total_weight, factor, eps_slack,
        max_passes, nb, deg, alive, best_alive, bucket_of, nxt, prv, head,
        frontier, trace, ptrs=None,
    ):
        if ptrs is None:
            ptrs = tuple(
                a.ctypes.data
                for a in (indptr, indices, weights, deg, alive, best_alive,
                          bucket_of, nxt, prv, head, frontier, trace)
            )
        bd = ctypes.c_double()
        bp = ctypes.c_int64()
        ps = ctypes.c_int64()
        status = self._lib.repro_peel_undirected(
            ptrs[0], ptrs[1], ptrs[2],
            n, total_weight, factor, eps_slack, max_passes, nb,
            ptrs[3], ptrs[4], ptrs[5], ptrs[6], ptrs[7], ptrs[8],
            ptrs[9], ptrs[10], ptrs[11], trace.shape[0],
            ctypes.byref(bd), ctypes.byref(bp), ctypes.byref(ps),
        )
        return status, bd.value, bp.value, ps.value

    def peel_atleast_k(
        self, indptr, indices, weights, n, total_weight, factor,
        batch_fraction, eps_slack, k, stop_below_k, nb, deg, alive,
        best_alive, bucket_of, nxt, prv, head, frontier, trace, ptrs=None,
    ):
        if ptrs is None:
            ptrs = tuple(
                a.ctypes.data
                for a in (indptr, indices, weights, deg, alive, best_alive,
                          bucket_of, nxt, prv, head, frontier, trace)
            )
        bd = ctypes.c_double()
        bp = ctypes.c_int64()
        ps = ctypes.c_int64()
        status = self._lib.repro_peel_atleast_k(
            ptrs[0], ptrs[1], ptrs[2],
            n, total_weight, factor, batch_fraction, eps_slack,
            k, 1 if stop_below_k else 0, nb,
            ptrs[3], ptrs[4], ptrs[5], ptrs[6], ptrs[7], ptrs[8],
            ptrs[9], ptrs[10], ptrs[11], trace.shape[0],
            ctypes.byref(bd), ctypes.byref(bp), ctypes.byref(ps),
        )
        return status, bd.value, bp.value, ps.value

    def peel_directed(
        self, out_indptr, out_indices, out_weights, in_indptr, in_indices,
        in_weights, n, total_weight, ratio, one_plus_eps, eps_slack,
        use_max_degree_rule, nb, out_to_t, in_from_s, in_s, in_t, best_s,
        best_t, s_bucket_of, s_nxt, s_prv, s_head, t_bucket_of, t_nxt,
        t_prv, t_head, frontier, trace, ptrs=None,
    ):
        if ptrs is None:
            ptrs = tuple(
                a.ctypes.data
                for a in (out_indptr, out_indices, out_weights, in_indptr,
                          in_indices, in_weights, out_to_t, in_from_s, in_s,
                          in_t, best_s, best_t, s_bucket_of, s_nxt, s_prv,
                          s_head, t_bucket_of, t_nxt, t_prv, t_head,
                          frontier, trace)
            )
        bd = ctypes.c_double()
        bp = ctypes.c_int64()
        ps = ctypes.c_int64()
        status = self._lib.repro_peel_directed(
            ptrs[0], ptrs[1], ptrs[2], ptrs[3], ptrs[4], ptrs[5],
            n, total_weight, ratio, one_plus_eps, eps_slack,
            1 if use_max_degree_rule else 0, nb,
            ptrs[6], ptrs[7], ptrs[8], ptrs[9], ptrs[10], ptrs[11],
            ptrs[12], ptrs[13], ptrs[14], ptrs[15], ptrs[16], ptrs[17],
            ptrs[18], ptrs[19], ptrs[20], ptrs[21], trace.shape[0],
            ctypes.byref(bd), ctypes.byref(bp), ctypes.byref(ps),
        )
        return status, bd.value, bp.value, ps.value


_BACKEND: Optional[object] = None
_BACKEND_RESOLVED = False


def _pick_backend() -> Optional[object]:
    mode = os.environ.get("REPRO_NATIVE", "auto").strip().lower()
    if mode == "off":
        return None
    if mode in ("auto", "numba"):
        try:
            return _NumbaBackend()
        except Exception:
            if mode == "numba":
                return None
    if mode in ("auto", "c"):
        try:
            return _CBackend()
        except Exception:
            return None
    return None


def get_backend() -> Optional[object]:
    """The active compiled backend instance (memoized), or None."""
    global _BACKEND, _BACKEND_RESOLVED
    if not _BACKEND_RESOLVED:
        _BACKEND = _pick_backend()
        _BACKEND_RESOLVED = True
    return _BACKEND


def available_backend() -> Optional[str]:
    """``"numba"``, ``"c"``, or None when the compiled tier is absent."""
    backend = get_backend()
    return getattr(backend, "name", None) if backend is not None else None


def reset_backend_cache() -> None:
    """Forget the memoized backend (tests flip REPRO_NATIVE and re-probe)."""
    global _BACKEND, _BACKEND_RESOLVED
    _BACKEND = None
    _BACKEND_RESOLVED = False


# Scratch arrays are reused across calls (the trace buffer alone is
# hundreds of KB, so a fresh allocation per call costs mmap + page
# faults that dwarf the kernel on small graphs).  The cache is
# per-thread: the serve layer peels from a worker pool, and two
# threads must never share live scratch.  The kernels rewrite every
# cell they read, so stale contents are harmless.
_SCRATCH = threading.local()


def _undirected_scratch(n: int, cap: int):
    cached = getattr(_SCRATCH, "undirected", None)
    if cached is not None and cached[0].shape[0] == n and cached[8].shape[0] >= cap:
        return cached
    deg_scratch = np.empty(n, dtype=np.float64)
    alive = np.empty(n, dtype=np.uint8)
    best_alive = np.empty(n, dtype=np.uint8)
    bucket_of = np.empty(n, dtype=np.int32)
    nxt = np.empty(n, dtype=np.int32)
    prv = np.empty(n, dtype=np.int32)
    head = np.empty(NUM_BUCKETS, dtype=np.int32)
    # 2n: frontier in the lower half, deferred-relink list in the upper.
    frontier = np.empty(max(2 * n, 1), dtype=np.int32)
    trace = np.empty((cap, 8), dtype=np.float64)
    arrays = (
        deg_scratch, alive, best_alive, bucket_of, nxt, prv, head, frontier, trace
    )
    # Raw pointers precomputed once: the .ctypes accessor builds a
    # helper object per use, which is measurable at these call rates.
    scratch = arrays + (tuple(a.ctypes.data for a in arrays),)
    _SCRATCH.undirected = scratch
    return scratch


def _directed_scratch(n: int, cap: int):
    cached = getattr(_SCRATCH, "directed", None)
    if cached is not None and cached[0].shape[0] == n and cached[15].shape[0] >= cap:
        return cached
    out_to_t = np.empty(n, dtype=np.float64)
    in_from_s = np.empty(n, dtype=np.float64)
    in_s = np.empty(n, dtype=np.uint8)
    in_t = np.empty(n, dtype=np.uint8)
    best_s = np.empty(n, dtype=np.uint8)
    best_t = np.empty(n, dtype=np.uint8)
    s_bucket_of = np.empty(n, dtype=np.int32)
    s_nxt = np.empty(n, dtype=np.int32)
    s_prv = np.empty(n, dtype=np.int32)
    s_head = np.empty(NUM_BUCKETS, dtype=np.int32)
    t_bucket_of = np.empty(n, dtype=np.int32)
    t_nxt = np.empty(n, dtype=np.int32)
    t_prv = np.empty(n, dtype=np.int32)
    t_head = np.empty(NUM_BUCKETS, dtype=np.int32)
    # 2n: frontier in the lower half, deferred-relink list in the upper.
    frontier = np.empty(max(2 * n, 1), dtype=np.int32)
    trace = np.empty((cap, 11), dtype=np.float64)
    arrays = (
        out_to_t, in_from_s, in_s, in_t, best_s, best_t,
        s_bucket_of, s_nxt, s_prv, s_head,
        t_bucket_of, t_nxt, t_prv, t_head,
        frontier, trace,
    )
    scratch = arrays + (tuple(a.ctypes.data for a in arrays),)
    _SCRATCH.directed = scratch
    return scratch


def _graph_args(csr: CSRGraph):
    """Contiguity-checked CSR arrays + raw pointers, cached on the graph."""
    cached = getattr(csr, "_peel_args", None)
    if cached is None:
        indptr = np.ascontiguousarray(csr.indptr, dtype=np.int32)
        indices = np.ascontiguousarray(csr.indices, dtype=np.int32)
        weights = np.ascontiguousarray(csr.weights, dtype=np.float64)
        cached = (
            indptr, indices, weights,
            (indptr.ctypes.data, indices.ctypes.data, weights.ctypes.data),
        )
        try:
            csr._peel_args = cached
        except AttributeError:
            pass
    return cached


def _digraph_args(csr: CSRDigraph):
    cached = getattr(csr, "_peel_args", None)
    if cached is None:
        arrays = (
            np.ascontiguousarray(csr.out_indptr, dtype=np.int32),
            np.ascontiguousarray(csr.out_indices, dtype=np.int32),
            np.ascontiguousarray(csr.out_weights, dtype=np.float64),
            np.ascontiguousarray(csr.in_indptr, dtype=np.int32),
            np.ascontiguousarray(csr.in_indices, dtype=np.int32),
            np.ascontiguousarray(csr.in_weights, dtype=np.float64),
        )
        cached = arrays + (tuple(a.ctypes.data for a in arrays),)
        try:
            csr._peel_args = cached
        except AttributeError:
            pass
    return cached


def _decode_undirected_trace(trace: np.ndarray, passes: int) -> Tuple[PassRecord, ...]:
    # One bulk tolist() instead of per-cell numpy scalar reads: deep
    # peels record dozens of passes and the scalar path dominates the
    # decode cost.
    rows = trace[:passes].tolist()
    return tuple(
        PassRecord(
            pass_index=i + 1,
            nodes_before=int(t[0]),
            edges_before=t[1],
            density_before=t[2],
            threshold=t[3],
            removed=int(t[4]),
            nodes_after=int(t[5]),
            edges_after=t[6],
            density_after=t[7],
        )
        for i, t in enumerate(rows)
    )


def peel_undirected(
    csr: CSRGraph,
    epsilon: float,
    *,
    max_passes: Optional[int] = None,
) -> PeelOutcome:
    """Algorithm 1 via the compiled backend (bucketq fallback)."""
    backend = get_backend()
    n = csr.num_nodes
    if backend is None or n == 0:
        return bucketq.peel_undirected(csr, epsilon, max_passes=max_passes)
    factor = 2.0 * (1.0 + epsilon)
    mp = -1 if max_passes is None else int(max_passes)
    indptr, indices, weights, csr_ptrs = _graph_args(csr)
    cap = min(n, 4096) + 1
    while True:
        (
            deg, alive, best_alive, bucket_of, nxt, prv, head, frontier,
            trace, scratch_ptrs,
        ) = _undirected_scratch(n, cap)
        np.copyto(deg, csr.degrees)
        alive.fill(1)
        best_alive.fill(1)
        status, best_density, best_pass, passes = backend.peel_undirected(
            indptr, indices, weights, n, csr.total_weight, factor,
            THRESHOLD_EPS, mp, NUM_BUCKETS, deg, alive, best_alive,
            bucket_of, nxt, prv, head, frontier, trace,
            ptrs=csr_ptrs + scratch_ptrs,
        )
        if status == 0:
            break
        cap = min(max(cap * 4, cap + 1), n + 1)
    return PeelOutcome(
        best_indices=np.flatnonzero(best_alive).astype(np.int64, copy=False),
        best_density=float(best_density),
        passes=int(passes),
        best_pass=int(best_pass),
        trace=_decode_undirected_trace(trace, int(passes)),
    )


def peel_atleast_k(
    csr: CSRGraph,
    k: int,
    epsilon: float,
    *,
    stop_below_k: bool = True,
) -> PeelOutcome:
    """Algorithm 2 via the compiled backend (bucketq fallback)."""
    backend = get_backend()
    n = csr.num_nodes
    if backend is None or n == 0:
        return bucketq.peel_atleast_k(csr, k, epsilon, stop_below_k=stop_below_k)
    factor = 2.0 * (1.0 + epsilon)
    batch_fraction = epsilon / (1.0 + epsilon)
    indptr, indices, weights, csr_ptrs = _graph_args(csr)
    cap = min(n, 4096) + 1
    while True:
        (
            deg, alive, best_alive, bucket_of, nxt, prv, head, frontier,
            trace, scratch_ptrs,
        ) = _undirected_scratch(n, cap)
        np.copyto(deg, csr.degrees)
        alive.fill(1)
        best_alive.fill(1)
        status, best_density, best_pass, passes = backend.peel_atleast_k(
            indptr, indices, weights, n, csr.total_weight, factor,
            batch_fraction, THRESHOLD_EPS, int(k), stop_below_k, NUM_BUCKETS,
            deg, alive, best_alive, bucket_of, nxt, prv, head, frontier, trace,
            ptrs=csr_ptrs + scratch_ptrs,
        )
        if status == 0:
            break
        cap = min(max(cap * 4, cap + 1), n + 1)
    return PeelOutcome(
        best_indices=np.flatnonzero(best_alive).astype(np.int64, copy=False),
        best_density=float(best_density),
        passes=int(passes),
        best_pass=int(best_pass),
        trace=_decode_undirected_trace(trace, int(passes)),
    )


def peel_directed(
    csr: CSRDigraph,
    ratio: float,
    epsilon: float,
    *,
    side_rule: str = "size_ratio",
) -> DirectedPeelOutcome:
    """Algorithm 3 via the compiled backend (bucketq fallback)."""
    backend = get_backend()
    n = csr.num_nodes
    if backend is None or n == 0:
        return bucketq.peel_directed(csr, ratio, epsilon, side_rule=side_rule)
    (
        out_indptr, out_indices, out_weights,
        in_indptr, in_indices, in_weights, csr_ptrs,
    ) = _digraph_args(csr)
    use_max_degree = side_rule != "size_ratio"
    cap = min(2 * n, 8192) + 1
    while True:
        (
            out_to_t, in_from_s, in_s, in_t, best_s, best_t,
            s_bucket_of, s_nxt, s_prv, s_head,
            t_bucket_of, t_nxt, t_prv, t_head,
            frontier, trace, scratch_ptrs,
        ) = _directed_scratch(n, cap)
        np.copyto(out_to_t, csr.out_degrees)
        np.copyto(in_from_s, csr.in_degrees)
        in_s.fill(1)
        in_t.fill(1)
        best_s.fill(1)
        best_t.fill(1)
        status, best_density, best_pass, passes = backend.peel_directed(
            out_indptr, out_indices, out_weights, in_indptr, in_indices,
            in_weights, n, csr.total_weight, float(ratio), 1.0 + epsilon,
            THRESHOLD_EPS, use_max_degree, NUM_BUCKETS, out_to_t, in_from_s,
            in_s, in_t, best_s, best_t, s_bucket_of, s_nxt, s_prv, s_head,
            t_bucket_of, t_nxt, t_prv, t_head, frontier, trace,
            ptrs=csr_ptrs + scratch_ptrs,
        )
        if status == 0:
            break
        cap = min(max(cap * 4, cap + 1), 2 * n + 1)
    rows = trace[: int(passes)].tolist()
    records: List[DirectedPassRecord] = [
        DirectedPassRecord(
            pass_index=i + 1,
            side="S" if t[0] == 0.0 else "T",
            s_before=int(t[1]),
            t_before=int(t[2]),
            edges_before=t[3],
            density_before=t[4],
            threshold=t[5],
            removed=int(t[6]),
            s_after=int(t[7]),
            t_after=int(t[8]),
            edges_after=t[9],
            density_after=t[10],
        )
        for i, t in enumerate(rows)
    ]
    return DirectedPeelOutcome(
        best_s=np.flatnonzero(best_s).astype(np.int64, copy=False),
        best_t=np.flatnonzero(best_t).astype(np.int64, copy=False),
        best_density=float(best_density),
        passes=int(passes),
        best_pass=int(best_pass),
        trace=tuple(records),
    )


def peel_directed_sweep(
    csr: CSRDigraph,
    ratios: Sequence[float],
    epsilon: float,
    *,
    side_rule: str = "size_ratio",
) -> List[DirectedPeelOutcome]:
    """Run :func:`peel_directed` for every c in ``ratios`` (shared CSR)."""
    return [
        peel_directed(csr, ratio, epsilon, side_rule=side_rule) for ratio in ratios
    ]
