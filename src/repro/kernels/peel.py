"""Vectorized per-pass peeling kernels over CSR snapshots.

Each kernel replays one of the paper's algorithms with the exact same
per-pass semantics as the pure-Python reference loops in
:mod:`repro.core` — same thresholds (including the shared
:data:`~repro._tolerances.THRESHOLD_EPS` slack), same batch selection,
same best-set bookkeeping — but does the per-pass work with boolean
masks and ``np.bincount`` degree updates instead of Python inner
loops.  The parity suite (``tests/test_kernels_parity.py``) asserts
the two engines return identical node sets and matching traces.

The removal step is where the vectorization pays off.  The Python loop
kills nodes one at a time and subtracts each incident edge exactly
once (when its first endpoint dies).  Here the whole frontier is
removed at once: the concatenated adjacency of the removed nodes is
gathered, filtered to pre-pass-alive neighbors, and

* the surviving neighbors' degrees drop by a single ``np.bincount``
  over the frontier's external edges;
* the removed weight is the gathered total minus half the
  frontier-internal portion (internal edges are gathered from both
  endpoints).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._tolerances import THRESHOLD_EPS
from ..core.trace import DirectedPassRecord, PassRecord
from .csr import CSRDigraph, CSRGraph


@dataclass(frozen=True)
class PeelOutcome:
    """Raw (index-space) outcome of an undirected peel kernel."""

    best_indices: np.ndarray
    best_density: float
    passes: int
    best_pass: int
    trace: Tuple[PassRecord, ...]


@dataclass(frozen=True)
class DirectedPeelOutcome:
    """Raw (index-space) outcome of the directed peel kernel."""

    best_s: np.ndarray
    best_t: np.ndarray
    best_density: float
    passes: int
    best_pass: int
    trace: Tuple[DirectedPassRecord, ...]


def _gather_rows(indptr: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Positions of every CSR entry belonging to ``rows`` (concatenated)."""
    starts = indptr[rows].astype(np.int64)
    counts = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cum = np.cumsum(counts)
    return np.arange(total, dtype=np.int64) + np.repeat(starts - (cum - counts), counts)


def _remove_frontier_undirected(
    csr: CSRGraph,
    removed: np.ndarray,
    remove_mask: np.ndarray,
    alive: np.ndarray,
    degrees: np.ndarray,
) -> float:
    """Kill ``removed`` in place; return the edge weight that left S."""
    pos = _gather_rows(csr.indptr, removed)
    nbr = csr.indices[pos]
    wts = csr.weights[pos]
    live = alive[nbr]  # neighbors alive before this pass
    nbr = nbr[live]
    wts = wts[live]
    internal = remove_mask[nbr]
    removed_weight = float(wts.sum()) - 0.5 * float(wts[internal].sum())
    external = ~internal
    if external.any():
        degrees -= np.bincount(
            nbr[external], weights=wts[external], minlength=alive.size
        )
    alive[removed] = False
    return removed_weight


def peel_undirected(
    csr: CSRGraph,
    epsilon: float,
    *,
    max_passes: Optional[int] = None,
) -> PeelOutcome:
    """Algorithm 1 (undirected peel), vectorized."""
    n = csr.num_nodes
    alive = np.ones(n, dtype=bool)
    degrees = csr.degrees.astype(np.float64, copy=True)
    remaining_nodes = n
    remaining_weight = csr.total_weight

    best_indices = np.arange(n, dtype=np.int64)
    best_density = remaining_weight / remaining_nodes
    best_pass = 0

    trace: List[PassRecord] = []
    pass_index = 0
    factor = 2.0 * (1.0 + epsilon)
    # One reusable frontier mask for the whole peel: the per-pass
    # comparison writes into it in place instead of allocating two
    # fresh n-length temporaries every round.
    remove_mask = np.empty(n, dtype=bool)

    while remaining_nodes > 0:
        if max_passes is not None and pass_index >= max_passes:
            break
        pass_index += 1
        density = remaining_weight / remaining_nodes
        threshold = factor * density
        np.less_equal(degrees, threshold + THRESHOLD_EPS, out=remove_mask)
        remove_mask &= alive
        removed = np.flatnonzero(remove_mask)
        nodes_before = remaining_nodes
        weight_before = remaining_weight
        if removed.size:
            remaining_weight -= _remove_frontier_undirected(
                csr, removed, remove_mask, alive, degrees
            )
            remaining_nodes -= int(removed.size)
        density_after = (
            remaining_weight / remaining_nodes if remaining_nodes > 0 else 0.0
        )
        trace.append(
            PassRecord(
                pass_index=pass_index,
                nodes_before=nodes_before,
                edges_before=weight_before,
                density_before=density,
                threshold=threshold,
                removed=int(removed.size),
                nodes_after=remaining_nodes,
                edges_after=remaining_weight,
                density_after=density_after,
            )
        )
        if density_after > best_density:
            best_density = density_after
            best_indices = np.flatnonzero(alive)
            best_pass = pass_index

    return PeelOutcome(
        best_indices=best_indices,
        best_density=best_density,
        passes=pass_index,
        best_pass=best_pass,
        trace=tuple(trace),
    )


def peel_atleast_k(
    csr: CSRGraph,
    k: int,
    epsilon: float,
    *,
    stop_below_k: bool = True,
) -> PeelOutcome:
    """Algorithm 2 (size-constrained peel), vectorized.

    Per pass the ε/(1+ε)·|S| lowest-degree members of the threshold
    set are removed; ties break by index, matching the reference's
    stable sort.
    """
    n = csr.num_nodes
    alive = np.ones(n, dtype=bool)
    degrees = csr.degrees.astype(np.float64, copy=True)
    remaining_nodes = n
    remaining_weight = csr.total_weight

    best_indices = np.arange(n, dtype=np.int64)
    best_density = remaining_weight / remaining_nodes
    best_pass = 0

    trace: List[PassRecord] = []
    pass_index = 0
    factor = 2.0 * (1.0 + epsilon)
    batch_fraction = epsilon / (1.0 + epsilon)
    # Reusable scratch: the candidate mask is overwritten per pass; the
    # removal mask stays all-False between passes and only the batch's
    # entries are set and reset, so no per-pass O(n) zeroing either.
    candidate_mask = np.empty(n, dtype=bool)
    remove_mask = np.zeros(n, dtype=bool)

    while remaining_nodes > 0:
        if stop_below_k and remaining_nodes < k:
            break
        pass_index += 1
        density = remaining_weight / remaining_nodes
        threshold = factor * density
        np.less_equal(degrees, threshold + THRESHOLD_EPS, out=candidate_mask)
        candidate_mask &= alive
        candidates = np.flatnonzero(candidate_mask)
        batch_size = max(1, math.floor(batch_fraction * remaining_nodes))
        batch_size = min(batch_size, int(candidates.size))
        order = np.argsort(degrees[candidates], kind="stable")
        removed = candidates[order[:batch_size]]

        nodes_before = remaining_nodes
        weight_before = remaining_weight
        if removed.size:
            remove_mask[removed] = True
            remaining_weight -= _remove_frontier_undirected(
                csr, removed, remove_mask, alive, degrees
            )
            remove_mask[removed] = False
            remaining_nodes -= int(removed.size)
        density_after = (
            remaining_weight / remaining_nodes if remaining_nodes > 0 else 0.0
        )
        trace.append(
            PassRecord(
                pass_index=pass_index,
                nodes_before=nodes_before,
                edges_before=weight_before,
                density_before=density,
                threshold=threshold,
                removed=int(removed.size),
                nodes_after=remaining_nodes,
                edges_after=remaining_weight,
                density_after=density_after,
            )
        )
        if remaining_nodes >= k and density_after > best_density:
            best_density = density_after
            best_indices = np.flatnonzero(alive)
            best_pass = pass_index

    return PeelOutcome(
        best_indices=best_indices,
        best_density=best_density,
        passes=pass_index,
        best_pass=best_pass,
        trace=tuple(trace),
    )


def _max_degree_rule_arrays(
    out_to_t: np.ndarray,
    in_from_s: np.ndarray,
    in_s: np.ndarray,
    in_t: np.ndarray,
    ratio: float,
) -> bool:
    """Vectorized form of the naive §4.3 side-choice rule."""
    max_out = float(out_to_t[in_s].max()) if in_s.any() else 0.0
    max_in = float(in_from_s[in_t].max()) if in_t.any() else 0.0
    if max_out <= 0.0:
        return True
    return max_in / max_out >= ratio


def peel_directed(
    csr: CSRDigraph,
    ratio: float,
    epsilon: float,
    *,
    side_rule: str = "size_ratio",
) -> DirectedPeelOutcome:
    """Algorithm 3 (directed peel) at a fixed ratio c, vectorized."""
    n = csr.num_nodes
    in_s = np.ones(n, dtype=bool)
    in_t = np.ones(n, dtype=bool)
    s_size = n
    t_size = n
    out_to_t = csr.out_degrees.astype(np.float64, copy=True)
    in_from_s = csr.in_degrees.astype(np.float64, copy=True)
    edge_weight = csr.total_weight

    best_s = np.arange(n, dtype=np.int64)
    best_t = np.arange(n, dtype=np.int64)
    best_density = edge_weight / math.sqrt(n * n)
    best_pass = 0

    trace: List[DirectedPassRecord] = []
    pass_index = 0
    one_plus_eps = 1.0 + epsilon
    # Reused across passes; per pass the side's comparison overwrites it.
    frontier_mask = np.empty(n, dtype=bool)

    while s_size > 0 and t_size > 0:
        pass_index += 1
        density = edge_weight / math.sqrt(s_size * t_size)
        if side_rule == "size_ratio":
            peel_s = s_size / t_size >= ratio
        else:
            peel_s = _max_degree_rule_arrays(out_to_t, in_from_s, in_s, in_t, ratio)

        s_before, t_before = s_size, t_size
        weight_before = edge_weight
        if peel_s:
            threshold = one_plus_eps * edge_weight / s_size
            np.less_equal(out_to_t, threshold + THRESHOLD_EPS, out=frontier_mask)
            frontier_mask &= in_s
            removed = np.flatnonzero(frontier_mask)
            pos = _gather_rows(csr.out_indptr, removed)
            nbr = csr.out_indices[pos]
            wts = csr.out_weights[pos]
            live = in_t[nbr]
            nbr = nbr[live]
            wts = wts[live]
            edge_weight -= float(wts.sum())
            if nbr.size:
                in_from_s -= np.bincount(nbr, weights=wts, minlength=n)
            in_s[removed] = False
            s_size -= int(removed.size)
            side = "S"
        else:
            threshold = one_plus_eps * edge_weight / t_size
            np.less_equal(in_from_s, threshold + THRESHOLD_EPS, out=frontier_mask)
            frontier_mask &= in_t
            removed = np.flatnonzero(frontier_mask)
            pos = _gather_rows(csr.in_indptr, removed)
            nbr = csr.in_indices[pos]
            wts = csr.in_weights[pos]
            live = in_s[nbr]
            nbr = nbr[live]
            wts = wts[live]
            edge_weight -= float(wts.sum())
            if nbr.size:
                out_to_t -= np.bincount(nbr, weights=wts, minlength=n)
            in_t[removed] = False
            t_size -= int(removed.size)
            side = "T"

        if s_size > 0 and t_size > 0:
            density_after = edge_weight / math.sqrt(s_size * t_size)
        else:
            density_after = 0.0
        trace.append(
            DirectedPassRecord(
                pass_index=pass_index,
                side=side,
                s_before=s_before,
                t_before=t_before,
                edges_before=weight_before,
                density_before=density,
                threshold=threshold,
                removed=int(removed.size),
                s_after=s_size,
                t_after=t_size,
                edges_after=edge_weight,
                density_after=density_after,
            )
        )
        if density_after > best_density:
            best_density = density_after
            best_s = np.flatnonzero(in_s)
            best_t = np.flatnonzero(in_t)
            best_pass = pass_index

    return DirectedPeelOutcome(
        best_s=best_s,
        best_t=best_t,
        best_density=best_density,
        passes=pass_index,
        best_pass=best_pass,
        trace=tuple(trace),
    )


def peel_directed_sweep(
    csr: CSRDigraph,
    ratios: Sequence[float],
    epsilon: float,
    *,
    side_rule: str = "size_ratio",
) -> List[DirectedPeelOutcome]:
    """Run :func:`peel_directed` for every c in ``ratios``.

    The point of taking a :class:`CSRDigraph` (rather than a graph) is
    that one CSR build — the only O(m log m) step — is amortized across
    the whole sweep; each per-ratio run then touches only the shared
    immutable arrays.
    """
    return [
        peel_directed(csr, ratio, epsilon, side_rule=side_rule) for ratio in ratios
    ]
