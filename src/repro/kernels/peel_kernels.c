/* Native bucket-queue peeling kernels (the compiled tier's C backend).
 *
 * Compiled at runtime by repro.kernels._cext with the system C
 * toolchain and loaded through ctypes; repro.kernels.native falls back
 * to the pure-numpy bucket queue when no compiler (and no numba) is
 * available.  The algorithms mirror repro/kernels/bucketq.py — one
 * intrusive doubly-linked bucket list per degree structure, frontier
 * computed from pass-start degrees, sequential cascade decrements in
 * ascending node order (the python engine's kill order) — so node
 * sets, pass counts, and integer trace fields are identical to the
 * python/numpy/bucketq tiers and float fields agree to reassociation
 * noise (exactly, for dyadic weights).
 *
 * Every function returns 0 on success or 1 when the caller-provided
 * trace buffer is too small (the caller doubles it and reruns).
 * Scratch arrays (bucket links, frontier) are allocated by the caller
 * so the kernels perform no allocation at all.  The frontier array
 * must hold 2n int32 entries: the first n are the pass frontier, the
 * upper n hold the pending-relink list (neighbors whose bucket move
 * is deferred to the end of the pass so each costs one relink per
 * pass instead of one per lost edge).
 */

#include <math.h>
#include <stdint.h>
#include <string.h>

#define TRACE_OVERFLOW 1

/* bucket_of doubles as the liveness word so the kill loops touch two
 * arrays per neighbor (deg, bucket_of) instead of three:
 *   >= 0       alive, linked in that bucket
 *   -2 - b     alive, pending relink out of bucket b (flushed at pass end)
 *   QUEUED     alive, unlinked into this pass's frontier, not yet killed
 *   -1         dead
 * A node is alive iff bucket_of != -1; the alive/in_s/in_t byte
 * arrays are still written (they feed the best-snapshot memcpys and
 * the caller's result decode) but never read on the hot path. */
#define QUEUED INT32_MIN

/* ------------------------------------------------------------------ */
/* Bucket list primitives: head[b] / nxt[i] / prv[i] intrusive lists. */
/* ------------------------------------------------------------------ */

/* Bucket placement multiplies by a precomputed 1/width instead of
 * dividing.  The map stays monotone in `value` (IEEE multiply plus
 * truncation), which is the only property correctness needs: every
 * node with deg <= cutoff sits in a bucket <= bucket(cutoff), because
 * both sides go through the same function.  Which bucket a node lands
 * in never affects results — frontier collection re-checks deg
 * against the cutoff. */
static inline int64_t bucket_index(double value, double inv_width, int64_t nb) {
    int64_t b = (int64_t)(value * inv_width); /* truncation, like the numpy tier */
    if (b < 0)
        b = 0;
    else if (b > nb - 1)
        b = nb - 1;
    return b;
}

static inline void list_unlink(int32_t i, int32_t b, int32_t *head, int32_t *nxt,
                               int32_t *prv) {
    int32_t p = prv[i], x = nxt[i];
    if (p >= 0)
        nxt[p] = x;
    else
        head[b] = x;
    if (x >= 0)
        prv[x] = p;
}

static inline void list_push(int32_t i, int64_t b, int32_t *head, int32_t *nxt,
                             int32_t *prv, int32_t *bucket_of) {
    prv[i] = -1;
    nxt[i] = head[b];
    if (head[b] >= 0)
        prv[head[b]] = i;
    head[b] = (int32_t)i;
    bucket_of[i] = (int32_t)b;
}

/* Returns 1/width for use with bucket_index. */
static double build_buckets(const double *deg, const uint8_t *member, int64_t n,
                            int64_t nb, int32_t *head, int32_t *nxt, int32_t *prv,
                            int32_t *bucket_of) {
    double vmax = 0.0;
    for (int64_t i = 0; i < n; i++)
        if ((member == 0 || member[i]) && deg[i] > vmax)
            vmax = deg[i];
    double width = vmax > 0.0 ? vmax / (double)nb : 1.0;
    double inv_width = 1.0 / width;
    for (int64_t b = 0; b < nb; b++)
        head[b] = -1;
    /* Push in descending node order so each list reads in ascending
     * order — keeps frontier collection nearly sorted. */
    for (int64_t i = n - 1; i >= 0; i--) {
        if (member != 0 && !member[i]) {
            bucket_of[i] = -1;
            continue;
        }
        list_push((int32_t)i, bucket_index(deg[i], inv_width, nb), head, nxt,
                  prv, bucket_of);
    }
    return inv_width;
}

/* Deferred relink: the kill loops mark a decremented neighbor once by
 * encoding its current bucket as (-2 - b) in bucket_of and appending
 * it to `pending`; this flushes the marks, moving each node to its
 * final bucket for the pass.  Degrees only decrease, so the target
 * bucket is never above the recorded one. */
static void flush_pending(const double *deg, const int32_t *pending,
                          int64_t count, double inv_width, int64_t nb,
                          int32_t *head, int32_t *nxt, int32_t *prv,
                          int32_t *bucket_of) {
    for (int64_t t = 0; t < count; t++) {
        int32_t j = pending[t];
        int32_t b_old = (int32_t)(-2 - bucket_of[j]);
        int64_t tb = bucket_index(deg[j], inv_width, nb);
        if (tb < b_old) {
            list_unlink(j, b_old, head, nxt, prv);
            list_push(j, tb, head, nxt, prv, bucket_of);
        } else {
            bucket_of[j] = b_old;
        }
    }
}

/* (key[id], id) strict-weak-order comparison; key == NULL compares
 * ids alone.  Node ids are distinct, so this is a strict total order. */
static inline int id_less(int32_t a, int32_t b, const double *key) {
    if (key) {
        double ka = key[a], kb = key[b];
        if (ka < kb)
            return 1;
        if (ka > kb)
            return 0;
    }
    return a < b;
}

static void insertion_sort_ids(int32_t *ids, int64_t lo, int64_t hi,
                               const double *key) {
    for (int64_t a = lo + 1; a <= hi; a++) {
        int32_t v = ids[a];
        int64_t b = a - 1;
        while (b >= lo && id_less(v, ids[b], key)) {
            ids[b + 1] = ids[b];
            b--;
        }
        ids[b + 1] = v;
    }
}

/* Insertion + explicit-stack quicksort of ids by (key[id], id); with
 * key == NULL sorts by id alone.  No libc qsort: the comparator would
 * need global state, and these calls run with the GIL released.  The
 * smaller partition is pushed and the larger looped, bounding the
 * stack depth by log2(len) < 64.
 *
 * Only positions [0, limit) end up sorted: partitions entirely to the
 * right of `limit` can never move an element into the prefix once the
 * pivot split proves every element there is >= everything before it,
 * so they are skipped.  Since (key, id) is a strict total order the
 * prefix is exactly the `limit` smallest elements in order — callers
 * that consume only the first `limit` entries (the at-least-k batch)
 * see results identical to a full sort.  limit >= len is a full
 * sort. */
static void sort_ids_prefix(int32_t *ids, int64_t len, const double *key,
                            int64_t limit) {
    int64_t stack[128][2];
    int64_t top = 0;
    if (len < 2 || limit <= 0)
        return;
    stack[top][0] = 0;
    stack[top][1] = len - 1;
    top++;
    while (top > 0) {
        top--;
        int64_t lo = stack[top][0], hi = stack[top][1];
        while (lo < hi) {
            if (lo >= limit)
                break;
            if (hi - lo < 24) {
                insertion_sort_ids(ids, lo, hi, key);
                break;
            }
            /* median-of-three pivot (an element actually in range, so
             * both partition scans terminate at it) */
            int64_t mid = lo + (hi - lo) / 2;
            int32_t a = ids[lo], b = ids[mid], c = ids[hi];
            int32_t pv;
            if (id_less(a, b, key))
                pv = id_less(b, c, key) ? b : (id_less(a, c, key) ? c : a);
            else
                pv = id_less(a, c, key) ? a : (id_less(b, c, key) ? c : b);
            int64_t i = lo, j = hi;
            while (i <= j) {
                while (id_less(ids[i], pv, key))
                    i++;
                while (id_less(pv, ids[j], key))
                    j--;
                if (i <= j) {
                    int32_t t = ids[i];
                    ids[i] = ids[j];
                    ids[j] = t;
                    i++;
                    j--;
                }
            }
            if (j - lo < hi - i) { /* left smaller: push it, loop right */
                if (lo < j) {
                    if (top < 128) {
                        stack[top][0] = lo;
                        stack[top][1] = j;
                        top++;
                    } else {
                        insertion_sort_ids(ids, lo, j, key);
                    }
                }
                lo = i;
            } else { /* right smaller: push it, loop left */
                if (i < hi && i < limit) {
                    if (top < 128) {
                        stack[top][0] = i;
                        stack[top][1] = hi;
                        top++;
                    } else {
                        insertion_sort_ids(ids, i, hi, key);
                    }
                }
                hi = j;
            }
        }
    }
}

static void sort_ids(int32_t *ids, int64_t len, const double *key) {
    sort_ids_prefix(ids, len, key, len);
}

/* Frontier ordering for the threshold peels: quicksort when the
 * frontier is small, otherwise rebuild it in ascending id order with
 * one sequential scan for the QUEUED marker (set by this pass's
 * collection; cleared to dead when the node is killed).  Both produce
 * the identical ascending sequence — ids are distinct — so the kill
 * order never depends on which path ran. */
static void order_frontier(int32_t *frontier, int64_t r, int64_t n,
                           const int32_t *bucket_of) {
    if (r >= 64 && r >= (n >> 5)) {
        int64_t r2 = 0;
        for (int64_t i = 0; i < n; i++)
            if (bucket_of[i] == QUEUED)
                frontier[r2++] = i;
    } else {
        sort_ids(frontier, r, 0);
    }
}

/* ------------------------------------------------------------------ */
/* Algorithm 1: undirected peel.                                      */
/* ------------------------------------------------------------------ */

int repro_peel_undirected(
    const int32_t *indptr, const int32_t *indices, const double *weights,
    int64_t n, double total_weight, double factor, double eps_slack,
    int64_t max_passes, int64_t nb, double *deg, uint8_t *alive,
    uint8_t *best_alive, int32_t *bucket_of, int32_t *nxt, int32_t *prv,
    int32_t *head, int32_t *frontier, double *trace, int64_t trace_cap,
    double *out_best_density, int64_t *out_best_pass, int64_t *out_passes) {
    double inv_width = build_buckets(deg, 0, n, nb, head, nxt, prv, bucket_of);
    int32_t *pending = frontier + n;
    int64_t remaining = n;
    double W = total_weight;
    double best_density = n > 0 ? W / (double)n : 0.0;
    int64_t best_pass = 0;
    int64_t passes = 0;

    while (remaining > 0) {
        if (max_passes >= 0 && passes >= max_passes)
            break;
        if (passes >= trace_cap) {
            *out_passes = passes;
            return TRACE_OVERFLOW;
        }
        passes++;
        double density = W / (double)remaining;
        double threshold = factor * density;
        double cutoff = threshold + eps_slack;
        int64_t bstar = bucket_index(cutoff, inv_width, nb);
        int64_t nodes_before = remaining;
        double weight_before = W;

        /* Phase A: frontier from pass-start degrees (intra-pass
         * decrements must not trigger same-pass removals). */
        int64_t r = 0;
        for (int64_t b = 0; b <= bstar; b++) {
            int32_t i = head[b];
            while (i >= 0) {
                int32_t next = nxt[i];
                if (deg[i] <= cutoff) {
                    list_unlink(i, (int32_t)b, head, nxt, prv);
                    bucket_of[i] = QUEUED;
                    frontier[r++] = i;
                }
                i = next;
            }
        }
        /* ascending: the python kill order */
        order_frontier(frontier, r, n, bucket_of);

        /* Phase B: sequential kills; each edge internal to the
         * frontier is subtracted exactly once (when its first
         * endpoint dies, the second is still alive: bucket_of != -1).
         * Bucket moves are deferred to flush_pending — frontier
         * membership is fixed at pass start, so mid-pass bucket
         * staleness is unobservable. */
        int64_t pcount = 0;
        for (int64_t t = 0; t < r; t++) {
            int32_t i = frontier[t];
            alive[i] = 0;
            bucket_of[i] = -1;
            /* per-node accumulator: keeps the global W update off the
             * per-edge FP dependency chain (dyadic-exact regrouping) */
            double lost = 0.0;
            for (int64_t p = indptr[i]; p < indptr[i + 1]; p++) {
                int32_t j = indices[p];
                int32_t bj = bucket_of[j];
                /* branchless alive-test: a dead neighbour (bj == -1)
                 * contributes exactly 0.0, so the subtraction runs
                 * unconditionally and the poorly-predicted branch
                 * leaves the edge-visit path */
                double w = weights[p] * (double)(bj != -1);
                lost += w;
                deg[j] -= w;
                if (bj >= 0) {
                    bucket_of[j] = -2 - bj;
                    pending[pcount++] = j;
                }
            }
            W -= lost;
        }
        flush_pending(deg, pending, pcount, inv_width, nb, head, nxt, prv,
                      bucket_of);
        remaining -= r;
        double density_after = remaining > 0 ? W / (double)remaining : 0.0;
        double *row = trace + (passes - 1) * 8;
        row[0] = (double)nodes_before;
        row[1] = weight_before;
        row[2] = density;
        row[3] = threshold;
        row[4] = (double)r;
        row[5] = (double)remaining;
        row[6] = W;
        row[7] = density_after;
        if (density_after > best_density) {
            best_density = density_after;
            best_pass = passes;
            memcpy(best_alive, alive, (size_t)n);
        }
    }
    *out_best_density = best_density;
    *out_best_pass = best_pass;
    *out_passes = passes;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Algorithm 2: at-least-k peel (lowest-degree batch per pass).       */
/* ------------------------------------------------------------------ */

int repro_peel_atleast_k(
    const int32_t *indptr, const int32_t *indices, const double *weights,
    int64_t n, double total_weight, double factor, double batch_fraction,
    double eps_slack, int64_t k, int32_t stop_below_k, int64_t nb, double *deg,
    uint8_t *alive, uint8_t *best_alive, int32_t *bucket_of, int32_t *nxt,
    int32_t *prv, int32_t *head, int32_t *frontier, double *trace,
    int64_t trace_cap, double *out_best_density, int64_t *out_best_pass,
    int64_t *out_passes) {
    double inv_width = build_buckets(deg, 0, n, nb, head, nxt, prv, bucket_of);
    int32_t *pending = frontier + n;
    int64_t remaining = n;
    double W = total_weight;
    double best_density = n > 0 ? W / (double)n : 0.0;
    int64_t best_pass = 0;
    int64_t passes = 0;

    while (remaining > 0) {
        if (stop_below_k && remaining < k)
            break;
        if (passes >= trace_cap) {
            *out_passes = passes;
            return TRACE_OVERFLOW;
        }
        passes++;
        double density = W / (double)remaining;
        double threshold = factor * density;
        double cutoff = threshold + eps_slack;
        int64_t bstar = bucket_index(cutoff, inv_width, nb);
        int64_t nodes_before = remaining;
        double weight_before = W;

        /* Collect candidates (no unlink: most stay queued). */
        int64_t c = 0;
        for (int64_t b = 0; b <= bstar; b++) {
            int32_t i = head[b];
            while (i >= 0) {
                if (deg[i] <= cutoff)
                    frontier[c++] = i;
                i = nxt[i];
            }
        }
        int64_t batch = (int64_t)floor(batch_fraction * (double)remaining);
        if (batch < 1)
            batch = 1;
        if (batch > c)
            batch = c;
        /* Stable (degree, index) order = the reference's ascending-
         * index enumeration followed by a stable sort on degree; only
         * the first `batch` entries are consumed.  Candidates were
         * appended in ascending-bucket order and buckets partition the
         * degree axis into strictly increasing ranges, so the global
         * (degree, id) order is the per-bucket orders concatenated:
         * sort segment by segment and stop once the batch prefix is
         * covered — tail segments are never consumed. */
        int64_t seg = 0;
        /* The pending half of `frontier` is idle until the kill loop;
         * borrow it as an id bitmap for the equal-key fast path. */
        uint32_t *bm = (uint32_t *)(frontier + n);
        memset(bm, 0, (size_t)((n + 31) / 32) * sizeof(uint32_t));
        while (seg < batch) {
            int32_t b = bucket_of[frontier[seg]];
            int64_t seg_end = seg + 1;
            while (seg_end < c && bucket_of[frontier[seg_end]] == b)
                seg_end++;
            /* unweighted graphs collapse each bucket to one degree
             * value; (degree, id) order within such a segment is id
             * order, and distinct ids sort in O(len + span) by setting
             * one bit per id and draining the touched words in order
             * (read-clear keeps the bitmap zero for the next segment,
             * and no data-dependent branches feed the predictor). */
            double dmin = deg[frontier[seg]], dmax = dmin;
            for (int64_t q = seg + 1; q < seg_end; q++) {
                double d = deg[frontier[q]];
                if (d < dmin)
                    dmin = d;
                if (d > dmax)
                    dmax = d;
            }
            if (dmin == dmax) {
                int64_t wlo = n, whi = -1;
                for (int64_t q = seg; q < seg_end; q++) {
                    int32_t id = frontier[q];
                    int64_t w = id >> 5;
                    bm[w] |= (uint32_t)1 << (id & 31);
                    if (w < wlo)
                        wlo = w;
                    if (w > whi)
                        whi = w;
                }
                int64_t out = seg;
                for (int64_t w = wlo; w <= whi; w++) {
                    uint32_t word = bm[w];
                    bm[w] = 0;
                    while (word) {
                        frontier[out++] =
                            (int32_t)((w << 5) | __builtin_ctz(word));
                        word &= word - 1;
                    }
                }
            } else {
                sort_ids_prefix(frontier + seg, seg_end - seg, deg,
                                batch - seg);
            }
            seg = seg_end;
        }

        for (int64_t t = 0; t < batch; t++) {
            int32_t i = frontier[t];
            list_unlink(i, bucket_of[i], head, nxt, prv);
            bucket_of[i] = QUEUED;
        }
        int64_t pcount = 0;
        for (int64_t t = 0; t < batch; t++) {
            int32_t i = frontier[t];
            alive[i] = 0;
            bucket_of[i] = -1;
            double lost = 0.0;
            for (int64_t p = indptr[i]; p < indptr[i + 1]; p++) {
                int32_t j = indices[p];
                int32_t bj = bucket_of[j];
                /* branchless alive-test: a dead neighbour (bj == -1)
                 * contributes exactly 0.0, so the subtraction runs
                 * unconditionally and the poorly-predicted branch
                 * leaves the edge-visit path */
                double w = weights[p] * (double)(bj != -1);
                lost += w;
                deg[j] -= w;
                if (bj >= 0) {
                    bucket_of[j] = -2 - bj;
                    pending[pcount++] = j;
                }
            }
            W -= lost;
        }
        flush_pending(deg, pending, pcount, inv_width, nb, head, nxt, prv,
                      bucket_of);
        remaining -= batch;
        double density_after = remaining > 0 ? W / (double)remaining : 0.0;
        double *row = trace + (passes - 1) * 8;
        row[0] = (double)nodes_before;
        row[1] = weight_before;
        row[2] = density;
        row[3] = threshold;
        row[4] = (double)batch;
        row[5] = (double)remaining;
        row[6] = W;
        row[7] = density_after;
        if (remaining >= k && density_after > best_density) {
            best_density = density_after;
            best_pass = passes;
            memcpy(best_alive, alive, (size_t)n);
        }
    }
    *out_best_density = best_density;
    *out_best_pass = best_pass;
    *out_passes = passes;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Algorithm 3: directed peel at a fixed ratio c.                     */
/* ------------------------------------------------------------------ */

int repro_peel_directed(
    const int32_t *out_indptr, const int32_t *out_indices,
    const double *out_weights, const int32_t *in_indptr,
    const int32_t *in_indices, const double *in_weights, int64_t n,
    double total_weight, double ratio, double one_plus_eps, double eps_slack,
    int32_t use_max_degree_rule, int64_t nb, double *out_to_t,
    double *in_from_s, uint8_t *in_s, uint8_t *in_t, uint8_t *best_s,
    uint8_t *best_t, int32_t *s_bucket_of, int32_t *s_nxt, int32_t *s_prv,
    int32_t *s_head, int32_t *t_bucket_of, int32_t *t_nxt, int32_t *t_prv,
    int32_t *t_head, int32_t *frontier, double *trace, int64_t trace_cap,
    double *out_best_density, int64_t *out_best_pass, int64_t *out_passes) {
    double s_inv_width =
        build_buckets(out_to_t, 0, n, nb, s_head, s_nxt, s_prv, s_bucket_of);
    double t_inv_width =
        build_buckets(in_from_s, 0, n, nb, t_head, t_nxt, t_prv, t_bucket_of);
    int32_t *pending = frontier + n;
    int64_t s_size = n, t_size = n;
    double W = total_weight;
    double best_density = n > 0 ? W / sqrt((double)n * (double)n) : 0.0;
    int64_t best_pass = 0;
    int64_t passes = 0;

    while (s_size > 0 && t_size > 0) {
        if (passes >= trace_cap) {
            *out_passes = passes;
            return TRACE_OVERFLOW;
        }
        passes++;
        double density = W / sqrt((double)s_size * (double)t_size);
        int peel_s;
        if (use_max_degree_rule) {
            double max_out = 0.0, max_in = 0.0;
            for (int64_t i = 0; i < n; i++) {
                if (in_s[i] && out_to_t[i] > max_out)
                    max_out = out_to_t[i];
                if (in_t[i] && in_from_s[i] > max_in)
                    max_in = in_from_s[i];
            }
            peel_s = (max_out <= 0.0) ? 1 : (max_in / max_out >= ratio);
        } else {
            peel_s = ((double)s_size / (double)t_size) >= ratio;
        }

        int64_t s_before = s_size, t_before = t_size;
        double weight_before = W;
        double threshold;
        int64_t r = 0;
        if (peel_s) {
            threshold = one_plus_eps * W / (double)s_size;
            double cutoff = threshold + eps_slack;
            int64_t bstar = bucket_index(cutoff, s_inv_width, nb);
            for (int64_t b = 0; b <= bstar; b++) {
                int32_t i = s_head[b];
                while (i >= 0) {
                    int32_t next = s_nxt[i];
                    if (out_to_t[i] <= cutoff) {
                        list_unlink(i, (int32_t)b, s_head, s_nxt, s_prv);
                        s_bucket_of[i] = QUEUED;
                        frontier[r++] = i;
                    }
                    i = next;
                }
            }
            order_frontier(frontier, r, n, s_bucket_of);
            int64_t pcount = 0;
            for (int64_t t = 0; t < r; t++) {
                int32_t i = frontier[t];
                in_s[i] = 0;
                s_bucket_of[i] = -1;
                double lost = 0.0;
                for (int64_t p = out_indptr[i]; p < out_indptr[i + 1]; p++) {
                    int32_t j = out_indices[p];
                    /* only T passes queue T nodes, so during an S pass
                     * t_bucket_of[j] == -1 exactly when j left T */
                    int32_t bj = t_bucket_of[j];
                    double w = out_weights[p] * (double)(bj != -1);
                    lost += w;
                    in_from_s[j] -= w;
                    if (bj >= 0) {
                        t_bucket_of[j] = -2 - bj;
                        pending[pcount++] = j;
                    }
                }
                W -= lost;
            }
            flush_pending(in_from_s, pending, pcount, t_inv_width, nb, t_head,
                          t_nxt, t_prv, t_bucket_of);
            s_size -= r;
        } else {
            threshold = one_plus_eps * W / (double)t_size;
            double cutoff = threshold + eps_slack;
            int64_t bstar = bucket_index(cutoff, t_inv_width, nb);
            for (int64_t b = 0; b <= bstar; b++) {
                int32_t j = t_head[b];
                while (j >= 0) {
                    int32_t next = t_nxt[j];
                    if (in_from_s[j] <= cutoff) {
                        list_unlink(j, (int32_t)b, t_head, t_nxt, t_prv);
                        t_bucket_of[j] = QUEUED;
                        frontier[r++] = j;
                    }
                    j = next;
                }
            }
            order_frontier(frontier, r, n, t_bucket_of);
            int64_t pcount = 0;
            for (int64_t t = 0; t < r; t++) {
                int32_t j = frontier[t];
                in_t[j] = 0;
                t_bucket_of[j] = -1;
                double lost = 0.0;
                for (int64_t p = in_indptr[j]; p < in_indptr[j + 1]; p++) {
                    int32_t i = in_indices[p];
                    /* mirror of the S branch: s_bucket_of[i] == -1
                     * exactly when i left S */
                    int32_t bi = s_bucket_of[i];
                    double w = in_weights[p] * (double)(bi != -1);
                    lost += w;
                    out_to_t[i] -= w;
                    if (bi >= 0) {
                        s_bucket_of[i] = -2 - bi;
                        pending[pcount++] = i;
                    }
                }
                W -= lost;
            }
            flush_pending(out_to_t, pending, pcount, s_inv_width, nb, s_head,
                          s_nxt, s_prv, s_bucket_of);
            t_size -= r;
        }

        double density_after =
            (s_size > 0 && t_size > 0)
                ? W / sqrt((double)s_size * (double)t_size)
                : 0.0;
        double *row = trace + (passes - 1) * 11;
        row[0] = peel_s ? 0.0 : 1.0;
        row[1] = (double)s_before;
        row[2] = (double)t_before;
        row[3] = weight_before;
        row[4] = density;
        row[5] = threshold;
        row[6] = (double)r;
        row[7] = (double)s_size;
        row[8] = (double)t_size;
        row[9] = W;
        row[10] = density_after;
        if (density_after > best_density) {
            best_density = density_after;
            best_pass = passes;
            memcpy(best_s, in_s, (size_t)n);
            memcpy(best_t, in_t, (size_t)n);
        }
    }
    *out_best_density = best_density;
    *out_best_pass = best_pass;
    *out_passes = passes;
    return 0;
}
