"""A faithful single-process MapReduce simulator and the §5.2 jobs.

The paper realizes its algorithms in Hadoop; with no cluster available
we simulate the programming model exactly — user-supplied mappers,
combiners, partitioned shuffle, sorted reduce — and meter every round
(records in/out, shuffle bytes) so a calibrated cost model can
translate counters into simulated wall-clock (Figure 6.7).

* :mod:`~repro.mapreduce.job` — job specifications (mapper, combiner,
  reducer) and typed counters.
* :mod:`~repro.mapreduce.runtime` — the execution engine: input splits,
  map tasks, combiner, hash-partitioned shuffle, sorted reduce tasks.
* :mod:`~repro.mapreduce.cost` — the wall-clock cost model.
* :mod:`~repro.mapreduce.densest` — the paper's §5.2 realization of the
  peeling algorithms as MapReduce job chains (degree job + two-round
  node-removal job per pass).
"""

from .job import JobCounters, MapReduceJob
from .runtime import MapReduceRuntime
from .cost import CostModel
from .densest import (
    mr_densest_subgraph,
    mr_densest_subgraph_atleast_k,
    mr_densest_subgraph_directed,
    MapReduceRunReport,
)
from .runtime import TransientTaskError

__all__ = [
    "MapReduceJob",
    "JobCounters",
    "MapReduceRuntime",
    "TransientTaskError",
    "CostModel",
    "mr_densest_subgraph",
    "mr_densest_subgraph_atleast_k",
    "mr_densest_subgraph_directed",
    "MapReduceRunReport",
]
