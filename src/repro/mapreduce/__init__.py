"""A faithful single-process MapReduce simulator and the §5.2 jobs.

The paper realizes its algorithms in Hadoop; with no cluster available
we simulate the programming model exactly — user-supplied mappers,
combiners, partitioned shuffle, sorted reduce — and meter every round
(records in/out, shuffle bytes) so a calibrated cost model can
translate counters into simulated wall-clock (Figure 6.7).

* :mod:`~repro.mapreduce.job` — job specifications (mapper, combiner,
  reducer, plus optional vectorized batch twins) and typed counters.
* :mod:`~repro.mapreduce.runtime` — the execution engine: input splits,
  map tasks, combiner, hash-partitioned shuffle, sorted reduce tasks —
  record-at-a-time or columnar, per job/input.
* :mod:`~repro.mapreduce.columnar` — the array-native batch
  representation behind the columnar path (int64 keys + value columns,
  vectorized split/shuffle/group-by).
* :mod:`~repro.mapreduce.cost` — the wall-clock cost model.
* :mod:`~repro.mapreduce.densest` — the paper's §5.2 realization of the
  peeling algorithms as MapReduce job chains (degree job + two-round
  node-removal job per pass), on either engine.
"""

from .job import JobCounters, MapReduceJob
from .runtime import MapReduceRuntime, register_job
from .cost import CostModel
from .densest import (
    mr_densest_subgraph,
    mr_densest_subgraph_atleast_k,
    mr_densest_subgraph_directed,
    resolve_mr_engine,
    MapReduceRunReport,
)
from .runtime import TransientTaskError

__all__ = [
    "MapReduceJob",
    "JobCounters",
    "MapReduceRuntime",
    "register_job",
    "TransientTaskError",
    "CostModel",
    "mr_densest_subgraph",
    "mr_densest_subgraph_atleast_k",
    "mr_densest_subgraph_directed",
    "resolve_mr_engine",
    "MapReduceRunReport",
]

try:  # pragma: no cover - exercised only on numpy-less installs
    from .columnar import ColumnarKV, GroupedKV
except ImportError:  # pragma: no cover
    pass  # the batch types need numpy; importing them raises ImportError
else:
    __all__ += ["ColumnarKV", "GroupedKV"]
