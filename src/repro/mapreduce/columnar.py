"""Array-native key-value batches for the columnar MapReduce path.

The record-at-a-time runtime moves one Python tuple per record through
split, map, shuffle, and reduce; at the scales the paper targets the
interpreter overhead dwarfs the useful work.  This module holds the
columnar alternative: a batch of records is one int64 key array plus
named value columns (:class:`ColumnarKV`), and every runtime stage is
a handful of vector operations —

* **split** — round-robin via strided slicing (``arr[i::k]``), the
  exact record-to-task assignment of the record path;
* **shuffle** — :func:`stable_hash_int64`, a vectorized twin of the
  runtime's ``_stable_hash`` for int keys (bit-identical partition
  assignment), then boolean-mask partitioning;
* **group-by** — one stable ``np.argsort`` plus boundary detection
  (:meth:`ColumnarKV.group`), giving reducers contiguous per-key
  segments to aggregate with ``np.add.reduceat``-style kernels.

Batches require int64-able keys; jobs with string or tuple keys stay
on the record path.  Value columns may be any fixed-width dtype
(int64 endpoints, float64 weights, bool markers).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import MapReduceError

#: Multiplier of the runtime's Knuth-style int hash (see
#: ``runtime._stable_hash``); kept here so the vectorized twin cannot
#: drift from the scalar original.
_HASH_MULTIPLIER = np.uint64(2654435761)
_HASH_MASK = np.uint64(0xFFFFFFFF)


def stable_hash_int64(keys: np.ndarray) -> np.ndarray:
    """Vectorized ``_stable_hash`` for int keys; same values, any sign.

    ``(k * 2654435761) mod 2**32`` computed in uint64 (wraparound is
    mod 2**64, and reducing mod 2**32 afterwards gives the same
    residue Python's arbitrary-precision ``%`` produces, including for
    negative keys via their two's-complement image).
    """
    mixed = np.asarray(keys).astype(np.uint64, copy=False) * _HASH_MULTIPLIER
    return (mixed & _HASH_MASK).astype(np.int64)


class ColumnarKV:
    """A batch of key-value records in columnar (structure-of-arrays) form.

    Attributes
    ----------
    keys:
        int64 array; ``keys[i]`` is record i's key.
    columns:
        Ordered ``{name: array}`` of parallel value columns.  A record's
        value is the tuple of its column entries (a scalar when there is
        exactly one column), so ``to_pairs`` round-trips with the record
        runtime's ``(key, value)`` representation.
    """

    __slots__ = ("keys", "columns")

    def __init__(self, keys, columns: Dict[str, np.ndarray]) -> None:
        self.keys = np.asarray(keys, dtype=np.int64)
        if self.keys.ndim != 1:
            raise MapReduceError(
                f"batch keys must be a 1-D array, got shape {self.keys.shape}"
            )
        self.columns = {}
        for name, column in columns.items():
            column = np.asarray(column)
            if column.shape != self.keys.shape:
                raise MapReduceError(
                    f"batch column {name!r} has shape {column.shape}, "
                    f"keys have shape {self.keys.shape}"
                )
            self.columns[name] = column
        if not self.columns:
            raise MapReduceError("a batch needs at least one value column")

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[int, object]], names: Sequence[str] = ()
    ) -> "ColumnarKV":
        """Build a batch from record-form ``(key, value)`` pairs.

        Tuple values become one column per element; scalar values one
        column.  Mainly for tests and small conversions — production
        pipelines build their arrays directly.
        """
        pairs = list(pairs)
        if not pairs:
            raise MapReduceError("from_pairs needs at least one record")
        keys = np.asarray([k for k, _ in pairs], dtype=np.int64)
        first = pairs[0][1]
        if isinstance(first, tuple):
            width = len(first)
            names = list(names) if names else [f"v{i}" for i in range(width)]
            cols = {
                name: np.asarray([p[1][i] for p in pairs])
                for i, name in enumerate(names)
            }
        else:
            names = list(names) if names else ["v0"]
            cols = {names[0]: np.asarray([p[1] for p in pairs])}
        return cls(keys, cols)

    def to_pairs(self) -> List[Tuple[int, object]]:
        """The batch as record-form ``(key, value)`` pairs."""
        keys = self.keys.tolist()
        cols = [c.tolist() for c in self.columns.values()]
        if len(cols) == 1:
            return list(zip(keys, cols[0]))
        return [(k, tuple(vals)) for k, *vals in zip(keys, *cols)]

    # ------------------------------------------------------------------
    # Runtime-stage operations
    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        """Number of records in the batch."""
        return int(self.keys.size)

    def byte_size(self) -> int:
        """Shuffle size under the per-dtype model: 8 bytes per int64
        key plus each column's dtype itemsize, per record."""
        return 8 * self.num_records + sum(c.nbytes for c in self.columns.values())

    def schema(self) -> Tuple[Tuple[str, str], ...]:
        """The batch's column layout as ``((name, dtype_str), ...)``.

        Picklable and hashable — shipped in shuffle-run manifests so
        reduce tasks with no runs can still build an empty partition.
        """
        return tuple(
            (name, column.dtype.str) for name, column in self.columns.items()
        )

    @classmethod
    def empty(cls, schema: Sequence[Tuple[str, str]]) -> "ColumnarKV":
        """A zero-record batch with the given :meth:`schema` layout."""
        return cls(
            np.empty(0, dtype=np.int64),
            {name: np.empty(0, dtype=np.dtype(dt)) for name, dt in schema},
        )

    def take(self, selector) -> "ColumnarKV":
        """A new batch of the rows a fancy index / mask / slice selects."""
        return ColumnarKV(
            self.keys[selector],
            {name: column[selector] for name, column in self.columns.items()},
        )

    def split(self, num_splits: int) -> List["ColumnarKV"]:
        """Round-robin input splits — record i lands in split i % k,
        mirroring the record runtime's assignment exactly."""
        return [self.take(slice(i, None, num_splits)) for i in range(num_splits)]

    @classmethod
    def concat(cls, batches: Sequence["ColumnarKV"]) -> "ColumnarKV":
        """Concatenate batches (all must share the same column names)."""
        batches = list(batches)
        if not batches:
            raise MapReduceError("concat needs at least one batch")
        names = list(batches[0].columns)
        for other in batches[1:]:
            if list(other.columns) != names:
                raise MapReduceError(
                    f"cannot concat batches with columns {list(other.columns)} "
                    f"and {names}"
                )
        if len(batches) == 1:
            return batches[0]
        return cls(
            np.concatenate([b.keys for b in batches]),
            {
                name: np.concatenate([b.columns[name] for b in batches])
                for name in names
            },
        )

    def partition(self, num_partitions: int) -> List["ColumnarKV"]:
        """Hash-partition by key (the shuffle), preserving row order
        within each partition; assignment matches ``_stable_hash``.

        One stable argsort over the partition ids, then boundary
        slicing — O(n log n) total rather than one full mask scan per
        reducer, which matters at cluster-scale ``num_reducers``.  The
        stable sort keeps the record path's within-partition arrival
        order.
        """
        part_ids = stable_hash_int64(self.keys) % num_partitions
        by_partition = self.take(np.argsort(part_ids, kind="stable"))
        counts = np.bincount(part_ids, minlength=num_partitions)
        starts = np.zeros(num_partitions + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        return [
            by_partition.take(slice(starts[p], starts[p + 1]))
            for p in range(num_partitions)
        ]

    def group(self) -> "GroupedKV":
        """Sort-based group-by: one stable argsort + boundary scan."""
        order = np.argsort(self.keys, kind="stable")
        sorted_keys = self.keys[order]
        n = sorted_keys.size
        if n == 0:
            starts = np.zeros(1, dtype=np.int64)
            return GroupedKV(sorted_keys, starts, self.take(order))
        boundaries = np.empty(n, dtype=bool)
        boundaries[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundaries[1:])
        group_starts = np.flatnonzero(boundaries)
        starts = np.append(group_starts, n).astype(np.int64)
        return GroupedKV(sorted_keys[group_starts], starts, self.take(order))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{k}:{v.dtype}" for k, v in self.columns.items())
        return f"ColumnarKV(num_records={self.num_records}, columns=[{cols}])"


class GroupedKV:
    """A batch grouped by key: contiguous per-key row segments.

    Attributes
    ----------
    keys:
        The distinct keys, ascending (one per group).
    starts:
        int64 offsets of length ``num_groups + 1``: group g's rows are
        ``rows[starts[g]:starts[g+1]]`` (a CSR-style indptr).
    rows:
        The underlying :class:`ColumnarKV`, rows sorted by key with the
        original arrival order preserved within each key (stable sort).
    """

    __slots__ = ("keys", "starts", "rows")

    def __init__(self, keys: np.ndarray, starts: np.ndarray, rows: ColumnarKV) -> None:
        self.keys = keys
        self.starts = starts
        self.rows = rows

    @property
    def num_groups(self) -> int:
        """Number of distinct keys."""
        return int(self.keys.size)

    @property
    def counts(self) -> np.ndarray:
        """Rows per group."""
        return np.diff(self.starts)

    def column(self, name: str) -> np.ndarray:
        """A value column of the sorted rows."""
        return self.rows.columns[name]

    def segment_sum(self, name: str) -> np.ndarray:
        """Per-group sum of a column (sequential within each group, so
        the totals match the record reducer's left-to-right ``sum``)."""
        if self.num_groups == 0:
            return np.zeros(0, dtype=np.float64)
        return np.add.reduceat(self.rows.columns[name], self.starts[:-1])

    def segment_any(self, name: str) -> np.ndarray:
        """Per-group logical OR of a boolean column."""
        if self.num_groups == 0:
            return np.zeros(0, dtype=bool)
        return np.logical_or.reduceat(self.rows.columns[name], self.starts[:-1])

    def expand(self, per_group: np.ndarray) -> np.ndarray:
        """Broadcast one value per group back onto the sorted rows."""
        return np.repeat(per_group, self.counts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GroupedKV(num_groups={self.num_groups}, "
            f"num_records={self.rows.num_records})"
        )
