"""Wall-clock cost model for simulated MapReduce rounds.

The paper's Figure 6.7 plots the measured per-pass Hadoop wall-clock on
the im graph: early passes dominated by the full edge scan, later
passes bottoming out at the fixed scheduling overhead as the graph
shrinks.  We reproduce the *shape* with a standard linear cost model::

    time(round) = round_overhead
                + map_input · c_map / mappers
                + shuffle_bytes · c_shuffle_byte / reducers
                + reduce_groups · c_reduce / reducers

Defaults are calibrated so that a ~6M-edge im-scale input with 2000
mappers/reducers gives first-pass times of tens of minutes and a
per-round floor of a couple of minutes, echoing the paper's setup.
Absolute values are explicitly *not* claims about Hadoop — only the
declining per-pass shape is.

``shuffle_bytes`` comes from the runtime's deterministic per-type size
model (8-byte ints/floats, ``len + 1`` strings, elementwise tuples;
the columnar path charges dtype itemsizes), so the model prices both
runtime engines on the same scale.  On file-backed shuffle rounds the
runtime meters the same counter from the spilled run-file manifests —
the packed structured dtype makes the payload byte count identical to
the in-memory ``ColumnarKV.byte_size()`` — so the model needs no
file-shuffle special case (DESIGN.md §13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from .job import JobCounters


@dataclass(frozen=True)
class CostModel:
    """Linear per-record cost model translating counters into seconds.

    Attributes
    ----------
    round_overhead_s:
        Fixed per-round scheduling/startup cost (Hadoop job latency).
    map_cost_s:
        Seconds per map input record (per mapper).
    shuffle_cost_s_per_byte:
        Seconds per shuffled byte (per reducer).
    reduce_cost_s:
        Seconds per reduce group (per reducer).
    num_mappers / num_reducers:
        Parallelism the model divides the record costs by.
    """

    round_overhead_s: float = 30.0
    map_cost_s: float = 20e-6
    shuffle_cost_s_per_byte: float = 1e-6
    reduce_cost_s: float = 50e-6
    num_mappers: int = 2000
    num_reducers: int = 2000

    def round_seconds(self, counters: JobCounters) -> float:
        """Simulated wall-clock of one MapReduce round."""
        map_time = counters.map_input_records * self.map_cost_s / self.num_mappers
        shuffle_time = (
            counters.shuffle_bytes * self.shuffle_cost_s_per_byte / self.num_reducers
        )
        reduce_time = counters.reduce_groups * self.reduce_cost_s / self.num_reducers
        return self.round_overhead_s + map_time + shuffle_time + reduce_time

    def total_seconds(self, history: Iterable[JobCounters]) -> float:
        """Simulated wall-clock of a sequence of rounds."""
        return sum(self.round_seconds(c) for c in history)

    def pass_seconds(self, rounds_per_pass: List[List[JobCounters]]) -> List[float]:
        """Per-peeling-pass wall clock given each pass's rounds (Fig 6.7)."""
        return [self.total_seconds(rounds) for rounds in rounds_per_pass]
