"""The paper's §5.2 MapReduce realization of the peeling algorithms.

Edge records are key-value pairs ``(u, (v, w))`` — an edge from u to v
of weight w, keyed by its first endpoint.  Each peeling pass is the
exact job pipeline the paper describes:

1. **Degree job** (1 round): map each edge to ``⟨u; w⟩`` and ``⟨v; w⟩``
   (for directed graphs, ``⟨('out', u); w⟩`` and ``⟨('in', v); w⟩``),
   combine/reduce by summing.  The driver derives the surviving edge
   weight and density from the degree output — the "trivial counting"
   the paper mentions.

2. **Node-removal job** (2 rounds undirected, 1 round directed): the
   driver injects a marker record ``⟨r; '$'⟩`` for every node r slated
   for removal; the reducer for a key that saw a marker emits nothing,
   otherwise it copies its edges through, re-keyed on the other
   endpoint so the second round (or the next pass) can filter on it.
   Only edges with both endpoints unmarked survive — exactly the
   paper's two-phase filter.

The driver keeps O(n) state (alive flags, best set) and makes the same
threshold decisions as :func:`repro.core.densest_subgraph` /
:func:`repro.core.densest_subgraph_directed`; tests assert the outputs
are identical.  All rounds are metered, and
:class:`MapReduceRunReport` groups counters by peeling pass so a
:class:`~repro.mapreduce.cost.CostModel` can regenerate Figure 6.7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple, Union

from .._tolerances import THRESHOLD_EPS
from .._validation import check_epsilon, check_positive_float
from ..core.result import DensestSubgraphResult, DirectedDensestSubgraphResult
from ..core.trace import DirectedPassRecord, PassRecord
from ..errors import MapReduceError
from ..graph.directed import DirectedGraph
from ..graph.undirected import UndirectedGraph
from .cost import CostModel
from .job import JobCounters, MapReduceJob
from .runtime import MapReduceRuntime

Node = Hashable
_MARKER = "$"


# ----------------------------------------------------------------------
# Job definitions
# ----------------------------------------------------------------------
def _degree_mapper(u, edge):
    """Edge (u, (v, w)) -> one weight contribution per endpoint."""
    v, w = edge
    return [(u, w), (v, w)]


def _sum_reducer(key, values):
    """Classic sum reducer (doubles as the combiner)."""
    return [(key, sum(values))]


DEGREE_JOB = MapReduceJob(
    name="degree",
    mapper=_degree_mapper,
    reducer=_sum_reducer,
    combiner=_sum_reducer,
)


def _directed_degree_mapper(u, edge):
    """Edge (u, (v, w)) -> out-contribution for u, in-contribution for v."""
    v, w = edge
    return [(("out", u), w), (("in", v), w)]


DIRECTED_DEGREE_JOB = MapReduceJob(
    name="directed-degree",
    mapper=_directed_degree_mapper,
    reducer=_sum_reducer,
    combiner=_sum_reducer,
)


def _identity_mapper(key, value):
    """Pass records through unchanged."""
    return [(key, value)]


def _filter_and_pivot_reducer(key, values):
    """Drop all edges of a marked node; re-key survivors on the other endpoint.

    Values are either the marker string or ``(other, w)`` tuples; if any
    marker is present the whole group (all edges incident on ``key``
    from this side) is dropped.
    """
    if any(v == _MARKER for v in values):
        return []
    return [(other, (key, w)) for other, w in values]


REMOVAL_JOB = MapReduceJob(
    name="remove-marked",
    mapper=_identity_mapper,
    reducer=_filter_and_pivot_reducer,
)


def _filter_keep_key_reducer(key, values):
    """Drop all edges of a marked node; keep survivors keyed as-is."""
    if any(v == _MARKER for v in values):
        return []
    return [(key, value) for value in values]


REMOVAL_JOB_KEEP_KEY = MapReduceJob(
    name="remove-marked-keep-key",
    mapper=_identity_mapper,
    reducer=_filter_keep_key_reducer,
)


def _pivot_mapper(key, value):
    """Re-key an edge (u, (v, w)) on its second endpoint -> (v, (u, w)).

    Marker records ``(r, '$')`` pass through unchanged so the reducer can
    filter on the pivoted key.
    """
    if value == _MARKER:
        return [(key, value)]
    v, w = value
    return [(v, (key, w))]


REMOVAL_JOB_PIVOT_SECOND = MapReduceJob(
    name="remove-marked-second",
    mapper=_pivot_mapper,
    reducer=_filter_and_pivot_reducer,
)


# ----------------------------------------------------------------------
# Run report
# ----------------------------------------------------------------------
@dataclass
class MapReduceRunReport:
    """Result of an MR peeling run plus per-pass round counters.

    Attributes
    ----------
    result:
        The algorithm result (undirected or directed variant).
    rounds_per_pass:
        ``rounds_per_pass[p]`` lists the :class:`JobCounters` of every
        MapReduce round executed during peeling pass p.
    """

    result: Union[DensestSubgraphResult, DirectedDensestSubgraphResult]
    rounds_per_pass: List[List[JobCounters]]

    def pass_times(self, cost_model: Optional[CostModel] = None) -> List[float]:
        """Simulated per-pass wall-clock seconds (Figure 6.7's series)."""
        model = cost_model if cost_model is not None else CostModel()
        return model.pass_seconds(self.rounds_per_pass)

    def total_rounds(self) -> int:
        """Total MapReduce rounds across the run."""
        return sum(len(rounds) for rounds in self.rounds_per_pass)

    def total_time(self, cost_model: Optional[CostModel] = None) -> float:
        """Simulated total wall-clock seconds."""
        return sum(self.pass_times(cost_model))


# ----------------------------------------------------------------------
# Undirected driver (Algorithm 1 in MapReduce)
# ----------------------------------------------------------------------
def mr_densest_subgraph(
    graph: UndirectedGraph,
    epsilon: float = 0.5,
    *,
    runtime: Optional[MapReduceRuntime] = None,
) -> MapReduceRunReport:
    """Algorithm 1 as a chain of MapReduce rounds (§5.2).

    Per pass: one degree round, then the two-round removal filter.
    Returns the same node set, density, and per-pass trace as
    :func:`repro.core.densest_subgraph`.
    """
    epsilon = check_epsilon(epsilon)
    if runtime is None:
        runtime = MapReduceRuntime()
    labels = list(graph.nodes())
    if not labels:
        raise MapReduceError("graph has no nodes")
    alive: Dict[Node, bool] = {u: True for u in labels}
    remaining = len(labels)
    edges: List[Tuple[Node, Tuple[Node, float]]] = [
        (u, (v, w)) for u, v, w in graph.weighted_edges()
    ]

    best_set = list(labels)
    best_density: Optional[float] = None
    best_pass = 0
    factor = 2.0 * (1.0 + epsilon)
    pending: Optional[dict] = None
    trace: List[PassRecord] = []
    rounds_per_pass: List[List[JobCounters]] = []
    pass_index = 0

    while remaining > 0:
        pass_index += 1
        pass_rounds: List[JobCounters] = []

        # Round 1: degrees (and, via their sum, the surviving weight).
        degree_pairs, counters = runtime.run(DEGREE_JOB, edges)
        pass_rounds.append(counters)
        degrees: Dict[Node, float] = dict(degree_pairs)
        weight = sum(degrees.values()) / 2.0
        density = weight / remaining

        if pending is not None:
            trace.append(
                PassRecord(edges_after=weight, density_after=density, **pending)
            )
            if density > best_density:  # type: ignore[operator]
                best_density = density
                best_set = [u for u in labels if alive[u]]
                best_pass = pending["pass_index"]
        if best_density is None:
            best_density = density

        threshold = factor * density
        to_remove = [
            u
            for u in labels
            if alive[u] and degrees.get(u, 0.0) <= threshold + THRESHOLD_EPS
        ]

        pending = {
            "pass_index": pass_index,
            "nodes_before": remaining,
            "edges_before": weight,
            "density_before": density,
            "threshold": threshold,
            "removed": len(to_remove),
            "nodes_after": remaining - len(to_remove),
        }
        for u in to_remove:
            alive[u] = False
        remaining -= len(to_remove)

        # Rounds 2-3: drop edges incident to removed nodes.  Markers are
        # injected into the job input; the first round filters on the
        # first endpoint and re-keys on the second, the second round
        # filters on the (new) first key and re-keys back.
        markers = [(u, _MARKER) for u in to_remove]
        half_filtered, counters = runtime.run(REMOVAL_JOB, edges + markers)
        pass_rounds.append(counters)
        edges, counters = runtime.run(REMOVAL_JOB, half_filtered + markers)
        pass_rounds.append(counters)
        rounds_per_pass.append(pass_rounds)

    if pending is not None:
        trace.append(PassRecord(edges_after=0.0, density_after=0.0, **pending))

    result = DensestSubgraphResult(
        nodes=frozenset(best_set),
        density=best_density if best_density is not None else 0.0,
        passes=pass_index,
        epsilon=epsilon,
        best_pass=best_pass,
        trace=tuple(trace),
    )
    return MapReduceRunReport(result=result, rounds_per_pass=rounds_per_pass)


# ----------------------------------------------------------------------
# Size-constrained driver (Algorithm 2 in MapReduce)
# ----------------------------------------------------------------------
def mr_densest_subgraph_atleast_k(
    graph: UndirectedGraph,
    k: int,
    epsilon: float = 0.5,
    *,
    runtime: Optional[MapReduceRuntime] = None,
) -> MapReduceRunReport:
    """Algorithm 2 as a chain of MapReduce rounds.

    Identical round structure to :func:`mr_densest_subgraph` (degree
    round + two removal rounds per pass); the driver restricts the
    removal batch to the ε/(1+ε)·|S| lowest-degree members of the
    threshold set and stops once |S| < k, matching
    :func:`repro.core.densest_subgraph_atleast_k`.
    """
    from .._validation import check_positive_int

    epsilon = check_epsilon(epsilon)
    check_positive_int(k, "k")
    if runtime is None:
        runtime = MapReduceRuntime()
    labels = list(graph.nodes())
    if not labels:
        raise MapReduceError("graph has no nodes")
    if k > len(labels):
        raise MapReduceError(f"k={k} exceeds the graph's {len(labels)} nodes")
    alive: Dict[Node, bool] = {u: True for u in labels}
    remaining = len(labels)
    edges: List[Tuple[Node, Tuple[Node, float]]] = [
        (u, (v, w)) for u, v, w in graph.weighted_edges()
    ]

    best_set = list(labels)
    best_density: Optional[float] = None
    best_pass = 0
    factor = 2.0 * (1.0 + epsilon)
    batch_fraction = epsilon / (1.0 + epsilon)
    pending: Optional[dict] = None
    trace: List[PassRecord] = []
    rounds_per_pass: List[List[JobCounters]] = []
    pass_index = 0

    while remaining >= k and remaining > 0:
        pass_index += 1
        pass_rounds: List[JobCounters] = []
        degree_pairs, counters = runtime.run(DEGREE_JOB, edges)
        pass_rounds.append(counters)
        degrees: Dict[Node, float] = dict(degree_pairs)
        weight = sum(degrees.values()) / 2.0
        density = weight / remaining

        if pending is not None:
            trace.append(
                PassRecord(edges_after=weight, density_after=density, **pending)
            )
            if density > best_density:  # type: ignore[operator]
                best_density = density
                best_set = [u for u in labels if alive[u]]
                best_pass = pending["pass_index"]
        if best_density is None:
            best_density = density

        threshold = factor * density
        candidates = [
            u
            for u in labels
            if alive[u] and degrees.get(u, 0.0) <= threshold + THRESHOLD_EPS
        ]
        batch_size = min(
            len(candidates), max(1, math.floor(batch_fraction * remaining))
        )
        candidates.sort(key=lambda u: degrees.get(u, 0.0))
        to_remove = candidates[:batch_size]

        pending = {
            "pass_index": pass_index,
            "nodes_before": remaining,
            "edges_before": weight,
            "density_before": density,
            "threshold": threshold,
            "removed": len(to_remove),
            "nodes_after": remaining - len(to_remove),
        }
        for u in to_remove:
            alive[u] = False
        remaining -= len(to_remove)

        markers = [(u, _MARKER) for u in to_remove]
        half_filtered, counters = runtime.run(REMOVAL_JOB, edges + markers)
        pass_rounds.append(counters)
        edges, counters = runtime.run(REMOVAL_JOB, half_filtered + markers)
        pass_rounds.append(counters)
        rounds_per_pass.append(pass_rounds)

    if pending is not None:
        if remaining == 0:
            edges_after, density_after = 0.0, 0.0
        else:
            # |S| fell below k; value the final state with one more
            # degree round so the trace is complete (cannot win).
            degree_pairs, counters = runtime.run(DEGREE_JOB, edges)
            if rounds_per_pass:
                rounds_per_pass[-1].append(counters)
            edges_after = sum(dict(degree_pairs).values()) / 2.0
            density_after = edges_after / remaining
            if remaining >= k and density_after > (best_density or 0.0):
                best_density = density_after
                best_set = [u for u in labels if alive[u]]
                best_pass = pending["pass_index"]
        trace.append(
            PassRecord(edges_after=edges_after, density_after=density_after, **pending)
        )

    result = DensestSubgraphResult(
        nodes=frozenset(best_set),
        density=best_density if best_density is not None else 0.0,
        passes=pass_index,
        epsilon=epsilon,
        best_pass=best_pass,
        trace=tuple(trace),
    )
    return MapReduceRunReport(result=result, rounds_per_pass=rounds_per_pass)


# ----------------------------------------------------------------------
# Directed driver (Algorithm 3 in MapReduce)
# ----------------------------------------------------------------------
def mr_densest_subgraph_directed(
    graph: DirectedGraph,
    ratio: float = 1.0,
    epsilon: float = 0.5,
    *,
    runtime: Optional[MapReduceRuntime] = None,
) -> MapReduceRunReport:
    """Algorithm 3 as a chain of MapReduce rounds.

    Per pass: one directed-degree round plus one removal round on the
    peeled side (S-peels filter on the first endpoint, T-peels pivot
    and filter on the second).  Returns the same pair and trace as
    :func:`repro.core.densest_subgraph_directed`.
    """
    epsilon = check_epsilon(epsilon)
    check_positive_float(ratio, "ratio")
    if runtime is None:
        runtime = MapReduceRuntime()
    labels = list(graph.nodes())
    if not labels:
        raise MapReduceError("graph has no nodes")
    in_s: Dict[Node, bool] = {u: True for u in labels}
    in_t: Dict[Node, bool] = {u: True for u in labels}
    s_size = t_size = len(labels)
    edges: List[Tuple[Node, Tuple[Node, float]]] = [
        (u, (v, w)) for u, v, w in graph.weighted_edges()
    ]

    best_s = list(labels)
    best_t = list(labels)
    best_density: Optional[float] = None
    best_pass = 0
    one_plus_eps = 1.0 + epsilon
    pending: Optional[dict] = None
    trace: List[DirectedPassRecord] = []
    rounds_per_pass: List[List[JobCounters]] = []
    pass_index = 0

    while s_size > 0 and t_size > 0:
        pass_index += 1
        pass_rounds: List[JobCounters] = []

        degree_pairs, counters = runtime.run(DIRECTED_DEGREE_JOB, edges)
        pass_rounds.append(counters)
        out_to_t: Dict[Node, float] = {}
        in_from_s: Dict[Node, float] = {}
        weight = 0.0
        for (kind, node), value in degree_pairs:
            if kind == "out":
                out_to_t[node] = value
                weight += value
            else:
                in_from_s[node] = value
        density = weight / math.sqrt(s_size * t_size)

        if pending is not None:
            trace.append(
                DirectedPassRecord(
                    edges_after=weight, density_after=density, **pending
                )
            )
            if density > best_density:  # type: ignore[operator]
                best_density = density
                best_s = [u for u in labels if in_s[u]]
                best_t = [u for u in labels if in_t[u]]
                best_pass = pending["pass_index"]
        if best_density is None:
            best_density = density

        peel_s = s_size / t_size >= ratio
        if peel_s:
            threshold = one_plus_eps * weight / s_size
            to_remove = [
                u
                for u in labels
                if in_s[u] and out_to_t.get(u, 0.0) <= threshold + THRESHOLD_EPS
            ]
            side = "S"
        else:
            threshold = one_plus_eps * weight / t_size
            to_remove = [
                u
                for u in labels
                if in_t[u] and in_from_s.get(u, 0.0) <= threshold + THRESHOLD_EPS
            ]
            side = "T"

        pending = {
            "pass_index": pass_index,
            "side": side,
            "s_before": s_size,
            "t_before": t_size,
            "edges_before": weight,
            "density_before": density,
            "threshold": threshold,
            "removed": len(to_remove),
            "s_after": s_size - len(to_remove) if side == "S" else s_size,
            "t_after": t_size - len(to_remove) if side == "T" else t_size,
        }
        markers = [(u, _MARKER) for u in to_remove]
        if side == "S":
            for u in to_remove:
                in_s[u] = False
            s_size -= len(to_remove)
            # Edges are keyed on the first endpoint already: one round
            # filters the marked sources, keeping the key orientation.
            edges, counters = runtime.run(REMOVAL_JOB_KEEP_KEY, edges + markers)
            pass_rounds.append(counters)
        else:
            for u in to_remove:
                in_t[u] = False
            t_size -= len(to_remove)
            # Pivot onto the second endpoint in the mapper, filter the
            # marked targets, and the reducer re-keys survivors back on
            # the first endpoint — one round.
            edges, counters = runtime.run(
                REMOVAL_JOB_PIVOT_SECOND, edges + markers
            )
            pass_rounds.append(counters)
        rounds_per_pass.append(pass_rounds)

    if pending is not None:
        trace.append(
            DirectedPassRecord(edges_after=0.0, density_after=0.0, **pending)
        )

    result = DirectedDensestSubgraphResult(
        s_nodes=frozenset(best_s),
        t_nodes=frozenset(best_t),
        density=best_density if best_density is not None else 0.0,
        ratio=ratio,
        passes=pass_index,
        epsilon=epsilon,
        best_pass=best_pass,
        trace=tuple(trace),
    )
    return MapReduceRunReport(result=result, rounds_per_pass=rounds_per_pass)
