"""The paper's §5.2 MapReduce realization of the peeling algorithms.

Edge records are key-value pairs ``(u, (v, w))`` — an edge from u to v
of weight w, keyed by its first endpoint.  Each peeling pass is the
exact job pipeline the paper describes:

1. **Degree job** (1 round): map each edge to ``⟨u; w⟩`` and ``⟨v; w⟩``
   (for directed graphs, ``⟨('out', u); w⟩`` and ``⟨('in', v); w⟩``),
   combine/reduce by summing.  The driver derives the surviving edge
   weight and density from the degree output — the "trivial counting"
   the paper mentions.

2. **Node-removal job** (2 rounds undirected, 1 round directed): the
   driver injects a marker record ``⟨r; '$'⟩`` for every node r slated
   for removal; the reducer for a key that saw a marker emits nothing,
   otherwise it copies its edges through, re-keyed on the other
   endpoint so the second round (or the next pass) can filter on it.
   Only edges with both endpoints unmarked survive — exactly the
   paper's two-phase filter.

Every job carries both record-form and batch-form callables, so the
same pipeline runs on either runtime path.  ``engine="numpy"`` (or
``engine="auto"`` on an int-labeled graph) drives the jobs columnar:
edges live as int64/float64 arrays keyed by node label, markers are a
boolean column instead of the ``'$'`` string, degrees come back as one
``np.bincount``-style segment sum, and removal is a boolean mask over
the grouped edge rows.  The columnar drivers meter the same record
counts per round as the record drivers and make the same threshold
decisions up to float-reassociation noise (combiner-local and
pass-total sums associate differently, so degrees and thresholds can
differ in the last ULPs; bit-identical for dyadic weights, e.g.
unweighted graphs — the same caveat as the core engines).  The parity
suite in
``tests/test_mapreduce_columnar.py`` asserts outputs, traces, and
counters agree.

The driver keeps O(n) state (alive flags, best set) and makes the same
threshold decisions as :func:`repro.core.densest_subgraph` /
:func:`repro.core.densest_subgraph_directed`; tests assert the outputs
are identical.  All rounds are metered, and
:class:`MapReduceRunReport` groups counters by peeling pass so a
:class:`~repro.mapreduce.cost.CostModel` can regenerate Figure 6.7.

``fused=True`` replaces the degree + removal pipeline with a single
*fused* round per pass: the edge input stays static across passes and
the driver broadcasts the cumulative kill set as a per-round parameter
(``takes_params`` jobs), so the fused mapper filters dead-endpoint
edges and emits degree contributions in one pass — one round instead
of three (undirected) or two (directed), and no edge records travel
back to the driver.  Under a file-backed shuffle the fused columnar
drivers additionally spill the edge input once up front
(``runtime.spill_splits``) so every subsequent pass ships only the
kill set to the workers.  See DESIGN.md §13.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple, Union

from .._tolerances import THRESHOLD_EPS
from .._validation import check_epsilon, check_positive_float
from ..core.result import DensestSubgraphResult, DirectedDensestSubgraphResult
from ..core.trace import DirectedPassRecord, PassRecord
from ..errors import MapReduceError, ParameterError
from ..graph.directed import DirectedGraph
from ..graph.undirected import UndirectedGraph
from .cost import CostModel
from .job import JobCounters, MapReduceJob
from .runtime import MapReduceRuntime, register_job

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as np

    from .columnar import ColumnarKV
except ImportError:  # pragma: no cover
    np = None
    ColumnarKV = None

Node = Hashable
_MARKER = "$"

#: Engine names accepted by the drivers' ``engine=`` parameter.
ENGINES = ("auto", "python", "numpy")


# ----------------------------------------------------------------------
# Job definitions
# ----------------------------------------------------------------------
def _degree_mapper(u, edge):
    """Edge (u, (v, w)) -> one weight contribution per endpoint."""
    v, w = edge
    return [(u, w), (v, w)]


def _sum_reducer(key, values):
    """Classic sum reducer (doubles as the combiner)."""
    return [(key, sum(values))]


def _degree_mapper_batch(batch):
    """Batch twin of :func:`_degree_mapper`: 2 records per edge row."""
    w = batch.columns["w"]
    return ColumnarKV(
        np.concatenate([batch.keys, batch.columns["v"]]),
        {"w": np.concatenate([w, w])},
    )


def _sum_reducer_batch(grouped):
    """Batch twin of :func:`_sum_reducer`: one segment sum per key."""
    return ColumnarKV(grouped.keys, {"w": grouped.segment_sum("w")})


DEGREE_JOB = register_job(MapReduceJob(
    name="degree",
    mapper=_degree_mapper,
    reducer=_sum_reducer,
    combiner=_sum_reducer,
    mapper_batch=_degree_mapper_batch,
    reducer_batch=_sum_reducer_batch,
    combiner_batch=_sum_reducer_batch,
))


def _directed_degree_mapper(u, edge):
    """Edge (u, (v, w)) -> out-contribution for u, in-contribution for v."""
    v, w = edge
    return [(("out", u), w), (("in", v), w)]


def _directed_degree_mapper_batch(batch):
    """Batch twin of :func:`_directed_degree_mapper`.

    Int keys cannot carry the ``('out', u)`` tuple tag, so the side is
    packed into the key's low bit instead: ``2u`` for out, ``2v + 1``
    for in (the driver decodes with a shift).  The encoding is a
    bijection, so per-task key multiplicities — and hence all record
    counters — match the record form exactly.
    """
    w = batch.columns["w"]
    return ColumnarKV(
        np.concatenate([batch.keys * 2, batch.columns["v"] * 2 + 1]),
        {"w": np.concatenate([w, w])},
    )


DIRECTED_DEGREE_JOB = register_job(MapReduceJob(
    name="directed-degree",
    mapper=_directed_degree_mapper,
    reducer=_sum_reducer,
    combiner=_sum_reducer,
    mapper_batch=_directed_degree_mapper_batch,
    reducer_batch=_sum_reducer_batch,
    combiner_batch=_sum_reducer_batch,
))


def _identity_mapper(key, value):
    """Pass records through unchanged."""
    return [(key, value)]


def _identity_mapper_batch(batch):
    """Pass a batch through unchanged."""
    return batch


def _filter_and_pivot_reducer(key, values):
    """Drop all edges of a marked node; re-key survivors on the other endpoint.

    Values are either the marker string or ``(other, w)`` tuples; if any
    marker is present the whole group (all edges incident on ``key``
    from this side) is dropped.
    """
    if any(v == _MARKER for v in values):
        return []
    return [(other, (key, w)) for other, w in values]


def _filter_and_pivot_reducer_batch(grouped):
    """Batch twin of :func:`_filter_and_pivot_reducer`.

    Markers are a boolean ``m`` column; a marker row marks its whole
    group (it shares the group's key), so one segment-OR plus a repeat
    yields the row-level drop mask, and the survivors re-key on the
    ``v`` column with the old key moving into ``v``.
    """
    keep = ~grouped.expand(grouped.segment_any("m"))
    rows = grouped.rows
    new_keys = rows.columns["v"][keep]
    return ColumnarKV(
        new_keys,
        {
            "v": rows.keys[keep],
            "w": rows.columns["w"][keep],
            "m": np.zeros(new_keys.size, dtype=bool),
        },
    )


REMOVAL_JOB = register_job(MapReduceJob(
    name="remove-marked",
    mapper=_identity_mapper,
    reducer=_filter_and_pivot_reducer,
    mapper_batch=_identity_mapper_batch,
    reducer_batch=_filter_and_pivot_reducer_batch,
))


def _filter_keep_key_reducer(key, values):
    """Drop all edges of a marked node; keep survivors keyed as-is."""
    if any(v == _MARKER for v in values):
        return []
    return [(key, value) for value in values]


def _filter_keep_key_reducer_batch(grouped):
    """Batch twin of :func:`_filter_keep_key_reducer`."""
    keep = ~grouped.expand(grouped.segment_any("m"))
    return grouped.rows.take(keep)


REMOVAL_JOB_KEEP_KEY = register_job(MapReduceJob(
    name="remove-marked-keep-key",
    mapper=_identity_mapper,
    reducer=_filter_keep_key_reducer,
    mapper_batch=_identity_mapper_batch,
    reducer_batch=_filter_keep_key_reducer_batch,
))


def _pivot_mapper(key, value):
    """Re-key an edge (u, (v, w)) on its second endpoint -> (v, (u, w)).

    Marker records ``(r, '$')`` pass through unchanged so the reducer can
    filter on the pivoted key.
    """
    if value == _MARKER:
        return [(key, value)]
    v, w = value
    return [(v, (key, w))]


def _pivot_mapper_batch(batch):
    """Batch twin of :func:`_pivot_mapper`: swap key and ``v`` on edge
    rows, pass marker rows through unchanged."""
    m = batch.columns["m"]
    return ColumnarKV(
        np.where(m, batch.keys, batch.columns["v"]),
        {
            "v": np.where(m, batch.columns["v"], batch.keys),
            "w": batch.columns["w"],
            "m": m,
        },
    )


REMOVAL_JOB_PIVOT_SECOND = register_job(MapReduceJob(
    name="remove-marked-second",
    mapper=_pivot_mapper,
    reducer=_filter_and_pivot_reducer,
    mapper_batch=_pivot_mapper_batch,
    reducer_batch=_filter_and_pivot_reducer_batch,
))


# ----------------------------------------------------------------------
# Fused peel round: filter + degree in ONE map/reduce round per pass.
#
# The classic pipeline pays three shuffles per pass (degree round + two
# marker-filter rounds) and rewrites the whole edge set every pass.
# The fused job inverts the data flow: the edge input stays *static*
# across all passes, and the driver broadcasts the cumulative kill set
# (a small ``params`` value — the driver already keeps O(n) alive
# state) to the mappers, which drop dead-endpoint edges and emit the
# degree contributions of the survivors; the combiner sums partial
# degrees per map task, the reducer finishes the sum, and the driver
# makes the kill decision directly off the degree output.  Markers,
# pivot rounds, and the per-pass edge rewrite disappear — per-pass
# shuffle drops to the (combiner-compacted) degree records alone.
# ----------------------------------------------------------------------
def _in_sorted(values: "np.ndarray", table: "np.ndarray") -> "np.ndarray":
    """Vectorized membership of ``values`` in a sorted int64 ``table``
    (``table`` must be nonempty)."""
    pos = np.searchsorted(table, values)
    pos[pos == table.size] = 0
    return table[pos] == values


def _fused_degree_mapper(u, edge, dead):
    """Edge (u, (v, w)) -> degree contributions, unless an endpoint is
    in the broadcast kill set."""
    v, w = edge
    if u in dead or v in dead:
        return []
    return [(u, w), (v, w)]


def _fused_degree_mapper_batch(batch, dead):
    """Batch twin of :func:`_fused_degree_mapper`; ``dead`` is a sorted
    int64 label array (same membership the record twin's set tests)."""
    keys = batch.keys
    v = batch.columns["v"]
    w = batch.columns["w"]
    if dead.size:
        keep = ~(_in_sorted(keys, dead) | _in_sorted(v, dead))
        keys, v, w = keys[keep], v[keep], w[keep]
    return ColumnarKV(
        np.concatenate([keys, v]),
        {"w": np.concatenate([w, w])},
    )


FUSED_DEGREE_JOB = register_job(MapReduceJob(
    name="fused-degree",
    mapper=_fused_degree_mapper,
    reducer=_sum_reducer,
    combiner=_sum_reducer,
    mapper_batch=_fused_degree_mapper_batch,
    reducer_batch=_sum_reducer_batch,
    combiner_batch=_sum_reducer_batch,
    takes_params=True,
))


def _fused_directed_degree_mapper(u, edge, dead):
    """Directed fused twin: ``dead`` is a ``(dead_s, dead_t)`` pair;
    an edge survives while its source is in S and its target in T."""
    dead_s, dead_t = dead
    v, w = edge
    if u in dead_s or v in dead_t:
        return []
    return [(("out", u), w), (("in", v), w)]


def _fused_directed_degree_mapper_batch(batch, dead):
    """Batch twin of :func:`_fused_directed_degree_mapper` with the
    same bit-packed side keys as the classic directed degree job."""
    dead_s, dead_t = dead
    keys = batch.keys
    v = batch.columns["v"]
    w = batch.columns["w"]
    drop = np.zeros(keys.size, dtype=bool)
    if dead_s.size:
        drop |= _in_sorted(keys, dead_s)
    if dead_t.size:
        drop |= _in_sorted(v, dead_t)
    if drop.any():
        keep = ~drop
        keys, v, w = keys[keep], v[keep], w[keep]
    return ColumnarKV(
        np.concatenate([keys * 2, v * 2 + 1]),
        {"w": np.concatenate([w, w])},
    )


FUSED_DIRECTED_DEGREE_JOB = register_job(MapReduceJob(
    name="fused-directed-degree",
    mapper=_fused_directed_degree_mapper,
    reducer=_sum_reducer,
    combiner=_sum_reducer,
    mapper_batch=_fused_directed_degree_mapper_batch,
    reducer_batch=_sum_reducer_batch,
    combiner_batch=_sum_reducer_batch,
    takes_params=True,
))


# ----------------------------------------------------------------------
# Engine resolution and columnar input construction
# ----------------------------------------------------------------------
#: Columnar-eligible labels must leave one bit of int64 headroom so the
#: directed degree job can bit-pack the side tag (``2u`` / ``2v + 1``)
#: without overflow.
_LABEL_BOUND = 2**62


def _int_labeled(graph) -> bool:
    """True when every node label fits the columnar int64 key space
    (with the bit-packing headroom).  CSR snapshots with an integer
    label array are decided by one vectorized min/max instead of a
    per-element scan."""
    from ..kernels import CSRDigraph, CSRGraph

    if isinstance(graph, (CSRGraph, CSRDigraph)):
        arr = np.asarray(graph.labels)
        if arr.dtype.kind in "iu":
            if arr.size == 0:
                return True
            return -_LABEL_BOUND <= int(arr.min()) and int(arr.max()) < _LABEL_BOUND
        labels = graph.labels
    else:
        labels = graph.nodes()
    return all(
        isinstance(node, int)
        and not isinstance(node, bool)
        and -_LABEL_BOUND <= node < _LABEL_BOUND
        for node in labels
    )


def resolve_mr_engine(engine: str, graph) -> str:
    """Resolve an ``engine=`` argument to ``"python"`` or ``"numpy"``.

    The columnar path keys shuffles on int64 node labels, so unlike the
    core peels (which factorize any labels into dense indices up
    front), ``"auto"`` requires the graph to be int-labeled; exotic
    labels stay on the record path.  ``engine="numpy"`` on an
    ineligible graph raises instead of silently degrading.
    """
    if engine not in ENGINES:
        raise ParameterError(f"engine must be one of {ENGINES}, got {engine!r}")
    if engine == "python":
        return "python"
    if np is None:
        if engine == "numpy":
            raise ParameterError(
                "engine='numpy' requires numpy, which is not importable; "
                "use engine='python'"
            )
        return "python"
    eligible = _int_labeled(graph)
    if engine == "numpy":
        if not eligible:
            raise MapReduceError(
                "engine='numpy' needs int node labels with |label| < 2**62 "
                "(columnar batches key the shuffle on int64 labels, and the "
                "directed degree job bit-packs a side tag); relabel or use "
                "engine='python'"
            )
        return "numpy"
    return "numpy" if eligible else "python"


def _edge_batch(graph) -> "ColumnarKV":
    """The graph's edges as a columnar batch keyed on the first endpoint.

    Columns: ``v`` (other endpoint label), ``w`` (weight), ``m``
    (marker flag, all False).  CSR snapshots are translated with two
    vectorized label gathers; dict graphs take one counted
    ``np.fromiter`` pass over ``weighted_edges()``, preserving the
    iteration order the record drivers see so the two engines assign
    identical records to identical tasks.
    """
    from ..kernels import CSRDigraph, CSRGraph

    if isinstance(graph, (CSRGraph, CSRDigraph)):
        ui, vi, w = graph.edge_arrays()
        labels_arr = np.asarray(graph.labels, dtype=np.int64)
        keys = labels_arr[ui]
        v = labels_arr[vi]
    else:
        m = graph.num_edges
        dtype = np.dtype([("u", np.int64), ("v", np.int64), ("w", np.float64)])
        arr = np.fromiter(graph.weighted_edges(), dtype=dtype, count=m)
        keys, v, w = arr["u"], arr["v"], arr["w"].copy()
    return ColumnarKV(keys, {"v": v, "w": w, "m": np.zeros(keys.size, dtype=bool)})


def _fused_edge_batch(edges: "ColumnarKV") -> "ColumnarKV":
    """The fused jobs' static input: edge rows without the marker
    column (fused passes never inject markers, so the bool column
    would be dead weight in every split shipped or spilled)."""
    return ColumnarKV(
        edges.keys, {"v": edges.columns["v"], "w": edges.columns["w"]}
    )


def _fused_columnar_input(edges: "ColumnarKV", runtime: MapReduceRuntime):
    """The fused drivers' job input and (optional) spill handle.

    Under the file-backed shuffle the static edge batch is spilled to
    disk once, so each pass ships only the kill-set broadcast and run
    manifests through the driver; otherwise the in-memory batch is
    reused directly.  The caller must ``cleanup()`` a non-None handle.
    """
    fused_edges = _fused_edge_batch(edges)
    if runtime.uses_file_shuffle:
        spilled = runtime.spill_splits(fused_edges, tag="peel-input")
        return spilled, spilled
    return fused_edges, None


def _marker_batch(marked_labels: "np.ndarray") -> "ColumnarKV":
    """Marker rows ``⟨r; m=True⟩`` for the nodes slated for removal."""
    count = marked_labels.size
    return ColumnarKV(
        marked_labels,
        {
            "v": np.full(count, -1, dtype=np.int64),
            "w": np.zeros(count, dtype=np.float64),
            "m": np.ones(count, dtype=bool),
        },
    )


def _with_markers(edges: "ColumnarKV", marked_labels: "np.ndarray") -> "ColumnarKV":
    """Edges plus trailing marker rows (the record path's ``edges + markers``)."""
    if marked_labels.size == 0:
        return edges
    return ColumnarKV.concat([edges, _marker_batch(marked_labels)])


def _columnar_state(graph):
    """Shared prologue of the columnar drivers.

    Returns ``(labels, labels_arr, order, sorted_labels, edges)`` — the
    label universe, its int64 array and searchsorted index (for
    scattering job outputs back onto dense driver state), and the
    initial edge batch.
    """
    from ..kernels.csr import build_label_index

    labels = list(graph.nodes())
    if not labels:
        raise MapReduceError("graph has no nodes")
    labels_arr = np.asarray(labels, dtype=np.int64)
    order, sorted_labels = build_label_index(labels_arr)
    return labels, labels_arr, order, sorted_labels, _edge_batch(graph)


def _scatter_by_label(order, sorted_labels, n, keys, values) -> "np.ndarray":
    """Dense length-``n`` float array holding ``values`` at the driver
    indices of the ``keys`` labels (zeros elsewhere)."""
    from ..kernels.csr import lookup_indices

    out = np.zeros(n, dtype=np.float64)
    if keys.size:
        out[lookup_indices(order, sorted_labels, keys)] = values
    return out


# ----------------------------------------------------------------------
# Run report
# ----------------------------------------------------------------------
@dataclass
class MapReduceRunReport:
    """Result of an MR peeling run plus per-pass round counters.

    Attributes
    ----------
    result:
        The algorithm result (undirected or directed variant).
    rounds_per_pass:
        ``rounds_per_pass[p]`` lists the :class:`JobCounters` of every
        MapReduce round executed during peeling pass p.
    """

    result: Union[DensestSubgraphResult, DirectedDensestSubgraphResult]
    rounds_per_pass: List[List[JobCounters]]

    def pass_times(self, cost_model: Optional[CostModel] = None) -> List[float]:
        """Simulated per-pass wall-clock seconds (Figure 6.7's series)."""
        model = cost_model if cost_model is not None else CostModel()
        return model.pass_seconds(self.rounds_per_pass)

    def total_rounds(self) -> int:
        """Total MapReduce rounds across the run."""
        return sum(len(rounds) for rounds in self.rounds_per_pass)

    def total_time(self, cost_model: Optional[CostModel] = None) -> float:
        """Simulated total wall-clock seconds."""
        return sum(self.pass_times(cost_model))


# ----------------------------------------------------------------------
# Undirected driver (Algorithm 1 in MapReduce)
# ----------------------------------------------------------------------
def mr_densest_subgraph(
    graph: UndirectedGraph,
    epsilon: float = 0.5,
    *,
    runtime: Optional[MapReduceRuntime] = None,
    engine: str = "auto",
    fused: bool = False,
) -> MapReduceRunReport:
    """Algorithm 1 as a chain of MapReduce rounds (§5.2).

    Per pass: one degree round, then the two-round removal filter.
    Returns the same node set, density, and per-pass trace as
    :func:`repro.core.densest_subgraph`.  ``engine`` selects the
    runtime path: ``"python"`` (record-at-a-time), ``"numpy"``
    (columnar batches), or ``"auto"`` (columnar when the graph is
    int-labeled and numpy is importable).

    ``fused=True`` collapses each pass to ONE round: the edge input
    stays static, the driver broadcasts the cumulative kill set as job
    params, and the fused job filters + counts degrees in the mapper
    (combiner-compacted) — same node set, density, threshold
    decisions, and pass count as the classic three-round pipeline
    (bit-identical for dyadic weights, the usual float-reassociation
    caveat otherwise) at a fraction of the shuffled bytes.
    """
    epsilon = check_epsilon(epsilon)
    if runtime is None:
        runtime = MapReduceRuntime()
    if resolve_mr_engine(engine, graph) == "numpy":
        return _mr_densest_subgraph_columnar(graph, epsilon, runtime, fused=fused)
    labels = list(graph.nodes())
    if not labels:
        raise MapReduceError("graph has no nodes")
    alive: Dict[Node, bool] = {u: True for u in labels}
    remaining = len(labels)
    edges: List[Tuple[Node, Tuple[Node, float]]] = [
        (u, (v, w)) for u, v, w in graph.weighted_edges()
    ]
    dead: set = set()

    best_set = list(labels)
    best_density: Optional[float] = None
    best_pass = 0
    factor = 2.0 * (1.0 + epsilon)
    pending: Optional[dict] = None
    trace: List[PassRecord] = []
    rounds_per_pass: List[List[JobCounters]] = []
    pass_index = 0

    while remaining > 0:
        pass_index += 1
        pass_rounds: List[JobCounters] = []

        # Round 1: degrees (and, via their sum, the surviving weight).
        # Fused mode filters the static edge set against the broadcast
        # kill set inside the same round.
        if fused:
            degree_pairs, counters = runtime.run(
                FUSED_DEGREE_JOB, edges, params=frozenset(dead)
            )
        else:
            degree_pairs, counters = runtime.run(DEGREE_JOB, edges)
        pass_rounds.append(counters)
        degrees: Dict[Node, float] = dict(degree_pairs)
        weight = sum(degrees.values()) / 2.0
        density = weight / remaining

        if pending is not None:
            trace.append(
                PassRecord(edges_after=weight, density_after=density, **pending)
            )
            if density > best_density:  # type: ignore[operator]
                best_density = density
                best_set = [u for u in labels if alive[u]]
                best_pass = pending["pass_index"]
        if best_density is None:
            best_density = density

        threshold = factor * density
        to_remove = [
            u
            for u in labels
            if alive[u] and degrees.get(u, 0.0) <= threshold + THRESHOLD_EPS
        ]

        pending = {
            "pass_index": pass_index,
            "nodes_before": remaining,
            "edges_before": weight,
            "density_before": density,
            "threshold": threshold,
            "removed": len(to_remove),
            "nodes_after": remaining - len(to_remove),
        }
        for u in to_remove:
            alive[u] = False
        remaining -= len(to_remove)

        if fused:
            # No removal rounds: next pass's mapper filter sees the
            # grown kill set instead of a rewritten edge list.
            dead.update(to_remove)
        else:
            # Rounds 2-3: drop edges incident to removed nodes.  Markers
            # are injected into the job input; the first round filters on
            # the first endpoint and re-keys on the second, the second
            # round filters on the (new) first key and re-keys back.
            markers = [(u, _MARKER) for u in to_remove]
            half_filtered, counters = runtime.run(REMOVAL_JOB, edges + markers)
            pass_rounds.append(counters)
            edges, counters = runtime.run(REMOVAL_JOB, half_filtered + markers)
            pass_rounds.append(counters)
        rounds_per_pass.append(pass_rounds)

    if pending is not None:
        trace.append(PassRecord(edges_after=0.0, density_after=0.0, **pending))

    result = DensestSubgraphResult(
        nodes=frozenset(best_set),
        density=best_density if best_density is not None else 0.0,
        passes=pass_index,
        epsilon=epsilon,
        best_pass=best_pass,
        trace=tuple(trace),
    )
    return MapReduceRunReport(result=result, rounds_per_pass=rounds_per_pass)


def _mr_densest_subgraph_columnar(
    graph, epsilon: float, runtime: MapReduceRuntime, fused: bool = False
) -> MapReduceRunReport:
    """Columnar twin of :func:`mr_densest_subgraph`.

    Identical round structure and threshold decisions; the driver-side
    state is an alive bitmap plus a dense degree array scattered from
    the degree job's output batch.  Fused mode additionally pre-spills
    the static edge input once under a file-backed shuffle, so every
    pass ships only the sorted kill-set broadcast.
    """
    labels, labels_arr, order, sorted_labels, edges = _columnar_state(graph)
    n = len(labels)
    alive = np.ones(n, dtype=bool)
    remaining = n

    best_mask = alive.copy()
    best_density: Optional[float] = None
    best_pass = 0
    factor = 2.0 * (1.0 + epsilon)
    pending: Optional[dict] = None
    trace: List[PassRecord] = []
    rounds_per_pass: List[List[JobCounters]] = []
    pass_index = 0

    job_input = spilled = None
    dead_sorted = np.empty(0, dtype=np.int64)
    if fused:
        job_input, spilled = _fused_columnar_input(edges, runtime)

    try:
        while remaining > 0:
            pass_index += 1
            pass_rounds: List[JobCounters] = []

            if fused:
                degree_out, counters = runtime.run(
                    FUSED_DEGREE_JOB, job_input, params=dead_sorted
                )
            else:
                degree_out, counters = runtime.run(DEGREE_JOB, edges)
            pass_rounds.append(counters)
            degrees = _scatter_by_label(
                order, sorted_labels, n, degree_out.keys, degree_out.columns["w"]
            )
            weight = float(degrees.sum()) / 2.0
            density = weight / remaining

            if pending is not None:
                trace.append(
                    PassRecord(edges_after=weight, density_after=density, **pending)
                )
                if density > best_density:  # type: ignore[operator]
                    best_density = density
                    best_mask = alive.copy()
                    best_pass = pending["pass_index"]
            if best_density is None:
                best_density = density

            threshold = factor * density
            remove_mask = alive & (degrees <= threshold + THRESHOLD_EPS)
            removed = int(remove_mask.sum())

            pending = {
                "pass_index": pass_index,
                "nodes_before": remaining,
                "edges_before": weight,
                "density_before": density,
                "threshold": threshold,
                "removed": removed,
                "nodes_after": remaining - removed,
            }
            alive &= ~remove_mask
            remaining -= removed

            if fused:
                dead_sorted = np.sort(labels_arr[~alive])
            else:
                marked = labels_arr[remove_mask]
                half_filtered, counters = runtime.run(
                    REMOVAL_JOB, _with_markers(edges, marked)
                )
                pass_rounds.append(counters)
                edges, counters = runtime.run(
                    REMOVAL_JOB, _with_markers(half_filtered, marked)
                )
                pass_rounds.append(counters)
            rounds_per_pass.append(pass_rounds)
    finally:
        if spilled is not None:
            spilled.cleanup()

    if pending is not None:
        trace.append(PassRecord(edges_after=0.0, density_after=0.0, **pending))

    result = DensestSubgraphResult(
        nodes=frozenset(labels[i] for i in np.flatnonzero(best_mask)),
        density=best_density if best_density is not None else 0.0,
        passes=pass_index,
        epsilon=epsilon,
        best_pass=best_pass,
        trace=tuple(trace),
    )
    return MapReduceRunReport(result=result, rounds_per_pass=rounds_per_pass)


# ----------------------------------------------------------------------
# Size-constrained driver (Algorithm 2 in MapReduce)
# ----------------------------------------------------------------------
def mr_densest_subgraph_atleast_k(
    graph: UndirectedGraph,
    k: int,
    epsilon: float = 0.5,
    *,
    runtime: Optional[MapReduceRuntime] = None,
    engine: str = "auto",
    fused: bool = False,
) -> MapReduceRunReport:
    """Algorithm 2 as a chain of MapReduce rounds.

    Identical round structure to :func:`mr_densest_subgraph` (degree
    round + two removal rounds per pass); the driver restricts the
    removal batch to the ε/(1+ε)·|S| lowest-degree members of the
    threshold set and stops once |S| < k, matching
    :func:`repro.core.densest_subgraph_atleast_k`.  ``engine`` and
    ``fused`` select the runtime path as in
    :func:`mr_densest_subgraph` (fused: one kill-set-broadcast round
    per pass, including the final valuation round).
    """
    from .._validation import check_positive_int

    epsilon = check_epsilon(epsilon)
    check_positive_int(k, "k")
    if runtime is None:
        runtime = MapReduceRuntime()
    if resolve_mr_engine(engine, graph) == "numpy":
        return _mr_densest_subgraph_atleast_k_columnar(
            graph, k, epsilon, runtime, fused=fused
        )
    labels = list(graph.nodes())
    if not labels:
        raise MapReduceError("graph has no nodes")
    if k > len(labels):
        raise MapReduceError(f"k={k} exceeds the graph's {len(labels)} nodes")
    alive: Dict[Node, bool] = {u: True for u in labels}
    remaining = len(labels)
    edges: List[Tuple[Node, Tuple[Node, float]]] = [
        (u, (v, w)) for u, v, w in graph.weighted_edges()
    ]
    dead: set = set()

    best_set = list(labels)
    best_density: Optional[float] = None
    best_pass = 0
    factor = 2.0 * (1.0 + epsilon)
    batch_fraction = epsilon / (1.0 + epsilon)
    pending: Optional[dict] = None
    trace: List[PassRecord] = []
    rounds_per_pass: List[List[JobCounters]] = []
    pass_index = 0

    while remaining >= k and remaining > 0:
        pass_index += 1
        pass_rounds: List[JobCounters] = []
        if fused:
            degree_pairs, counters = runtime.run(
                FUSED_DEGREE_JOB, edges, params=frozenset(dead)
            )
        else:
            degree_pairs, counters = runtime.run(DEGREE_JOB, edges)
        pass_rounds.append(counters)
        degrees: Dict[Node, float] = dict(degree_pairs)
        weight = sum(degrees.values()) / 2.0
        density = weight / remaining

        if pending is not None:
            trace.append(
                PassRecord(edges_after=weight, density_after=density, **pending)
            )
            if density > best_density:  # type: ignore[operator]
                best_density = density
                best_set = [u for u in labels if alive[u]]
                best_pass = pending["pass_index"]
        if best_density is None:
            best_density = density

        threshold = factor * density
        candidates = [
            u
            for u in labels
            if alive[u] and degrees.get(u, 0.0) <= threshold + THRESHOLD_EPS
        ]
        batch_size = min(
            len(candidates), max(1, math.floor(batch_fraction * remaining))
        )
        candidates.sort(key=lambda u: degrees.get(u, 0.0))
        to_remove = candidates[:batch_size]

        pending = {
            "pass_index": pass_index,
            "nodes_before": remaining,
            "edges_before": weight,
            "density_before": density,
            "threshold": threshold,
            "removed": len(to_remove),
            "nodes_after": remaining - len(to_remove),
        }
        for u in to_remove:
            alive[u] = False
        remaining -= len(to_remove)

        if fused:
            dead.update(to_remove)
        else:
            markers = [(u, _MARKER) for u in to_remove]
            half_filtered, counters = runtime.run(REMOVAL_JOB, edges + markers)
            pass_rounds.append(counters)
            edges, counters = runtime.run(REMOVAL_JOB, half_filtered + markers)
            pass_rounds.append(counters)
        rounds_per_pass.append(pass_rounds)

    if pending is not None:
        if remaining == 0:
            edges_after, density_after = 0.0, 0.0
        else:
            # |S| fell below k; value the final state with one more
            # degree round so the trace is complete (cannot win).
            if fused:
                degree_pairs, counters = runtime.run(
                    FUSED_DEGREE_JOB, edges, params=frozenset(dead)
                )
            else:
                degree_pairs, counters = runtime.run(DEGREE_JOB, edges)
            if rounds_per_pass:
                rounds_per_pass[-1].append(counters)
            edges_after = sum(dict(degree_pairs).values()) / 2.0
            density_after = edges_after / remaining
            if remaining >= k and density_after > (best_density or 0.0):
                best_density = density_after
                best_set = [u for u in labels if alive[u]]
                best_pass = pending["pass_index"]
        trace.append(
            PassRecord(edges_after=edges_after, density_after=density_after, **pending)
        )

    result = DensestSubgraphResult(
        nodes=frozenset(best_set),
        density=best_density if best_density is not None else 0.0,
        passes=pass_index,
        epsilon=epsilon,
        best_pass=best_pass,
        trace=tuple(trace),
    )
    return MapReduceRunReport(result=result, rounds_per_pass=rounds_per_pass)


def _mr_densest_subgraph_atleast_k_columnar(
    graph, k: int, epsilon: float, runtime: MapReduceRuntime, fused: bool = False
) -> MapReduceRunReport:
    """Columnar twin of :func:`mr_densest_subgraph_atleast_k`."""
    labels, labels_arr, order, sorted_labels, edges = _columnar_state(graph)
    n = len(labels)
    if k > n:
        raise MapReduceError(f"k={k} exceeds the graph's {n} nodes")
    alive = np.ones(n, dtype=bool)
    remaining = n

    best_mask = alive.copy()
    best_density: Optional[float] = None
    best_pass = 0
    factor = 2.0 * (1.0 + epsilon)
    batch_fraction = epsilon / (1.0 + epsilon)
    pending: Optional[dict] = None
    trace: List[PassRecord] = []
    rounds_per_pass: List[List[JobCounters]] = []
    pass_index = 0

    job_input = spilled = None
    dead_sorted = np.empty(0, dtype=np.int64)
    if fused:
        job_input, spilled = _fused_columnar_input(edges, runtime)

    def _scatter_degrees(degree_out) -> "np.ndarray":
        return _scatter_by_label(
            order, sorted_labels, n, degree_out.keys, degree_out.columns["w"]
        )

    def _degree_round():
        if fused:
            return runtime.run(FUSED_DEGREE_JOB, job_input, params=dead_sorted)
        return runtime.run(DEGREE_JOB, edges)

    try:
        while remaining >= k and remaining > 0:
            pass_index += 1
            pass_rounds: List[JobCounters] = []
            degree_out, counters = _degree_round()
            pass_rounds.append(counters)
            degrees = _scatter_degrees(degree_out)
            weight = float(degrees.sum()) / 2.0
            density = weight / remaining

            if pending is not None:
                trace.append(
                    PassRecord(edges_after=weight, density_after=density, **pending)
                )
                if density > best_density:  # type: ignore[operator]
                    best_density = density
                    best_mask = alive.copy()
                    best_pass = pending["pass_index"]
            if best_density is None:
                best_density = density

            threshold = factor * density
            candidate_idx = np.flatnonzero(
                alive & (degrees <= threshold + THRESHOLD_EPS)
            )
            batch_size = min(
                candidate_idx.size, max(1, math.floor(batch_fraction * remaining))
            )
            # Stable sort by degree keeps the record driver's label-order
            # tie-break, so both engines remove the identical batch.
            by_degree = np.argsort(degrees[candidate_idx], kind="stable")
            remove_idx = candidate_idx[by_degree[:batch_size]]

            pending = {
                "pass_index": pass_index,
                "nodes_before": remaining,
                "edges_before": weight,
                "density_before": density,
                "threshold": threshold,
                "removed": int(remove_idx.size),
                "nodes_after": remaining - int(remove_idx.size),
            }
            alive[remove_idx] = False
            remaining -= int(remove_idx.size)

            if fused:
                dead_sorted = np.sort(labels_arr[~alive])
            else:
                marked = labels_arr[remove_idx]
                half_filtered, counters = runtime.run(
                    REMOVAL_JOB, _with_markers(edges, marked)
                )
                pass_rounds.append(counters)
                edges, counters = runtime.run(
                    REMOVAL_JOB, _with_markers(half_filtered, marked)
                )
                pass_rounds.append(counters)
            rounds_per_pass.append(pass_rounds)

        if pending is not None:
            if remaining == 0:
                edges_after, density_after = 0.0, 0.0
            else:
                degree_out, counters = _degree_round()
                if rounds_per_pass:
                    rounds_per_pass[-1].append(counters)
                edges_after = float(_scatter_degrees(degree_out).sum()) / 2.0
                density_after = edges_after / remaining
                if remaining >= k and density_after > (best_density or 0.0):
                    best_density = density_after
                    best_mask = alive.copy()
                    best_pass = pending["pass_index"]
            trace.append(
                PassRecord(
                    edges_after=edges_after, density_after=density_after, **pending
                )
            )
    finally:
        if spilled is not None:
            spilled.cleanup()

    result = DensestSubgraphResult(
        nodes=frozenset(labels[i] for i in np.flatnonzero(best_mask)),
        density=best_density if best_density is not None else 0.0,
        passes=pass_index,
        epsilon=epsilon,
        best_pass=best_pass,
        trace=tuple(trace),
    )
    return MapReduceRunReport(result=result, rounds_per_pass=rounds_per_pass)


# ----------------------------------------------------------------------
# Directed driver (Algorithm 3 in MapReduce)
# ----------------------------------------------------------------------
def mr_densest_subgraph_directed(
    graph: DirectedGraph,
    ratio: float = 1.0,
    epsilon: float = 0.5,
    *,
    runtime: Optional[MapReduceRuntime] = None,
    engine: str = "auto",
    fused: bool = False,
) -> MapReduceRunReport:
    """Algorithm 3 as a chain of MapReduce rounds.

    Per pass: one directed-degree round plus one removal round on the
    peeled side (S-peels filter on the first endpoint, T-peels pivot
    and filter on the second).  Returns the same pair and trace as
    :func:`repro.core.densest_subgraph_directed`.  ``engine`` selects
    the runtime path as in :func:`mr_densest_subgraph`; ``fused``
    collapses each pass to a single degree round that broadcasts the
    per-side kill sets instead of rewriting the edge list.
    """
    epsilon = check_epsilon(epsilon)
    check_positive_float(ratio, "ratio")
    if runtime is None:
        runtime = MapReduceRuntime()
    if resolve_mr_engine(engine, graph) == "numpy":
        return _mr_densest_subgraph_directed_columnar(
            graph, ratio, epsilon, runtime, fused=fused
        )
    labels = list(graph.nodes())
    if not labels:
        raise MapReduceError("graph has no nodes")
    in_s: Dict[Node, bool] = {u: True for u in labels}
    in_t: Dict[Node, bool] = {u: True for u in labels}
    s_size = t_size = len(labels)
    edges: List[Tuple[Node, Tuple[Node, float]]] = [
        (u, (v, w)) for u, v, w in graph.weighted_edges()
    ]
    dead_s: set = set()
    dead_t: set = set()

    best_s = list(labels)
    best_t = list(labels)
    best_density: Optional[float] = None
    best_pass = 0
    one_plus_eps = 1.0 + epsilon
    pending: Optional[dict] = None
    trace: List[DirectedPassRecord] = []
    rounds_per_pass: List[List[JobCounters]] = []
    pass_index = 0

    while s_size > 0 and t_size > 0:
        pass_index += 1
        pass_rounds: List[JobCounters] = []

        if fused:
            degree_pairs, counters = runtime.run(
                FUSED_DIRECTED_DEGREE_JOB,
                edges,
                params=(frozenset(dead_s), frozenset(dead_t)),
            )
        else:
            degree_pairs, counters = runtime.run(DIRECTED_DEGREE_JOB, edges)
        pass_rounds.append(counters)
        out_to_t: Dict[Node, float] = {}
        in_from_s: Dict[Node, float] = {}
        weight = 0.0
        for (kind, node), value in degree_pairs:
            if kind == "out":
                out_to_t[node] = value
                weight += value
            else:
                in_from_s[node] = value
        density = weight / math.sqrt(s_size * t_size)

        if pending is not None:
            trace.append(
                DirectedPassRecord(
                    edges_after=weight, density_after=density, **pending
                )
            )
            if density > best_density:  # type: ignore[operator]
                best_density = density
                best_s = [u for u in labels if in_s[u]]
                best_t = [u for u in labels if in_t[u]]
                best_pass = pending["pass_index"]
        if best_density is None:
            best_density = density

        peel_s = s_size / t_size >= ratio
        if peel_s:
            threshold = one_plus_eps * weight / s_size
            to_remove = [
                u
                for u in labels
                if in_s[u] and out_to_t.get(u, 0.0) <= threshold + THRESHOLD_EPS
            ]
            side = "S"
        else:
            threshold = one_plus_eps * weight / t_size
            to_remove = [
                u
                for u in labels
                if in_t[u] and in_from_s.get(u, 0.0) <= threshold + THRESHOLD_EPS
            ]
            side = "T"

        pending = {
            "pass_index": pass_index,
            "side": side,
            "s_before": s_size,
            "t_before": t_size,
            "edges_before": weight,
            "density_before": density,
            "threshold": threshold,
            "removed": len(to_remove),
            "s_after": s_size - len(to_remove) if side == "S" else s_size,
            "t_after": t_size - len(to_remove) if side == "T" else t_size,
        }
        if side == "S":
            for u in to_remove:
                in_s[u] = False
            s_size -= len(to_remove)
            if fused:
                dead_s.update(to_remove)
            else:
                # Edges are keyed on the first endpoint already: one
                # round filters the marked sources, keeping the key
                # orientation.
                markers = [(u, _MARKER) for u in to_remove]
                edges, counters = runtime.run(
                    REMOVAL_JOB_KEEP_KEY, edges + markers
                )
                pass_rounds.append(counters)
        else:
            for u in to_remove:
                in_t[u] = False
            t_size -= len(to_remove)
            if fused:
                dead_t.update(to_remove)
            else:
                # Pivot onto the second endpoint in the mapper, filter
                # the marked targets, and the reducer re-keys survivors
                # back on the first endpoint — one round.
                markers = [(u, _MARKER) for u in to_remove]
                edges, counters = runtime.run(
                    REMOVAL_JOB_PIVOT_SECOND, edges + markers
                )
                pass_rounds.append(counters)
        rounds_per_pass.append(pass_rounds)

    if pending is not None:
        trace.append(
            DirectedPassRecord(edges_after=0.0, density_after=0.0, **pending)
        )

    result = DirectedDensestSubgraphResult(
        s_nodes=frozenset(best_s),
        t_nodes=frozenset(best_t),
        density=best_density if best_density is not None else 0.0,
        ratio=ratio,
        passes=pass_index,
        epsilon=epsilon,
        best_pass=best_pass,
        trace=tuple(trace),
    )
    return MapReduceRunReport(result=result, rounds_per_pass=rounds_per_pass)


def _mr_densest_subgraph_directed_columnar(
    graph, ratio: float, epsilon: float, runtime: MapReduceRuntime, fused: bool = False
) -> MapReduceRunReport:
    """Columnar twin of :func:`mr_densest_subgraph_directed`.

    The degree job's side-tagged keys come back bit-packed (``2u`` /
    ``2v + 1``); one shift and parity test splits them into the two
    counter arrays.
    """
    labels, labels_arr, order, sorted_labels, edges = _columnar_state(graph)
    n = len(labels)
    in_s = np.ones(n, dtype=bool)
    in_t = np.ones(n, dtype=bool)
    s_size = t_size = n

    best_s_mask = in_s.copy()
    best_t_mask = in_t.copy()
    best_density: Optional[float] = None
    best_pass = 0
    one_plus_eps = 1.0 + epsilon
    pending: Optional[dict] = None
    trace: List[DirectedPassRecord] = []
    rounds_per_pass: List[List[JobCounters]] = []
    pass_index = 0

    job_input = spilled = None
    dead_s_sorted = np.empty(0, dtype=np.int64)
    dead_t_sorted = np.empty(0, dtype=np.int64)
    if fused:
        job_input, spilled = _fused_columnar_input(edges, runtime)

    try:
        while s_size > 0 and t_size > 0:
            pass_index += 1
            pass_rounds: List[JobCounters] = []

            if fused:
                degree_out, counters = runtime.run(
                    FUSED_DIRECTED_DEGREE_JOB,
                    job_input,
                    params=(dead_s_sorted, dead_t_sorted),
                )
            else:
                degree_out, counters = runtime.run(DIRECTED_DEGREE_JOB, edges)
            pass_rounds.append(counters)
            keys = degree_out.keys
            values = degree_out.columns["w"]
            is_in = (keys & 1).astype(bool)
            node_labels = keys >> 1
            out_sel = ~is_in
            out_to_t = _scatter_by_label(
                order, sorted_labels, n, node_labels[out_sel], values[out_sel]
            )
            in_from_s = _scatter_by_label(
                order, sorted_labels, n, node_labels[is_in], values[is_in]
            )
            weight = float(values[out_sel].sum())
            density = weight / math.sqrt(s_size * t_size)

            if pending is not None:
                trace.append(
                    DirectedPassRecord(
                        edges_after=weight, density_after=density, **pending
                    )
                )
                if density > best_density:  # type: ignore[operator]
                    best_density = density
                    best_s_mask = in_s.copy()
                    best_t_mask = in_t.copy()
                    best_pass = pending["pass_index"]
            if best_density is None:
                best_density = density

            peel_s = s_size / t_size >= ratio
            if peel_s:
                threshold = one_plus_eps * weight / s_size
                remove_mask = in_s & (out_to_t <= threshold + THRESHOLD_EPS)
                side = "S"
            else:
                threshold = one_plus_eps * weight / t_size
                remove_mask = in_t & (in_from_s <= threshold + THRESHOLD_EPS)
                side = "T"
            removed = int(remove_mask.sum())

            pending = {
                "pass_index": pass_index,
                "side": side,
                "s_before": s_size,
                "t_before": t_size,
                "edges_before": weight,
                "density_before": density,
                "threshold": threshold,
                "removed": removed,
                "s_after": s_size - removed if side == "S" else s_size,
                "t_after": t_size - removed if side == "T" else t_size,
            }
            if side == "S":
                in_s &= ~remove_mask
                s_size -= removed
                if fused:
                    dead_s_sorted = np.sort(labels_arr[~in_s])
                else:
                    edges, counters = runtime.run(
                        REMOVAL_JOB_KEEP_KEY,
                        _with_markers(edges, labels_arr[remove_mask]),
                    )
                    pass_rounds.append(counters)
            else:
                in_t &= ~remove_mask
                t_size -= removed
                if fused:
                    dead_t_sorted = np.sort(labels_arr[~in_t])
                else:
                    edges, counters = runtime.run(
                        REMOVAL_JOB_PIVOT_SECOND,
                        _with_markers(edges, labels_arr[remove_mask]),
                    )
                    pass_rounds.append(counters)
            rounds_per_pass.append(pass_rounds)

        if pending is not None:
            trace.append(
                DirectedPassRecord(edges_after=0.0, density_after=0.0, **pending)
            )
    finally:
        if spilled is not None:
            spilled.cleanup()

    result = DirectedDensestSubgraphResult(
        s_nodes=frozenset(labels[i] for i in np.flatnonzero(best_s_mask)),
        t_nodes=frozenset(labels[i] for i in np.flatnonzero(best_t_mask)),
        density=best_density if best_density is not None else 0.0,
        ratio=ratio,
        passes=pass_index,
        epsilon=epsilon,
        best_pass=best_pass,
        trace=tuple(trace),
    )
    return MapReduceRunReport(result=result, rounds_per_pass=rounds_per_pass)
