"""MapReduce job specifications and counters.

A job is three pure functions in the classic Dean–Ghemawat signatures:

* ``mapper(key, value) -> iterable of (key2, value2)``
* ``combiner(key2, values) -> iterable of (key2, value2)`` (optional,
  run per map task on its local output, must be reducer-compatible)
* ``reducer(key2, values) -> iterable of (key3, value3)``

A job may additionally declare *batch* forms of the same functions,
which the runtime uses when the input arrives as a
:class:`~repro.mapreduce.columnar.ColumnarKV` (int64 keys + value
columns) instead of a list of pairs:

* ``mapper_batch(batch: ColumnarKV) -> ColumnarKV``
* ``combiner_batch(grouped: GroupedKV) -> ColumnarKV`` (optional)
* ``reducer_batch(grouped: GroupedKV) -> ColumnarKV``

The batch functions must be semantically equivalent to their record
twins — same output records, same record counts per stage — so a job
returns identical results and counters on either execution path (the
columnar parity suite enforces this for the §5.2 jobs).

Jobs must not close over mutable state that they modify — the runtime
may run tasks in any order (it shuffles task order deliberately to
shake out order dependence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Tuple

KV = Tuple[Any, Any]
Mapper = Callable[[Any, Any], Iterable[KV]]
Reducer = Callable[[Any, list], Iterable[KV]]
Combiner = Callable[[Any, list], Iterable[KV]]
#: Batch-form callables (ColumnarKV/GroupedKV in, ColumnarKV out).
BatchMapper = Callable[[Any], Any]
BatchReducer = Callable[[Any], Any]
BatchCombiner = Callable[[Any], Any]


@dataclass(frozen=True)
class MapReduceJob:
    """Specification of one MapReduce round.

    Attributes
    ----------
    name:
        Human-readable job name (appears in reports).
    mapper / reducer / combiner:
        The record-at-a-time user functions; ``combiner`` may be None.
    mapper_batch / reducer_batch / combiner_batch:
        Optional vectorized twins operating on whole
        :class:`~repro.mapreduce.columnar.ColumnarKV` batches; a job
        declaring both mapper_batch and reducer_batch can run on the
        columnar runtime path.
    takes_params:
        When True the mappers take a third argument — a small,
        picklable, per-round broadcast value the driver passes to
        ``runtime.run(job, input, params=...)`` (record form
        ``mapper(key, value, params)``, batch form
        ``mapper_batch(batch, params)``).  This is the Hadoop
        "job configuration / distributed cache" idiom: fused peel
        rounds broadcast the cumulative kill set this way instead of
        rewriting the edge input every pass.
    """

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Optional[Combiner] = None
    mapper_batch: Optional[BatchMapper] = None
    reducer_batch: Optional[BatchReducer] = None
    combiner_batch: Optional[BatchCombiner] = None
    takes_params: bool = False

    @property
    def supports_batches(self) -> bool:
        """Whether the job can run on the columnar path."""
        return self.mapper_batch is not None and self.reducer_batch is not None


@dataclass
class JobCounters:
    """Per-round metering, in records and (approximate) bytes.

    ``shuffle_bytes`` charges a deterministic per-type size per
    shuffled record — 8 bytes for ints and floats, ``len + 1`` for
    strings, the element sum for tuples (see ``runtime._pair_bytes``).
    The columnar path charges the equivalent per-dtype sizes (8-byte
    int64/float64 cells, 1-byte bools) straight from the array dtypes.
    """

    job_name: str = ""
    map_input_records: int = 0
    map_output_records: int = 0
    combine_output_records: int = 0
    shuffle_records: int = 0
    shuffle_bytes: int = 0
    reduce_groups: int = 0
    reduce_output_records: int = 0

    def merge(self, other: "JobCounters") -> "JobCounters":
        """Sum of two counter sets (job_name taken from self)."""
        return JobCounters(
            job_name=self.job_name,
            map_input_records=self.map_input_records + other.map_input_records,
            map_output_records=self.map_output_records + other.map_output_records,
            combine_output_records=self.combine_output_records
            + other.combine_output_records,
            shuffle_records=self.shuffle_records + other.shuffle_records,
            shuffle_bytes=self.shuffle_bytes + other.shuffle_bytes,
            reduce_groups=self.reduce_groups + other.reduce_groups,
            reduce_output_records=self.reduce_output_records
            + other.reduce_output_records,
        )
