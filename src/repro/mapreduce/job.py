"""MapReduce job specifications and counters.

A job is three pure functions in the classic Dean–Ghemawat signatures:

* ``mapper(key, value) -> iterable of (key2, value2)``
* ``combiner(key2, values) -> iterable of (key2, value2)`` (optional,
  run per map task on its local output, must be reducer-compatible)
* ``reducer(key2, values) -> iterable of (key3, value3)``

Jobs must not close over mutable state that they modify — the runtime
may run tasks in any order (it shuffles task order deliberately to
shake out order dependence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Tuple

KV = Tuple[Any, Any]
Mapper = Callable[[Any, Any], Iterable[KV]]
Reducer = Callable[[Any, list], Iterable[KV]]
Combiner = Callable[[Any, list], Iterable[KV]]


@dataclass(frozen=True)
class MapReduceJob:
    """Specification of one MapReduce round.

    Attributes
    ----------
    name:
        Human-readable job name (appears in reports).
    mapper / reducer / combiner:
        The user functions; ``combiner`` may be None.
    """

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Optional[Combiner] = None


@dataclass
class JobCounters:
    """Per-round metering, in records and (approximate) bytes.

    ``shuffle_bytes`` charges ``repr``-length bytes per shuffled record —
    a stable, deterministic proxy for serialized size.
    """

    job_name: str = ""
    map_input_records: int = 0
    map_output_records: int = 0
    combine_output_records: int = 0
    shuffle_records: int = 0
    shuffle_bytes: int = 0
    reduce_groups: int = 0
    reduce_output_records: int = 0

    def merge(self, other: "JobCounters") -> "JobCounters":
        """Sum of two counter sets (job_name taken from self)."""
        return JobCounters(
            job_name=self.job_name,
            map_input_records=self.map_input_records + other.map_input_records,
            map_output_records=self.map_output_records + other.map_output_records,
            combine_output_records=self.combine_output_records
            + other.combine_output_records,
            shuffle_records=self.shuffle_records + other.shuffle_records,
            shuffle_bytes=self.shuffle_bytes + other.shuffle_bytes,
            reduce_groups=self.reduce_groups + other.reduce_groups,
            reduce_output_records=self.reduce_output_records
            + other.reduce_output_records,
        )
