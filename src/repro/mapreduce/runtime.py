"""The MapReduce execution engine.

Simulates the full model on one process:

1. the input key-value list is split round-robin into ``num_mappers``
   input splits;
2. each map task applies the mapper to its split, then (optionally) the
   combiner to its local output grouped by key — exactly the Hadoop
   combiner contract;
3. map outputs are hash-partitioned by key into ``num_reducers``
   partitions (the shuffle; records and bytes are metered here);
4. each reduce task groups its partition by key, sorts groups by key
   (deterministic output order), and applies the reducer.

Tasks are executed in a deliberately shuffled order (seeded) so jobs
that accidentally depend on task execution order fail loudly in tests.

The runtime has two execution paths sharing this structure:

* the **record path** moves one Python tuple per record (any
  int/str/tuple keys, arbitrary values) — the reference semantics;
* the **columnar path** engages when the input is a
  :class:`~repro.mapreduce.columnar.ColumnarKV` and the job declares
  ``mapper_batch``/``reducer_batch``; every stage is then vectorized —
  strided-slice splits, one hash over the whole key array, sort-based
  group-by — while producing the same records, the same record
  counters, and the same retry semantics as the record path.

The columnar path additionally supports a real process-pool executor
(``executor="process"``): map and reduce tasks ship their
:class:`ColumnarKV` batches to ``workers`` spawned worker processes.
Jobs must be *spawn-safe* — batch callables defined at module level and
the job registered with :func:`register_job` at import time of its
defining module — because workers resolve the job by name after
re-importing that module.  Task results are merged in task-index
order and counters are order-independent sums, so output batches,
record counters, and driver traces are bit-identical to
``executor="serial"``.  The record path always executes serially (its
per-record Python objects cost more to ship than to process).

With a ``shuffle_dir``, the process executor switches to a
**file-backed distributed shuffle**: each map task hash-partitions its
local output inside the worker and spills one columnar run file per
nonempty partition under a per-round shuffle directory (tmp + atomic
rename, fixed-preamble ``.npy`` — the store's shard conventions), and
each reduce task memmaps only its own partition's runs.  The driver
moves manifests — (path, records, bytes, crc) tuples — never record
bytes, so driver memory is independent of shuffle volume.  Shuffle
counters are metered from the manifests; because a run's payload is
exactly 8 bytes of key plus the column dtypes per record, the metered
bytes are bit-identical to the in-memory path's
:meth:`ColumnarKV.byte_size` model.  Iterative drivers can further
pre-spill a static input once via :meth:`MapReduceRuntime.spill_splits`
and pass the resulting :class:`SpilledSplits` to every round, shipping
only a small per-round broadcast (``params``) instead of the input.
"""

from __future__ import annotations

import importlib
import random
from collections import defaultdict
from typing import Any, Dict, List, NamedTuple, Tuple

from typing import Optional

from .._validation import check_positive_int
from ..errors import MapReduceError, ParameterError
from .job import JobCounters, KV, MapReduceJob

#: Executor kinds accepted by :class:`MapReduceRuntime`.
EXECUTORS = ("serial", "process")

try:  # pragma: no cover - exercised only on numpy-less installs
    from .columnar import ColumnarKV
except ImportError:  # pragma: no cover
    ColumnarKV = None


class TransientTaskError(Exception):
    """Raised by user task code to simulate a recoverable task failure.

    The runtime re-executes the failing task up to ``max_task_retries``
    times (Hadoop's retry semantics) before failing the whole job with
    :class:`~repro.errors.MapReduceError`.
    """


# ----------------------------------------------------------------------
# Spawn-safe job registry.  Worker processes cannot receive function
# objects closing over arbitrary state; they receive a (job name,
# defining module) pair, import the module — which re-runs its
# import-time register_job calls — and look the job up here.
# ----------------------------------------------------------------------
_JOB_REGISTRY: Dict[str, MapReduceJob] = {}


def register_job(job: MapReduceJob) -> MapReduceJob:
    """Register a job for process-pool execution (idempotent per object).

    Call at module import time, next to the job definition; the batch
    callables must be module-level functions of that same module so the
    spawned workers can re-import them.  Returns the job, so it can be
    used as ``JOB = register_job(MapReduceJob(...))``.
    """
    existing = _JOB_REGISTRY.get(job.name)
    if existing is not None and existing is not job:
        raise MapReduceError(
            f"a different job named {job.name!r} is already registered"
        )
    _JOB_REGISTRY[job.name] = job
    return job


def _job_module(job: MapReduceJob) -> str:
    """The module whose import registers ``job`` (for worker resolution)."""
    return job.mapper_batch.__module__


def _resolve_job(name: str, module: str) -> MapReduceJob:
    """Worker-side lookup: import the defining module, read the registry."""
    if name not in _JOB_REGISTRY:
        importlib.import_module(module)
    try:
        return _JOB_REGISTRY[name]
    except KeyError:
        raise MapReduceError(
            f"job {name!r} not registered after importing {module!r}; "
            f"process execution requires register_job() at import time"
        ) from None


def _map_task_body(job: MapReduceJob, split, params=None) -> tuple:
    """One columnar map task (+ per-task combiner); both executors run
    exactly this, so the serial and process paths cannot drift."""
    if job.takes_params:
        local = job.mapper_batch(split, params)
    else:
        local = job.mapper_batch(split)
    _check_batch(local, job.name, "mapper_batch")
    raw_count = local.num_records
    if job.combiner_batch is not None:
        local = job.combiner_batch(local.group())
        _check_batch(local, job.name, "combiner_batch")
    return raw_count, local


def _reduce_task_body(job: MapReduceJob, partition) -> tuple:
    """One columnar reduce task (group-by + reducer), executor-shared."""
    grouped = partition.group()
    out = job.reducer_batch(grouped)
    _check_batch(out, job.name, "reducer_batch")
    return grouped.num_groups, out


# ----------------------------------------------------------------------
# File-backed shuffle: run manifests and pre-spilled input splits.
# ----------------------------------------------------------------------
class RunRef(NamedTuple):
    """Manifest entry of one spilled run file.

    This is everything the driver sees of a run: where it is, how many
    records and payload bytes it holds (the shuffle metering source),
    and the payload CRC the reading task re-verifies.
    """

    path: str
    records: int
    byte_size: int
    crc: int


class SpilledSplits:
    """Input splits pre-spilled to disk as run files, one per map task.

    Produced by :meth:`MapReduceRuntime.spill_splits` and accepted by
    :meth:`MapReduceRuntime.run` anywhere a :class:`ColumnarKV` batch
    is.  Under the file-backed shuffle, map workers memmap their own
    split, so an iterative driver ships a static input to disk once
    and then only O(manifest + params) bytes per round.  Call
    :meth:`cleanup` when the job chain is done with the input.
    """

    __slots__ = ("runs", "schema", "num_records", "directory")

    def __init__(self, runs, schema, num_records: int, directory: str) -> None:
        self.runs = list(runs)
        self.schema = tuple(schema)
        self.num_records = num_records
        self.directory = directory

    @property
    def num_splits(self) -> int:
        return len(self.runs)

    def load_splits(self) -> list:
        """Read the split batches back into memory (serial executor)."""
        return [_load_run(ref) for ref in self.runs]

    def cleanup(self) -> None:
        """Remove the split run files (idempotent, best-effort)."""
        import shutil

        shutil.rmtree(self.directory, ignore_errors=True)


def _load_run(ref: RunRef):
    """Memmap one run file back as a batch, verifying its payload CRC."""
    from ..store.shards import read_run_file

    keys, columns = read_run_file(ref.path, expected_crc=ref.crc)
    return ColumnarKV(keys, dict(columns))


def _load_map_source(source):
    """A map task's input: an in-memory split or a spilled split run."""
    if source[0] == "mem":
        return source[1]
    return _load_run(source[1])


def _apply_worker_fault(fault: Optional[str]) -> None:
    """Honor a fault marker shipped with a task (fault injection only).

    ``"kill_worker"`` SIGKILLs this worker process — the driver then
    observes a broken pool, exactly as a real OOM-kill or crash looks.
    Markers ride only on a task's *first* submission (and fault plans
    are one-shot), so the recovery resubmission runs clean.
    """
    if fault is None:
        return
    if fault == "kill_worker":
        import os
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    elif fault == "raise":
        raise TransientTaskError("injected transient task failure")


def _process_map_task(
    name: str, module: str, split, fault: Optional[str] = None, params=None
) -> tuple:
    """Worker-process entry: resolve the job, run the shared map body."""
    _apply_worker_fault(fault)
    return _map_task_body(_resolve_job(name, module), split, params)


def _process_reduce_task(
    name: str, module: str, partition, fault: Optional[str] = None, params=None
) -> tuple:
    """Worker-process entry: resolve the job, run the shared reduce body."""
    _apply_worker_fault(fault)
    return _reduce_task_body(_resolve_job(name, module), partition)


def _process_map_spill_task(
    name: str, module: str, payload, fault: Optional[str] = None, params=None
) -> tuple:
    """Worker-process entry of the file-backed shuffle's map side.

    Runs the shared map body, hash-partitions the local output inside
    the worker, and spills each nonempty partition as a run file under
    the round directory.  Returns the run *manifest* — counts, payload
    bytes, CRCs — never the records themselves.

    ``"shuffle:*"`` fault markers exercise the ``mapreduce.shuffle``
    site: ``raise``/``kill_worker`` fire between the first run's tmp
    write and its atomic rename (leaving ``*.tmp`` debris, like a real
    mid-spill crash); ``corrupt`` flips a payload byte of the first
    committed run while reporting the pristine CRC, so the damage must
    be caught by the reduce-side checksum.
    """
    shuffle_fault = None
    if isinstance(fault, str) and fault.startswith("shuffle:"):
        shuffle_fault = fault.split(":", 1)[1]
        fault = None
    _apply_worker_fault(fault)
    source, task, num_reducers, round_dir = payload
    job = _resolve_job(name, module)
    raw_count, local = _map_task_body(job, _load_map_source(source), params)

    import os

    from ..errors import InjectedFaultError
    from ..store.shards import corrupt_run_file, write_run_file

    runs: List[Tuple[int, RunRef]] = []
    for part_index, part in enumerate(local.partition(num_reducers)):
        if part.num_records == 0:
            continue
        path = os.path.join(round_dir, f"map-{task:04d}-p{part_index:04d}.npy")
        injected = None
        if not runs and shuffle_fault in ("raise", "kill_worker"):
            injected = shuffle_fault
        try:
            records, nbytes, crc = write_run_file(
                path, part.keys, part.columns, fault=injected
            )
        except InjectedFaultError as exc:
            raise TransientTaskError(str(exc)) from exc
        runs.append((part_index, RunRef(path, records, nbytes, crc)))
    if shuffle_fault == "raise" and not runs:
        raise TransientTaskError("injected shuffle failure (empty map output)")
    if shuffle_fault == "corrupt" and runs:
        corrupt_run_file(runs[0][1].path)
    return raw_count, local.num_records, local.schema(), runs


def _process_reduce_runs_task(
    name: str, module: str, payload, fault: Optional[str] = None, params=None
) -> tuple:
    """Worker-process entry of the file-backed shuffle's reduce side.

    Memmaps the partition's runs (verifying each payload CRC — a
    corrupted run surfaces as a typed
    :class:`~repro.errors.StoreCorruptionError`, never as silently
    wrong output), concatenates them in map-task order — the same row
    order the in-memory shuffle produces — and runs the shared reduce
    body.
    """
    _apply_worker_fault(fault)
    runs, schema = payload
    job = _resolve_job(name, module)
    if runs:
        partition = ColumnarKV.concat([_load_run(ref) for ref in runs])
    else:
        partition = ColumnarKV.empty(schema)
    return _reduce_task_body(job, partition)


def _default_partitioner(key: Any, num_reducers: int) -> int:
    """Hash partitioner with a stable hash for common key types."""
    return _stable_hash(key) % num_reducers


def _stable_hash(key: Any) -> int:
    """Deterministic hash across runs (no PYTHONHASHSEED dependence)."""
    if isinstance(key, int):
        return key * 2654435761 % (1 << 32)
    if isinstance(key, str):
        h = 2166136261
        for ch in key:
            h = (h ^ ord(ch)) * 16777619 % (1 << 32)
        return h
    if isinstance(key, tuple):
        h = 1099511628211
        for part in key:
            h = (h * 31 + _stable_hash(part)) % (1 << 61)
        return h
    raise MapReduceError(
        f"keys must be int, str, or tuples thereof; got {type(key).__name__}"
    )


def _group_sort_key(key: Any):
    """Total order over the admissible key types (int, str, tuple).

    Ints sort numerically — which keeps the record path's reduce output
    order identical to the columnar path's ascending-int64 group order,
    so a job chain produces bit-identical record streams on either
    engine — strings lexically, tuples elementwise, with a type rank
    separating the kinds in mixed-key jobs.
    """
    if isinstance(key, tuple):
        return (2, tuple(_group_sort_key(part) for part in key))
    if isinstance(key, str):
        return (1, key)
    return (0, key)


# ----------------------------------------------------------------------
# Shuffle byte metering: a deterministic per-type size model.  The old
# ``len(repr(key)) + len(repr(value))`` metering formatted every float
# on every shuffled record and dominated large record-path jobs; sizes
# are now derived from types (dict lookups, O(1) per scalar).  The
# admissible key types and every in-repo job value hit the fast table;
# only exotic value types fall through to the per-record repr probe,
# which keeps the counters a pure function of the records.
# ----------------------------------------------------------------------
_SCALAR_BYTES: Dict[type, int] = {int: 8, float: 8, bool: 1, type(None): 0}


def _value_bytes(obj: Any) -> int:
    """Deterministic serialized-size proxy of one key or value."""
    kind = type(obj)
    size = _SCALAR_BYTES.get(kind)
    if size is not None:
        return size
    if kind is str:
        return 1 + len(obj)
    if kind is tuple:
        total = 0
        for part in obj:
            total += _value_bytes(part)
        return total
    return len(repr(obj))


def _pair_bytes(key: Any, value: Any) -> int:
    """Shuffle bytes charged for one record."""
    return _value_bytes(key) + _value_bytes(value)


def shuffle_size(partition) -> Tuple[int, int]:
    """``(records, bytes)`` one shuffled partition is metered at.

    The single metering authority for every shuffle flavor: a record
    partition (list of pairs) is charged :func:`_pair_bytes` per
    record, a columnar partition its :meth:`ColumnarKV.byte_size` —
    the same per-type size model, so an int-keyed job meters
    identically on either path.  File-shuffle manifests report a run's
    payload size, which equals ``byte_size()`` by construction (8-byte
    key field + the column dtypes per record), so serial, in-memory
    process, and file-shuffle process runs all count the same bytes.
    """
    if ColumnarKV is not None and isinstance(partition, ColumnarKV):
        return partition.num_records, partition.byte_size()
    total = 0
    for key, value in partition:
        total += _value_bytes(key) + _value_bytes(value)
    return len(partition), total


class MapReduceRuntime:
    """A metered, deterministic MapReduce simulator.

    Parameters
    ----------
    num_mappers / num_reducers:
        Degree of task parallelism being simulated (the paper ran 2000
        of each on Hadoop).
    seed:
        Seed for the task-order shuffling.
    max_task_retries:
        How many times a failed task is re-executed before the job is
        declared failed — Hadoop's speculative/retry semantics.  Task
        failures are injected by raising :class:`TransientTaskError`
        from a mapper/combiner/reducer (tests use this to verify the
        retry path); exhausting the retries raises
        :class:`~repro.errors.MapReduceError`.  Batch tasks on the
        columnar path retry identically — including across processes,
        where a failed task is resubmitted to the pool.
    executor:
        ``"serial"`` (default) runs every task in this process;
        ``"process"`` ships columnar map/reduce tasks to a pool of
        ``workers`` spawned processes (jobs must be registered, see
        :func:`register_job`).  Output batches, counters, and traces
        are bit-identical between the two.
    workers:
        Process-pool size for ``executor="process"`` (default:
        ``os.cpu_count()``).
    pool:
        Optional pre-built ``concurrent.futures.Executor`` to run
        process tasks on.  The runtime does not own a borrowed pool —
        :meth:`close` leaves it running — which lets benchmarks and
        test suites share one warm pool across many runtimes.
    task_timeout:
        Per-task deadline in seconds for process execution (default:
        none).  A task that has not produced a result within the
        deadline is treated like a lost worker: the pool is recycled
        and the task retried, until ``max_task_retries`` is exhausted.
    retry_backoff:
        Base sleep (seconds) before resubmitting after a worker loss;
        doubles per consecutive loss in a stage (capped at 2 s), so a
        crash-looping task backs off instead of hot-spinning the pool.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`; points at site
        ``"mapreduce.map"`` / ``"mapreduce.reduce"`` fire when the
        matching task index is first submitted (``kill_worker`` mode
        SIGKILLs the worker running it; ``raise`` mode raises a
        transient failure).  Points at site ``"mapreduce.shuffle"``
        fire inside a spilling map task (file-backed shuffle only):
        ``raise``/``kill_worker`` strike between a run's tmp write and
        its atomic rename, ``corrupt`` flips a payload byte of a
        committed run so the reduce-side checksum must catch it.
        Plans are one-shot, so recovery retries run clean — used by
        the fault-injection tests.
    shuffle_dir:
        Optional directory enabling the file-backed distributed
        shuffle under ``executor="process"``: map tasks spill
        hash-partitioned columnar runs to a per-round subdirectory,
        reduce tasks memmap only their own partition's runs, and the
        driver handles manifests instead of record bytes.  Outputs,
        traces, and counters stay bit-identical to the in-memory
        shuffle; round directories are swept of ``*.tmp`` debris on
        creation and removed when the round ends (success or failure).
        Ignored by the serial executor.

    Examples
    --------
    >>> runtime = MapReduceRuntime(num_mappers=4, num_reducers=2)
    >>> job = MapReduceJob(
    ...     name="wordcount",
    ...     mapper=lambda _, word: [(word, 1)],
    ...     reducer=lambda word, ones: [(word, sum(ones))],
    ... )
    >>> output, counters = runtime.run(job, [(None, w) for w in ["a", "b", "a"]])
    >>> sorted(output)
    [('a', 2), ('b', 1)]
    """

    def __init__(
        self,
        num_mappers: int = 8,
        num_reducers: int = 8,
        *,
        seed: int = 0,
        max_task_retries: int = 3,
        executor: str = "serial",
        workers: Optional[int] = None,
        pool=None,
        task_timeout: Optional[float] = None,
        retry_backoff: float = 0.05,
        fault_plan=None,
        shuffle_dir=None,
    ) -> None:
        check_positive_int(num_mappers, "num_mappers")
        check_positive_int(num_reducers, "num_reducers")
        if max_task_retries < 0:
            raise ParameterError(
                f"max_task_retries must be >= 0, got {max_task_retries}"
            )
        if executor not in EXECUTORS:
            raise ParameterError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if workers is not None:
            check_positive_int(workers, "workers")
        if task_timeout is not None and task_timeout <= 0:
            raise ParameterError(
                f"task_timeout must be > 0 seconds, got {task_timeout}"
            )
        if retry_backoff < 0:
            raise ParameterError(
                f"retry_backoff must be >= 0 seconds, got {retry_backoff}"
            )
        self.num_mappers = num_mappers
        self.num_reducers = num_reducers
        self.max_task_retries = max_task_retries
        self.executor = executor
        self.workers = workers
        self.task_timeout = task_timeout
        self.retry_backoff = retry_backoff
        self.fault_plan = fault_plan
        self.shuffle_dir = str(shuffle_dir) if shuffle_dir is not None else None
        self._pool = pool
        self._owns_pool = False
        self._rng = random.Random(seed)
        self._round_seq: int = 0
        self._split_seq: int = 0
        self.history: List[JobCounters] = []
        self.task_retries: int = 0
        self.tasks_retried: int = 0
        self.workers_lost: int = 0
        #: Run files spilled by file-shuffle rounds (driver-level, like
        #: ``tasks_retried`` — not in :class:`JobCounters`, whose record
        #: counters stay bit-identical across executors).
        self.spilled_runs: int = 0

    # ------------------------------------------------------------------
    # Process-pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        """The process pool, created lazily on first parallel stage."""
        if self._pool is None:
            import multiprocessing
            import os
            from concurrent.futures import ProcessPoolExecutor

            # spawn, not fork: workers re-import job modules from a
            # clean interpreter, which is what the registry contract
            # assumes (and the only start method that is safe under
            # threads on every platform).
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers or os.cpu_count() or 1,
                mp_context=multiprocessing.get_context("spawn"),
            )
            self._owns_pool = True
        return self._pool

    def _respawn_pool(self) -> None:
        """Replace a broken/stalled owned pool (lost-worker recovery).

        A borrowed pool is the caller's to manage: the runtime refuses
        to recycle it and fails the job with a typed error instead.
        """
        if self._pool is not None and not self._owns_pool:
            raise MapReduceError(
                "externally provided process pool is broken or stalled; "
                "the runtime cannot respawn a pool it does not own"
            )
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - best-effort teardown
                pass
            self._pool = None
            self._owns_pool = False

    def close(self) -> None:
        """Shut down an owned process pool (borrowed pools are left alone)."""
        if self._pool is not None and self._owns_pool:
            self._pool.shutdown()
            self._pool = None
            self._owns_pool = False

    @property
    def uses_file_shuffle(self) -> bool:
        """Whether columnar rounds will run the file-backed shuffle."""
        return self.executor == "process" and self.shuffle_dir is not None

    def __enter__(self) -> "MapReduceRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _run_task_with_retries(self, description: str, task_fn):
        """Execute a task body, re-running it on TransientTaskError."""
        attempts = self.max_task_retries + 1
        last_error: Optional[TransientTaskError] = None
        for _ in range(attempts):
            try:
                return task_fn()
            except TransientTaskError as exc:
                self.task_retries += 1
                last_error = exc
        raise MapReduceError(
            f"{description} failed after {attempts} attempts: {last_error}"
        )

    def _run_stage_process(
        self,
        stage: str,
        task_fn,
        job: MapReduceJob,
        inputs,
        *,
        params=None,
        shuffle_faults: bool = False,
    ) -> List[tuple]:
        """Run one columnar stage's tasks on the process pool.

        All tasks are submitted up front (that is the parallelism);
        a task raising :class:`TransientTaskError` is resubmitted with
        the same retry accounting as the serial path.  Results come
        back indexed by task id, so the caller's merge order — and
        therefore the output batch — is identical to serial execution.

        The stage survives lost workers: when a worker dies (SIGKILL,
        OOM, hard crash) every in-flight future on the pool fails with
        ``BrokenExecutor``, so the runtime respawns an owned pool,
        resubmits every unfinished task, and charges one attempt to the
        task it was waiting on — with exponential backoff between
        consecutive losses.  A ``task_timeout`` expiry is handled the
        same way (the stuck worker is abandoned with the old pool).
        Counters: ``workers_lost`` counts pool recycles,
        ``tasks_retried`` counts task resubmissions of either kind.
        """
        import time
        from concurrent.futures import BrokenExecutor
        from concurrent.futures import TimeoutError as FuturesTimeoutError

        if _JOB_REGISTRY.get(job.name) is not job:
            raise MapReduceError(
                f"job {job.name!r} is not registered for process execution; "
                f"call repro.mapreduce.register_job({job.name!r}) at import "
                f"time of its defining module"
            )
        module = _job_module(job)
        attempts = self.max_task_retries + 1
        results: List[tuple] = [()] * len(inputs)
        tries: List[int] = [0] * len(inputs)
        pending: Dict[int, Any] = {}

        def submit(task: int) -> None:
            fault = None
            if self.fault_plan is not None and tries[task] == 0:
                point = self.fault_plan.take(f"mapreduce.{stage}", task)
                if point is not None:
                    fault = (
                        "kill_worker" if point.mode == "kill_worker" else "raise"
                    )
                elif shuffle_faults:
                    point = self.fault_plan.take("mapreduce.shuffle", task)
                    if point is not None:
                        fault = f"shuffle:{point.mode}"
            pool = self._ensure_pool()
            pending[task] = pool.submit(
                task_fn, job.name, module, inputs[task], fault, params
            )

        for task in range(len(inputs)):
            submit(task)

        backoff = self.retry_backoff
        for task in range(len(inputs)):
            while True:
                try:
                    results[task] = pending[task].result(timeout=self.task_timeout)
                    del pending[task]
                    break
                except TransientTaskError as exc:
                    self.task_retries += 1
                    self.tasks_retried += 1
                    tries[task] += 1
                    if tries[task] >= attempts:
                        raise MapReduceError(
                            f"job {job.name!r} {stage} task {task} failed "
                            f"after {attempts} attempts: {exc}"
                        )
                    submit(task)
                except (BrokenExecutor, FuturesTimeoutError) as exc:
                    self.workers_lost += 1
                    tries[task] += 1
                    why = (
                        "task deadline exceeded"
                        if isinstance(exc, FuturesTimeoutError)
                        else f"worker lost ({exc or type(exc).__name__})"
                    )
                    if tries[task] >= attempts:
                        raise MapReduceError(
                            f"job {job.name!r} {stage} task {task} failed "
                            f"after {attempts} attempts: {why}"
                        )
                    # Every unfinished future died (or is stuck) with
                    # the old pool; recycle it and resubmit them all.
                    self._respawn_pool()
                    lost = sorted(pending)
                    self.tasks_retried += len(lost)
                    for unfinished in lost:
                        submit(unfinished)
                    if backoff > 0:
                        time.sleep(backoff)
                    backoff = min(max(backoff, 0.01) * 2, 2.0)
        return results

    # ------------------------------------------------------------------
    def run(self, job: MapReduceJob, input_pairs, params=None) -> Tuple[Any, JobCounters]:
        """Execute one job; returns (output, counters).

        ``input_pairs`` may be a list of ``(key, value)`` pairs (record
        path; output is a pair list), a
        :class:`~repro.mapreduce.columnar.ColumnarKV` batch (columnar
        path; the job must declare batch callables and the output is a
        batch), or a :class:`SpilledSplits` handle from
        :meth:`spill_splits` (columnar path over pre-spilled splits).

        ``params`` is a small picklable per-round broadcast passed to
        the mappers of a ``takes_params`` job (see
        :class:`~repro.mapreduce.job.MapReduceJob`).
        """
        if job.takes_params and params is None:
            raise MapReduceError(
                f"job {job.name!r} declares takes_params; call "
                f"run(job, input, params=...)"
            )
        if params is not None and not job.takes_params:
            raise MapReduceError(
                f"job {job.name!r} does not declare takes_params but got params"
            )
        if isinstance(input_pairs, SpilledSplits) or (
            ColumnarKV is not None and isinstance(input_pairs, ColumnarKV)
        ):
            if not job.supports_batches:
                raise MapReduceError(
                    f"job {job.name!r} got a columnar batch but declares no "
                    f"mapper_batch/reducer_batch"
                )
            return self._run_columnar(job, input_pairs, params)
        return self._run_records(job, input_pairs, params)

    # ------------------------------------------------------------------
    # Record path (the reference semantics)
    # ------------------------------------------------------------------
    def _run_records(
        self, job: MapReduceJob, input_pairs: List[KV], params=None
    ) -> Tuple[List[KV], JobCounters]:
        counters = JobCounters(job_name=job.name)
        counters.map_input_records = len(input_pairs)
        if job.takes_params:
            map_record = lambda key, value: job.mapper(key, value, params)  # noqa: E731
        else:
            map_record = job.mapper

        # 1. Input splits (round-robin keeps splits balanced).
        splits: List[List[KV]] = [[] for _ in range(self.num_mappers)]
        for i, pair in enumerate(input_pairs):
            splits[i % self.num_mappers].append(pair)

        # 2. Map tasks (+ per-task combiner), in shuffled order, each
        #    with Hadoop-style retry-on-transient-failure semantics.
        task_order = list(range(self.num_mappers))
        self._rng.shuffle(task_order)
        map_outputs: List[List[KV]] = [[] for _ in range(self.num_mappers)]
        for task in task_order:

            def map_task(task=task) -> tuple:
                local: List[KV] = []
                for key, value in splits[task]:
                    for out in map_record(key, value):
                        _check_pair(out, job.name, "mapper")
                        local.append(out)
                raw_count = len(local)
                if job.combiner is not None:
                    grouped: Dict[Any, list] = defaultdict(list)
                    for k, v in local:
                        grouped[k].append(v)
                    combined: List[KV] = []
                    for k in grouped:
                        for out in job.combiner(k, grouped[k]):
                            _check_pair(out, job.name, "combiner")
                            combined.append(out)
                    local = combined
                return raw_count, local

            raw_count, local = self._run_task_with_retries(
                f"job {job.name!r} map task {task}", map_task
            )
            counters.map_output_records += raw_count
            counters.combine_output_records += len(local)
            map_outputs[task] = local

        # 3. Shuffle: partition by key; metered per partition by the
        #    shared size model (see :func:`shuffle_size`).
        partitions: List[List[KV]] = [[] for _ in range(self.num_reducers)]
        for local in map_outputs:
            for key, value in local:
                partitions[_default_partitioner(key, self.num_reducers)].append(
                    (key, value)
                )
        for part in partitions:
            records, nbytes = shuffle_size(part)
            counters.shuffle_records += records
            counters.shuffle_bytes += nbytes

        # 4. Reduce tasks, in shuffled order; output concatenated in
        #    deterministic (partition, key-sorted) order.
        reduce_order = list(range(self.num_reducers))
        self._rng.shuffle(reduce_order)
        outputs_by_partition: List[List[KV]] = [[] for _ in range(self.num_reducers)]
        for task in reduce_order:
            grouped = defaultdict(list)
            for k, v in partitions[task]:
                grouped[k].append(v)
            counters.reduce_groups += len(grouped)

            def reduce_task(grouped=grouped) -> List[KV]:
                out_local: List[KV] = []
                for k in sorted(grouped, key=_group_sort_key):
                    for out in job.reducer(k, grouped[k]):
                        _check_pair(out, job.name, "reducer")
                        out_local.append(out)
                return out_local

            out_local = self._run_task_with_retries(
                f"job {job.name!r} reduce task {task}", reduce_task
            )
            counters.reduce_output_records += len(out_local)
            outputs_by_partition[task] = out_local

        output: List[KV] = []
        for part in outputs_by_partition:
            output.extend(part)
        self.history.append(counters)
        return output, counters

    # ------------------------------------------------------------------
    # Columnar path (array-native batches)
    # ------------------------------------------------------------------
    def _run_columnar(
        self, job: MapReduceJob, batch, params=None
    ) -> Tuple["ColumnarKV", JobCounters]:
        """The vectorized twin of :meth:`_run_records`.

        Stage for stage the same structure — round-robin splits, map
        tasks with per-task combiner, hash shuffle, key-sorted reduce —
        with every per-record loop replaced by an array operation.  The
        record counters are metered identically (same counts a record
        run of an equivalent job would produce); ``shuffle_bytes`` uses
        the per-dtype size model of :meth:`shuffle_size`.

        With ``shuffle_dir`` set under the process executor, the
        shuffle is file-backed: map workers partition and spill their
        local output as run files, reduce workers memmap only their
        own partition's runs, and this driver only aggregates the run
        manifests — identical outputs and counters, O(1) driver memory
        in the shuffle volume.
        """
        counters = JobCounters(job_name=job.name)
        counters.map_input_records = batch.num_records

        parallel = self.executor == "process"
        file_shuffle = parallel and self.shuffle_dir is not None
        presplit = isinstance(batch, SpilledSplits)
        if presplit and batch.num_splits != self.num_mappers:
            raise MapReduceError(
                f"SpilledSplits carries {batch.num_splits} splits but the "
                f"runtime runs {self.num_mappers} map tasks"
            )

        # 1. Round-robin splits via strided slicing (same record-to-task
        #    assignment as the record path's `i % num_mappers`), unless
        #    the input arrived pre-spilled.
        splits = None
        if not file_shuffle:
            splits = batch.load_splits() if presplit else batch.split(self.num_mappers)

        # 2. Map tasks (+ per-task combiner on the grouped local
        #    output), shuffled order, with the same retry semantics.
        #    The shuffle is drawn under both executors so a seeded
        #    runtime consumes its rng stream identically either way.
        task_order = list(range(self.num_mappers))
        self._rng.shuffle(task_order)
        round_dir = self._new_round_dir() if file_shuffle else None
        try:
            run_lists = schema = None
            if file_shuffle:
                run_lists, schema = self._map_stage_spill(
                    job, batch, round_dir, counters, params
                )
            elif parallel:
                map_outputs: List[Optional[ColumnarKV]] = [None] * self.num_mappers
                map_results = self._run_stage_process(
                    "map", _process_map_task, job, splits, params=params
                )
                for task, (raw_count, local) in enumerate(map_results):
                    counters.map_output_records += raw_count
                    counters.combine_output_records += local.num_records
                    map_outputs[task] = local
            else:
                map_outputs = [None] * self.num_mappers
                for task in task_order:
                    raw_count, local = self._run_task_with_retries(
                        f"job {job.name!r} map task {task}",
                        lambda task=task: _map_task_body(job, splits[task], params),
                    )
                    counters.map_output_records += raw_count
                    counters.combine_output_records += local.num_records
                    map_outputs[task] = local

            # 3. Shuffle: one vectorized hash over the concatenated map
            #    output, then mask-partitioning (row order within each
            #    partition matches the record path's task-order append).
            #    The file-backed flavor already partitioned inside the
            #    map workers and metered from the run manifests.
            if not file_shuffle:
                combined = ColumnarKV.concat(map_outputs)
                partitions = combined.partition(self.num_reducers)
                for part in partitions:
                    records, nbytes = shuffle_size(part)
                    counters.shuffle_records += records
                    counters.shuffle_bytes += nbytes

            # 4. Reduce tasks: sort-based group-by per partition, groups
            #    in ascending key order (the record path's numeric-sorted
            #    output order for int keys).  Under the process executor
            #    the group-by runs inside the worker too — same grouped
            #    rows (the sort is deterministic), so same output and
            #    counters, but the O(p log p) argsort leaves the driver.
            reduce_order = list(range(self.num_reducers))
            self._rng.shuffle(reduce_order)
            outputs: List[Optional[ColumnarKV]] = [None] * self.num_reducers
            if file_shuffle:
                payloads = [
                    (run_lists[part], schema) for part in range(self.num_reducers)
                ]
                reduce_results = self._run_stage_process(
                    "reduce", _process_reduce_runs_task, job, payloads
                )
                for task, (num_groups, out) in enumerate(reduce_results):
                    counters.reduce_groups += num_groups
                    counters.reduce_output_records += out.num_records
                    outputs[task] = out
            elif parallel:
                reduce_results = self._run_stage_process(
                    "reduce", _process_reduce_task, job, partitions
                )
                for task, (num_groups, out) in enumerate(reduce_results):
                    counters.reduce_groups += num_groups
                    counters.reduce_output_records += out.num_records
                    outputs[task] = out
            else:
                for task in reduce_order:
                    num_groups, out = self._run_task_with_retries(
                        f"job {job.name!r} reduce task {task}",
                        lambda task=task: _reduce_task_body(job, partitions[task]),
                    )
                    counters.reduce_groups += num_groups
                    counters.reduce_output_records += out.num_records
                    outputs[task] = out
        finally:
            if round_dir is not None:
                import shutil

                shutil.rmtree(round_dir, ignore_errors=True)

        output = ColumnarKV.concat(outputs)
        self.history.append(counters)
        return output, counters

    def _new_round_dir(self) -> str:
        """Create (and debris-sweep) the next round's shuffle directory."""
        from pathlib import Path

        from ..store.shards import _sweep_tmp_debris

        self._round_seq += 1
        round_dir = Path(self.shuffle_dir) / f"round-{self._round_seq:04d}"
        round_dir.mkdir(parents=True, exist_ok=True)
        # The store's open()-sweep convention: a crashed predecessor's
        # half-written runs are plain `*.tmp` files, removed on entry.
        _sweep_tmp_debris(round_dir)
        return str(round_dir)

    def _map_stage_spill(
        self, job: MapReduceJob, batch, round_dir: str, counters, params
    ) -> Tuple[List[List[RunRef]], tuple]:
        """File-backed map stage: spill per-partition runs, return the
        manifest grouped by reduce partition (in map-task order, the
        same row order the in-memory shuffle concatenates in)."""
        if isinstance(batch, SpilledSplits):
            sources = [("run", ref) for ref in batch.runs]
        else:
            sources = [("mem", split) for split in batch.split(self.num_mappers)]
        payloads = [
            (source, task, self.num_reducers, round_dir)
            for task, source in enumerate(sources)
        ]
        map_results = self._run_stage_process(
            "map",
            _process_map_spill_task,
            job,
            payloads,
            params=params,
            shuffle_faults=True,
        )
        run_lists: List[List[RunRef]] = [[] for _ in range(self.num_reducers)]
        schema = None
        for raw_count, combined_count, task_schema, runs in map_results:
            counters.map_output_records += raw_count
            counters.combine_output_records += combined_count
            if schema is None:
                schema = task_schema
            for part_index, ref in runs:
                run_lists[part_index].append(ref)
                counters.shuffle_records += ref.records
                counters.shuffle_bytes += ref.byte_size
                self.spilled_runs += 1
        return run_lists, schema

    def spill_splits(self, batch: "ColumnarKV", *, tag: str = "input") -> SpilledSplits:
        """Pre-spill a batch's round-robin input splits as run files.

        Iterative drivers call this once per job chain: every
        subsequent :meth:`run` over the returned handle has its map
        workers memmap a static on-disk split instead of the driver
        re-pickling the full input each round, so per-round driver
        traffic drops to the manifests plus any ``params`` broadcast.
        Requires ``shuffle_dir``; the serial executor loads the splits
        back into memory (same records, same results).
        """
        if self.shuffle_dir is None:
            raise MapReduceError("spill_splits requires a runtime shuffle_dir")
        if ColumnarKV is None or not isinstance(batch, ColumnarKV):
            raise MapReduceError("spill_splits takes a ColumnarKV batch")
        from pathlib import Path

        from ..store.shards import _sweep_tmp_debris, write_run_file

        self._split_seq += 1
        directory = Path(self.shuffle_dir) / f"{tag}-{self._split_seq:04d}"
        directory.mkdir(parents=True, exist_ok=True)
        _sweep_tmp_debris(directory)
        runs = []
        for task, split in enumerate(batch.split(self.num_mappers)):
            path = str(directory / f"split-{task:04d}.npy")
            records, nbytes, crc = write_run_file(path, split.keys, split.columns)
            runs.append(RunRef(path, records, nbytes, crc))
            self.spilled_runs += 1
        return SpilledSplits(runs, batch.schema(), batch.num_records, str(directory))

    def run_chain(
        self, jobs: List[MapReduceJob], input_pairs
    ) -> Tuple[Any, List[JobCounters]]:
        """Run jobs sequentially, feeding each job's output to the next."""
        counters: List[JobCounters] = []
        pairs = input_pairs
        for job in jobs:
            pairs, c = self.run(job, pairs)
            counters.append(c)
        return pairs, counters

    def reset_history(self) -> None:
        """Clear the per-job counter history."""
        self.history = []


def _check_pair(out: Any, job: str, stage: str) -> None:
    """Validate that a user function emitted a (key, value) pair."""
    if not isinstance(out, tuple) or len(out) != 2:
        raise MapReduceError(
            f"job {job!r}: {stage} must emit (key, value) pairs, got {out!r}"
        )


def _check_batch(out: Any, job: str, stage: str) -> None:
    """Validate that a batch function emitted a ColumnarKV."""
    if ColumnarKV is None or not isinstance(out, ColumnarKV):
        raise MapReduceError(
            f"job {job!r}: {stage} must emit a ColumnarKV batch, "
            f"got {type(out).__name__}"
        )
