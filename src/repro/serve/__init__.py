"""Densest-subgraph-as-a-service: HTTP query layer + result catalog.

``repro.serve`` turns the solver registry into a long-lived process:

* :mod:`~repro.serve.catalog` — SQLite (WAL) result catalog keyed by
  ``(dataset fingerprint, problem kind, canonical params, backend)``;
* :mod:`~repro.serve.jobs` — bounded thread-pool job manager with
  single-flight coalescing and cancellation;
* :mod:`~repro.serve.app` — the stdlib ``ThreadingHTTPServer`` routes;
* :mod:`~repro.serve.admission` — overload control: per-client token
  buckets, the global admission gate, the catalog circuit breaker, and
  the degradation-ladder knobs (DESIGN.md §14).

Start one with ``python -m repro.cli serve --port 8080`` or embed one
via :func:`~repro.serve.app.build_server` (see ``examples/serving.py``).
"""

from .admission import (
    AdmissionGate,
    CircuitBreaker,
    ClientRateLimiter,
    OverloadConfig,
    TokenBucket,
)
from .app import (
    DensestHTTPServer,
    DensestService,
    HTTPError,
    build_server,
    run_server,
)
from .catalog import CatalogError, ResultCatalog, params_json, problem_key, result_key
from .jobs import Job, JobManager, QueueFullError

__all__ = [
    "AdmissionGate",
    "CatalogError",
    "CircuitBreaker",
    "ClientRateLimiter",
    "DensestHTTPServer",
    "DensestService",
    "HTTPError",
    "Job",
    "JobManager",
    "OverloadConfig",
    "QueueFullError",
    "ResultCatalog",
    "TokenBucket",
    "build_server",
    "params_json",
    "problem_key",
    "result_key",
    "run_server",
]
