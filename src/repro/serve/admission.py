"""Overload control for the serving tier: admit, degrade, or shed.

The crash-robustness layer (DESIGN.md §12) handles *failures*; this
module handles *demand exceeding capacity*, which the ROADMAP's
"heavy traffic" north star makes the more common emergency.  The
pieces compose into the overload model of DESIGN.md §14:

* :class:`TokenBucket` / :class:`ClientRateLimiter` — per-client
  request-rate policing for cold (solver-consuming) work.  Warm
  catalog hits are orders of magnitude cheaper and stay unmetered.
* :class:`AdmissionGate` — a global budget on *outstanding solve
  cost*, estimated from the dataset manifest (edges).  A request the
  budget cannot absorb is not queued; it enters the degradation
  ladder and, at worst, is shed with a ``Retry-After``.
* :class:`CircuitBreaker` — wraps the SQLite result catalog: repeated
  ``sqlite3`` errors open the breaker and the service runs cache-less
  (every answer re-solved, none wrong) until a half-open probe
  succeeds.
* :class:`OverloadConfig` — the declarative knob bag
  (:func:`~repro.serve.app.build_server` arguments, CLI flags).

Everything here is stdlib-only and clock-injectable so the unit tests
run on a fake clock.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = [
    "AdmissionGate",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "ClientRateLimiter",
    "OverloadConfig",
    "TokenBucket",
    "retry_after_seconds",
]

Clock = Callable[[], float]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``try_acquire`` either admits (returns ``None``) or returns the
    seconds until the requested tokens will exist — the honest
    ``Retry-After`` for the caller.  Thread-safe; refill is computed
    lazily from the injected monotonic clock, so an idle bucket costs
    nothing.
    """

    def __init__(
        self, rate: float, burst: float, *, clock: Clock = time.monotonic
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, cost: float = 1.0) -> Optional[float]:
        """Take ``cost`` tokens; ``None`` on success, else retry delay."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= cost:
                self._tokens -= cost
                return None
            return (cost - self._tokens) / self.rate


class ClientRateLimiter:
    """One :class:`TokenBucket` per client id, with bounded residency.

    The client id is whatever the transport hands over (the
    ``X-Client-Id`` header, else the peer address); unknown clients get
    a fresh full bucket.  At most ``max_clients`` buckets are retained
    — beyond that the least-recently-seen bucket is dropped, which
    *refills* that client on return (fail-open: an eviction must never
    manufacture a rejection).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        max_clients: int = 1024,
        clock: Clock = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = int(max_clients)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def try_acquire(self, client: str) -> Optional[float]:
        """Admit one request for ``client``; ``None`` or retry delay."""
        with self._lock:
            bucket = self._buckets.pop(client, None)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client] = bucket  # re-insert = most recent
            while len(self._buckets) > self.max_clients:
                self._buckets.pop(next(iter(self._buckets)))
        return bucket.try_acquire()

    def __len__(self) -> int:
        return len(self._buckets)


class AdmissionGate:
    """Global budget on outstanding admitted solve cost (in edges).

    Cold solves are admitted by :meth:`try_admit` (cost estimated from
    the dataset manifest) and must be released when the job reaches a
    terminal state.  ``budget=None`` disables the limit but still
    tracks the gauge for ``/stats``.
    """

    def __init__(self, budget: Optional[int] = None) -> None:
        self.budget = int(budget) if budget is not None else None
        self._outstanding = 0
        self._admitted = 0
        self._lock = threading.Lock()

    def try_admit(self, cost: int) -> bool:
        """Reserve ``cost``; ``False`` when the budget cannot absorb it."""
        cost = max(0, int(cost))
        with self._lock:
            if (
                self.budget is not None
                and self._outstanding > 0
                and self._outstanding + cost > self.budget
            ):
                return False
            self._outstanding += cost
            self._admitted += 1
            return True

    def release(self, cost: int) -> None:
        """Return a previously admitted reservation."""
        with self._lock:
            self._outstanding = max(0, self._outstanding - max(0, int(cost)))

    @property
    def outstanding(self) -> int:
        return self._outstanding

    def gauges(self) -> Dict[str, Optional[int]]:
        with self._lock:
            return {
                "outstanding_cost": self._outstanding,
                "budget": self.budget,
                "admitted_total": self._admitted,
            }


BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probes.

    ``failure_threshold`` consecutive failures open the breaker; while
    open, :meth:`allow` answers ``False`` (the caller serves its
    degraded path — for the catalog, cache-less).  After
    ``reset_seconds`` the next :meth:`allow` admits exactly one probe
    (half-open); its success closes the breaker, its failure reopens
    the window.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_seconds: float = 30.0,
        *,
        clock: Clock = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_seconds <= 0:
            raise ValueError(f"reset_seconds must be positive, got {reset_seconds}")
        self.failure_threshold = int(failure_threshold)
        self.reset_seconds = float(reset_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            self._tick_locked()
            return self._state

    def _tick_locked(self) -> None:
        if (
            self._state == BREAKER_OPEN
            and self._clock() - self._opened_at >= self.reset_seconds
        ):
            self._state = BREAKER_HALF_OPEN
            self._probing = False

    def allow(self) -> bool:
        """May the caller attempt the guarded operation right now?"""
        with self._lock:
            self._tick_locked()
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_HALF_OPEN and not self._probing:
                self._probing = True  # exactly one in-flight probe
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = BREAKER_CLOSED
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if (
                self._state == BREAKER_HALF_OPEN
                or self._failures >= self.failure_threshold
            ):
                self._state = BREAKER_OPEN
                self._opened_at = self._clock()
                self._probing = False


@dataclass(frozen=True)
class OverloadConfig:
    """Declarative overload knobs for one :class:`DensestService`.

    Every field defaults to *off*, so a bare service behaves exactly
    like the pre-overload stack; :func:`~repro.serve.app.build_server`
    and the CLI expose each knob.

    ================== ===============================================
    field               meaning
    ================== ===============================================
    client_rate         per-client cold-request rate (requests/second)
                        admitted by the token bucket; ``None`` = no
                        per-client policing
    client_burst        bucket capacity (burst absorbed before the
                        rate applies)
    max_cost_edges      per-request hard cost cap: a solve over a
                        dataset with more manifest edges is shed
                        outright (429 + ``Retry-After``)
    admit_budget_edges  global budget on *outstanding* admitted cold
                        cost; exceeding it arms the degradation ladder
    degrade_at          queue fraction (waiting / capacity) at which
                        the ladder arms; ``None`` disables load-based
                        degradation
    edges_per_second    cost model for deadline affordability: the
                        exact solve is considered unaffordable when
                        ``edges / edges_per_second`` exceeds the
                        request's deadline budget; ``None`` disables
    degrade_epsilon     the coarsened ε a ladder solve runs at (the
                        paper's quality/cost dial, turned toward cheap)
    stale_ok            whether the ladder may serve a stale cached
                        result (same dataset + problem kind, different
                        parameters) marked ``"stale": true``
    retry_after_base    seconds per queued-or-running job when deriving
                        ``Retry-After`` from queue depth
    ================== ===============================================
    """

    client_rate: Optional[float] = None
    client_burst: int = 10
    max_cost_edges: Optional[int] = None
    admit_budget_edges: Optional[int] = None
    degrade_at: Optional[float] = None
    edges_per_second: Optional[float] = None
    degrade_epsilon: float = 1.0
    stale_ok: bool = True
    retry_after_base: float = 1.0

    def __post_init__(self) -> None:
        if self.client_rate is not None and self.client_rate <= 0:
            raise ValueError(f"client_rate must be positive, got {self.client_rate}")
        if self.degrade_at is not None and not (0.0 <= self.degrade_at <= 1.0):
            raise ValueError(f"degrade_at must be in [0, 1], got {self.degrade_at}")
        if self.edges_per_second is not None and self.edges_per_second <= 0:
            raise ValueError(
                f"edges_per_second must be positive, got {self.edges_per_second}"
            )
        if self.degrade_epsilon <= 0:
            raise ValueError(
                f"degrade_epsilon must be positive, got {self.degrade_epsilon}"
            )

    @property
    def enabled(self) -> bool:
        """Is any admission/degradation behavior switched on?"""
        return any(
            v is not None
            for v in (
                self.client_rate,
                self.max_cost_edges,
                self.admit_budget_edges,
                self.degrade_at,
                self.edges_per_second,
            )
        )


def retry_after_seconds(
    depth: Dict[str, int], *, base: float = 1.0, extra: float = 0.0
) -> int:
    """``Retry-After`` derived from live queue depth.

    One ``base`` per queued-or-running job plus one for the caller's
    own turn: an emptier queue invites a faster retry, a deep one
    pushes the herd out proportionally.  Always at least 1 second —
    integral, as the HTTP header field wants.
    """
    waiting = int(depth.get("pending", 0)) + int(depth.get("running", 0))
    return max(1, math.ceil(base * (1 + waiting) + max(0.0, extra)))
