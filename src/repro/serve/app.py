"""HTTP query layer: densest-subgraph-as-a-service.

A dependency-light serving process over the solver registry — stdlib
``http.server.ThreadingHTTPServer`` + ``json``, one thread per
connection, solves on the :class:`~repro.serve.jobs.JobManager` pool,
answers out of the :class:`~repro.serve.catalog.ResultCatalog`.

Endpoints
---------
=======  =======================  =========================================
method   path                     purpose
=======  =======================  =========================================
GET      ``/healthz``             liveness probe
GET      ``/stats``               hit ratio, queue depth, per-backend counts
GET      ``/datasets``            registered datasets
GET      ``/datasets/<name>``     one dataset record
POST     ``/datasets``            register a shard store / edge list /
                                  registry dataset
POST     ``/solve``               catalog consult -> cached answer or job
GET      ``/jobs``                recent jobs
GET      ``/jobs/<id>``           job status (result key when DONE)
DELETE   ``/jobs/<id>``           cancel a queued job, or cooperatively
                                  cancel a running one (the response's
                                  ``outcome`` says which happened)
GET      ``/results``             catalog listing (paginated)
GET      ``/results/<key>``       one solution (member list paginated)
=======  =======================  =========================================

``POST /solve`` body::

    {"dataset": "<name or fingerprint>",
     "problem": {"kind": "densest_subgraph", "epsilon": 0.1, ...},
     "backend": "auto",          # optional
     "options": {"engine": "numpy"},  # optional solver knobs
     "wait": 30.0,               # optional: block up to N seconds
     "deadline": 5.0}            # optional: per-request latency budget

A catalog hit answers ``200`` immediately with the stored solution
bytes; a miss submits a job and answers ``202`` with the job id (or
``200`` after joining it when ``wait`` is given); a full queue answers
``429``.  Every ``429`` carries a ``Retry-After`` header derived from
live queue depth.  Under overload (or an unaffordable ``deadline``)
the service degrades *explicitly* — a stale cached answer marked
``"stale": true``, a cheap coarser-ε solve marked ``"degraded": true``,
or a shed — never a silently-wrong or unbounded-latency answer
(DESIGN.md §14).
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..api import ExecutionContext, solve
from ..api.problems import (
    DensestAtLeastK,
    DensestSubgraph,
    DirectedDensest,
    MODE_GRAPH,
    Problem,
)
from ..datasets import registry as dataset_registry
from ..datasets.registry import ServedDataset
from ..errors import ParameterError, ReproError
from .admission import (
    AdmissionGate,
    CircuitBreaker,
    ClientRateLimiter,
    OverloadConfig,
    retry_after_seconds,
)
from .catalog import CatalogError, ResultCatalog, params_json, result_key
from .jobs import DONE, FAILED, JobManager, QueueFullError

#: Problem kinds constructible over HTTP.
PROBLEM_TYPES = {
    cls.kind: cls for cls in (DensestSubgraph, DensestAtLeastK, DirectedDensest)
}

#: Default member-list page size on ``GET /results/<key>`` when a page
#: is requested (no ``limit``/``offset`` means the full solution).
DEFAULT_PAGE = 1000


class HTTPError(ReproError):
    """A service error with an HTTP status code.

    ``headers`` ride onto the HTTP response (``Retry-After`` on a shed)
    and ``payload`` keys are merged into the JSON error body, so a
    machine-readable mirror of the header reaches clients that only
    parse the body.
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        headers: Optional[Dict[str, str]] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})
        self.payload = dict(payload or {})


class DensestService:
    """The serving logic behind the HTTP handler (transport-free).

    Owns the catalog, the job manager, and the resolved dataset inputs.
    All methods are thread-safe; the HTTP layer is a thin JSON shim
    over them, which is also what the in-process tests drive.
    """

    def __init__(
        self,
        catalog: ResultCatalog,
        *,
        context: Optional[ExecutionContext] = None,
        max_queue: int = 64,
        overload: Optional[OverloadConfig] = None,
    ) -> None:
        self.catalog = catalog
        self.context = context or ExecutionContext(workers=2)
        self.jobs = JobManager(self.context.workers, max_queue=max_queue)
        self.overload = overload or OverloadConfig()
        self.limiter = (
            ClientRateLimiter(self.overload.client_rate, self.overload.client_burst)
            if self.overload.client_rate is not None
            else None
        )
        self.gate = AdmissionGate(self.overload.admit_budget_edges)
        self._solve_ops = itertools.count()  # serve.solve fault-site index
        self.started_at = time.time()
        self._inputs: Dict[str, Any] = {}  # fingerprint -> resolved input
        self._inputs_lock = threading.Lock()

    # -- datasets ------------------------------------------------------
    def register_dataset(self, spec: Dict[str, Any]) -> ServedDataset:
        """Register an input under a stable name.

        ``spec`` names exactly one source:

        * ``{"name": ..., "store": "<dir>"}`` — an existing
          :class:`~repro.store.ShardedEdgeStore` (content-fingerprinted);
        * ``{"name": ..., "edge_list": "<path>", "directed": bool}`` —
          converted into a store under the service spill dir first;
        * ``{"name": ..., "dataset": "<registry name>", "scale": ...,
          "seed": ...}`` — a deterministic synthetic registry graph.
        """
        name = spec.get("name")
        if not name or not isinstance(name, str):
            raise HTTPError(400, "dataset registration needs a string 'name'")
        sources = [k for k in ("store", "edge_list", "dataset") if spec.get(k)]
        if len(sources) != 1:
            raise HTTPError(
                400,
                "give exactly one of 'store', 'edge_list', or 'dataset' "
                f"(got {sources or 'none'})",
            )
        kind = sources[0]
        try:
            if kind == "store":
                record, input_obj = self._register_store(name, spec["store"])
            elif kind == "edge_list":
                record, input_obj = self._register_edge_list(
                    name, spec["edge_list"], bool(spec.get("directed", False))
                )
            else:
                record, input_obj = self._register_synthetic(
                    name,
                    spec["dataset"],
                    float(spec.get("scale", 1.0)),
                    spec.get("seed"),
                )
        except HTTPError:
            raise
        except ReproError as exc:
            raise HTTPError(400, str(exc)) from exc
        try:
            record = self.catalog.register_dataset(record)
        except CatalogError as exc:
            raise HTTPError(409, str(exc)) from exc
        with self._inputs_lock:
            self._inputs[record.fingerprint] = input_obj
        return record

    def _register_store(self, name: str, path: str) -> Tuple[ServedDataset, Any]:
        from ..store import ShardedEdgeStore

        store = ShardedEdgeStore.open(path)
        record = ServedDataset(
            name=name,
            fingerprint=store.fingerprint(),
            source=str(store.path),
            input_kind="store",
            directed=store.directed,
            num_nodes=store.num_nodes,
            num_edges=store.num_edges,
        )
        return record, store

    def _register_edge_list(
        self, name: str, path: str, directed: bool
    ) -> Tuple[ServedDataset, Any]:
        import os

        from ..store import ShardedEdgeStore, write_edge_list_store
        from ..store.shards import MANIFEST_NAME

        if not self.context.spill_dir:
            raise HTTPError(
                400,
                "edge-list registration converts into a shard store and "
                "needs the server started with --spill-dir",
            )
        store_dir = os.path.join(self.context.spill_dir, f"dataset-{name}")
        if os.path.exists(os.path.join(store_dir, MANIFEST_NAME)):
            store = ShardedEdgeStore.open(store_dir)
        else:
            store = write_edge_list_store(
                path,
                store_dir,
                directed=directed,
                num_shards=self.context.shard_count,
            )
        record, _ = self._register_store(name, store_dir)
        record = ServedDataset(**{**record.to_jsonable(), "input_kind": "edge_list"})
        return record, store

    def _register_synthetic(
        self, name: str, dataset: str, scale: float, seed: Optional[int]
    ) -> Tuple[ServedDataset, Any]:
        meta = dataset_registry.info(dataset)
        graph = dataset_registry.load(dataset, scale=scale, seed=seed)
        record = ServedDataset(
            name=name,
            fingerprint=dataset_registry.synthetic_fingerprint(
                dataset, scale=scale, seed=seed
            ),
            source=f"synthetic:{dataset}",
            input_kind="synthetic",
            directed=meta.kind == "directed",
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            scale=scale,
            seed=meta.default_seed if seed is None else int(seed),
        )
        return record, graph

    def _resolve_input(self, record: ServedDataset) -> Any:
        """The live input object for a dataset record (lazily reopened)."""
        with self._inputs_lock:
            cached = self._inputs.get(record.fingerprint)
        if cached is not None:
            return cached
        if record.input_kind in ("store", "edge_list"):
            from ..store import ShardedEdgeStore

            input_obj = ShardedEdgeStore.open(record.source)
        else:
            input_obj = dataset_registry.load(
                record.source.split(":", 1)[1],
                scale=record.scale if record.scale is not None else 1.0,
                seed=record.seed,
            )
        with self._inputs_lock:
            self._inputs.setdefault(record.fingerprint, input_obj)
        return input_obj

    # -- solving -------------------------------------------------------
    def _build_problem(self, record: ServedDataset, spec: Dict[str, Any]) -> Problem:
        if not isinstance(spec, dict):
            raise HTTPError(400, "'problem' must be an object")
        kind = spec.get("kind", "densest_subgraph")
        cls = PROBLEM_TYPES.get(kind)
        if cls is None:
            raise HTTPError(
                400,
                f"unknown problem kind {kind!r} "
                f"(one of: {', '.join(sorted(PROBLEM_TYPES))})",
            )
        params = {k: v for k, v in spec.items() if k != "kind"}
        if "ratio_grid" in params and params["ratio_grid"] is not None:
            params["ratio_grid"] = tuple(params["ratio_grid"])
        input_obj = self._resolve_input(record)
        try:
            return cls(input_obj, **params)
        except TypeError as exc:
            raise HTTPError(400, f"bad problem parameters: {exc}") from None
        except ParameterError as exc:
            raise HTTPError(400, str(exc)) from None

    def solve_request(
        self, body: Dict[str, Any], *, client: Optional[str] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """Handle ``POST /solve``; returns ``(http_status, payload)``.

        The overload pipeline (DESIGN.md §14) runs between the catalog
        consult and the job submission, and only for *fresh cold* work:
        warm hits ship cached bytes for microseconds and stay
        unmetered, and attaching to an in-flight solve adds no solver
        cost, so neither consumes admission budget.

        1. per-client token bucket (cold request rate) — over → shed;
        2. per-request cost cap (manifest edges) — over → shed;
        3. ladder triggers: queue fraction past ``degrade_at``, a
           ``deadline`` the cost model says the exact solve cannot
           meet, or the global admission gate refusing the cost — any
           → :meth:`_degrade_or_shed` (stale answer, coarser cheap
           solve, or shed; every rung labeled in the payload).

        A shed is an :class:`HTTPError` 429 whose ``Retry-After``
        header is derived from live queue depth.
        """
        record = self._dataset_or_404(body.get("dataset"))
        backend = body.get("backend", "auto")
        if not isinstance(backend, str):
            raise HTTPError(400, "'backend' must be a string")
        problem = self._build_problem(record, body.get("problem") or {})
        params = params_json(problem)
        options = body.get("options") or {}
        if not isinstance(options, dict):
            raise HTTPError(400, "'options' must be an object")
        key = result_key(record.fingerprint, problem.kind, params, backend)

        row = self.catalog.get(key)  # counts the hit/miss
        if row is not None:
            return 200, self._result_payload(row, cached=True)

        wait = body.get("wait")
        deadline = self._deadline_budget(body)
        cfg = self.overload
        cost = int(record.num_edges or 0)
        reserved: Optional[int] = None
        if cfg.enabled and self.jobs.in_flight(key) is None:
            if self.limiter is not None and client is not None:
                delay = self.limiter.try_acquire(client)
                if delay is not None:
                    self._shed(
                        f"client {client!r} is over its cold-request rate",
                        extra=delay,
                    )
            if cfg.max_cost_edges is not None and cost > cfg.max_cost_edges:
                self._shed(
                    f"dataset {record.name!r} costs {cost} edges, over the "
                    f"per-request cap of {cfg.max_cost_edges}"
                )
            depth = self.jobs.queue_depth()
            overloaded = (
                cfg.degrade_at is not None
                and depth["pending"] / max(1, depth["capacity"]) >= cfg.degrade_at
            )
            unaffordable = (
                deadline is not None
                and cfg.edges_per_second is not None
                and cost / cfg.edges_per_second > deadline
            )
            if overloaded or unaffordable or not self.gate.try_admit(cost):
                reason = (
                    "queue past the degrade threshold"
                    if overloaded
                    else "exact solve cannot meet the deadline"
                    if unaffordable
                    else "admission budget exhausted"
                )
                return self._degrade_or_shed(
                    record, problem, backend, key, wait=wait, reason=reason
                )
            reserved = cost  # admitted: released when the job is terminal
        return self._submit_solve(
            record,
            problem,
            params,
            backend,
            options,
            key,
            wait=wait,
            deadline=deadline,
            reserved=reserved,
        )

    def _deadline_budget(self, body: Dict[str, Any]) -> Optional[float]:
        """The request's effective latency budget (request ∧ server)."""
        deadline = body.get("deadline")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError):
                raise HTTPError(
                    400, "'deadline' must be a number of seconds"
                ) from None
            if deadline <= 0:
                raise HTTPError(400, "'deadline' must be positive")
        budgets = [
            b for b in (deadline, self.context.deadline_seconds) if b is not None
        ]
        return min(budgets) if budgets else None

    def _shed(self, reason: str, *, extra: float = 0.0) -> None:
        """Reject with 429 + ``Retry-After`` and count the shed."""
        self.catalog.bump_counter("shed")
        retry = retry_after_seconds(
            self.jobs.queue_depth(),
            base=self.overload.retry_after_base,
            extra=extra,
        )
        raise HTTPError(
            429,
            f"overloaded: {reason}; retry after {retry}s",
            headers={"Retry-After": str(retry)},
            payload={"retry_after": retry, "shed": True},
        )

    def _degrade_plan(self, problem: Problem) -> Optional[Tuple[str, Problem]]:
        """The cheaper ``(backend, problem)`` a ladder solve runs.

        Coarsen ε to ``degrade_epsilon`` (never *refine* a coarser
        request) and pick the cheapest capable backend: the sketch for
        plain densest-subgraph on any input, the greedy exact solver
        for in-memory graphs, a coarse streaming peel otherwise.
        ``None`` means no rung is cheaper than the request — shed.
        """
        eps = getattr(problem, "epsilon", None)
        coarse = max(self.overload.degrade_epsilon, eps or 0.0)
        degraded = (
            dataclasses.replace(problem, epsilon=coarse)
            if eps is not None
            else problem
        )
        if problem.kind == DensestSubgraph.kind:
            return "sketch", degraded
        if problem.input_mode == MODE_GRAPH:
            return "greedy", degraded
        if eps is not None and coarse > eps:
            return "streaming", degraded
        return None

    def _degrade_or_shed(
        self,
        record: ServedDataset,
        problem: Problem,
        backend: str,
        key: str,
        *,
        wait: Any,
        reason: str,
    ) -> Tuple[int, Dict[str, Any]]:
        """Walk the degradation ladder for an unadmittable exact solve.

        Rung 1 — a *stale* cached answer: the most recent stored result
        for the same dataset + problem kind (any parameters/backend),
        marked ``"stale": true``.  Rung 2 — a *degraded* fresh solve:
        :meth:`_degrade_plan`'s cheap backend at coarse ε, marked
        ``"degraded": true``.  Rung 3 — shed.  Labeled payloads carry
        ``requested_key`` (what an unconstrained retry would hit) and
        ``degrade_reason``; stored catalog rows are never mutated, so
        warm byte-identity is untouched.
        """
        label = {"requested_key": key, "degrade_reason": reason}
        if self.overload.stale_ok:
            row = self.catalog.latest_for(record.fingerprint, problem.kind)
            if row is not None:
                self.catalog.bump_counter("stale_served")
                payload = self._result_payload(row, cached=True)
                payload.update(label, stale=True)
                return 200, payload
        plan = self._degrade_plan(problem)
        if plan is None:
            self._shed(f"no cheaper plan for {problem.kind} ({reason})")
        d_backend, d_problem = plan
        d_params = params_json(d_problem)
        d_key = result_key(
            record.fingerprint, d_problem.kind, d_params, d_backend
        )
        label["degraded"] = True
        d_row = self.catalog.get(d_key)
        if d_row is not None:
            self.catalog.bump_counter("degraded")
            payload = self._result_payload(d_row, cached=True)
            payload.update(label)
            return 200, payload
        status, payload = self._submit_solve(
            record, d_problem, d_params, d_backend, {}, d_key,
            wait=wait, label=label,
        )
        self.catalog.bump_counter("degraded")
        return status, payload

    def _submit_solve(
        self,
        record: ServedDataset,
        problem: Problem,
        params: str,
        backend: str,
        options: Dict[str, Any],
        key: str,
        *,
        wait: Any,
        deadline: Optional[float] = None,
        reserved: Optional[int] = None,
        label: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """Submit a cold solve and answer 200/202/500 (or shed on a
        full queue).  ``reserved`` is admission-gate cost to release
        when the job reaches any terminal state; ``label`` keys are
        merged into the response payload (degradation markers)."""
        # Each job gets its own cancel event, threaded into the solve
        # through the context so DELETE /jobs/<id> can interrupt a
        # running peel at its next pass boundary.
        cancel_event = threading.Event()
        job_context = dataclasses.replace(self.context, cancel_event=cancel_event)
        if deadline is not None:
            job_context = dataclasses.replace(
                job_context, deadline_seconds=deadline
            )
        plan = self.context.fault_plan
        op = next(self._solve_ops)

        def run():
            if plan is not None:
                plan.fire("serve.solve", op)
            start = time.perf_counter()
            solution = solve(
                problem, backend=backend, context=job_context, **options
            )
            elapsed = time.perf_counter() - start
            return self.catalog.put(
                key,
                dataset_fingerprint=record.fingerprint,
                problem_kind=problem.kind,
                params=params,
                backend=backend,
                solution=solution,
                solve_seconds=elapsed,
            )

        description = {
            "dataset": record.name,
            "problem_kind": problem.kind,
            "params": json.loads(params),
            "backend": backend,
        }
        if label:
            description["degraded"] = bool(label.get("degraded"))
        on_done = (
            (lambda job: self.gate.release(reserved))
            if reserved is not None
            else None
        )
        try:
            job, created = self.jobs.submit(
                key, run, description, cancel_event=cancel_event, on_done=on_done
            )
        except QueueFullError as exc:
            if reserved is not None:
                self.gate.release(reserved)
            self._shed(str(exc))
        if not created:
            if reserved is not None:
                self.gate.release(reserved)  # attached: no new cost
            self.catalog.bump_counter("coalesced")

        if wait is not None:
            job.wait(float(wait))
        if job.status == DONE:
            payload = self._result_payload(job.result, cached=False)
            if label:
                payload.update(label)
            return 200, payload
        if job.status == FAILED:
            return 500, {"job": job.to_jsonable()}
        payload = {"job": job.to_jsonable()}
        if label:
            payload.update(label)
        return 202, payload

    def _dataset_or_404(self, name: Any) -> ServedDataset:
        if not name or not isinstance(name, str):
            raise HTTPError(400, "'dataset' must name a registered dataset")
        record = self.catalog.get_dataset(name)
        if record is None:
            raise HTTPError(404, f"no dataset registered as {name!r}")
        return record

    # -- payload shaping ----------------------------------------------
    def _result_payload(
        self,
        row: Dict[str, Any],
        *,
        cached: bool,
        offset: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        solution = json.loads(row["solution_json"])
        payload = {
            "key": row["key"],
            "cached": cached,
            "dataset_fingerprint": row["dataset_fingerprint"],
            "problem_kind": row["problem_kind"],
            "params": json.loads(row["params_json"]),
            "backend": row["backend"],
            "solved_backend": row["solved_backend"],
            "density": row["density"],
            "size": row["size"],
            "solve_seconds": row["solve_seconds"],
            "created_at": row["created_at"],
            "hits": row["hits"],
            "solution": solution,
        }
        if offset is not None or limit is not None:
            offset = max(0, int(offset or 0))
            limit = int(limit if limit is not None else DEFAULT_PAGE)
            members = solution.get("nodes", {})
            members = members.get("__set__", members) if isinstance(members, dict) else members
            page = members[offset : offset + limit]
            payload["solution"] = {**solution, "nodes": {"__set__": page}}
            payload["page"] = {
                "offset": offset,
                "limit": limit,
                "returned": len(page),
                "total": row["size"],
            }
        return payload

    def result_by_key(
        self, key: str, *, offset: Optional[int], limit: Optional[int]
    ) -> Dict[str, Any]:
        row = self.catalog.get(key)
        if row is None:
            raise HTTPError(404, f"no cached result under key {key!r}")
        return self._result_payload(row, cached=True, offset=offset, limit=limit)

    def stats(self) -> Dict[str, Any]:
        payload = self.catalog.stats()
        payload["queue"] = self.jobs.queue_depth()
        admission = dict(self.gate.gauges())
        admission["clients_tracked"] = (
            len(self.limiter) if self.limiter is not None else 0
        )
        admission["overload_enabled"] = self.overload.enabled
        payload["admission"] = admission
        payload["uptime_seconds"] = time.time() - self.started_at
        try:
            from ..kernels import tier_report

            payload["kernel_tiers"] = tier_report()
        except Exception:  # pragma: no cover - report must never break /stats
            payload["kernel_tiers"] = None
        return payload

    def close(self) -> None:
        self.jobs.shutdown(wait=False)
        self.catalog.close()


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
class DensestRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs + paths onto the :class:`DensestService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-densest"

    #: Max accepted request body (datasets are registered by *path*, so
    #: request bodies are small problem descriptions).
    MAX_BODY = 1 << 20

    def log_message(self, fmt, *args):  # pragma: no cover - quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    @property
    def service(self) -> DensestService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.MAX_BODY:
            raise HTTPError(413, f"request body over {self.MAX_BODY} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise HTTPError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(body, dict):
            raise HTTPError(400, "request body must be a JSON object")
        return body

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        headers: Optional[Dict[str, str]] = None
        try:
            status, payload = self._route(method, parts, query)
        except HTTPError as exc:
            status, payload = exc.status, {"error": str(exc), **exc.payload}
            headers = exc.headers
        except ReproError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - a handler must answer
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        self._send_json(status, payload, headers)

    # -- routing -------------------------------------------------------
    def _route(self, method, parts, query) -> Tuple[int, Dict[str, Any]]:
        service = self.service
        if method == "GET" and parts == ["healthz"]:
            return 200, {"status": "ok", "uptime_seconds": time.time() - service.started_at}
        if method == "GET" and parts == ["stats"]:
            return 200, service.stats()
        if method == "GET" and parts == ["datasets"]:
            return 200, {
                "datasets": [r.to_jsonable() for r in service.catalog.list_datasets()]
            }
        if method == "GET" and len(parts) == 2 and parts[0] == "datasets":
            return 200, {"dataset": service._dataset_or_404(parts[1]).to_jsonable()}
        if method == "POST" and parts == ["datasets"]:
            record = service.register_dataset(self._read_json())
            return 201, {"dataset": record.to_jsonable()}
        if method == "POST" and parts == ["solve"]:
            # the rate-limiter's client identity: an explicit header
            # when the client offers one, else the peer address
            client = self.headers.get("X-Client-Id") or self.client_address[0]
            return service.solve_request(self._read_json(), client=client)
        if method == "GET" and parts == ["jobs"]:
            limit = int(query.get("limit", 100))
            return 200, {
                "jobs": [j.to_jsonable() for j in service.jobs.list_jobs(limit=limit)]
            }
        if len(parts) == 2 and parts[0] == "jobs":
            job = service.jobs.get(parts[1])
            if job is None:
                raise HTTPError(404, f"no job {parts[1]!r}")
            if method == "GET":
                payload = {"job": job.to_jsonable()}
                if job.status == DONE and job.result is not None:
                    payload["result_key"] = job.result["key"]
                return 200, payload
            if method == "DELETE":
                outcome = service.jobs.cancel(parts[1])
                return (200 if outcome else 409), {
                    "job": job.to_jsonable(),
                    "cancelled": outcome == "cancelled",
                    "outcome": outcome or "finished",
                }
        if method == "GET" and parts == ["results"]:
            offset = int(query.get("offset", 0))
            limit = int(query.get("limit", 100))
            return 200, {
                "results": service.catalog.list_results(offset=offset, limit=limit)
            }
        if method == "GET" and len(parts) == 2 and parts[0] == "results":
            offset = query.get("offset")
            limit = query.get("limit")
            return 200, service.result_by_key(
                parts[1],
                offset=int(offset) if offset is not None else None,
                limit=int(limit) if limit is not None else None,
            )
        raise HTTPError(404, f"no route {method} /{'/'.join(parts)}")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class DensestHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer owning a :class:`DensestService`."""

    daemon_threads = True

    def __init__(self, address, service: DensestService, *, verbose: bool = False):
        super().__init__(address, DensestRequestHandler)
        self.service = service
        self.verbose = verbose

    def shutdown(self) -> None:  # also stop the solver pool
        super().shutdown()
        self.service.close()


def build_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    catalog_path: str = "catalog.sqlite",
    workers: int = 2,
    spill_dir: Optional[str] = None,
    shard_count: int = 8,
    max_queue: int = 64,
    deadline_seconds: Optional[float] = None,
    verbose: bool = False,
    client_rate: Optional[float] = None,
    client_burst: int = 10,
    max_cost_edges: Optional[int] = None,
    admit_budget_edges: Optional[int] = None,
    degrade_at: Optional[float] = None,
    edges_per_second: Optional[float] = None,
    degrade_epsilon: float = 1.0,
    stale_ok: bool = True,
    retry_after_base: float = 1.0,
    breaker_threshold: Optional[int] = 5,
    breaker_reset_seconds: float = 30.0,
    fault_plan=None,
) -> DensestHTTPServer:
    """Construct a ready-to-run server (``port=0`` picks a free port).

    ``deadline_seconds`` is the per-job wall-clock budget: a solve that
    overruns it unwinds cooperatively and the job reports
    ``FAILED`` with a ``timeout:`` error instead of running forever.

    The overload knobs (``client_rate`` … ``retry_after_base``) map
    one-to-one onto :class:`~repro.serve.admission.OverloadConfig`; all
    default to off, so a bare server behaves exactly as before.
    ``breaker_threshold``/``breaker_reset_seconds`` size the catalog's
    circuit breaker (``breaker_threshold=None`` disables it — catalog
    errors then propagate as before).  ``fault_plan`` arms a
    :class:`~repro.faults.FaultPlan` against both the solver tier and
    the catalog's ``catalog.read``/``catalog.write``/``serve.solve``
    sites — the chaos harness's entry point.
    """
    context = ExecutionContext(
        workers=workers,
        spill_dir=spill_dir,
        shard_count=shard_count,
        deadline_seconds=deadline_seconds,
        fault_plan=fault_plan,
    )
    overload = OverloadConfig(
        client_rate=client_rate,
        client_burst=client_burst,
        max_cost_edges=max_cost_edges,
        admit_budget_edges=admit_budget_edges,
        degrade_at=degrade_at,
        edges_per_second=edges_per_second,
        degrade_epsilon=degrade_epsilon,
        stale_ok=stale_ok,
        retry_after_base=retry_after_base,
    )
    breaker = (
        CircuitBreaker(breaker_threshold, breaker_reset_seconds)
        if breaker_threshold is not None
        else None
    )
    service = DensestService(
        ResultCatalog(catalog_path, breaker=breaker, fault_plan=fault_plan),
        context=context,
        max_queue=max_queue,
        overload=overload,
    )
    return DensestHTTPServer((host, port), service, verbose=verbose)


def run_server(**kwargs) -> None:
    """Build and serve forever (the ``repro-densest serve`` entry).

    Installs a SIGTERM handler for graceful drain: the listener stops
    accepting connections, in-flight handlers finish, and the solver
    pool shuts down — the clean-exit path under process supervisors.
    """
    import signal

    server = build_server(**kwargs)
    host, port = server.server_address[:2]
    print(f"repro-densest serving on http://{host}:{port}")
    print(f"  catalog : {server.service.catalog.path}")
    print(f"  workers : {server.service.jobs.workers}")

    def _drain(signum, frame):  # pragma: no cover - signal delivery
        # shutdown() must not run on the serve_forever thread (it
        # joins the serve loop), so hand it to a helper thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _drain)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.shutdown()
        server.server_close()
