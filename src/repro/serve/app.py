"""HTTP query layer: densest-subgraph-as-a-service.

A dependency-light serving process over the solver registry — stdlib
``http.server.ThreadingHTTPServer`` + ``json``, one thread per
connection, solves on the :class:`~repro.serve.jobs.JobManager` pool,
answers out of the :class:`~repro.serve.catalog.ResultCatalog`.

Endpoints
---------
=======  =======================  =========================================
method   path                     purpose
=======  =======================  =========================================
GET      ``/healthz``             liveness probe
GET      ``/stats``               hit ratio, queue depth, per-backend counts
GET      ``/datasets``            registered datasets
GET      ``/datasets/<name>``     one dataset record
POST     ``/datasets``            register a shard store / edge list /
                                  registry dataset
POST     ``/solve``               catalog consult -> cached answer or job
GET      ``/jobs``                recent jobs
GET      ``/jobs/<id>``           job status (result key when DONE)
DELETE   ``/jobs/<id>``           cancel a queued job, or cooperatively
                                  cancel a running one (the response's
                                  ``outcome`` says which happened)
GET      ``/results``             catalog listing (paginated)
GET      ``/results/<key>``       one solution (member list paginated)
=======  =======================  =========================================

``POST /solve`` body::

    {"dataset": "<name or fingerprint>",
     "problem": {"kind": "densest_subgraph", "epsilon": 0.1, ...},
     "backend": "auto",          # optional
     "options": {"engine": "numpy"},  # optional solver knobs
     "wait": 30.0}               # optional: block up to N seconds

A catalog hit answers ``200`` immediately with the stored solution
bytes; a miss submits a job and answers ``202`` with the job id (or
``200`` after joining it when ``wait`` is given); a full queue answers
``429``.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..api import ExecutionContext, solve
from ..api.problems import (
    DensestAtLeastK,
    DensestSubgraph,
    DirectedDensest,
    Problem,
)
from ..datasets import registry as dataset_registry
from ..datasets.registry import ServedDataset
from ..errors import ParameterError, ReproError
from .catalog import CatalogError, ResultCatalog, params_json, result_key
from .jobs import DONE, FAILED, JobManager, QueueFullError

#: Problem kinds constructible over HTTP.
PROBLEM_TYPES = {
    cls.kind: cls for cls in (DensestSubgraph, DensestAtLeastK, DirectedDensest)
}

#: Default member-list page size on ``GET /results/<key>`` when a page
#: is requested (no ``limit``/``offset`` means the full solution).
DEFAULT_PAGE = 1000


class HTTPError(ReproError):
    """A service error with an HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class DensestService:
    """The serving logic behind the HTTP handler (transport-free).

    Owns the catalog, the job manager, and the resolved dataset inputs.
    All methods are thread-safe; the HTTP layer is a thin JSON shim
    over them, which is also what the in-process tests drive.
    """

    def __init__(
        self,
        catalog: ResultCatalog,
        *,
        context: Optional[ExecutionContext] = None,
        max_queue: int = 64,
    ) -> None:
        self.catalog = catalog
        self.context = context or ExecutionContext(workers=2)
        self.jobs = JobManager(self.context.workers, max_queue=max_queue)
        self.started_at = time.time()
        self._inputs: Dict[str, Any] = {}  # fingerprint -> resolved input
        self._inputs_lock = threading.Lock()

    # -- datasets ------------------------------------------------------
    def register_dataset(self, spec: Dict[str, Any]) -> ServedDataset:
        """Register an input under a stable name.

        ``spec`` names exactly one source:

        * ``{"name": ..., "store": "<dir>"}`` — an existing
          :class:`~repro.store.ShardedEdgeStore` (content-fingerprinted);
        * ``{"name": ..., "edge_list": "<path>", "directed": bool}`` —
          converted into a store under the service spill dir first;
        * ``{"name": ..., "dataset": "<registry name>", "scale": ...,
          "seed": ...}`` — a deterministic synthetic registry graph.
        """
        name = spec.get("name")
        if not name or not isinstance(name, str):
            raise HTTPError(400, "dataset registration needs a string 'name'")
        sources = [k for k in ("store", "edge_list", "dataset") if spec.get(k)]
        if len(sources) != 1:
            raise HTTPError(
                400,
                "give exactly one of 'store', 'edge_list', or 'dataset' "
                f"(got {sources or 'none'})",
            )
        kind = sources[0]
        try:
            if kind == "store":
                record, input_obj = self._register_store(name, spec["store"])
            elif kind == "edge_list":
                record, input_obj = self._register_edge_list(
                    name, spec["edge_list"], bool(spec.get("directed", False))
                )
            else:
                record, input_obj = self._register_synthetic(
                    name,
                    spec["dataset"],
                    float(spec.get("scale", 1.0)),
                    spec.get("seed"),
                )
        except HTTPError:
            raise
        except ReproError as exc:
            raise HTTPError(400, str(exc)) from exc
        try:
            record = self.catalog.register_dataset(record)
        except CatalogError as exc:
            raise HTTPError(409, str(exc)) from exc
        with self._inputs_lock:
            self._inputs[record.fingerprint] = input_obj
        return record

    def _register_store(self, name: str, path: str) -> Tuple[ServedDataset, Any]:
        from ..store import ShardedEdgeStore

        store = ShardedEdgeStore.open(path)
        record = ServedDataset(
            name=name,
            fingerprint=store.fingerprint(),
            source=str(store.path),
            input_kind="store",
            directed=store.directed,
            num_nodes=store.num_nodes,
            num_edges=store.num_edges,
        )
        return record, store

    def _register_edge_list(
        self, name: str, path: str, directed: bool
    ) -> Tuple[ServedDataset, Any]:
        import os

        from ..store import ShardedEdgeStore, write_edge_list_store
        from ..store.shards import MANIFEST_NAME

        if not self.context.spill_dir:
            raise HTTPError(
                400,
                "edge-list registration converts into a shard store and "
                "needs the server started with --spill-dir",
            )
        store_dir = os.path.join(self.context.spill_dir, f"dataset-{name}")
        if os.path.exists(os.path.join(store_dir, MANIFEST_NAME)):
            store = ShardedEdgeStore.open(store_dir)
        else:
            store = write_edge_list_store(
                path,
                store_dir,
                directed=directed,
                num_shards=self.context.shard_count,
            )
        record, _ = self._register_store(name, store_dir)
        record = ServedDataset(**{**record.to_jsonable(), "input_kind": "edge_list"})
        return record, store

    def _register_synthetic(
        self, name: str, dataset: str, scale: float, seed: Optional[int]
    ) -> Tuple[ServedDataset, Any]:
        meta = dataset_registry.info(dataset)
        graph = dataset_registry.load(dataset, scale=scale, seed=seed)
        record = ServedDataset(
            name=name,
            fingerprint=dataset_registry.synthetic_fingerprint(
                dataset, scale=scale, seed=seed
            ),
            source=f"synthetic:{dataset}",
            input_kind="synthetic",
            directed=meta.kind == "directed",
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            scale=scale,
            seed=meta.default_seed if seed is None else int(seed),
        )
        return record, graph

    def _resolve_input(self, record: ServedDataset) -> Any:
        """The live input object for a dataset record (lazily reopened)."""
        with self._inputs_lock:
            cached = self._inputs.get(record.fingerprint)
        if cached is not None:
            return cached
        if record.input_kind in ("store", "edge_list"):
            from ..store import ShardedEdgeStore

            input_obj = ShardedEdgeStore.open(record.source)
        else:
            input_obj = dataset_registry.load(
                record.source.split(":", 1)[1],
                scale=record.scale if record.scale is not None else 1.0,
                seed=record.seed,
            )
        with self._inputs_lock:
            self._inputs.setdefault(record.fingerprint, input_obj)
        return input_obj

    # -- solving -------------------------------------------------------
    def _build_problem(self, record: ServedDataset, spec: Dict[str, Any]) -> Problem:
        if not isinstance(spec, dict):
            raise HTTPError(400, "'problem' must be an object")
        kind = spec.get("kind", "densest_subgraph")
        cls = PROBLEM_TYPES.get(kind)
        if cls is None:
            raise HTTPError(
                400,
                f"unknown problem kind {kind!r} "
                f"(one of: {', '.join(sorted(PROBLEM_TYPES))})",
            )
        params = {k: v for k, v in spec.items() if k != "kind"}
        if "ratio_grid" in params and params["ratio_grid"] is not None:
            params["ratio_grid"] = tuple(params["ratio_grid"])
        input_obj = self._resolve_input(record)
        try:
            return cls(input_obj, **params)
        except TypeError as exc:
            raise HTTPError(400, f"bad problem parameters: {exc}") from None
        except ParameterError as exc:
            raise HTTPError(400, str(exc)) from None

    def solve_request(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Handle ``POST /solve``; returns ``(http_status, payload)``."""
        record = self._dataset_or_404(body.get("dataset"))
        backend = body.get("backend", "auto")
        if not isinstance(backend, str):
            raise HTTPError(400, "'backend' must be a string")
        problem = self._build_problem(record, body.get("problem") or {})
        params = params_json(problem)
        options = body.get("options") or {}
        if not isinstance(options, dict):
            raise HTTPError(400, "'options' must be an object")
        key = result_key(record.fingerprint, problem.kind, params, backend)

        row = self.catalog.get(key)  # counts the hit/miss
        if row is not None:
            return 200, self._result_payload(row, cached=True)

        # Each job gets its own cancel event, threaded into the solve
        # through the context so DELETE /jobs/<id> can interrupt a
        # running peel at its next pass boundary.
        cancel_event = threading.Event()
        job_context = dataclasses.replace(self.context, cancel_event=cancel_event)

        def run():
            start = time.perf_counter()
            solution = solve(
                problem, backend=backend, context=job_context, **options
            )
            elapsed = time.perf_counter() - start
            return self.catalog.put(
                key,
                dataset_fingerprint=record.fingerprint,
                problem_kind=problem.kind,
                params=params,
                backend=backend,
                solution=solution,
                solve_seconds=elapsed,
            )

        description = {
            "dataset": record.name,
            "problem_kind": problem.kind,
            "params": json.loads(params),
            "backend": backend,
        }
        try:
            job, created = self.jobs.submit(
                key, run, description, cancel_event=cancel_event
            )
        except QueueFullError as exc:
            raise HTTPError(429, str(exc)) from None
        if not created:
            self.catalog.bump_counter("coalesced")

        wait = body.get("wait")
        if wait is not None:
            job.wait(float(wait))
        if job.status == DONE:
            return 200, self._result_payload(job.result, cached=False)
        if job.status == FAILED:
            return 500, {"job": job.to_jsonable()}
        return 202, {"job": job.to_jsonable()}

    def _dataset_or_404(self, name: Any) -> ServedDataset:
        if not name or not isinstance(name, str):
            raise HTTPError(400, "'dataset' must name a registered dataset")
        record = self.catalog.get_dataset(name)
        if record is None:
            raise HTTPError(404, f"no dataset registered as {name!r}")
        return record

    # -- payload shaping ----------------------------------------------
    def _result_payload(
        self,
        row: Dict[str, Any],
        *,
        cached: bool,
        offset: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        solution = json.loads(row["solution_json"])
        payload = {
            "key": row["key"],
            "cached": cached,
            "dataset_fingerprint": row["dataset_fingerprint"],
            "problem_kind": row["problem_kind"],
            "params": json.loads(row["params_json"]),
            "backend": row["backend"],
            "solved_backend": row["solved_backend"],
            "density": row["density"],
            "size": row["size"],
            "solve_seconds": row["solve_seconds"],
            "created_at": row["created_at"],
            "hits": row["hits"],
            "solution": solution,
        }
        if offset is not None or limit is not None:
            offset = max(0, int(offset or 0))
            limit = int(limit if limit is not None else DEFAULT_PAGE)
            members = solution.get("nodes", {})
            members = members.get("__set__", members) if isinstance(members, dict) else members
            page = members[offset : offset + limit]
            payload["solution"] = {**solution, "nodes": {"__set__": page}}
            payload["page"] = {
                "offset": offset,
                "limit": limit,
                "returned": len(page),
                "total": row["size"],
            }
        return payload

    def result_by_key(
        self, key: str, *, offset: Optional[int], limit: Optional[int]
    ) -> Dict[str, Any]:
        row = self.catalog.get(key)
        if row is None:
            raise HTTPError(404, f"no cached result under key {key!r}")
        return self._result_payload(row, cached=True, offset=offset, limit=limit)

    def stats(self) -> Dict[str, Any]:
        payload = self.catalog.stats()
        payload["queue"] = self.jobs.queue_depth()
        payload["uptime_seconds"] = time.time() - self.started_at
        try:
            from ..kernels import tier_report

            payload["kernel_tiers"] = tier_report()
        except Exception:  # pragma: no cover - report must never break /stats
            payload["kernel_tiers"] = None
        return payload

    def close(self) -> None:
        self.jobs.shutdown(wait=False)
        self.catalog.close()


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
class DensestRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs + paths onto the :class:`DensestService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-densest"

    #: Max accepted request body (datasets are registered by *path*, so
    #: request bodies are small problem descriptions).
    MAX_BODY = 1 << 20

    def log_message(self, fmt, *args):  # pragma: no cover - quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    @property
    def service(self) -> DensestService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > self.MAX_BODY:
            raise HTTPError(413, f"request body over {self.MAX_BODY} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise HTTPError(400, f"request body is not valid JSON: {exc}") from None
        if not isinstance(body, dict):
            raise HTTPError(400, "request body must be a JSON object")
        return body

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        try:
            status, payload = self._route(method, parts, query)
        except HTTPError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except ReproError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - a handler must answer
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        self._send_json(status, payload)

    # -- routing -------------------------------------------------------
    def _route(self, method, parts, query) -> Tuple[int, Dict[str, Any]]:
        service = self.service
        if method == "GET" and parts == ["healthz"]:
            return 200, {"status": "ok", "uptime_seconds": time.time() - service.started_at}
        if method == "GET" and parts == ["stats"]:
            return 200, service.stats()
        if method == "GET" and parts == ["datasets"]:
            return 200, {
                "datasets": [r.to_jsonable() for r in service.catalog.list_datasets()]
            }
        if method == "GET" and len(parts) == 2 and parts[0] == "datasets":
            return 200, {"dataset": service._dataset_or_404(parts[1]).to_jsonable()}
        if method == "POST" and parts == ["datasets"]:
            record = service.register_dataset(self._read_json())
            return 201, {"dataset": record.to_jsonable()}
        if method == "POST" and parts == ["solve"]:
            return service.solve_request(self._read_json())
        if method == "GET" and parts == ["jobs"]:
            limit = int(query.get("limit", 100))
            return 200, {
                "jobs": [j.to_jsonable() for j in service.jobs.list_jobs(limit=limit)]
            }
        if len(parts) == 2 and parts[0] == "jobs":
            job = service.jobs.get(parts[1])
            if job is None:
                raise HTTPError(404, f"no job {parts[1]!r}")
            if method == "GET":
                payload = {"job": job.to_jsonable()}
                if job.status == DONE and job.result is not None:
                    payload["result_key"] = job.result["key"]
                return 200, payload
            if method == "DELETE":
                outcome = service.jobs.cancel(parts[1])
                return (200 if outcome else 409), {
                    "job": job.to_jsonable(),
                    "cancelled": outcome == "cancelled",
                    "outcome": outcome or "finished",
                }
        if method == "GET" and parts == ["results"]:
            offset = int(query.get("offset", 0))
            limit = int(query.get("limit", 100))
            return 200, {
                "results": service.catalog.list_results(offset=offset, limit=limit)
            }
        if method == "GET" and len(parts) == 2 and parts[0] == "results":
            offset = query.get("offset")
            limit = query.get("limit")
            return 200, service.result_by_key(
                parts[1],
                offset=int(offset) if offset is not None else None,
                limit=int(limit) if limit is not None else None,
            )
        raise HTTPError(404, f"no route {method} /{'/'.join(parts)}")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class DensestHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer owning a :class:`DensestService`."""

    daemon_threads = True

    def __init__(self, address, service: DensestService, *, verbose: bool = False):
        super().__init__(address, DensestRequestHandler)
        self.service = service
        self.verbose = verbose

    def shutdown(self) -> None:  # also stop the solver pool
        super().shutdown()
        self.service.close()


def build_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    catalog_path: str = "catalog.sqlite",
    workers: int = 2,
    spill_dir: Optional[str] = None,
    shard_count: int = 8,
    max_queue: int = 64,
    deadline_seconds: Optional[float] = None,
    verbose: bool = False,
) -> DensestHTTPServer:
    """Construct a ready-to-run server (``port=0`` picks a free port).

    ``deadline_seconds`` is the per-job wall-clock budget: a solve that
    overruns it unwinds cooperatively and the job reports
    ``FAILED`` with a ``timeout:`` error instead of running forever.
    """
    context = ExecutionContext(
        workers=workers,
        spill_dir=spill_dir,
        shard_count=shard_count,
        deadline_seconds=deadline_seconds,
    )
    service = DensestService(
        ResultCatalog(catalog_path), context=context, max_queue=max_queue
    )
    return DensestHTTPServer((host, port), service, verbose=verbose)


def run_server(**kwargs) -> None:
    """Build and serve forever (the ``repro-densest serve`` entry).

    Installs a SIGTERM handler for graceful drain: the listener stops
    accepting connections, in-flight handlers finish, and the solver
    pool shuts down — the clean-exit path under process supervisors.
    """
    import signal

    server = build_server(**kwargs)
    host, port = server.server_address[:2]
    print(f"repro-densest serving on http://{host}:{port}")
    print(f"  catalog : {server.service.catalog.path}")
    print(f"  workers : {server.service.jobs.workers}")

    def _drain(signum, frame):  # pragma: no cover - signal delivery
        # shutdown() must not run on the serve_forever thread (it
        # joins the serve loop), so hand it to a helper thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _drain)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.shutdown()
        server.server_close()
