"""SQLite result catalog: materialized answers next to the solver.

The serving layer's thesis (ROADMAP item #1, and the paper's framing of
densest subgraph as a primitive queried repeatedly) is that the path to
heavy traffic is mostly *not re-peeling*: a solve's output is tiny
compared to its cost, so answers are materialized into a catalog keyed
by ``(dataset_fingerprint, problem_kind, canonical_params)`` and repeat
queries become indexed reads.

Storage is a single SQLite database in WAL mode — concurrent readers
never block, and all writes go through one in-process writer queue (a
lock; SQLite allows exactly one writer per database anyway).  Every
HTTP worker thread gets its own connection via a ``threading.local``;
cross-process sharing works the same way because WAL + busy_timeout
serialize the writers.

Schema
------
``datasets``
    One row per registered dataset: fingerprint (primary key), unique
    name, source path/recipe, kind, directedness, size facts.
``results``
    One row per cached solve: the canonical key (primary key), the
    key's three components, the requested backend, the solution's
    canonical JSON (exactly the bytes :meth:`Solution.to_json`
    produced — a hit ships the cold solve's bytes), density/size for
    listing without decoding, solve wall time, and a hit counter.
``counters``
    Monotonic service counters (hits / misses / coalesced, plus the
    overload ladder's shed / degraded / stale_served) surviving
    restarts.

Failure posture (DESIGN.md §14): the catalog is an *accelerator*, not
a dependency.  An optional
:class:`~repro.serve.admission.CircuitBreaker` guards the result
read/write paths — repeated ``sqlite3`` errors open it and every
guarded call falls back to cache-less behavior (reads miss, writes
return an in-memory row) until a half-open probe succeeds.  The fault
sites ``catalog.read`` / ``catalog.write`` let tests and the chaos
suite inject exactly those errors deterministically.
"""

from __future__ import annotations

import hashlib
import itertools
import sqlite3
import threading
import time
from dataclasses import replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from ..api.problems import Problem
from ..api.solution import Solution, canonical_json
from ..datasets.registry import ServedDataset
from ..errors import ReproError

PathLike = Union[str, Path]


class CatalogError(ReproError):
    """Raised for result-catalog misuse (duplicate names, bad keys)."""


_SCHEMA = """
CREATE TABLE IF NOT EXISTS datasets (
    fingerprint   TEXT PRIMARY KEY,
    name          TEXT NOT NULL UNIQUE,
    source        TEXT NOT NULL,
    input_kind    TEXT NOT NULL,
    directed      INTEGER NOT NULL,
    num_nodes     INTEGER NOT NULL,
    num_edges     INTEGER NOT NULL,
    scale         REAL,
    seed          INTEGER,
    registered_at TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    key                 TEXT PRIMARY KEY,
    dataset_fingerprint TEXT NOT NULL,
    problem_kind        TEXT NOT NULL,
    params_json         TEXT NOT NULL,
    backend             TEXT NOT NULL,
    solved_backend      TEXT NOT NULL,
    solution_json       TEXT NOT NULL,
    density             REAL NOT NULL,
    size                INTEGER NOT NULL,
    solve_seconds       REAL NOT NULL,
    created_at          TEXT NOT NULL,
    hits                INTEGER NOT NULL DEFAULT 0,
    last_hit_at         TEXT
);
CREATE INDEX IF NOT EXISTS idx_results_dataset
    ON results (dataset_fingerprint, problem_kind);
CREATE TABLE IF NOT EXISTS counters (
    name  TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""


def _utcnow() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%S.%fZ")


def params_json(problem: Problem) -> str:
    """Canonical JSON of a problem's parameters (input excluded)."""
    return canonical_json(problem.canonical_params())


def result_key(
    dataset_fingerprint: str,
    problem_kind: str,
    params: Union[str, Dict[str, Any]],
    backend: str = "auto",
) -> str:
    """The catalog's primary key for one (dataset, problem, backend).

    ``params`` is the canonical parameter dict (or its canonical JSON);
    two spellings of the same problem — reordered kwargs, ``0.1`` vs
    ``.1``, numpy vs python scalars — produce the identical key.  The
    *requested* backend is part of the key because backends differ in
    semantics (exact vs approximation), so their answers must not alias.
    """
    if not isinstance(params, str):
        params = canonical_json(params)
    return hashlib.sha256(
        f"{dataset_fingerprint}|{problem_kind}|{backend}|{params}".encode()
    ).hexdigest()


def problem_key(
    dataset_fingerprint: str, problem: Problem, backend: str = "auto"
) -> str:
    """:func:`result_key` for a live :class:`Problem` instance."""
    return result_key(
        dataset_fingerprint, problem.kind, params_json(problem), backend
    )


#: Per-path locks serializing corrupt-catalog rebuilds, so concurrent
#: readers (or concurrent constructors) racing the same wrecked file
#: produce exactly one quarantine and one fresh catalog.
_REBUILD_LOCKS: Dict[str, threading.Lock] = {}
_REBUILD_LOCKS_GUARD = threading.Lock()


def _rebuild_lock(path: Path) -> threading.Lock:
    with _REBUILD_LOCKS_GUARD:
        return _REBUILD_LOCKS.setdefault(str(path), threading.Lock())


class ResultCatalog:
    """WAL-mode SQLite catalog of datasets and cached solutions.

    Thread model: any number of threads may call any method; each
    thread reads over its own connection (WAL readers don't block), and
    all writes serialize through one lock.  Use as a context manager or
    call :meth:`close` to drop this thread's connection; connections in
    other threads close with their threads.

    ``breaker`` (a :class:`~repro.serve.admission.CircuitBreaker`)
    guards the result read/write paths: while it is open those calls
    serve cache-less fallbacks instead of raising.  ``fault_plan``
    arms the deterministic ``catalog.read`` / ``catalog.write`` sites
    (per-site op index; ``raise``/``corrupt`` surface as
    ``sqlite3.DatabaseError``, ``delay`` sleeps).

    Examples
    --------
    >>> import tempfile, os
    >>> cat = ResultCatalog(os.path.join(tempfile.mkdtemp(), "c.sqlite"))
    >>> cat.stats()["results"]
    0
    """

    def __init__(
        self,
        path: PathLike,
        *,
        breaker: Optional[Any] = None,
        fault_plan: Optional[Any] = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.breaker = breaker
        self.fault_plan = fault_plan
        self._site_ops = {
            "catalog.read": itertools.count(),
            "catalog.write": itertools.count(),
        }
        self._local = threading.local()
        self._write_lock = threading.Lock()
        with self._write_lock:
            try:
                self._conn().executescript(_SCHEMA)
            except sqlite3.DatabaseError as exc:
                # A truncated/garbled database file (crash mid-write,
                # disk fault) must not brick the service: move the
                # wreck aside for post-mortem and start a fresh
                # catalog.  Cached results are re-derivable — losing
                # them costs re-solves, not correctness.
                self._rebuild_corrupt(exc)

    def _rebuild_corrupt(self, cause: sqlite3.DatabaseError) -> None:
        """Quarantine an unreadable database file and re-init the schema.

        Safe under concurrency: rebuilds for one path serialize on a
        module-level lock, and each rebuilder first drops its stale
        file descriptor and re-probes — if another thread already
        swapped a fresh catalog in, there is nothing left to do, and a
        healthy replacement is never quarantined by a late loser.
        """
        import warnings

        with _rebuild_lock(self.path):
            self.close()  # drop the fd still bound to the corrupt inode
            try:
                self._conn().executescript(_SCHEMA)
                return  # another rebuilder already swapped in a fresh file
            except sqlite3.DatabaseError:
                self.close()
            moved = self.path.with_name(self.path.name + ".corrupt")
            counter = 0
            while moved.exists():
                counter += 1
                moved = self.path.with_name(f"{self.path.name}.corrupt.{counter}")
            self.path.replace(moved)
            for suffix in ("-wal", "-shm"):
                sidecar = Path(str(self.path) + suffix)
                if sidecar.exists():
                    sidecar.replace(Path(str(moved) + suffix))
            warnings.warn(
                f"result catalog {self.path} was unreadable ({cause}); moved it "
                f"to {moved} and rebuilt an empty catalog",
                RuntimeWarning,
                stacklevel=3,
            )
            self._conn().executescript(_SCHEMA)

    # -- guarded access (breaker + fault sites) ------------------------
    def _consult(self, site: str) -> None:
        """Fire this op's armed fault point, if any.

        ``raise`` and ``corrupt`` points surface as
        ``sqlite3.DatabaseError`` — exactly the failure class a torn
        page or sick disk produces, and what the breaker counts.
        ``delay`` sleeps in place (a slow read, not a wrong one).
        """
        plan = self.fault_plan
        if plan is None:
            return
        point = plan.take(site, next(self._site_ops[site]))
        if point is None:
            return
        if point.mode == "delay":
            from ..faults import delay_seconds

            time.sleep(delay_seconds(point))
        elif point.mode in ("raise", "corrupt"):
            raise sqlite3.DatabaseError(
                f"injected {point.mode} fault at {site}"
            )

    def _guarded(
        self, site: str, op: Callable[[], Any], fallback: Callable[[], Any]
    ) -> Any:
        """Run a catalog op under the breaker; degrade, never crash.

        Open breaker → the fallback (cache-less).  ``sqlite3`` errors
        → counted against the breaker, then the fallback.  Without a
        breaker the error propagates unchanged (library users keep
        plain SQLite semantics; the serving tier always passes one).
        """
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            return fallback()
        try:
            self._consult(site)
            result = op()
        except sqlite3.Error:
            if breaker is None:
                raise
            breaker.record_failure()
            return fallback()
        if breaker is not None:
            breaker.record_success()
        return result

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.path, timeout=30.0)
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.execute("PRAGMA foreign_keys=ON")
            self._local.conn = conn
        return conn

    # -- context management -------------------------------------------
    def __enter__(self) -> "ResultCatalog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Close the calling thread's connection (others self-close)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # -- datasets ------------------------------------------------------
    def register_dataset(self, record: ServedDataset) -> ServedDataset:
        """Insert a dataset record; idempotent for identical re-registration.

        Raises
        ------
        CatalogError
            When the name is taken by a different fingerprint (or the
            fingerprint by a different name) — registrations must be
            stable, not silently rebound.
        """
        existing = self.get_dataset(record.name) or self.get_dataset(
            record.fingerprint
        )
        if existing is not None:
            if (
                existing.name == record.name
                and existing.fingerprint == record.fingerprint
            ):
                return existing
            raise CatalogError(
                f"dataset name {record.name!r} / fingerprint "
                f"{record.fingerprint[:12]}... conflicts with existing "
                f"registration {existing.name!r} ({existing.fingerprint[:12]}...)"
            )
        if not record.registered_at:
            record = replace(record, registered_at=_utcnow())
        with self._write_lock:
            with self._conn() as conn:
                conn.execute(
                    "INSERT INTO datasets (fingerprint, name, source, input_kind,"
                    " directed, num_nodes, num_edges, scale, seed, registered_at)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        record.fingerprint,
                        record.name,
                        record.source,
                        record.input_kind,
                        int(record.directed),
                        record.num_nodes,
                        record.num_edges,
                        record.scale,
                        record.seed,
                        record.registered_at,
                    ),
                )
        return record

    def get_dataset(self, name_or_fingerprint: str) -> Optional[ServedDataset]:
        """Look a dataset up by registration name or fingerprint."""
        row = self._conn().execute(
            "SELECT * FROM datasets WHERE name = ? OR fingerprint = ?",
            (name_or_fingerprint, name_or_fingerprint),
        ).fetchone()
        return _dataset_from_row(row) if row is not None else None

    def list_datasets(self) -> List[ServedDataset]:
        """All registered datasets, in registration order."""
        rows = self._conn().execute(
            "SELECT * FROM datasets ORDER BY registered_at, name"
        ).fetchall()
        return [_dataset_from_row(row) for row in rows]

    # -- results -------------------------------------------------------
    def get(self, key: str, *, count_hit: bool = True) -> Optional[Dict[str, Any]]:
        """Fetch a cached result row; counts a hit (or miss) by default.

        Returns the row as a plain dict with ``solution_json`` holding
        the stored canonical bytes, or ``None`` on a miss.  While the
        breaker is open (or a read fails) the answer is ``None`` — a
        cache outage looks like a miss, never an error.
        """

        def read():
            row = self._conn().execute(
                "SELECT * FROM results WHERE key = ?", (key,)
            ).fetchone()
            return dict(row) if row is not None else None

        result = self._guarded("catalog.read", read, lambda: None)
        if result is None:
            if count_hit:
                self.bump_counter("misses")
            return None
        if count_hit:

            def bump():
                with self._write_lock:
                    with self._conn() as conn:
                        conn.execute(
                            "UPDATE results SET hits = hits + 1, last_hit_at = ?"
                            " WHERE key = ?",
                            (_utcnow(), key),
                        )
                        _bump(conn, "hits", 1)
                return True

            self._guarded("catalog.write", bump, lambda: None)
            result["hits"] += 1
        return result

    def latest_for(
        self, dataset_fingerprint: str, problem_kind: str
    ) -> Optional[Dict[str, Any]]:
        """The most recent cached result for ``(dataset, kind)``.

        The stale-serving rung of the degradation ladder: an answer to
        a *nearby* question (same dataset and problem kind, whatever
        parameters were last solved), served labeled rather than
        computing a fresh one the service cannot afford.
        """

        def read():
            row = self._conn().execute(
                "SELECT * FROM results WHERE dataset_fingerprint = ?"
                " AND problem_kind = ?"
                " ORDER BY created_at DESC, key LIMIT 1",
                (dataset_fingerprint, problem_kind),
            ).fetchone()
            return dict(row) if row is not None else None

        return self._guarded("catalog.read", read, lambda: None)

    def put(
        self,
        key: str,
        *,
        dataset_fingerprint: str,
        problem_kind: str,
        params: Union[str, Dict[str, Any]],
        backend: str,
        solution: Solution,
        solve_seconds: float,
    ) -> Dict[str, Any]:
        """Store one solve's answer (idempotent: first write wins).

        The solution is stored as its canonical JSON; a later hit
        returns exactly these bytes.  While the breaker is open (or
        the write fails) the row is *not* persisted but an equivalent
        in-memory row is still returned — the solve path keeps
        answering through a catalog outage, cache-less.
        """
        if not isinstance(params, str):
            params = canonical_json(params)
        solution_json = solution.to_json()

        def write():
            with self._write_lock:
                with self._conn() as conn:
                    conn.execute(
                        "INSERT OR IGNORE INTO results (key, dataset_fingerprint,"
                        " problem_kind, params_json, backend, solved_backend,"
                        " solution_json, density, size, solve_seconds, created_at)"
                        " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            key,
                            dataset_fingerprint,
                            problem_kind,
                            params,
                            backend,
                            solution.backend,
                            solution_json,
                            float(solution.density),
                            int(solution.size),
                            float(solve_seconds),
                            _utcnow(),
                        ),
                    )
            return True

        stored = self._guarded("catalog.write", write, lambda: False)
        row = self.get(key, count_hit=False) if stored else None
        if row is None:
            row = {  # cache-less fallback, shaped like a results row
                "key": key,
                "dataset_fingerprint": dataset_fingerprint,
                "problem_kind": problem_kind,
                "params_json": params,
                "backend": backend,
                "solved_backend": solution.backend,
                "solution_json": solution_json,
                "density": float(solution.density),
                "size": int(solution.size),
                "solve_seconds": float(solve_seconds),
                "created_at": _utcnow(),
                "hits": 0,
                "last_hit_at": None,
            }
        return row

    def list_results(
        self, *, offset: int = 0, limit: int = 100
    ) -> List[Dict[str, Any]]:
        """Catalog listing (no solution payloads), newest first."""
        rows = self._conn().execute(
            "SELECT key, dataset_fingerprint, problem_kind, params_json,"
            " backend, solved_backend, density, size, solve_seconds,"
            " created_at, hits FROM results"
            " ORDER BY created_at DESC, key LIMIT ? OFFSET ?",
            (limit, offset),
        ).fetchall()
        return [dict(row) for row in rows]

    # -- counters and stats -------------------------------------------
    def bump_counter(self, name: str, amount: int = 1) -> None:
        """Increment a monotonic service counter (best-effort under the
        breaker: a counter bump is never worth failing a request for)."""

        def write():
            with self._write_lock:
                with self._conn() as conn:
                    _bump(conn, name, amount)
            return True

        self._guarded("catalog.write", write, lambda: None)

    def counters(self) -> Dict[str, int]:
        rows = self._conn().execute("SELECT name, value FROM counters").fetchall()
        return {row["name"]: row["value"] for row in rows}

    def stats(self) -> Dict[str, Any]:
        """Catalog-side service statistics (the data behind ``/stats``)."""
        conn = self._conn()
        counters = self.counters()
        hits = counters.get("hits", 0)
        misses = counters.get("misses", 0)
        per_backend = {
            row["solved_backend"]: row["n"]
            for row in conn.execute(
                "SELECT solved_backend, COUNT(*) AS n FROM results"
                " GROUP BY solved_backend ORDER BY solved_backend"
            )
        }
        return {
            "datasets": conn.execute("SELECT COUNT(*) FROM datasets").fetchone()[0],
            "results": conn.execute("SELECT COUNT(*) FROM results").fetchone()[0],
            "hits": hits,
            "misses": misses,
            "coalesced": counters.get("coalesced", 0),
            "hit_ratio": hits / (hits + misses) if hits + misses else None,
            "solves_by_backend": per_backend,
            # Overload-ladder counters (DESIGN.md §14) and the catalog
            # breaker's live state; "disabled" when no breaker guards
            # this catalog (bare library use).
            "shed": counters.get("shed", 0),
            "degraded": counters.get("degraded", 0),
            "stale_served": counters.get("stale_served", 0),
            "breaker_state": (
                self.breaker.state if self.breaker is not None else "disabled"
            ),
        }


def _bump(conn: sqlite3.Connection, name: str, amount: int) -> None:
    conn.execute(
        "INSERT INTO counters (name, value) VALUES (?, ?)"
        " ON CONFLICT(name) DO UPDATE SET value = value + excluded.value",
        (name, amount),
    )


def _dataset_from_row(row: sqlite3.Row) -> ServedDataset:
    return ServedDataset(
        name=row["name"],
        fingerprint=row["fingerprint"],
        source=row["source"],
        input_kind=row["input_kind"],
        directed=bool(row["directed"]),
        num_nodes=row["num_nodes"],
        num_edges=row["num_edges"],
        scale=row["scale"],
        seed=row["seed"],
        registered_at=row["registered_at"],
    )
