"""SQLite result catalog: materialized answers next to the solver.

The serving layer's thesis (ROADMAP item #1, and the paper's framing of
densest subgraph as a primitive queried repeatedly) is that the path to
heavy traffic is mostly *not re-peeling*: a solve's output is tiny
compared to its cost, so answers are materialized into a catalog keyed
by ``(dataset_fingerprint, problem_kind, canonical_params)`` and repeat
queries become indexed reads.

Storage is a single SQLite database in WAL mode — concurrent readers
never block, and all writes go through one in-process writer queue (a
lock; SQLite allows exactly one writer per database anyway).  Every
HTTP worker thread gets its own connection via a ``threading.local``;
cross-process sharing works the same way because WAL + busy_timeout
serialize the writers.

Schema
------
``datasets``
    One row per registered dataset: fingerprint (primary key), unique
    name, source path/recipe, kind, directedness, size facts.
``results``
    One row per cached solve: the canonical key (primary key), the
    key's three components, the requested backend, the solution's
    canonical JSON (exactly the bytes :meth:`Solution.to_json`
    produced — a hit ships the cold solve's bytes), density/size for
    listing without decoding, solve wall time, and a hit counter.
``counters``
    Monotonic service counters (hits / misses / coalesced) surviving
    restarts.
"""

from __future__ import annotations

import hashlib
import sqlite3
import threading
from dataclasses import replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..api.problems import Problem
from ..api.solution import Solution, canonical_json
from ..datasets.registry import ServedDataset
from ..errors import ReproError

PathLike = Union[str, Path]


class CatalogError(ReproError):
    """Raised for result-catalog misuse (duplicate names, bad keys)."""


_SCHEMA = """
CREATE TABLE IF NOT EXISTS datasets (
    fingerprint   TEXT PRIMARY KEY,
    name          TEXT NOT NULL UNIQUE,
    source        TEXT NOT NULL,
    input_kind    TEXT NOT NULL,
    directed      INTEGER NOT NULL,
    num_nodes     INTEGER NOT NULL,
    num_edges     INTEGER NOT NULL,
    scale         REAL,
    seed          INTEGER,
    registered_at TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    key                 TEXT PRIMARY KEY,
    dataset_fingerprint TEXT NOT NULL,
    problem_kind        TEXT NOT NULL,
    params_json         TEXT NOT NULL,
    backend             TEXT NOT NULL,
    solved_backend      TEXT NOT NULL,
    solution_json       TEXT NOT NULL,
    density             REAL NOT NULL,
    size                INTEGER NOT NULL,
    solve_seconds       REAL NOT NULL,
    created_at          TEXT NOT NULL,
    hits                INTEGER NOT NULL DEFAULT 0,
    last_hit_at         TEXT
);
CREATE INDEX IF NOT EXISTS idx_results_dataset
    ON results (dataset_fingerprint, problem_kind);
CREATE TABLE IF NOT EXISTS counters (
    name  TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""


def _utcnow() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%S.%fZ")


def params_json(problem: Problem) -> str:
    """Canonical JSON of a problem's parameters (input excluded)."""
    return canonical_json(problem.canonical_params())


def result_key(
    dataset_fingerprint: str,
    problem_kind: str,
    params: Union[str, Dict[str, Any]],
    backend: str = "auto",
) -> str:
    """The catalog's primary key for one (dataset, problem, backend).

    ``params`` is the canonical parameter dict (or its canonical JSON);
    two spellings of the same problem — reordered kwargs, ``0.1`` vs
    ``.1``, numpy vs python scalars — produce the identical key.  The
    *requested* backend is part of the key because backends differ in
    semantics (exact vs approximation), so their answers must not alias.
    """
    if not isinstance(params, str):
        params = canonical_json(params)
    return hashlib.sha256(
        f"{dataset_fingerprint}|{problem_kind}|{backend}|{params}".encode()
    ).hexdigest()


def problem_key(
    dataset_fingerprint: str, problem: Problem, backend: str = "auto"
) -> str:
    """:func:`result_key` for a live :class:`Problem` instance."""
    return result_key(
        dataset_fingerprint, problem.kind, params_json(problem), backend
    )


class ResultCatalog:
    """WAL-mode SQLite catalog of datasets and cached solutions.

    Thread model: any number of threads may call any method; each
    thread reads over its own connection (WAL readers don't block), and
    all writes serialize through one lock.  Use as a context manager or
    call :meth:`close` to drop this thread's connection; connections in
    other threads close with their threads.

    Examples
    --------
    >>> import tempfile, os
    >>> cat = ResultCatalog(os.path.join(tempfile.mkdtemp(), "c.sqlite"))
    >>> cat.stats()["results"]
    0
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._local = threading.local()
        self._write_lock = threading.Lock()
        with self._write_lock:
            try:
                self._conn().executescript(_SCHEMA)
            except sqlite3.DatabaseError as exc:
                # A truncated/garbled database file (crash mid-write,
                # disk fault) must not brick the service: move the
                # wreck aside for post-mortem and start a fresh
                # catalog.  Cached results are re-derivable — losing
                # them costs re-solves, not correctness.
                self._rebuild_corrupt(exc)

    def _rebuild_corrupt(self, cause: sqlite3.DatabaseError) -> None:
        """Quarantine an unreadable database file and re-init the schema."""
        import warnings

        self.close()
        moved = self.path.with_name(self.path.name + ".corrupt")
        counter = 0
        while moved.exists():
            counter += 1
            moved = self.path.with_name(f"{self.path.name}.corrupt.{counter}")
        self.path.replace(moved)
        for suffix in ("-wal", "-shm"):
            sidecar = Path(str(self.path) + suffix)
            if sidecar.exists():
                sidecar.replace(Path(str(moved) + suffix))
        warnings.warn(
            f"result catalog {self.path} was unreadable ({cause}); moved it "
            f"to {moved} and rebuilt an empty catalog",
            RuntimeWarning,
            stacklevel=3,
        )
        self._conn().executescript(_SCHEMA)

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.path, timeout=30.0)
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.execute("PRAGMA foreign_keys=ON")
            self._local.conn = conn
        return conn

    # -- context management -------------------------------------------
    def __enter__(self) -> "ResultCatalog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Close the calling thread's connection (others self-close)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # -- datasets ------------------------------------------------------
    def register_dataset(self, record: ServedDataset) -> ServedDataset:
        """Insert a dataset record; idempotent for identical re-registration.

        Raises
        ------
        CatalogError
            When the name is taken by a different fingerprint (or the
            fingerprint by a different name) — registrations must be
            stable, not silently rebound.
        """
        existing = self.get_dataset(record.name) or self.get_dataset(
            record.fingerprint
        )
        if existing is not None:
            if (
                existing.name == record.name
                and existing.fingerprint == record.fingerprint
            ):
                return existing
            raise CatalogError(
                f"dataset name {record.name!r} / fingerprint "
                f"{record.fingerprint[:12]}... conflicts with existing "
                f"registration {existing.name!r} ({existing.fingerprint[:12]}...)"
            )
        if not record.registered_at:
            record = replace(record, registered_at=_utcnow())
        with self._write_lock:
            with self._conn() as conn:
                conn.execute(
                    "INSERT INTO datasets (fingerprint, name, source, input_kind,"
                    " directed, num_nodes, num_edges, scale, seed, registered_at)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        record.fingerprint,
                        record.name,
                        record.source,
                        record.input_kind,
                        int(record.directed),
                        record.num_nodes,
                        record.num_edges,
                        record.scale,
                        record.seed,
                        record.registered_at,
                    ),
                )
        return record

    def get_dataset(self, name_or_fingerprint: str) -> Optional[ServedDataset]:
        """Look a dataset up by registration name or fingerprint."""
        row = self._conn().execute(
            "SELECT * FROM datasets WHERE name = ? OR fingerprint = ?",
            (name_or_fingerprint, name_or_fingerprint),
        ).fetchone()
        return _dataset_from_row(row) if row is not None else None

    def list_datasets(self) -> List[ServedDataset]:
        """All registered datasets, in registration order."""
        rows = self._conn().execute(
            "SELECT * FROM datasets ORDER BY registered_at, name"
        ).fetchall()
        return [_dataset_from_row(row) for row in rows]

    # -- results -------------------------------------------------------
    def get(self, key: str, *, count_hit: bool = True) -> Optional[Dict[str, Any]]:
        """Fetch a cached result row; counts a hit (or miss) by default.

        Returns the row as a plain dict with ``solution_json`` holding
        the stored canonical bytes, or ``None`` on a miss.
        """
        row = self._conn().execute(
            "SELECT * FROM results WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            if count_hit:
                self.bump_counter("misses")
            return None
        result = dict(row)
        if count_hit:
            with self._write_lock:
                with self._conn() as conn:
                    conn.execute(
                        "UPDATE results SET hits = hits + 1, last_hit_at = ?"
                        " WHERE key = ?",
                        (_utcnow(), key),
                    )
                    _bump(conn, "hits", 1)
            result["hits"] += 1
        return result

    def put(
        self,
        key: str,
        *,
        dataset_fingerprint: str,
        problem_kind: str,
        params: Union[str, Dict[str, Any]],
        backend: str,
        solution: Solution,
        solve_seconds: float,
    ) -> Dict[str, Any]:
        """Store one solve's answer (idempotent: first write wins).

        The solution is stored as its canonical JSON; a later hit
        returns exactly these bytes.
        """
        if not isinstance(params, str):
            params = canonical_json(params)
        solution_json = solution.to_json()
        with self._write_lock:
            with self._conn() as conn:
                conn.execute(
                    "INSERT OR IGNORE INTO results (key, dataset_fingerprint,"
                    " problem_kind, params_json, backend, solved_backend,"
                    " solution_json, density, size, solve_seconds, created_at)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        key,
                        dataset_fingerprint,
                        problem_kind,
                        params,
                        backend,
                        solution.backend,
                        solution_json,
                        float(solution.density),
                        int(solution.size),
                        float(solve_seconds),
                        _utcnow(),
                    ),
                )
        return self.get(key, count_hit=False)

    def list_results(
        self, *, offset: int = 0, limit: int = 100
    ) -> List[Dict[str, Any]]:
        """Catalog listing (no solution payloads), newest first."""
        rows = self._conn().execute(
            "SELECT key, dataset_fingerprint, problem_kind, params_json,"
            " backend, solved_backend, density, size, solve_seconds,"
            " created_at, hits FROM results"
            " ORDER BY created_at DESC, key LIMIT ? OFFSET ?",
            (limit, offset),
        ).fetchall()
        return [dict(row) for row in rows]

    # -- counters and stats -------------------------------------------
    def bump_counter(self, name: str, amount: int = 1) -> None:
        """Increment a monotonic service counter."""
        with self._write_lock:
            with self._conn() as conn:
                _bump(conn, name, amount)

    def counters(self) -> Dict[str, int]:
        rows = self._conn().execute("SELECT name, value FROM counters").fetchall()
        return {row["name"]: row["value"] for row in rows}

    def stats(self) -> Dict[str, Any]:
        """Catalog-side service statistics (the data behind ``/stats``)."""
        conn = self._conn()
        counters = self.counters()
        hits = counters.get("hits", 0)
        misses = counters.get("misses", 0)
        per_backend = {
            row["solved_backend"]: row["n"]
            for row in conn.execute(
                "SELECT solved_backend, COUNT(*) AS n FROM results"
                " GROUP BY solved_backend ORDER BY solved_backend"
            )
        }
        return {
            "datasets": conn.execute("SELECT COUNT(*) FROM datasets").fetchone()[0],
            "results": conn.execute("SELECT COUNT(*) FROM results").fetchone()[0],
            "hits": hits,
            "misses": misses,
            "coalesced": counters.get("coalesced", 0),
            "hit_ratio": hits / (hits + misses) if hits + misses else None,
            "solves_by_backend": per_backend,
        }


def _bump(conn: sqlite3.Connection, name: str, amount: int) -> None:
    conn.execute(
        "INSERT INTO counters (name, value) VALUES (?, ?)"
        " ON CONFLICT(name) DO UPDATE SET value = value + excluded.value",
        (name, amount),
    )


def _dataset_from_row(row: sqlite3.Row) -> ServedDataset:
    return ServedDataset(
        name=row["name"],
        fingerprint=row["fingerprint"],
        source=row["source"],
        input_kind=row["input_kind"],
        directed=bool(row["directed"]),
        num_nodes=row["num_nodes"],
        num_edges=row["num_edges"],
        scale=row["scale"],
        seed=row["seed"],
        registered_at=row["registered_at"],
    )
