"""Async solve-job manager: submit, poll, cancel, backpressure.

Cold solves are seconds-to-minutes while HTTP handlers must answer in
milliseconds, so ``POST /solve`` misses become *jobs*: the handler
enqueues the solve on a thread pool (sized by
``ExecutionContext.workers``) and returns a job id the client polls via
``GET /jobs/<id>``.

Three serving behaviors live here rather than in the HTTP layer:

* **Single-flight** — concurrent requests for the same catalog key
  attach to the one in-flight job instead of solving N times; the
  attachments are counted (``coalesced``) so ``/stats`` shows the
  thundering-herd suppression.
* **Bounded queue** — at most ``max_queue`` jobs may be waiting; past
  that, :meth:`JobManager.submit` raises :class:`QueueFullError`, which
  the HTTP layer maps to ``429 Too Many Requests``.  A full queue sheds
  load instead of accumulating latency.
* **Cancellation** — a job that has not started is cancelled in place
  (``CANCELLED``).  A *running* solve is cancelled cooperatively: the
  job moves to ``CANCELLING`` and its cancel event is set; the solve
  observes the event at its next pass boundary (the engines check a
  :class:`~repro.faults.RunControl` between peel passes) and unwinds
  with :class:`~repro.errors.JobCancelledError`, landing the job in
  ``CANCELLED``.  A solve that finishes before noticing the event
  completes normally — cancellation arrived too late.
* **Deadlines** — a per-job wall-clock budget
  (``ExecutionContext.deadline_seconds``) is enforced the same
  cooperative way; an overrunning solve unwinds with
  :class:`~repro.errors.DeadlineExceededError` and the job lands in
  ``FAILED`` with a ``timeout:`` error.
"""

from __future__ import annotations

import itertools
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import DeadlineExceededError, JobCancelledError, ReproError

#: Job lifecycle states.
PENDING = "PENDING"
RUNNING = "RUNNING"
CANCELLING = "CANCELLING"
DONE = "DONE"
FAILED = "FAILED"
CANCELLED = "CANCELLED"

#: States a job can still leave.
_LIVE = (PENDING, RUNNING, CANCELLING)


class QueueFullError(ReproError):
    """Raised when the job queue is at capacity (HTTP 429).

    Carries the queue gauges at rejection time so the HTTP layer can
    derive an honest ``Retry-After`` without re-querying the manager.
    """

    def __init__(
        self,
        message: str,
        *,
        pending: Optional[int] = None,
        capacity: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.pending = pending
        self.capacity = capacity


class Job:
    """One submitted solve: status, timing, and the eventual result.

    Mutable by the manager only; readers see a consistent snapshot via
    :meth:`to_jsonable`.  ``wait`` blocks until the job reaches a
    terminal state.
    """

    def __init__(
        self,
        job_id: str,
        key: str,
        description: Dict[str, Any],
        cancel_event: Optional[threading.Event] = None,
        on_done: Optional[Callable[["Job"], None]] = None,
    ) -> None:
        self.id = job_id
        self.key = key
        self.description = description
        self.status = PENDING
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.error: Optional[str] = None
        self.traceback: Optional[str] = None
        self.result: Any = None
        self.solve_seconds: Optional[float] = None
        self.cancel_event = cancel_event if cancel_event is not None else threading.Event()
        self._done = threading.Event()
        self._on_done = on_done
        self._future = None

    def _signal_done(self) -> None:
        """Mark terminal exactly once: set the event, fire the callback.

        Runs on whichever thread finishes the job (worker or a
        cancel-in-place caller); the callback must never take the
        manager's lock down a path that re-enters the manager.
        """
        if self._done.is_set():
            return
        self._done.set()
        callback = self._on_done
        if callback is not None:
            try:
                callback(self)
            except Exception:  # noqa: BLE001 - accounting must not kill jobs
                pass

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until terminal (DONE/FAILED/CANCELLED); False on timeout."""
        return self._done.wait(timeout)

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    def to_jsonable(self) -> Dict[str, Any]:
        payload = {
            "id": self.id,
            "key": self.key,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "solve_seconds": self.solve_seconds,
            "error": self.error,
        }
        payload.update(self.description)
        return payload


class JobManager:
    """Thread-pool executor with keyed single-flight and a bounded queue.

    Parameters
    ----------
    workers:
        Solver threads (``ExecutionContext.workers`` in the serving
        process).  Solves overlap each other and the HTTP handlers;
        NumPy kernels release the GIL for the heavy array work.
    max_queue:
        Maximum *waiting* (not yet running) jobs before
        :class:`QueueFullError` backpressure.
    max_history:
        Finished jobs retained for ``GET /jobs/<id>`` polling before
        the oldest are evicted.
    """

    def __init__(
        self, workers: int = 2, *, max_queue: int = 64, max_history: int = 1024
    ) -> None:
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ReproError(f"max_queue must be >= 1, got {max_queue}")
        self.workers = workers
        self.max_queue = max_queue
        self.max_history = max_history
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-solve"
        )
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []  # insertion order, for history eviction
        self._in_flight: Dict[str, Job] = {}  # key -> live job
        self._pending = 0
        self._running = 0
        self._ids = itertools.count(1)
        self._shutdown = False

    # -- submission ----------------------------------------------------
    def submit(
        self,
        key: str,
        fn: Callable[[], Any],
        description: Optional[Dict[str, Any]] = None,
        *,
        cancel_event: Optional[threading.Event] = None,
        on_done: Optional[Callable[[Job], None]] = None,
    ) -> Tuple[Job, bool]:
        """Enqueue ``fn`` under ``key``; returns ``(job, created)``.

        ``created`` is ``False`` when an identical key was already in
        flight and the caller was attached to that job (single-flight).
        ``cancel_event``, when given, is the event ``fn`` watches for
        cooperative cancellation; :meth:`cancel` sets it for a running
        job (otherwise the job carries a private, unobserved event).
        ``on_done`` fires exactly once when the job reaches *any*
        terminal state — including cancelled-while-queued, where ``fn``
        never runs — which is how the serving tier's admission gate
        releases reserved cost without leaks.

        Raises
        ------
        QueueFullError
            When ``max_queue`` jobs are already waiting to run.
        """
        with self._lock:
            if self._shutdown:
                raise ReproError("job manager is shut down")
            existing = self._in_flight.get(key)
            if existing is not None:
                return existing, False
            if self._pending >= self.max_queue:
                raise QueueFullError(
                    f"job queue is full ({self._pending} waiting, "
                    f"limit {self.max_queue}); retry later",
                    pending=self._pending,
                    capacity=self.max_queue,
                )
            job = Job(
                f"job-{next(self._ids)}",
                key,
                description or {},
                cancel_event,
                on_done,
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._in_flight[key] = job
            self._pending += 1
            self._evict_locked()
            job._future = self._pool.submit(self._run, job, fn)
        return job, True

    def _run(self, job: Job, fn: Callable[[], Any]) -> None:
        with self._lock:
            if job.status is not PENDING:  # cancelled while queued
                return
            job.status = RUNNING
            job.started_at = time.time()
            self._pending -= 1
            self._running += 1
        try:
            result = fn()
        except JobCancelledError as exc:
            with self._lock:
                job.status = CANCELLED
                job.error = f"cancelled: {exc}"
        except DeadlineExceededError as exc:
            with self._lock:
                job.status = FAILED
                job.error = f"timeout: {exc}"
                job.traceback = traceback.format_exc()
        except BaseException as exc:  # propagate *any* failure to pollers
            with self._lock:
                job.status = FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                job.traceback = traceback.format_exc()
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                self._finish(job)
                raise
        else:
            with self._lock:
                job.status = DONE
                job.result = result
        self._finish(job)

    def _finish(self, job: Job) -> None:
        with self._lock:
            job.finished_at = time.time()
            if job.started_at is not None:
                job.solve_seconds = job.finished_at - job.started_at
                self._running -= 1
            if self._in_flight.get(job.key) is job:
                del self._in_flight[job.key]
        job._signal_done()

    def _evict_locked(self) -> None:
        while len(self._order) > self.max_history:
            oldest = self._jobs.get(self._order[0])
            if oldest is not None and not oldest.finished:
                break  # never evict a live job
            self._order.pop(0)
            if oldest is not None:
                del self._jobs[oldest.id]

    # -- queries -------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        """Look a job up by id (``None`` once evicted or unknown)."""
        return self._jobs.get(job_id)

    def in_flight(self, key: str) -> Optional[Job]:
        """The live job for a catalog key, if any."""
        return self._in_flight.get(key)

    def list_jobs(self, *, limit: int = 100) -> List[Job]:
        """Most recent jobs, newest first."""
        with self._lock:
            ids = self._order[-limit:]
        return [self._jobs[i] for i in reversed(ids) if i in self._jobs]

    def queue_depth(self) -> Dict[str, int]:
        """Live queue gauges for ``/stats``."""
        with self._lock:
            return {
                "pending": self._pending,
                "running": self._running,
                "capacity": self.max_queue,
                "workers": self.workers,
            }

    # -- cancellation and shutdown ------------------------------------
    def cancel(self, job_id: str) -> Optional[str]:
        """Cancel a job; returns what happened (``None`` when nothing).

        * ``"cancelled"`` — the job had not started and was cancelled in
          place (terminal immediately).
        * ``"cancelling"`` — the job is running; its cancel event was
          set and the job moved to ``CANCELLING``.  The solve unwinds
          at its next pass boundary (idempotent: repeating the call
          returns ``"cancelling"`` again until the job is terminal).
        * ``None`` — unknown id, or the job already reached a terminal
          state; there is nothing left to cancel.

        The outcomes are truthy strings, so ``if manager.cancel(id):``
        still reads as "did this request have any effect".
        """
        job = self._jobs.get(job_id)
        if job is None:
            return None
        with self._lock:
            if job.status is PENDING:
                cancelled = (
                    job._future.cancel() if job._future is not None else True
                )
                if cancelled:
                    job.status = CANCELLED
                    self._pending -= 1
                    if self._in_flight.get(job.key) is job:
                        del self._in_flight[job.key]
                    job.finished_at = time.time()
                    job._signal_done()
                    return "cancelled"
                # The pool grabbed the task between our check and the
                # cancel, but its thread has not marked it RUNNING yet.
                # Pre-set the event — the solve sees it at its first
                # pass boundary — and leave the status transition to
                # the worker thread (flipping it here would trip the
                # worker's cancelled-while-queued guard).
                job.cancel_event.set()
                return "cancelling"
            if job.status in (RUNNING, CANCELLING):
                job.cancel_event.set()
                job.status = CANCELLING
                # release the single-flight slot: new requests for this
                # key should start a fresh solve, not join a dying one
                if self._in_flight.get(job.key) is job:
                    del self._in_flight[job.key]
                return "cancelling"
        return None

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs and shut the pool down."""
        with self._lock:
            self._shutdown = True
        self._pool.shutdown(wait=wait, cancel_futures=True)
