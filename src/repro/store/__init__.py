"""Sharded out-of-core edge storage.

The execution substrate's data layer: edge sets partitioned into
memory-mappable ``.npy`` shards with a JSON manifest, written under a
memory budget and read back zero-copy.  Every engine family consumes
it — ``CSRGraph.from_shards`` builds snapshots without dict graphs,
``ShardEdgeStream`` runs the semi-streaming engines out-of-core, and
the api layer accepts stores as first-class
:class:`~repro.api.problems.Problem` inputs.
"""

from .shards import (
    DEFAULT_MEMORY_BUDGET,
    SHARD_DTYPE,
    ShardManifest,
    ShardWriter,
    ShardedEdgeStore,
    StoreVerification,
    corrupt_run_file,
    read_run_file,
    write_edge_list_store,
    write_run_file,
)

__all__ = [
    "DEFAULT_MEMORY_BUDGET",
    "SHARD_DTYPE",
    "ShardManifest",
    "ShardWriter",
    "ShardedEdgeStore",
    "StoreVerification",
    "corrupt_run_file",
    "read_run_file",
    "write_edge_list_store",
    "write_run_file",
]
