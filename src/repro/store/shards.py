"""Out-of-core sharded edge storage (`ShardedEdgeStore`).

The execution engines all consume edges; until now every engine assumed
the edge set fits in one process's memory (dict graphs, CSR snapshots,
in-memory streams).  This module is the storage layer that removes that
assumption: an edge set lives on disk as ``num_shards`` ``.npy`` files
plus a small JSON manifest, and readers get zero-copy ``np.memmap``
views one shard at a time.

Format
------
* Every shard is a standard ``.npy`` file holding a 1-D structured
  array of dtype ``[('u', '<i8'), ('v', '<i8'), ('w', '<f8')]``
  (24 bytes per edge).  The header is padded to a fixed 128-byte
  preamble so the writer can stream records to disk first and patch the
  final count in place — no rewrite, no concatenation pass.
* An edge ``(u, v, w)`` lands in shard ``stable_hash_int64(u) %
  num_shards`` — the same hash the columnar MapReduce shuffle uses, so
  a shard *is* a mapper input split.
* ``manifest.json`` records the store-level facts consumers dispatch
  on: node/edge counts, total weight, weighted/directed flags, and the
  per-shard file names and edge counts.

Crash safety
------------
* Durable writes are atomic: shard records stream into ``*.tmp``
  siblings renamed into place at finalization (the same tmp+rename
  discipline as the kernel build cache), and the manifest — the commit
  record — is written last, also tmp+rename.  A crash at any point
  leaves either the previous complete state or recognizable ``*.tmp``
  debris (swept on the next open/write), never a half-written store
  that reads as valid.
* The manifest records a CRC-32 of every shard's record payload.
  Readers verify file size and (when recorded) checksum lazily on the
  first open of each shard per store instance, raising
  :class:`~repro.errors.StoreCorruptionError` on mismatch instead of
  returning silently-wrong edges.  :meth:`ShardedEdgeStore.verify`
  audits a whole store; :meth:`ShardedEdgeStore.repair` moves damaged
  shards into a ``quarantine/`` subdirectory and marks them in the
  manifest so later reads fail with a clear typed error.

Invariants
----------
* Node ids are dense non-negative int64 indices in ``[0, num_nodes)``;
  the node universe is exactly ``range(num_nodes)`` (isolated trailing
  nodes allowed).  Callers with exotic labels factorize first (the CSR
  builders show how).
* Self-loop records are dropped at write time (the convention of the
  CSR builders and the SNAP readers).
* Undirected records are stored in canonical ``(lo, hi)`` orientation
  — orientation carries no meaning for undirected edges, and the
  canonical form puts both orientations of a duplicated edge in the
  same shard.
* Duplicate edges follow the writer's ``duplicates`` policy:
  ``"keep"`` (default) stores them verbatim — every engine reads edges
  additively, so parallel records behave exactly like one edge with
  the summed weight — while ``"first"`` keeps each edge's first
  occurrence, the semantics of the SNAP readers
  (:func:`repro.graph.io.read_undirected` dedups dumps that list both
  orientations).  Edge-list conversions use ``"first"`` so the sharded
  pipeline answers exactly like the dict/CSR pipelines on the same
  file.

The writer (:class:`ShardWriter`) spills under a configurable memory
budget: appended chunks are buffered per shard and flushed to disk
whenever the buffered bytes exceed the budget, so converting an
arbitrarily large stream needs O(budget + num_shards) memory.

Skip summaries
--------------
A writer opened with ``skip_summaries=True`` additionally records, per
shard, the min/max endpoint id and (when the node universe is declared
up front) a packed bitmap of every node id appearing as an endpoint in
that shard.  Readers use them through
:meth:`ShardedEdgeStore.iter_shard_arrays`'s ``alive=`` filter: a pass
that knows which nodes are still alive skips any shard whose recorded
endpoints are all dead *without opening the memmap* — the test is one
bitwise AND over the packed bitmaps (or a slice of the alive mask when
only min/max are known).  The summaries are advisory metadata: stores
without them scan every shard, and dead-endpoint skipping is always a
*sufficient* condition (a scanned shard may still contribute nothing).
The pass-compaction layer (:mod:`repro.streaming.compaction`) writes
its spill stores with summaries on, which is where shard skipping pays
off — survivors concentrate in ever-fewer shards as the peel shrinks.
"""

from __future__ import annotations

import base64
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..errors import StoreCorruptionError, StoreError
from ..mapreduce.columnar import stable_hash_int64

PathLike = Union[str, Path]

#: On-disk record layout: one row per edge, 24 bytes.
SHARD_DTYPE = np.dtype([("u", "<i8"), ("v", "<i8"), ("w", "<f8")])

#: Manifest schema version (bump on incompatible layout changes).
FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
#: Subdirectory `repair()` moves damaged shard files into.
_QUARANTINE_DIR = "quarantine"

#: Default writer spill budget: flush shard buffers past 64 MiB.
DEFAULT_MEMORY_BUDGET = 64 * 1024 * 1024

# ----------------------------------------------------------------------
# Fixed-size .npy preamble
# ----------------------------------------------------------------------
#: Total preamble bytes: magic(6) + version(2) + header-length(2) +
#: header(118).  Fixed so the shape can be patched in place after the
#: record stream is on disk.
_PREAMBLE_BYTES = 128
_NPY_MAGIC = b"\x93NUMPY"


def _npy_preamble(
    count: int,
    dtype: np.dtype = SHARD_DTYPE,
    total: int = _PREAMBLE_BYTES,
) -> bytes:
    """A spec-compliant npy v1.0 preamble for ``count`` records.

    The preamble is padded to exactly ``total`` bytes so the shape can
    be patched in place (shards) and so payload offsets are knowable
    without parsing the header (shards and shuffle runs alike).
    """
    descr = np.lib.format.dtype_to_descr(dtype)
    header = "{'descr': %r, 'fortran_order': False, 'shape': (%d,), }" % (
        descr,
        count,
    )
    space = total - 10
    if len(header) + 1 > space:
        raise StoreError(
            f"npy header does not fit {count} records of {descr!r} "
            f"in a {total}-byte preamble"
        )
    header = header.ljust(space - 1) + "\n"
    return _NPY_MAGIC + bytes((1, 0)) + struct.pack("<H", space) + header.encode("latin1")


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
@dataclass
class ShardSummary:
    """Advisory skip index of one shard: its endpoint universe.

    ``min_node``/``max_node`` bound every endpoint id appearing in the
    shard; ``nodes`` (optional) is the ``np.packbits``-packed bitmap of
    exactly which ids appear.  A shard is provably dead — skippable
    without opening its memmap — when no recorded endpoint is alive.
    Summaries describe a *superset* of the endpoints (dedup passes may
    remove records after the summary was taken), which keeps the skip
    test sufficient.
    """

    min_node: int
    max_node: int
    nodes: Optional[np.ndarray] = None  # packed uint8 bitmap, or None

    def to_entry(self) -> dict:
        entry = {"min_node": self.min_node, "max_node": self.max_node}
        if self.nodes is not None:
            entry["nodes_b64"] = base64.b64encode(self.nodes.tobytes()).decode(
                "ascii"
            )
        return entry

    @classmethod
    def from_entry(cls, entry: dict) -> Optional["ShardSummary"]:
        if "min_node" not in entry or "max_node" not in entry:
            return None
        packed = entry.get("nodes_b64")
        return cls(
            min_node=int(entry["min_node"]),
            max_node=int(entry["max_node"]),
            nodes=(
                np.frombuffer(base64.b64decode(packed), dtype=np.uint8)
                if packed is not None
                else None
            ),
        )

    def may_intersect(self, alive: np.ndarray, alive_packed: np.ndarray) -> bool:
        """Whether any recorded endpoint is alive under ``alive``.

        ``alive_packed`` is ``np.packbits(alive)``, computed once per
        pass by the caller so the per-shard test is one bitwise AND.
        """
        if self.min_node > self.max_node:  # empty shard
            return False
        if self.nodes is not None:
            n = min(self.nodes.size, alive_packed.size)
            return bool(np.bitwise_and(self.nodes[:n], alive_packed[:n]).any())
        lo = max(0, self.min_node)
        hi = min(alive.size, self.max_node + 1)
        return bool(alive[lo:hi].any())


@dataclass
class ShardManifest:
    """The JSON-serializable description of a sharded edge store."""

    num_shards: int
    num_nodes: int
    num_edges: int
    total_weight: float
    weighted: bool
    directed: bool
    shard_files: List[str] = field(default_factory=list)
    shard_edges: List[int] = field(default_factory=list)
    #: Optional per-shard skip summaries (parallel to ``shard_files``;
    #: ``None`` entries mean "no summary, always scan").
    shard_summaries: Optional[List[Optional[ShardSummary]]] = None
    #: Cached content fingerprint (see
    #: :meth:`ShardedEdgeStore.fingerprint`); ``None`` until computed.
    #: Writers never carry one over — any rewrite produces a fresh
    #: manifest with the cache empty, which is the invalidation.
    fingerprint: Optional[str] = None
    format_version: int = FORMAT_VERSION
    #: Optional CRC-32 of each shard's record payload (parallel to
    #: ``shard_files``; ``None`` entries mean "no checksum recorded" —
    #: stores written before checksums, which read fine but verify by
    #: size only).
    shard_crcs: Optional[List[Optional[int]]] = None
    #: Shard indices quarantined by :meth:`ShardedEdgeStore.repair`;
    #: reading a quarantined shard raises ``StoreCorruptionError``.
    quarantined: List[int] = field(default_factory=list)

    def to_json(self) -> str:
        shards = []
        for i, (name, count) in enumerate(zip(self.shard_files, self.shard_edges)):
            entry = {"file": name, "edges": count}
            if self.shard_crcs is not None and self.shard_crcs[i] is not None:
                entry["crc32"] = int(self.shard_crcs[i])
            if i in self.quarantined:
                entry["quarantined"] = True
            if self.shard_summaries is not None:
                summary = self.shard_summaries[i]
                if summary is not None:
                    entry.update(summary.to_entry())
            shards.append(entry)
        payload = {
            "format": "repro-edge-shards",
            "format_version": self.format_version,
            "num_shards": self.num_shards,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "total_weight": self.total_weight,
            "weighted": self.weighted,
            "directed": self.directed,
            "shards": shards,
        }
        if self.fingerprint is not None:
            payload["fingerprint"] = self.fingerprint
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ShardManifest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreError(f"malformed shard manifest: {exc}") from None
        if data.get("format") != "repro-edge-shards":
            raise StoreError(
                f"not a shard-store manifest (format={data.get('format')!r})"
            )
        if data.get("format_version") != FORMAT_VERSION:
            raise StoreError(
                f"unsupported shard-store format_version "
                f"{data.get('format_version')!r} (this build reads {FORMAT_VERSION})"
            )
        shards = data.get("shards", [])
        summaries: List[Optional[ShardSummary]] = [
            ShardSummary.from_entry(s) for s in shards
        ]
        crcs: List[Optional[int]] = [
            int(s["crc32"]) if "crc32" in s else None for s in shards
        ]
        return cls(
            num_shards=int(data["num_shards"]),
            num_nodes=int(data["num_nodes"]),
            num_edges=int(data["num_edges"]),
            total_weight=float(data["total_weight"]),
            weighted=bool(data["weighted"]),
            directed=bool(data["directed"]),
            shard_files=[s["file"] for s in shards],
            shard_edges=[int(s["edges"]) for s in shards],
            shard_summaries=summaries if any(s is not None for s in summaries) else None,
            fingerprint=data.get("fingerprint"),
            shard_crcs=crcs if any(c is not None for c in crcs) else None,
            quarantined=[i for i, s in enumerate(shards) if s.get("quarantined")],
        )


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
def _as_shard_records(src, dst, weights) -> np.ndarray:
    """Validate one appended chunk and pack it into shard records."""
    src = np.asarray(src)
    dst = np.asarray(dst)
    if src.shape != dst.shape or src.ndim != 1:
        raise StoreError(
            f"src/dst must be 1-D arrays of equal length, got shapes "
            f"{src.shape} and {dst.shape}"
        )
    if src.size and (src.dtype.kind not in "iu" or dst.dtype.kind not in "iu"):
        raise StoreError(
            f"shard stores hold integer node ids, got dtypes "
            f"{src.dtype} / {dst.dtype}"
        )
    rec = np.empty(src.size, dtype=SHARD_DTYPE)
    rec["u"] = src
    rec["v"] = dst
    if weights is None:
        rec["w"] = 1.0
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != src.shape:
            raise StoreError(
                f"weights must match the edge arrays ({src.size} entries), "
                f"got shape {weights.shape}"
            )
        if weights.size and not (weights > 0).all():
            raise StoreError("edge weights must be positive")
        rec["w"] = weights
    # Store invariant: no self-loop records.
    loops = rec["u"] == rec["v"]
    if loops.any():
        rec = rec[~loops]
    return rec


def _canonicalize_undirected(rec: np.ndarray) -> np.ndarray:
    """Flip records into the undirected store's ``(lo, hi)`` orientation."""
    flip = rec["u"] > rec["v"]
    if flip.any():
        u = rec["u"][flip]
        rec["u"][flip] = rec["v"][flip]
        rec["v"][flip] = u
    return rec


class ShardWriter:
    """Streaming writer spilling edge records into hash-partitioned shards.

    Use as a context manager; :meth:`close` finalizes the shard headers
    and writes the manifest.  Appends are buffered per shard and
    flushed to disk whenever the buffered bytes exceed
    ``memory_budget``, so writing a store needs O(budget) memory no
    matter how many edges pass through.

    Parameters
    ----------
    path:
        Target directory (created if missing; must not already hold a
        store).
    directed:
        Whether records are directed ``u -> v`` edges.
    num_shards:
        Number of hash partitions (``stable_hash_int64(u) % num_shards``).
    num_nodes:
        Optional explicit node universe ``[0, num_nodes)``; derived as
        ``max id + 1`` at close when omitted.
    memory_budget:
        Spill threshold in buffered bytes.
    duplicates:
        ``"keep"`` (default) stores repeated edges verbatim (additive
        semantics); ``"first"`` keeps each edge's first occurrence —
        applied per shard at :meth:`close` (canonical orientation puts
        all copies of an edge in one shard), so peak memory grows by
        the largest single shard.
    skip_summaries:
        Record per-shard skip summaries (min/max endpoint id, plus the
        endpoint bitmap when ``num_nodes`` is declared) in the
        manifest, enabling dead-shard skipping at read time.  Costs
        O(num_nodes) transient bytes per shard while writing.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`; the writer consults
        site ``"store.shard_write"`` once per shard while spilling, so
        tests can crash a write mid-spill deterministically.

    Crash safety: records stream into ``*.tmp`` siblings that are
    renamed into place only at :meth:`close`, with the manifest written
    (atomically) last — an interrupted write leaves no final shard
    files and no manifest, and both :meth:`abort` and the next
    writer/reader on the directory sweep the tmp debris.
    """

    DUPLICATE_POLICIES = ("keep", "first")

    def __init__(
        self,
        path: PathLike,
        *,
        directed: bool,
        num_shards: int = 8,
        num_nodes: Optional[int] = None,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
        duplicates: str = "keep",
        skip_summaries: bool = False,
        fault_plan=None,
    ) -> None:
        if num_shards < 1:
            raise StoreError(f"num_shards must be >= 1, got {num_shards}")
        if memory_budget < 1:
            raise StoreError(f"memory_budget must be positive, got {memory_budget}")
        if num_nodes is not None and num_nodes < 0:
            raise StoreError(f"num_nodes must be >= 0, got {num_nodes}")
        if duplicates not in self.DUPLICATE_POLICIES:
            raise StoreError(
                f"duplicates must be one of {self.DUPLICATE_POLICIES}, "
                f"got {duplicates!r}"
            )
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        if (self.path / MANIFEST_NAME).exists():
            raise StoreError(f"{self.path} already holds a shard store")
        _sweep_tmp_debris(self.path)  # a crashed predecessor's leftovers
        self.num_shards = num_shards
        self._fault_plan = fault_plan
        self._crcs = [0] * num_shards
        self.directed = directed
        self.memory_budget = memory_budget
        self.duplicates = duplicates
        self._declared_nodes = num_nodes
        self._buffers: List[List[np.ndarray]] = [[] for _ in range(num_shards)]
        self._buffered_bytes = 0
        self._handles: List[Optional[object]] = [None] * num_shards
        self._counts = [0] * num_shards
        self._total_weight = 0.0
        self._max_id = -1
        self._weighted = False
        self._closed = False
        self.skip_summaries = skip_summaries
        self._summary_min = [None] * num_shards if skip_summaries else None
        self._summary_max = [None] * num_shards if skip_summaries else None
        # Endpoint-presence bitmaps need the universe size up front; a
        # writer deriving num_nodes at close records min/max only.
        self._summary_seen: Optional[List[Optional[np.ndarray]]] = (
            [None] * num_shards if skip_summaries and num_nodes is not None else None
        )

    # -- context management -------------------------------------------
    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:  # abandon partial output on error
            self.abort()

    # -- appending -----------------------------------------------------
    def append_arrays(self, src, dst, weights=None) -> None:
        """Append a chunk of parallel edge arrays."""
        if self._closed:
            raise StoreError("writer is closed")
        rec = _as_shard_records(src, dst, weights)
        if rec.size == 0:
            return
        if not self.directed:
            rec = _canonicalize_undirected(rec)
        lo = int(min(rec["u"].min(), rec["v"].min()))
        if lo < 0:
            raise StoreError(f"node ids must be >= 0, got {lo}")
        hi = int(max(rec["u"].max(), rec["v"].max()))
        if self._declared_nodes is not None and hi >= self._declared_nodes:
            raise StoreError(
                f"node id {hi} outside the declared universe "
                f"[0, {self._declared_nodes})"
            )
        self._max_id = max(self._max_id, hi)
        self._total_weight += float(rec["w"].sum())
        if not self._weighted and bool((rec["w"] != 1.0).any()):
            self._weighted = True
        shard_ids = stable_hash_int64(rec["u"]) % self.num_shards
        # Partition with one mask per shard (arrival order preserved
        # within each shard, which the "first" dedup relies on); a
        # range loop beats np.unique's hash pass for the small shard
        # counts stores use.
        for shard in range(self.num_shards):
            mask = shard_ids == shard
            if not mask.any():
                continue
            part = rec[mask]
            self._buffers[shard].append(part)
            self._buffered_bytes += part.nbytes
            if self.skip_summaries:
                self._note_summary(shard, part)
        if self._buffered_bytes > self.memory_budget:
            self.flush()

    def _note_summary(self, shard: int, part: np.ndarray) -> None:
        """Fold one appended chunk into the shard's skip summary."""
        lo = int(min(part["u"].min(), part["v"].min()))
        hi = int(max(part["u"].max(), part["v"].max()))
        cur_lo = self._summary_min[shard]
        self._summary_min[shard] = lo if cur_lo is None else min(cur_lo, lo)
        cur_hi = self._summary_max[shard]
        self._summary_max[shard] = hi if cur_hi is None else max(cur_hi, hi)
        if self._summary_seen is not None:
            seen = self._summary_seen[shard]
            if seen is None:
                seen = np.zeros(self._declared_nodes, dtype=bool)
                self._summary_seen[shard] = seen
            seen[part["u"]] = True
            seen[part["v"]] = True

    def append_edges(self, triples: Iterable[Tuple[int, int, float]],
                     chunk_size: int = 1 << 16) -> None:
        """Append ``(u, v, w)`` triples, packed in bounded chunks."""
        it = iter(triples)
        while True:
            rec = np.fromiter(
                ((u, v, w) for u, v, w in islice(it, chunk_size)),
                dtype=SHARD_DTYPE,
                count=-1,
            )
            if rec.size:
                self.append_arrays(rec["u"], rec["v"], rec["w"])
            if rec.size < chunk_size:
                return

    def flush(self) -> None:
        """Spill every shard buffer to its on-disk ``*.tmp`` file."""
        for shard, chunks in enumerate(self._buffers):
            if not chunks:
                continue
            if self._fault_plan is not None:
                self._fault_plan.fire("store.shard_write", shard)
            handle = self._handles[shard]
            if handle is None:
                handle = open(self.path / _tmp_shard_name(shard), "wb")
                handle.write(_npy_preamble(0))
                self._handles[shard] = handle
            for rec in chunks:
                rec.tofile(handle)
                self._counts[shard] += int(rec.size)
                self._crcs[shard] = zlib.crc32(rec.tobytes(), self._crcs[shard])
            self._buffers[shard] = []
        self._buffered_bytes = 0

    # -- finalization --------------------------------------------------
    def _dedup_shard(self, shard: int, num_nodes: int) -> None:
        """Rewrite one finalized shard keeping each edge's first record."""
        path = self.path / _shard_name(shard)
        rec = np.load(path)
        if rec.size:
            key = rec["u"] * np.int64(num_nodes) + rec["v"]
            first = np.unique(key, return_index=True)[1]
            rec = rec[np.sort(first)]  # first occurrences, arrival order
            tmp = self.path / _tmp_shard_name(shard)
            with open(tmp, "wb") as out:
                out.write(_npy_preamble(int(rec.size)))
                rec.tofile(out)
            os.replace(tmp, path)
            self._crcs[shard] = zlib.crc32(rec.tobytes())
        self._counts[shard] = int(rec.size)
        self._dedup_weight += float(rec["w"].sum())
        if not self._dedup_weighted and bool((rec["w"] != 1.0).any()):
            self._dedup_weighted = True

    def close(self) -> "ShardedEdgeStore":
        """Finalize shard headers, write the manifest, return the store."""
        if self._closed:
            return ShardedEdgeStore.open(self.path)
        try:
            return self._finalize()
        except BaseException:
            self.abort()
            raise

    def _finalize(self) -> "ShardedEdgeStore":
        self.flush()
        num_nodes = (
            self._declared_nodes
            if self._declared_nodes is not None
            else self._max_id + 1
        )
        if self.duplicates == "first" and num_nodes:
            # The dedup key packs (u, v) into one int64.
            if num_nodes > (2**63 - 1) // max(1, num_nodes):
                raise StoreError(
                    f"duplicates='first' needs num_nodes**2 < 2**63, "
                    f"got num_nodes={num_nodes}"
                )
        shard_files: List[str] = []
        for shard in range(self.num_shards):
            name = _shard_name(shard)
            tmp = self.path / _tmp_shard_name(shard)
            handle = self._handles[shard]
            if handle is None:  # empty shard: header only
                with open(tmp, "wb") as out:
                    out.write(_npy_preamble(0))
            else:
                handle.seek(0)
                handle.write(_npy_preamble(self._counts[shard]))
                handle.close()
                self._handles[shard] = None
            os.replace(tmp, self.path / name)
            shard_files.append(name)
        if self.duplicates == "first":
            self._dedup_weight = 0.0
            self._dedup_weighted = False
            for shard in range(self.num_shards):
                self._dedup_shard(shard, num_nodes)
            self._total_weight = self._dedup_weight
            self._weighted = self._dedup_weighted
        summaries: Optional[List[Optional[ShardSummary]]] = None
        if self.skip_summaries:
            summaries = []
            for shard in range(self.num_shards):
                lo, hi = self._summary_min[shard], self._summary_max[shard]
                if lo is None:  # empty shard: min > max, always skippable
                    summaries.append(ShardSummary(min_node=0, max_node=-1))
                    continue
                seen = (
                    self._summary_seen[shard]
                    if self._summary_seen is not None
                    else None
                )
                summaries.append(
                    ShardSummary(
                        min_node=lo,
                        max_node=hi,
                        nodes=np.packbits(seen) if seen is not None else None,
                    )
                )
        manifest = ShardManifest(
            num_shards=self.num_shards,
            num_nodes=num_nodes,
            num_edges=sum(self._counts),
            total_weight=self._total_weight,
            weighted=self._weighted,
            directed=self.directed,
            shard_files=shard_files,
            shard_edges=list(self._counts),
            shard_summaries=summaries,
            shard_crcs=list(self._crcs),
        )
        # The manifest is the commit record: written atomically, last.
        _atomic_write_text(self.path / MANIFEST_NAME, manifest.to_json() + "\n")
        self._closed = True
        # This process just wrote (and checksummed) every byte, so the
        # returned reader skips re-verification.
        return ShardedEdgeStore(self.path, manifest, _trusted=True)

    def abort(self) -> None:
        """Close handles and remove tmp debris — no manifest, no final
        shard files, so the directory never reads as a valid store."""
        for shard, handle in enumerate(self._handles):
            if handle is not None:
                handle.close()
                self._handles[shard] = None
        _sweep_tmp_debris(self.path)
        self._closed = True


def _shard_name(shard: int) -> str:
    return f"shard-{shard:05d}.npy"


def _tmp_shard_name(shard: int) -> str:
    return _shard_name(shard) + ".tmp"


def _sweep_tmp_debris(path: Path) -> None:
    """Remove ``*.tmp`` leftovers of an interrupted writer or rewrite."""
    try:
        for stale in path.glob("*.tmp"):
            try:
                stale.unlink()
            except OSError:  # raced or read-only: harmless either way
                pass
    except OSError:  # pragma: no cover - unreadable dir surfaces later
        pass


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via tmp + atomic rename."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _payload_crc(path: Path, offset: int = _PREAMBLE_BYTES) -> int:
    """CRC-32 of a file's record payload (preamble excluded)."""
    crc = 0
    with open(path, "rb") as handle:
        handle.seek(offset)
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


# ----------------------------------------------------------------------
# Shuffle run files
# ----------------------------------------------------------------------
#: Fixed preamble of a spilled shuffle run.  Runs carry a structured
#: dtype built from the job's column schema (key field plus one field
#: per value column), whose descr can outgrow the 128-byte shard
#: preamble, so runs get a wider fixed slot.
_RUN_PREAMBLE_BYTES = 256

#: Structured-dtype field holding the int64 shuffle key.
_RUN_KEY_FIELD = "k"


def write_run_file(path: PathLike, keys, columns, *, fault: Optional[str] = None):
    """Spill one hash-partitioned columnar run to ``path``.

    The run is a spec-compliant ``.npy`` file with a fixed
    ``_RUN_PREAMBLE_BYTES`` preamble and a structured-dtype payload:
    field ``"k"`` holds the int64 keys, the remaining fields hold the
    value columns in schema order.  Like shards, runs commit via tmp +
    :func:`os.replace`, so a crashed map task leaves only ``*.tmp``
    debris, never a half-written run.

    ``fault`` injects a failure between the tmp write and the atomic
    rename (the ``mapreduce.shuffle`` fault site): ``"raise"`` raises
    :class:`~repro.errors.InjectedFaultError` leaving the tmp file
    behind, ``"kill_worker"`` SIGKILLs the calling process.

    Returns ``(records, payload_bytes, crc)``; ``payload_bytes`` is
    exactly the run's on-disk payload size, which is what the driver
    meters as shuffle traffic.
    """
    from ..errors import InjectedFaultError

    names = list(columns)
    if _RUN_KEY_FIELD in names:
        raise StoreError(
            f"column name {_RUN_KEY_FIELD!r} collides with the run key field"
        )
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    dtype = np.dtype(
        [(_RUN_KEY_FIELD, "<i8")]
        + [(name, np.asarray(columns[name]).dtype.str) for name in names]
    )
    rows = np.empty(keys.shape[0], dtype=dtype)
    rows[_RUN_KEY_FIELD] = keys
    for name in names:
        rows[name] = columns[name]
    crc = zlib.crc32(rows.data) if rows.shape[0] else 0
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(_npy_preamble(rows.shape[0], dtype, _RUN_PREAMBLE_BYTES))
        handle.write(rows.data)
        handle.flush()
    if fault == "kill_worker":  # pragma: no cover - exercised via subprocess
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    if fault == "raise":
        raise InjectedFaultError(f"injected fault while spilling run {path.name}")
    os.replace(tmp, path)
    return rows.shape[0], rows.shape[0] * dtype.itemsize, crc


def read_run_file(path: PathLike, *, expected_crc: Optional[int] = None):
    """Memory-map a spilled run back as ``(keys, columns)``.

    When ``expected_crc`` (from the map task's manifest) is given, the
    payload is re-checksummed first and a mismatch raises
    :class:`~repro.errors.StoreCorruptionError` — a corrupted run must
    surface as a typed error, never as silently wrong reduce output.
    """
    path = Path(path)
    if expected_crc is not None:
        crc = _payload_crc(path, offset=_RUN_PREAMBLE_BYTES)
        if crc != expected_crc:
            raise StoreCorruptionError(
                f"shuffle run {path} failed its checksum "
                f"(expected {expected_crc:#010x}, got {crc:#010x})"
            )
    rows = np.load(path, mmap_mode="r")
    names = rows.dtype.names
    if not names or names[0] != _RUN_KEY_FIELD:
        raise StoreCorruptionError(f"shuffle run {path} has no key field")
    return rows[_RUN_KEY_FIELD], {name: rows[name] for name in names[1:]}


def corrupt_run_file(path: PathLike, offset: int = 0) -> None:
    """Flip one payload byte of a spilled run (test/fault helper)."""
    path = Path(path)
    position = _RUN_PREAMBLE_BYTES + offset
    if path.stat().st_size <= position:
        raise StoreError(f"{path}: no payload byte at offset {offset}")
    with open(path, "r+b") as handle:
        handle.seek(position)
        byte = handle.read(1)
        handle.seek(position)
        handle.write(bytes((byte[0] ^ 0xFF,)))


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (uint64 in, uint64 out)."""
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def _mix_records(u: np.ndarray, v: np.ndarray, w: np.ndarray) -> np.ndarray:
    """One well-mixed uint64 per edge record, for order-independent
    content fingerprints (weights enter via their IEEE-754 bit image)."""
    uu = u.astype(np.uint64, copy=False)
    vv = v.astype(np.uint64, copy=False)
    wbits = np.ascontiguousarray(w, dtype=np.float64).view(np.uint64)
    mixed = _splitmix64(uu + np.uint64(0x9E3779B97F4A7C15))
    mixed = _splitmix64(mixed ^ _splitmix64(vv + np.uint64(0xD1B54A32D192ED03)))
    return _splitmix64(mixed ^ wbits)


def write_edge_list_store(
    edge_list: PathLike,
    store_path: PathLike,
    *,
    directed: bool,
    num_shards: int = 8,
    num_nodes: Optional[int] = None,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
) -> "ShardedEdgeStore":
    """Convert a SNAP-style edge list (gzip transparent) into a store.

    One streaming pass over the file — node ids must be integers —
    with the writer's usual memory budget, so arbitrarily large lists
    convert in bounded memory (plus one shard for the dedup pass).
    Duplicate lines keep their first occurrence, matching
    :func:`repro.graph.io.read_undirected` / ``read_directed`` — the
    sharded pipeline answers exactly like the dict/CSR pipelines on
    the same file (SNAP dumps commonly list both orientations of every
    undirected edge).
    """
    from ..graph.io import iter_edge_list

    def int_triples():
        for u, v, w in iter_edge_list(edge_list):
            try:
                yield int(u), int(v), w
            except ValueError:
                raise StoreError(
                    f"{edge_list}: shard stores need integer node ids, "
                    f"got {u!r}/{v!r}"
                ) from None

    with ShardWriter(
        store_path,
        directed=directed,
        num_shards=num_shards,
        num_nodes=num_nodes,
        memory_budget=memory_budget,
        duplicates="first",
    ) as writer:
        writer.append_edges(int_triples())
    return ShardedEdgeStore.open(store_path)


# ----------------------------------------------------------------------
# Store (reader)
# ----------------------------------------------------------------------
@dataclass
class StoreVerification:
    """Result of :meth:`ShardedEdgeStore.verify`.

    ``problems`` lists ``(shard, description)`` pairs for every shard
    that failed its integrity checks; an empty list means the store is
    healthy (:attr:`ok`).
    """

    path: Path
    shards: int
    problems: List[Tuple[int, str]]

    @property
    def ok(self) -> bool:
        return not self.problems

    def raise_if_corrupt(self) -> None:
        """Raise :class:`StoreCorruptionError` summarizing any damage."""
        if self.problems:
            detail = "; ".join(msg for _, msg in self.problems)
            raise StoreCorruptionError(f"{self.path}: {detail}")


class ShardedEdgeStore:
    """A finalized on-disk sharded edge set with memmap readers.

    Open an existing store with :meth:`open`; build one with
    :meth:`write` (bulk) or :class:`ShardWriter` (streaming).  All read
    methods hand back NumPy views into ``np.memmap``-loaded shard
    files — touching a shard costs page faults, not a parse.

    Examples
    --------
    >>> import tempfile, numpy as np
    >>> tmp = tempfile.mkdtemp()
    >>> store = ShardedEdgeStore.write(
    ...     tmp, (np.array([0, 1, 2]), np.array([1, 2, 0])),
    ...     directed=False, num_shards=2)
    >>> store.num_nodes, store.num_edges, store.directed
    (3, 3, False)
    """

    def __init__(
        self, path: PathLike, manifest: ShardManifest, *, _trusted: bool = False
    ) -> None:
        self.path = Path(path)
        self.manifest = manifest
        # Shards integrity-checked by this instance (size + CRC on the
        # first memmap open of each).  A writer that just produced the
        # bytes hands back a fully-trusted reader.
        self._verified = set(range(manifest.num_shards)) if _trusted else set()

    # -- construction --------------------------------------------------
    @classmethod
    def open(cls, path: PathLike) -> "ShardedEdgeStore":
        """Open a store directory (or a path to its ``manifest.json``)."""
        path = Path(path)
        if path.name == MANIFEST_NAME:
            path = path.parent
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise StoreError(f"no shard store at {path} (missing {MANIFEST_NAME})")
        _sweep_tmp_debris(path)
        return cls(path, ShardManifest.from_json(manifest_path.read_text()))

    @classmethod
    def write(
        cls,
        path: PathLike,
        source,
        *,
        directed: bool,
        num_shards: int = 8,
        num_nodes: Optional[int] = None,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
        duplicates: str = "keep",
    ) -> "ShardedEdgeStore":
        """Build a store from any edge source.

        ``source`` may be a ``(src, dst)`` or ``(src, dst, weights)``
        tuple of arrays, an :class:`~repro.streaming.stream.EdgeStream`
        (one counted pass; int node ids required), or any iterable of
        ``(u, v, w)`` triples.  ``duplicates`` is the
        :class:`ShardWriter` policy (``"keep"`` or ``"first"``).
        """
        writer = ShardWriter(
            path,
            directed=directed,
            num_shards=num_shards,
            num_nodes=num_nodes,
            memory_budget=memory_budget,
            duplicates=duplicates,
        )
        with writer:
            if isinstance(source, tuple):
                if len(source) == 2:
                    writer.append_arrays(source[0], source[1])
                elif len(source) == 3:
                    writer.append_arrays(*source)
                else:
                    raise StoreError(
                        "array source must be (src, dst) or (src, dst, weights)"
                    )
            else:
                edges = getattr(source, "edges", None)
                if callable(edges):  # EdgeStream: one counted pass
                    writer.append_edges(edges())
                else:
                    writer.append_edges(source)
        return cls.open(path)

    # -- manifest facts ------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of hash partitions."""
        return self.manifest.num_shards

    @property
    def num_nodes(self) -> int:
        """Size of the dense node universe ``[0, num_nodes)``."""
        return self.manifest.num_nodes

    @property
    def num_edges(self) -> int:
        """Total stored edge records across all shards."""
        return self.manifest.num_edges

    @property
    def total_weight(self) -> float:
        """Sum of all stored edge weights."""
        return self.manifest.total_weight

    @property
    def directed(self) -> bool:
        """Whether records are directed ``u -> v`` edges."""
        return self.manifest.directed

    @property
    def weighted(self) -> bool:
        """Whether any stored weight differs from 1."""
        return self.manifest.weighted

    def nbytes(self) -> int:
        """On-disk payload size of the edge records (headers excluded)."""
        return self.num_edges * SHARD_DTYPE.itemsize

    def fingerprint(self, *, cache: bool = True) -> str:
        """Content hash of the stored edge set, for catalog keys.

        A 64-hex-character digest over the edge record *multiset* plus
        the manifest facts consumers dispatch on (node universe,
        directedness) — deliberately independent of record order and of
        the shard partitioning, so two stores holding the same edges
        agree no matter the append order or ``num_shards`` they were
        written with.  Per-record 64-bit mixes are combined with
        commutative reductions (sum and xor), then folded into SHA-256
        with the manifest facts.

        The first computation scans every shard once; the result is
        cached in ``manifest.json`` (``cache=False``, or a read-only
        store directory, skips the write-back) and any rewrite of the
        store produces a fresh manifest without the cached value.
        """
        if self.manifest.fingerprint is not None:
            return self.manifest.fingerprint
        import hashlib

        acc_sum = np.uint64(0)
        acc_xor = np.uint64(0)
        with np.errstate(over="ignore"):
            for u, v, w in self.iter_shard_arrays():
                mixed = _mix_records(np.asarray(u), np.asarray(v), np.asarray(w))
                acc_sum = acc_sum + mixed.sum(dtype=np.uint64)
                acc_xor = acc_xor ^ np.bitwise_xor.reduce(
                    mixed, initial=np.uint64(0)
                )
        m = self.manifest
        digest = hashlib.sha256(
            f"repro-edge-shards:{m.num_nodes}:{int(m.directed)}:"
            f"{m.num_edges}:{int(acc_sum):016x}:{int(acc_xor):016x}".encode()
        ).hexdigest()
        self.manifest.fingerprint = digest
        if cache:
            try:
                _atomic_write_text(
                    self.path / MANIFEST_NAME, self.manifest.to_json() + "\n"
                )
            except OSError:  # read-only store: still return the value
                pass
        return digest

    # -- integrity -----------------------------------------------------
    def _check_shard(self, shard: int, *, deep: bool = True) -> Optional[str]:
        """Integrity-check one shard; returns a problem string or None.

        Size is always checked (truncation detection); the payload CRC
        is checked when the manifest records one and ``deep`` is set.
        """
        m = self.manifest
        if shard in m.quarantined:
            return (
                f"shard {shard} is quarantined (moved to "
                f"{_QUARANTINE_DIR}/ by repair); re-ingest the store"
            )
        path = self.shard_path(shard)
        try:
            size = path.stat().st_size
        except OSError:
            return f"shard {shard} file {path.name} is missing"
        expected = _PREAMBLE_BYTES + m.shard_edges[shard] * SHARD_DTYPE.itemsize
        if size != expected:
            return (
                f"shard {shard} file {path.name} is truncated or padded: "
                f"{size} bytes on disk, manifest says {expected}"
            )
        if deep and m.shard_crcs is not None:
            recorded = m.shard_crcs[shard]
            if recorded is not None:
                actual = _payload_crc(path)
                if actual != recorded:
                    return (
                        f"shard {shard} payload checksum mismatch: "
                        f"crc32 {actual:#010x} != recorded {recorded:#010x}"
                    )
        return None

    def _require_shard(self, shard: int) -> None:
        """Lazily verify a shard on its first open by this instance."""
        if shard in self._verified:
            return
        problem = self._check_shard(shard)
        if problem is not None:
            raise StoreCorruptionError(f"{self.path}: {problem}")
        self._verified.add(shard)

    def verify(self, *, deep: bool = True) -> "StoreVerification":
        """Audit every shard; returns a report instead of raising.

        ``deep=False`` checks existence and size only (cheap);
        ``deep=True`` (default) additionally re-reads each shard's
        payload to validate the manifest CRCs.
        """
        problems = []
        for shard in range(self.num_shards):
            problem = self._check_shard(shard, deep=deep)
            if problem is not None:
                problems.append((shard, problem))
        return StoreVerification(
            path=self.path, shards=self.num_shards, problems=problems
        )

    def repair(self, *, deep: bool = True) -> "StoreVerification":
        """Quarantine every corrupt shard so reads fail fast and typed.

        Damaged shard files move into ``quarantine/`` (evidence is kept,
        never deleted) and the manifest marks the shard quarantined —
        subsequent reads raise :class:`StoreCorruptionError` with a
        clear message instead of a checksum trace.  A healthy store is
        a no-op.  Returns the pre-repair verification report.
        """
        report = self.verify(deep=deep)
        if not report.problems:
            return report
        qdir = self.path / _QUARANTINE_DIR
        qdir.mkdir(exist_ok=True)
        for shard, _ in report.problems:
            if shard in self.manifest.quarantined:
                continue
            src = self.shard_path(shard)
            if src.exists():
                os.replace(src, qdir / src.name)
            self.manifest.quarantined.append(shard)
            self._verified.discard(shard)
        self.manifest.quarantined.sort()
        _atomic_write_text(
            self.path / MANIFEST_NAME, self.manifest.to_json() + "\n"
        )
        return report

    # -- readers -------------------------------------------------------
    def shard_path(self, shard: int) -> Path:
        """Path of one shard file."""
        return self.path / self.manifest.shard_files[shard]

    def shard_arrays(self, shard: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy ``(u, v, w)`` views of one shard (memmap-backed).

        The first open of each shard by this instance verifies file
        size and (when recorded) payload CRC, raising
        :class:`StoreCorruptionError` on damage."""
        self._require_shard(shard)
        rec = np.load(self.shard_path(shard), mmap_mode="r")
        return rec["u"], rec["v"], rec["w"]

    def shard_summary(self, shard: int) -> Optional[ShardSummary]:
        """The shard's skip summary, or None when the store has none."""
        if self.manifest.shard_summaries is None:
            return None
        return self.manifest.shard_summaries[shard]

    def alive_shards(
        self, alive: np.ndarray, dst_alive: Optional[np.ndarray] = None
    ) -> List[int]:
        """Shards that may still hold a surviving edge under ``alive``.

        ``alive`` is a boolean mask over the dense node universe.  A
        shard is dropped when it is empty, or when its skip summary
        proves every recorded endpoint dead — for directed scans with
        separate source/destination masks (``dst_alive``), an edge
        needs an alive source *and* an alive destination, so a shard
        with no endpoint in either mask is dead.  Without summaries
        only empty shards are dropped.
        """
        alive = np.asarray(alive, dtype=bool)
        masks = [(alive, np.packbits(alive))]
        if dst_alive is not None:
            dst_alive = np.asarray(dst_alive, dtype=bool)
            masks.append((dst_alive, np.packbits(dst_alive)))
        kept: List[int] = []
        for shard in range(self.num_shards):
            if self.manifest.shard_edges[shard] == 0:
                continue
            summary = self.shard_summary(shard)
            if summary is not None and not all(
                summary.may_intersect(mask, packed) for mask, packed in masks
            ):
                continue
            kept.append(shard)
        return kept

    def iter_shard_arrays(
        self,
        alive: Optional[np.ndarray] = None,
        dst_alive: Optional[np.ndarray] = None,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Iterate shard-by-shard ``(u, v, w)`` memmap views.

        With an ``alive`` mask (and optionally ``dst_alive`` for
        directed source/destination sides), shards whose skip summaries
        prove them dead are not opened at all — see
        :meth:`alive_shards`.
        """
        if alive is None:
            shards: Iterable[int] = range(self.num_shards)
        else:
            shards = self.alive_shards(alive, dst_alive)
        for shard in shards:
            yield self.shard_arrays(shard)

    def shard_chunk_readers(
        self,
        alive: Optional[np.ndarray] = None,
        dst_alive: Optional[np.ndarray] = None,
    ) -> List[Callable[[], Tuple[np.ndarray, np.ndarray, np.ndarray]]]:
        """Zero-arg callables, one per shard, each returning its arrays.

        The task-shaped sibling of :meth:`iter_shard_arrays`: the same
        shard selection (skip summaries applied when ``alive`` is
        given), but deferred — each callable opens its own memmap when
        invoked, so independent shards can be read and processed by
        concurrent threads (the memmap page-in and the numpy work both
        release the GIL).  Callables are independent and thread-safe;
        invocation order is up to the caller, who must merge results in
        list order to stay bit-identical with the sequential scan.
        """
        if alive is None:
            shards: Iterable[int] = range(self.num_shards)
        else:
            shards = self.alive_shards(alive, dst_alive)

        def reader(shard: int):
            def read() -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
                return self.shard_arrays(shard)

            return read

        return [reader(shard) for shard in shards]

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The whole edge set as contiguous in-memory arrays.

        Materializes O(m); for out-of-core access iterate
        :meth:`iter_shard_arrays` instead.
        """
        us, vs, ws = [], [], []
        for u, v, w in self.iter_shard_arrays():
            us.append(np.asarray(u, dtype=np.int64))
            vs.append(np.asarray(v, dtype=np.int64))
            ws.append(np.asarray(w, dtype=np.float64))
        if not us:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), np.empty(0, dtype=np.float64)
        return np.concatenate(us), np.concatenate(vs), np.concatenate(ws)

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(u, v, w)`` python triples (the honest slow path)."""
        for u, v, w in self.iter_shard_arrays():
            yield from zip(u.tolist(), v.tolist(), w.tolist())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedEdgeStore(path={str(self.path)!r}, "
            f"num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"num_shards={self.num_shards}, directed={self.directed})"
        )
