"""Streaming substrate: edge streams, the semi-streaming engine, sketches.

The streaming model of the paper (§1.1): node set known in advance,
edges arrive one at a time, the algorithm may take multiple passes over
the stream but can only keep O(n) state between passes.  This package
provides:

* :mod:`~repro.streaming.stream` — edge-stream abstractions (in-memory,
  file-backed, regenerating) with pass/edge accounting.
* :mod:`~repro.streaming.engine` — Algorithms 1–3 implemented strictly
  against the stream interface with O(n) state; verified to match the
  in-memory reference implementations pass-for-pass.
* :mod:`~repro.streaming.compaction` — pass compaction: once a pass
  keeps at most a threshold fraction of the records it scanned, the
  next scan also rewrites the survivors, so later passes scan
  geometrically fewer bytes (identical results, cheaper passes).
* :mod:`~repro.streaming.countsketch` — the Count-Sketch frequency
  estimator of Charikar–Chen–Farach-Colton (§5.1).
* :mod:`~repro.streaming.sketch_engine` — Algorithm 1 with sketched
  degree counters, reproducing Table 4.
* :mod:`~repro.streaming.memory` — between-pass memory accounting in
  words, used for the paper's space comparisons.
"""

from .stream import (
    EdgeStream,
    MemoryEdgeStream,
    FileEdgeStream,
    GraphEdgeStream,
    DirectedGraphEdgeStream,
    GeneratorEdgeStream,
    ShardEdgeStream,
    ArrayEdgeStream,
    StreamAccounting,
)
from .engine import (
    stream_densest_subgraph,
    stream_densest_subgraph_atleast_k,
    stream_densest_subgraph_directed,
)
from .compaction import CompactionPolicy
from .checkpoint import CheckpointConfig
from .countsketch import CountSketch
from .sketch_engine import sketch_densest_subgraph
from .memory import MemoryAccountant
from .sweep import stream_ratio_sweep

__all__ = [
    "EdgeStream",
    "MemoryEdgeStream",
    "FileEdgeStream",
    "GraphEdgeStream",
    "DirectedGraphEdgeStream",
    "GeneratorEdgeStream",
    "ShardEdgeStream",
    "ArrayEdgeStream",
    "StreamAccounting",
    "CompactionPolicy",
    "CheckpointConfig",
    "stream_densest_subgraph",
    "stream_densest_subgraph_atleast_k",
    "stream_densest_subgraph_directed",
    "CountSketch",
    "sketch_densest_subgraph",
    "MemoryAccountant",
    "stream_ratio_sweep",
]
