"""Checkpoint/resume for long streaming peels.

A deep at-least-k peel on a big store can run hundreds of passes over
many minutes; a crash at pass 140 of 164 should not restart from zero.
The undirected engines therefore accept a :class:`CheckpointConfig`:
every ``every`` passes the O(n) between-pass state is persisted — one
atomic file in the checkpoint directory — and a rerun of the *same*
solve resumes from it, producing a Solution bit-identical to an
uninterrupted run.

What gets saved (and why it suffices)
-------------------------------------
The engines recompute all O(m) state (degree counters, surviving
weight) from the input stream every pass; only O(n) state survives
between passes.  A checkpoint is exactly that state:

* the packed alive bitmap and remaining-node count,
* the pass counter and the pending trace fields of the last removal,
* the best set / density / pass seen so far and the trace records,
* the stream's accounting counters (passes/edges/bytes so far).

On resume the engine rescans the *original* input under the restored
alive mask.  Pass compaction never changes which edges a scan counts
(a rewrite holds exactly the surviving records), so rescanning the
original source yields bit-identical degrees, removals, and trace —
only the physical bytes-read trajectory may differ, and the restored
accounting keeps the logical counters coherent.

Format
------
One ``.npz`` file (``peel-checkpoint.npz``) written tmp + atomic
rename, holding the packed alive bitmap, the best-set indices, and a
JSON metadata blob (algorithm kind, parameters, counters, trace).
Loads validate the kind/parameters/universe against the resuming call
and raise :class:`~repro.errors.CheckpointError` on mismatch — a
checkpoint from a different problem must never silently steer a solve.
"""

from __future__ import annotations

import json
import os
from dataclasses import astuple, dataclass
from pathlib import Path
from typing import Any, List, Optional, Union

from ..core.trace import PassRecord
from ..errors import CheckpointError

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Checkpoint file format tag + version (bump on layout changes).
_FORMAT = "repro-peel-checkpoint"
_VERSION = 1
CHECKPOINT_NAME = "peel-checkpoint.npz"


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often a peel persists its between-pass state.

    ``path`` is a directory (created on first save); ``every`` is the
    pass interval; ``keep=True`` leaves the checkpoint file behind
    after a successful run (default: a completed solve removes it, so
    a later solve with the same config starts fresh).
    """

    path: Union[str, Path]
    every: int = 16
    keep: bool = False

    def __post_init__(self) -> None:
        if int(self.every) < 1:
            raise CheckpointError(
                f"checkpoint interval must be >= 1, got {self.every}"
            )

    @classmethod
    def coerce(cls, value) -> Optional["CheckpointConfig"]:
        """``None`` | config | directory path → config (or ``None``)."""
        if value is None or value is False:
            return None
        if isinstance(value, cls):
            return value
        if isinstance(value, (str, Path)):
            return cls(path=value)
        raise CheckpointError(
            f"checkpoint must be a directory path or CheckpointConfig, "
            f"got {type(value).__name__}"
        )

    @property
    def file(self) -> Path:
        return Path(self.path) / CHECKPOINT_NAME


def save_peel_checkpoint(
    config: CheckpointConfig,
    *,
    kind: str,
    params: dict,
    n: int,
    pass_index: int,
    remaining: int,
    alive: "_np.ndarray",
    best_set: Optional[List[int]],
    best_density: Optional[float],
    best_pass: int,
    pending: Optional[dict],
    trace: List[PassRecord],
    accounting: Optional[Any] = None,
) -> Path:
    """Persist one peel's between-pass state, atomically.

    The file appears complete or not at all: contents are staged into a
    ``.tmp`` sibling and renamed over the previous checkpoint, so a
    crash mid-save leaves the older (still valid) checkpoint in place.
    """
    if _np is None:  # pragma: no cover - engines gate on the scanner
        raise CheckpointError("peel checkpoints require numpy")
    directory = Path(config.path)
    directory.mkdir(parents=True, exist_ok=True)
    meta = {
        "format": _FORMAT,
        "version": _VERSION,
        "kind": kind,
        "params": params,
        "n": int(n),
        "pass_index": int(pass_index),
        "remaining": int(remaining),
        "best_set_is_none": best_set is None,
        "best_density": best_density,
        "best_pass": int(best_pass),
        "pending": pending,
        "trace": [list(astuple(record)) for record in trace],
        "accounting": _accounting_state(accounting),
    }
    target = config.file
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            _np.savez(
                handle,
                meta=_np.frombuffer(
                    json.dumps(meta).encode("utf-8"), dtype=_np.uint8
                ),
                alive=_np.packbits(_np.asarray(alive, dtype=bool)),
                best_set=_np.asarray(
                    best_set if best_set is not None else [], dtype=_np.int64
                ),
            )
        os.replace(tmp, target)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {target}: {exc}") from exc
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover
                pass
    return target


def load_peel_checkpoint(
    config: CheckpointConfig, *, kind: str, params: dict, n: int
) -> Optional[dict]:
    """Load and validate a checkpoint; ``None`` when there is none.

    Raises :class:`CheckpointError` when a checkpoint exists but was
    taken by a different algorithm, with different parameters, or over
    a different node universe — resuming it would corrupt the solve.
    """
    if _np is None:  # pragma: no cover
        return None
    target = config.file
    if not target.exists():
        return None
    try:
        with _np.load(target, allow_pickle=False) as data:
            meta = json.loads(bytes(data["meta"]).decode("utf-8"))
            alive_packed = data["alive"].copy()
            best_set = data["best_set"].copy()
    except Exception as exc:
        raise CheckpointError(
            f"unreadable checkpoint {target}: {exc}"
        ) from exc
    if meta.get("format") != _FORMAT or meta.get("version") != _VERSION:
        raise CheckpointError(
            f"{target} is not a version-{_VERSION} peel checkpoint"
        )
    if meta.get("kind") != kind:
        raise CheckpointError(
            f"checkpoint {target} was taken by {meta.get('kind')!r}, "
            f"cannot resume a {kind!r} peel from it"
        )
    if meta.get("n") != int(n):
        raise CheckpointError(
            f"checkpoint {target} covers a universe of {meta.get('n')} "
            f"nodes, this stream has {n}"
        )
    if meta.get("params") != _jsonable(params):
        raise CheckpointError(
            f"checkpoint {target} was taken with parameters "
            f"{meta.get('params')!r}, this solve uses {_jsonable(params)!r}"
        )
    alive = _np.unpackbits(alive_packed, count=int(n)).astype(bool)
    return {
        "pass_index": int(meta["pass_index"]),
        "remaining": int(meta["remaining"]),
        "alive": alive,
        "best_set": (
            None if meta["best_set_is_none"] else [int(i) for i in best_set]
        ),
        "best_density": meta["best_density"],
        "best_pass": int(meta["best_pass"]),
        "pending": meta["pending"],
        "trace": [PassRecord(*fields) for fields in meta["trace"]],
        "accounting": meta.get("accounting"),
    }


def clear_checkpoint(config: CheckpointConfig) -> None:
    """Remove the checkpoint file (a completed run's final act)."""
    try:
        config.file.unlink()
    except FileNotFoundError:
        pass
    except OSError:  # pragma: no cover - read-only dir: leave it
        pass


def _accounting_state(accounting) -> Optional[dict]:
    """Snapshot a StreamAccounting's counters (or None)."""
    if accounting is None:
        return None
    return {
        "passes_made": accounting.passes_made,
        "edges_streamed": accounting.edges_streamed,
        "bytes_scanned": accounting.bytes_scanned,
        "pass_edges": list(accounting.pass_edges),
        "pass_bytes": list(accounting.pass_bytes),
    }


def restore_accounting(accounting, snapshot: Optional[dict]) -> None:
    """Apply a saved counter snapshot onto a live StreamAccounting."""
    if accounting is None or snapshot is None:
        return
    accounting.passes_made = int(snapshot["passes_made"])
    accounting.edges_streamed = int(snapshot["edges_streamed"])
    accounting.bytes_scanned = int(snapshot["bytes_scanned"])
    accounting.pass_edges = [int(e) for e in snapshot["pass_edges"]]
    accounting.pass_bytes = [int(b) for b in snapshot["pass_bytes"]]


def _jsonable(value):
    """``value`` as it will compare after a JSON round-trip."""
    return json.loads(json.dumps(value))
